module valuepred

go 1.22
