package valuepred

import (
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("benchmarks = %d", len(bs))
	}
	if bs[0].Name != "go" || bs[7].Name != "vortex" {
		t.Errorf("order wrong: %v", bs)
	}
	for _, b := range bs {
		if b.Description == "" {
			t.Errorf("%s has no description", b.Name)
		}
	}
}

func TestFacadeTraceAndPredict(t *testing.T) {
	recs, err := Trace("compress95", 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20_000 {
		t.Fatalf("trace length = %d", len(recs))
	}
	s := Summarize(recs)
	if s.Insts != 20_000 {
		t.Errorf("summary insts = %d", s.Insts)
	}
	acc := EvaluatePredictor(NewStridePredictor(), recs)
	if acc.HitRate() <= 0 {
		t.Error("stride predictor scored zero")
	}
	lv := EvaluatePredictor(NewLastValuePredictor(), recs)
	cs := EvaluatePredictor(NewClassifiedStridePredictor(), recs)
	if cs.ConfidentHitRate() <= lv.HitRate() {
		t.Errorf("classified stride (%.2f) should beat raw last-value (%.2f) on compress",
			cs.ConfidentHitRate(), lv.HitRate())
	}
	hints := Profile(recs[:5000], 0.5)
	hy := EvaluatePredictor(NewHybridPredictor(1024, hints), recs)
	if hy.Eligible == 0 {
		t.Error("hybrid evaluated nothing")
	}

	if _, err := Trace("nonesuch", 1, 100); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFacadeMachines(t *testing.T) {
	recs, err := Trace("vortex", 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunIdeal(recs, NewIdealConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewIdealConfig(16)
	cfg.Predictor = NewClassifiedStridePredictor()
	vp, err := RunIdeal(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if IdealSpeedup(base, vp) <= 0 {
		t.Error("no ideal-machine speedup on vortex at width 16")
	}

	mbase, err := RunMachine(NewSequentialFetch(recs, NewPerfectBTB(), 4), NewMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := NewMachineConfig()
	mcfg.Predictor = NewClassifiedStridePredictor()
	mvp, err := RunMachine(NewSequentialFetch(recs, NewPerfectBTB(), 4), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if MachineSpeedup(mbase, mvp) <= 0 {
		t.Error("no realistic-machine speedup on vortex at n=4")
	}

	// Trace cache + network path.
	net, err := NewNetwork(NewNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	ncfg := NewMachineConfig()
	ncfg.Network = net
	nres, err := RunMachine(NewTraceCacheFetch(recs, NewTwoLevelBTB(), NewTraceCacheConfig()), ncfg)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Fetch.TCLookups == 0 {
		t.Error("trace cache unused")
	}
	if net.Stats().Requests == 0 {
		t.Error("network unused")
	}
}

func TestFacadeDID(t *testing.T) {
	recs, err := Trace("m88ksim", 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	a := AnalyzeDID(recs, false)
	if a.AvgDID() <= 4 {
		t.Errorf("m88ksim avg DID = %.1f, paper requires > 4", a.AvgDID())
	}
	b := AnalyzeDID(recs, true)
	if b.Arcs <= a.Arcs {
		t.Error("memory dependencies added no arcs")
	}
}

func TestFacadeExperiments(t *testing.T) {
	infos := Experiments()
	if len(infos) < 10 {
		t.Fatalf("only %d experiments", len(infos))
	}
	p := DefaultParams()
	p.TraceLen = 10_000
	p.Workloads = []string{"perl"}
	tab, err := RunExperiment("fig3.4", p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "perl") {
		t.Error("table missing workload row")
	}
	if _, err := RunExperiment("nonesuch", p); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentSeeds(t *testing.T) {
	p := DefaultParams()
	p.TraceLen = 8_000
	p.Workloads = []string{"perl"}
	tab, err := RunExperimentSeeds("fig3.4", p, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // perl + average
		t.Errorf("rows = %d", len(tab.Rows))
	}
	if _, err := RunExperimentSeeds("fig3.4", p, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}
