#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of cmd/vpserve.
#
# Builds vpserve and vpsim, boots the server on a free port, checks the
# health endpoint, fetches one small figure over HTTP and diffs it against
# the vpsim rendering of the same run (the service's byte-identity
# contract), scrapes the Prometheus exposition at /metrics, polls
# /v1/progress while an uncached run is in flight, then shuts the server
# down with SIGTERM and requires a clean graceful-drain exit. Run via
# `make serve-smoke`.
set -eu

GO=${GO:-go}
ID=${ID:-fig3.3}
LEN=${LEN:-20000}
WORKLOADS=${WORKLOADS:-gcc,go}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building vpserve and vpsim"
$GO build -o "$workdir/vpserve" ./cmd/vpserve
$GO build -o "$workdir/vpsim" ./cmd/vpsim

"$workdir/vpserve" -addr 127.0.0.1:0 2>"$workdir/server.log" &
server_pid=$!

# The server prints "vpserve: listening on http://HOST:PORT" once the
# listener is up; poll the log for it rather than guessing a port.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/^vpserve: listening on \(http:\/\/.*\)$/\1/p' "$workdir/server.log")
    [ -n "$base" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: server died during startup" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "serve-smoke: server never reported its address" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
echo "serve-smoke: server up at $base"

curl -fsS "$base/healthz" >/dev/null
echo "serve-smoke: healthz ok"

echo "serve-smoke: fetching $ID (len=$LEN workloads=$WORKLOADS) over HTTP"
curl -fsS "$base/v1/experiments/$ID?tracelen=$LEN&workloads=$WORKLOADS" >"$workdir/served.txt"

echo "serve-smoke: running the same experiment through vpsim"
"$workdir/vpsim" -experiment "$ID" -len "$LEN" -workloads "$WORKLOADS" -o "$workdir/local.txt"

if ! diff -u "$workdir/local.txt" "$workdir/served.txt"; then
    echo "serve-smoke: served table differs from the vpsim rendering" >&2
    exit 1
fi
echo "serve-smoke: served table is byte-identical to vpsim output"

curl -fsS "$base/v1/metrics" | grep -q 'counter serve\.requests' || {
    echo "serve-smoke: metrics endpoint missing serve.requests" >&2
    exit 1
}
echo "serve-smoke: metrics ok"

# Prometheus exposition: GET /metrics must carry the request counter as
# vp_serve_requests_total, and every non-comment line must parse as
# "family{labels} value" — a scraper's view of format validity.
curl -fsS "$base/metrics" >"$workdir/prom.txt"
grep -q '^vp_serve_requests_total [0-9]' "$workdir/prom.txt" || {
    echo "serve-smoke: /metrics missing vp_serve_requests_total" >&2
    cat "$workdir/prom.txt" >&2
    exit 1
}
if grep -v '^#' "$workdir/prom.txt" \
    | grep -vE '^vp_[A-Za-z0-9_]+(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' \
    | grep -q .; then
    echo "serve-smoke: /metrics contains lines that do not parse as Prometheus text format:" >&2
    grep -v '^#' "$workdir/prom.txt" \
        | grep -vE '^vp_[A-Za-z0-9_]+(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' >&2
    exit 1
fi
echo "serve-smoke: Prometheus exposition ok"

# Live progress: kick off an uncached (longer) run in the background and
# poll /v1/progress while it executes. The assertions are deliberately
# tolerant of timing — the endpoint must answer 200 with the snapshot
# shape (total/experiments), whether or not cells are mid-flight at the
# instant of the poll.
echo "serve-smoke: polling /v1/progress during a live run"
curl -fsS "$base/v1/experiments/$ID?tracelen=$((LEN * 3))&workloads=$WORKLOADS" >/dev/null &
bg_pid=$!
progress_ok=0
for _ in $(seq 1 50); do
    if curl -fsS "$base/v1/progress" >"$workdir/progress.json" 2>/dev/null \
        && grep -q '"total"' "$workdir/progress.json" \
        && grep -q '"experiments"' "$workdir/progress.json" \
        && grep -q '"flights"' "$workdir/progress.json"; then
        progress_ok=1
        break
    fi
    sleep 0.1
done
wait "$bg_pid" || {
    echo "serve-smoke: background run for the progress poll failed" >&2
    exit 1
}
if [ "$progress_ok" != 1 ]; then
    echo "serve-smoke: /v1/progress never returned a well-formed snapshot" >&2
    cat "$workdir/progress.json" >&2 || true
    exit 1
fi
echo "serve-smoke: live progress ok"

kill -TERM "$server_pid"
drain_ok=1
wait "$server_pid" || drain_ok=0
server_pid=""
if [ "$drain_ok" != 1 ]; then
    echo "serve-smoke: server did not exit cleanly on SIGTERM" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
grep -q 'vpserve: drained' "$workdir/server.log" || {
    echo "serve-smoke: missing drain confirmation in server log" >&2
    cat "$workdir/server.log" >&2
    exit 1
}
echo "serve-smoke: graceful SIGTERM drain ok"
echo "serve-smoke: PASS"
