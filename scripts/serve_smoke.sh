#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of cmd/vpserve.
#
# Builds vpserve and vpsim, boots the server on a free port, checks the
# health endpoint, fetches one small figure over HTTP and diffs it against
# the vpsim rendering of the same run (the service's byte-identity
# contract), then shuts the server down with SIGTERM and requires a clean
# graceful-drain exit. Run via `make serve-smoke`.
set -eu

GO=${GO:-go}
ID=${ID:-fig3.3}
LEN=${LEN:-20000}
WORKLOADS=${WORKLOADS:-gcc,go}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building vpserve and vpsim"
$GO build -o "$workdir/vpserve" ./cmd/vpserve
$GO build -o "$workdir/vpsim" ./cmd/vpsim

"$workdir/vpserve" -addr 127.0.0.1:0 2>"$workdir/server.log" &
server_pid=$!

# The server prints "vpserve: listening on http://HOST:PORT" once the
# listener is up; poll the log for it rather than guessing a port.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/^vpserve: listening on \(http:\/\/.*\)$/\1/p' "$workdir/server.log")
    [ -n "$base" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: server died during startup" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "serve-smoke: server never reported its address" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
echo "serve-smoke: server up at $base"

curl -fsS "$base/healthz" >/dev/null
echo "serve-smoke: healthz ok"

echo "serve-smoke: fetching $ID (len=$LEN workloads=$WORKLOADS) over HTTP"
curl -fsS "$base/v1/experiments/$ID?tracelen=$LEN&workloads=$WORKLOADS" >"$workdir/served.txt"

echo "serve-smoke: running the same experiment through vpsim"
"$workdir/vpsim" -experiment "$ID" -len "$LEN" -workloads "$WORKLOADS" -o "$workdir/local.txt"

if ! diff -u "$workdir/local.txt" "$workdir/served.txt"; then
    echo "serve-smoke: served table differs from the vpsim rendering" >&2
    exit 1
fi
echo "serve-smoke: served table is byte-identical to vpsim output"

curl -fsS "$base/v1/metrics" | grep -q 'counter serve\.requests' || {
    echo "serve-smoke: metrics endpoint missing serve.requests" >&2
    exit 1
}
echo "serve-smoke: metrics ok"

kill -TERM "$server_pid"
drain_ok=1
wait "$server_pid" || drain_ok=0
server_pid=""
if [ "$drain_ok" != 1 ]; then
    echo "serve-smoke: server did not exit cleanly on SIGTERM" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
grep -q 'vpserve: drained' "$workdir/server.log" || {
    echo "serve-smoke: missing drain confirmation in server log" >&2
    cat "$workdir/server.log" >&2
    exit 1
}
echo "serve-smoke: graceful SIGTERM drain ok"
echo "serve-smoke: PASS"
