#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of cmd/vpserve.
#
# Builds vpserve and vpsim, boots the server on a free port with a
# persistent cache directory, checks the health endpoint, fetches one
# small figure over HTTP and diffs it against the vpsim rendering of the
# same run (the service's byte-identity contract), exercises the async
# job API (submit, poll between disconnected connections, fetch the
# result by id), merges two vpsim shard artifacts through both `vpsim
# -merge` and POST /v1/merge and diffs each against the unsharded run,
# scrapes the Prometheus exposition at /metrics, asserts the serve.jobs.*
# and serve.disk_cache_* counter families, polls /v1/progress while an
# uncached run is in flight, then shuts the server down with SIGTERM and
# requires a clean graceful-drain exit. A second server booted on the
# same cache directory must serve the first server's table from disk
# (X-Cache: disk, no re-simulation). Run via `make serve-smoke`.
set -eu

GO=${GO:-go}
ID=${ID:-fig3.3}
LEN=${LEN:-20000}
WORKLOADS=${WORKLOADS:-gcc,go}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building vpserve and vpsim"
$GO build -o "$workdir/vpserve" ./cmd/vpserve
$GO build -o "$workdir/vpsim" ./cmd/vpsim

# boot_server LOGFILE [extra vpserve flags...] — starts a server on a free
# port and sets $base/$server_pid. The server prints "vpserve: listening
# on http://HOST:PORT" once the listener is up; poll the log for it
# rather than guessing a port.
boot_server() {
    boot_log=$1
    shift
    "$workdir/vpserve" -addr 127.0.0.1:0 "$@" 2>"$boot_log" &
    server_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^vpserve: listening on \(http:\/\/.*\)$/\1/p' "$boot_log")
        [ -n "$base" ] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "serve-smoke: server died during startup" >&2
            cat "$boot_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$base" ]; then
        echo "serve-smoke: server never reported its address" >&2
        cat "$boot_log" >&2
        exit 1
    fi
}

# stop_server LOGFILE — SIGTERM the current server and require the
# graceful-drain confirmation.
stop_server() {
    stop_log=$1
    kill -TERM "$server_pid"
    drain_ok=1
    wait "$server_pid" || drain_ok=0
    server_pid=""
    if [ "$drain_ok" != 1 ]; then
        echo "serve-smoke: server did not exit cleanly on SIGTERM" >&2
        cat "$stop_log" >&2
        exit 1
    fi
    grep -q 'vpserve: drained' "$stop_log" || {
        echo "serve-smoke: missing drain confirmation in server log" >&2
        cat "$stop_log" >&2
        exit 1
    }
}

boot_server "$workdir/server.log" -cache-dir "$workdir/cache"
echo "serve-smoke: server up at $base"

curl -fsS "$base/healthz" >/dev/null
echo "serve-smoke: healthz ok"

echo "serve-smoke: fetching $ID (len=$LEN workloads=$WORKLOADS) over HTTP"
curl -fsS "$base/v1/experiments/$ID?tracelen=$LEN&workloads=$WORKLOADS" >"$workdir/served.txt"

echo "serve-smoke: running the same experiment through vpsim"
"$workdir/vpsim" -experiment "$ID" -len "$LEN" -workloads "$WORKLOADS" -o "$workdir/local.txt"

if ! diff -u "$workdir/local.txt" "$workdir/served.txt"; then
    echo "serve-smoke: served table differs from the vpsim rendering" >&2
    exit 1
fi
echo "serve-smoke: served table is byte-identical to vpsim output"

# Async job API: submit a distinct (uncached) run, then poll and fetch the
# result over fresh connections — between each curl no client is attached,
# so a completing job IS the client-disconnect-survival contract.
job_len=$((LEN / 2))
echo "serve-smoke: submitting an async job ($ID len=$job_len)"
job_json=$(curl -fsS -X POST "$base/v1/jobs?experiment=$ID&tracelen=$job_len&workloads=$WORKLOADS")
job_id=$(printf '%s\n' "$job_json" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
if [ -z "$job_id" ]; then
    echo "serve-smoke: job submission returned no id: $job_json" >&2
    exit 1
fi
job_done=0
for _ in $(seq 1 300); do
    poll_json=$(curl -fsS "$base/v1/jobs/$job_id")
    case $poll_json in
    *'"state": "done"'*)
        job_done=1
        break
        ;;
    *'"state": "failed"'*)
        echo "serve-smoke: job failed: $poll_json" >&2
        exit 1
        ;;
    esac
    sleep 0.1
done
if [ "$job_done" != 1 ]; then
    echo "serve-smoke: job never settled: $poll_json" >&2
    exit 1
fi
curl -fsS "$base/v1/jobs/$job_id/result" >"$workdir/job-result.txt"
"$workdir/vpsim" -experiment "$ID" -len "$job_len" -workloads "$WORKLOADS" -o "$workdir/job-local.txt"
if ! diff -u "$workdir/job-local.txt" "$workdir/job-result.txt"; then
    echo "serve-smoke: async job result differs from the vpsim rendering" >&2
    exit 1
fi
echo "serve-smoke: async job submit/poll/fetch ok (survives disconnected clients)"

# Sharding: two vpsim shard artifacts must merge byte-identically to the
# unsharded run — through vpsim -merge and through POST /v1/merge alike.
echo "serve-smoke: running $ID as two shards and merging"
"$workdir/vpsim" -experiment "$ID" -len "$LEN" -workloads "$WORKLOADS" -shard 1/2 -o "$workdir/p1.json"
"$workdir/vpsim" -experiment "$ID" -len "$LEN" -workloads "$WORKLOADS" -shard 2/2 -o "$workdir/p2.json"
"$workdir/vpsim" -merge "$workdir/p1.json" "$workdir/p2.json" >"$workdir/merged-cli.txt"
if ! diff -u "$workdir/local.txt" "$workdir/merged-cli.txt"; then
    echo "serve-smoke: vpsim -merge output differs from the unsharded run" >&2
    exit 1
fi
{
    printf '['
    cat "$workdir/p1.json"
    printf ','
    cat "$workdir/p2.json"
    printf ']'
} >"$workdir/merge-body.json"
curl -fsS -X POST --data-binary @"$workdir/merge-body.json" "$base/v1/merge" >"$workdir/merged-http.txt"
if ! diff -u "$workdir/local.txt" "$workdir/merged-http.txt"; then
    echo "serve-smoke: POST /v1/merge output differs from the unsharded run" >&2
    exit 1
fi
echo "serve-smoke: two-shard merge is byte-identical to the unsharded run"

curl -fsS "$base/v1/metrics" >"$workdir/metrics.txt"
for want in 'counter serve\.requests' 'counter serve\.jobs\.created' \
    'counter serve\.jobs\.completed' 'counter serve\.disk_cache_write'; do
    grep -q "$want" "$workdir/metrics.txt" || {
        echo "serve-smoke: metrics endpoint missing $want" >&2
        cat "$workdir/metrics.txt" >&2
        exit 1
    }
done
echo "serve-smoke: metrics ok (serve.jobs.* and serve.disk_cache_* present)"

# Prometheus exposition: GET /metrics must carry the request counter as
# vp_serve_requests_total, and every non-comment line must parse as
# "family{labels} value" — a scraper's view of format validity.
curl -fsS "$base/metrics" >"$workdir/prom.txt"
grep -q '^vp_serve_requests_total [0-9]' "$workdir/prom.txt" || {
    echo "serve-smoke: /metrics missing vp_serve_requests_total" >&2
    cat "$workdir/prom.txt" >&2
    exit 1
}
if grep -v '^#' "$workdir/prom.txt" \
    | grep -vE '^vp_[A-Za-z0-9_]+(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' \
    | grep -q .; then
    echo "serve-smoke: /metrics contains lines that do not parse as Prometheus text format:" >&2
    grep -v '^#' "$workdir/prom.txt" \
        | grep -vE '^vp_[A-Za-z0-9_]+(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' >&2
    exit 1
fi
echo "serve-smoke: Prometheus exposition ok"

# Live progress: kick off an uncached (longer) run in the background and
# poll /v1/progress while it executes. The assertions are deliberately
# tolerant of timing — the endpoint must answer 200 with the snapshot
# shape (total/experiments), whether or not cells are mid-flight at the
# instant of the poll.
echo "serve-smoke: polling /v1/progress during a live run"
curl -fsS "$base/v1/experiments/$ID?tracelen=$((LEN * 3))&workloads=$WORKLOADS" >/dev/null &
bg_pid=$!
progress_ok=0
for _ in $(seq 1 50); do
    if curl -fsS "$base/v1/progress" >"$workdir/progress.json" 2>/dev/null \
        && grep -q '"total"' "$workdir/progress.json" \
        && grep -q '"experiments"' "$workdir/progress.json" \
        && grep -q '"flights"' "$workdir/progress.json"; then
        progress_ok=1
        break
    fi
    sleep 0.1
done
wait "$bg_pid" || {
    echo "serve-smoke: background run for the progress poll failed" >&2
    exit 1
}
if [ "$progress_ok" != 1 ]; then
    echo "serve-smoke: /v1/progress never returned a well-formed snapshot" >&2
    cat "$workdir/progress.json" >&2 || true
    exit 1
fi
echo "serve-smoke: live progress ok"

stop_server "$workdir/server.log"
echo "serve-smoke: graceful SIGTERM drain ok"

# Warm restart: a fresh server pointed at the same cache directory serves
# the first server's table from disk — no re-simulation.
echo "serve-smoke: restarting on the warm cache directory"
boot_server "$workdir/server2.log" -cache-dir "$workdir/cache"
curl -fsS -D "$workdir/warm-headers.txt" \
    "$base/v1/experiments/$ID?tracelen=$LEN&workloads=$WORKLOADS" >"$workdir/warm.txt"
grep -qi '^X-Cache: disk' "$workdir/warm-headers.txt" || {
    echo "serve-smoke: restarted server did not serve from disk:" >&2
    cat "$workdir/warm-headers.txt" >&2
    exit 1
}
if ! diff -u "$workdir/served.txt" "$workdir/warm.txt"; then
    echo "serve-smoke: disk-served table differs from the original" >&2
    exit 1
fi
curl -fsS "$base/v1/metrics" | grep -q 'counter serve\.disk_cache_hit 0' && {
    echo "serve-smoke: disk_cache_hit counter did not increment" >&2
    exit 1
}
curl -fsS "$base/v1/metrics" | grep -q 'counter serve\.disk_cache_hit' || {
    echo "serve-smoke: restarted server missing disk_cache_hit counter" >&2
    exit 1
}
echo "serve-smoke: warm restart served from disk (X-Cache: disk, byte-identical)"
stop_server "$workdir/server2.log"
echo "serve-smoke: PASS"
