package valuepred

import (
	"strings"
	"testing"
)

// These tests guard the memory discipline of DESIGN.md §12: the simulation
// engines draw all per-run state from pooled scratches, so two invariants
// must hold. First, a dirty scratch must be indistinguishable from a fresh
// one — no value computed by one cell may leak into the next. Second, the
// per-cell hot path must stay allocation-free per instruction, because
// per-instruction allocation is exactly what made the parallel engine
// slower than serial (BENCH_pr5.json's 0.92× workers_speedup).

// TestPooledScratchReuseIsDeterministic is the dirty-pool hammer: it runs
// the same experiment grids three times back-to-back on a wide pool and
// byte-compares every render. The first pass runs on the freshest pool
// this process can offer; the later passes run on scratches dirtied by
// the pass before — recycled arenas, grown dependence lists, populated
// free lists. Any stale scratch state leaking between cells shows up as a
// diff; under `make race` the same hammer doubles as a data-race probe on
// the pool itself. fig3.1 covers the ideal machine's scratch, fig5.3 the
// pipeline scratch plus the network's reused group buffers.
func TestPooledScratchReuseIsDeterministic(t *testing.T) {
	p := DefaultParams()
	p.TraceLen = 4_000
	p.Workloads = []string{"compress95", "li"}
	ids := []string{"fig3.1", "fig5.3"}

	prev := SetWorkers(8)
	defer SetWorkers(prev)

	render := func(pass int) map[string]string {
		out := make(map[string]string, len(ids))
		for _, id := range ids {
			tab, err := RunExperiment(id, p)
			if err != nil {
				t.Fatalf("pass %d: %s: %v", pass, id, err)
			}
			var sb strings.Builder
			if err := tab.Render(&sb); err != nil {
				t.Fatalf("pass %d: %s: render: %v", pass, id, err)
			}
			out[id] = sb.String()
		}
		return out
	}

	fresh := render(1)
	for pass := 2; pass <= 3; pass++ {
		dirty := render(pass)
		for _, id := range ids {
			if fresh[id] != dirty[id] {
				t.Errorf("%s: pass 1 (fresh pool) and pass %d (dirty pool) renders differ:\n%s",
					id, pass, firstDiff(fresh[id], dirty[id]))
			}
		}
	}
}

// TestAllocBudgetPerCell pins the per-cell allocation count with
// testing.AllocsPerRun. The budgets are deliberately loose multiples of
// the measured steady state (ideal ~23, network machine ~1100, sequential
// machine ~1 for a 20k-instruction trace) but far below one allocation
// per instruction — before the pooled scratches the same runs cost ~2.8
// allocations per instruction (~56k per run at this trace length), so any
// reintroduced per-instruction allocation fails immediately.
func TestAllocBudgetPerCell(t *testing.T) {
	recs, err := Trace("compress95", 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, budget float64, f func()) {
		t.Helper()
		f() // warm the scratch pools before measuring
		if got := testing.AllocsPerRun(5, f); got > budget {
			t.Errorf("%s: %.0f allocs/run, budget %.0f", name, got, budget)
		}
	}

	// Ideal machine, predictor included: the per-cell grid path of fig3.1.
	check("ideal+predictor", 200, func() {
		cfg := NewIdealConfig(16)
		cfg.Predictor = NewClassifiedStridePredictor()
		if _, err := RunIdeal(recs, cfg); err != nil {
			t.Fatal(err)
		}
	})

	// Sequential-fetch machine: the pipeline scratch and the fetch engine's
	// zero-copy group views leave only O(1) allocations per run.
	check("machine/sequential", 50, func() {
		cfg := NewMachineConfig()
		if _, err := RunMachine(NewSequentialFetch(recs, NewPerfectBTB(), 1), cfg); err != nil {
			t.Fatal(err)
		}
	})

	// Trace-cache machine with the banked network: per-cell predictor, BTB
	// and trace-cache line state remains (it scales with the static code
	// footprint), but nothing per dynamic instruction.
	check("machine/tracecache+network", 5_000, func() {
		net, err := NewNetwork(NewNetworkConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := NewMachineConfig()
		cfg.Network = net
		eng := NewTraceCacheFetch(recs, NewTwoLevelBTB(), NewTraceCacheConfig())
		if _, err := RunMachine(eng, cfg); err != nil {
			t.Fatal(err)
		}
	})
}
