package valuepred

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestTelemetryByteIdentity pins the live-telemetry side of the
// "metrics observe, they never steer" contract: every registered
// experiment must render byte-identically with telemetry fully off (nil
// sink), and with the full stack on — metrics registry, Progress
// aggregator and event log — at both pool widths. Progress feeds an EWMA
// from the wall clock and cells report lifecycle events concurrently, so
// any telemetry path that leaked into scheduling or merging would show up
// here as a diff.
func TestTelemetryByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered experiment four times")
	}
	base := DefaultParams()
	base.TraceLen = 4_000
	base.Workloads = []string{"compress95", "li"}

	render := func(workers int, telemetry bool) map[string]string {
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		p := base
		if telemetry {
			reg := NewMetricsRegistry()
			p.Obs = NewObsSink(reg, nil).
				WithProgress(NewProgress()).
				WithEventLog(NewEventLog(io.Discard))
		}
		out := make(map[string]string, len(Experiments()))
		for _, e := range Experiments() {
			tab, err := RunExperiment(e.ID, p)
			if err != nil {
				t.Fatalf("workers=%d telemetry=%v: %s: %v", workers, telemetry, e.ID, err)
			}
			var sb strings.Builder
			if err := tab.Render(&sb); err != nil {
				t.Fatalf("workers=%d telemetry=%v: %s: render: %v", workers, telemetry, e.ID, err)
			}
			out[e.ID] = sb.String()
		}
		return out
	}

	off := render(1, false)
	for _, cfg := range []struct {
		workers   int
		telemetry bool
	}{{1, true}, {8, false}, {8, true}} {
		got := render(cfg.workers, cfg.telemetry)
		for _, e := range Experiments() {
			if off[e.ID] != got[e.ID] {
				t.Errorf("%s: workers=1/telemetry=off and workers=%d/telemetry=%v renders differ:\n%s",
					e.ID, cfg.workers, cfg.telemetry, firstDiff(off[e.ID], got[e.ID]))
			}
		}
	}
}

// TestTelemetryLiveReadersRace hammers the read side while a real grid
// runs: Progress.Snapshot, the Prometheus exposition and the JSON
// snapshot are all rendered concurrently with the plan runner writing
// cells into the same registry and aggregator. Run under -race (make
// check does) this pins the locking of the whole telemetry read path; the
// monotonicity assertion additionally pins the aggregator's ordering
// contract — done never regresses and never overtakes total.
func TestTelemetryLiveReadersRace(t *testing.T) {
	reg := NewMetricsRegistry()
	prog := NewProgress()
	ev := NewEventLog(io.Discard)
	p := DefaultParams()
	p.TraceLen = 3_000
	p.Workloads = []string{"compress95", "li"}
	p.Obs = NewObsSink(reg, nil).WithProgress(prog).WithEventLog(ev)

	prev := SetWorkers(4)
	defer SetWorkers(prev)

	ctx, cancel := context.WithCancel(context.Background())
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		var lastDone int64
		for ctx.Err() == nil {
			snap := prog.Snapshot()
			if snap.Done < lastDone {
				t.Errorf("progress done regressed: %d -> %d", lastDone, snap.Done)
				return
			}
			if snap.Done > snap.Total {
				t.Errorf("progress done %d exceeds total %d", snap.Done, snap.Total)
				return
			}
			lastDone = snap.Done
		}
	}()
	go func() {
		defer readers.Done()
		for ctx.Err() == nil {
			if err := reg.Snapshot().WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if err := reg.Snapshot().WriteText(io.Discard); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
		}
	}()

	for _, id := range []string{"fig5.1", "fig3.1"} {
		if _, err := RunExperiment(id, p); err != nil {
			cancel()
			readers.Wait()
			t.Fatalf("%s: %v", id, err)
		}
	}
	cancel()
	readers.Wait()

	snap := prog.Snapshot()
	if snap.Total == 0 {
		t.Fatal("grid cells never reached the aggregator")
	}
	if snap.Done != snap.Total {
		t.Fatalf("after both runs: done/total = %d/%d, want converged", snap.Done, snap.Total)
	}
}
