package emu

import (
	"testing"
	"testing/quick"
)

func TestMemZeroDefault(t *testing.T) {
	m := NewMem()
	if m.Load8(0xdeadbeef) != 0 || m.Read64(0x12345) != 0 {
		t.Error("unmapped memory must read zero")
	}
	if m.Pages() != 0 {
		t.Error("reads must not materialise pages")
	}
}

func TestMemByteWordRoundTrip(t *testing.T) {
	m := NewMem()
	m.Store8(100, 0xAB)
	if m.Load8(100) != 0xAB {
		t.Error("byte roundtrip failed")
	}
	m.Write64(200, 0x0102030405060708)
	if m.Read64(200) != 0x0102030405060708 {
		t.Error("word roundtrip failed")
	}
	// little-endian layout
	if m.Load8(200) != 0x08 || m.Load8(207) != 0x01 {
		t.Error("word not little-endian")
	}
}

func TestMemPageCrossing(t *testing.T) {
	m := NewMem()
	// A 64-bit word straddling a 4096-byte page boundary.
	addr := uint64(pageSize - 3)
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("page-crossing word = %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("expected 2 pages, have %d", m.Pages())
	}
}

func TestMemBulk(t *testing.T) {
	m := NewMem()
	data := []byte("the quick brown fox")
	m.WriteBytes(5000, data)
	if got := string(m.ReadBytes(5000, len(data))); got != string(data) {
		t.Errorf("bulk roundtrip = %q", got)
	}
}

func TestMemQuick(t *testing.T) {
	m := NewMem()
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr)
		m.Write64(a, v)
		return m.Read64(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
