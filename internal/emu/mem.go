package emu

// Mem is a sparse, paged flat memory. Unmapped bytes read as zero, so
// programs may use large zero-initialised regions (hash tables, heaps)
// without the emulator materialising them.
type Mem struct {
	pages map[uint64]*page
	// one-entry lookaside to make sequential access cheap
	lastIdx  uint64
	lastPage *page
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// NewMem returns an empty memory.
func NewMem() *Mem { return &Mem{pages: make(map[uint64]*page)} }

func (m *Mem) page(addr uint64, create bool) *page {
	idx := addr >> pageShift
	if m.lastPage != nil && m.lastIdx == idx {
		return m.lastPage
	}
	p := m.pages[idx]
	if p == nil {
		if !create {
			return nil
		}
		p = new(page)
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// Load8 returns the byte at addr.
func (m *Mem) Load8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store8 stores b at addr.
func (m *Mem) Store8(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read64 returns the little-endian 64-bit word at addr. Unaligned and
// page-crossing accesses are permitted.
func (m *Mem) Read64(addr uint64) uint64 {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Load8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores v little-endian at addr.
func (m *Mem) Write64(addr uint64, v uint64) {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr, true)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		p[o+4] = byte(v >> 32)
		p[o+5] = byte(v >> 40)
		p[o+6] = byte(v >> 48)
		p[o+7] = byte(v >> 56)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Store8(addr+i, byte(v>>(8*i)))
	}
}

// WriteBytes copies data into memory starting at addr.
func (m *Mem) WriteBytes(addr uint64, data []byte) {
	for i, b := range data {
		m.Store8(addr+uint64(i), b)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Mem) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Load8(addr + uint64(i))
	}
	return out
}

// Pages returns the number of materialised pages (for tests and stats).
func (m *Mem) Pages() int { return len(m.pages) }
