// Package emu is the functional emulator for the valuepred ISA. It executes
// an assembled program architecturally (no timing) and emits one trace
// record per committed instruction. It plays the role of the Shade tracer in
// the paper's methodology: the dynamic instruction stream it produces is the
// input to every analysis and machine model.
package emu

import (
	"fmt"

	"valuepred/internal/isa"
	"valuepred/internal/trace"
)

// Machine executes one program.
type Machine struct {
	prog   *isa.Program
	regs   [isa.NumRegs]uint64
	pc     uint64
	mem    *Mem
	seq    uint64
	halted bool
	err    error
}

// New returns a Machine loaded with prog: data segments are copied into
// memory, sp is initialised to isa.StackTop and gp to isa.DataBase.
func New(prog *isa.Program) *Machine {
	m := &Machine{prog: prog, pc: prog.Entry, mem: NewMem()}
	for _, seg := range prog.Segments {
		m.mem.WriteBytes(seg.Addr, seg.Data)
	}
	m.regs[isa.SP] = isa.StackTop
	m.regs[isa.GP] = isa.DataBase
	return m
}

// Err returns the first execution error (bad PC, invalid opcode), or nil.
func (m *Machine) Err() error { return m.err }

// Halted reports whether the program executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// Reg returns the current value of register r.
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// SetReg sets register r (writes to x0 are ignored), for test setup.
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r != 0 {
		m.regs[r] = v
	}
}

// Mem returns the machine's memory.
func (m *Machine) Mem() *Mem { return m.mem }

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.pc }

// InstCount returns the number of instructions committed so far.
func (m *Machine) InstCount() uint64 { return m.seq }

// Step executes one instruction and returns its trace record. It returns
// ok=false once the machine has halted or faulted; check Err to
// distinguish the two.
func (m *Machine) Step() (trace.Rec, bool) {
	if m.halted || m.err != nil {
		return trace.Rec{}, false
	}
	in, ok := m.prog.At(m.pc)
	if !ok {
		m.err = fmt.Errorf("emu: PC %#x outside text segment at inst %d", m.pc, m.seq)
		return trace.Rec{}, false
	}
	rec := trace.Rec{
		Seq: m.seq, PC: m.pc,
		Op: in.Op, Rd: in.Rd, Rs1: in.Rs1, Rs2: in.Rs2, Imm: in.Imm,
	}
	next := m.pc + isa.InstBytes
	rs1 := m.regs[in.Rs1]
	rs2 := m.regs[in.Rs2]
	var val uint64
	writes := false

	switch in.Op {
	case isa.ADD:
		val, writes = rs1+rs2, true
	case isa.SUB:
		val, writes = rs1-rs2, true
	case isa.MUL:
		val, writes = rs1*rs2, true
	case isa.DIV:
		if rs2 == 0 {
			val = ^uint64(0)
		} else if int64(rs1) == -1<<63 && int64(rs2) == -1 {
			val = rs1 // overflow case: RISC-V returns the dividend
		} else {
			val = uint64(int64(rs1) / int64(rs2))
		}
		writes = true
	case isa.REM:
		if rs2 == 0 {
			val = rs1
		} else if int64(rs1) == -1<<63 && int64(rs2) == -1 {
			val = 0
		} else {
			val = uint64(int64(rs1) % int64(rs2))
		}
		writes = true
	case isa.AND:
		val, writes = rs1&rs2, true
	case isa.OR:
		val, writes = rs1|rs2, true
	case isa.XOR:
		val, writes = rs1^rs2, true
	case isa.SLL:
		val, writes = rs1<<(rs2&63), true
	case isa.SRL:
		val, writes = rs1>>(rs2&63), true
	case isa.SRA:
		val, writes = uint64(int64(rs1)>>(rs2&63)), true
	case isa.SLT:
		val, writes = boolToU64(int64(rs1) < int64(rs2)), true
	case isa.SLTU:
		val, writes = boolToU64(rs1 < rs2), true

	case isa.ADDI:
		val, writes = rs1+uint64(in.Imm), true
	case isa.ANDI:
		val, writes = rs1&uint64(in.Imm), true
	case isa.ORI:
		val, writes = rs1|uint64(in.Imm), true
	case isa.XORI:
		val, writes = rs1^uint64(in.Imm), true
	case isa.SLLI:
		val, writes = rs1<<(uint64(in.Imm)&63), true
	case isa.SRLI:
		val, writes = rs1>>(uint64(in.Imm)&63), true
	case isa.SRAI:
		val, writes = uint64(int64(rs1)>>(uint64(in.Imm)&63)), true
	case isa.SLTI:
		val, writes = boolToU64(int64(rs1) < in.Imm), true
	case isa.LI:
		val, writes = uint64(in.Imm), true

	case isa.LD:
		rec.Addr = rs1 + uint64(in.Imm)
		val, writes = m.mem.Read64(rec.Addr), true
	case isa.LB:
		rec.Addr = rs1 + uint64(in.Imm)
		val, writes = uint64(m.mem.Load8(rec.Addr)), true
	case isa.SD:
		rec.Addr = rs1 + uint64(in.Imm)
		rec.Val = rs2
		m.mem.Write64(rec.Addr, rs2)
	case isa.SB:
		rec.Addr = rs1 + uint64(in.Imm)
		rec.Val = rs2
		m.mem.Store8(rec.Addr, byte(rs2))

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		taken := false
		switch in.Op {
		case isa.BEQ:
			taken = rs1 == rs2
		case isa.BNE:
			taken = rs1 != rs2
		case isa.BLT:
			taken = int64(rs1) < int64(rs2)
		case isa.BGE:
			taken = int64(rs1) >= int64(rs2)
		case isa.BLTU:
			taken = rs1 < rs2
		case isa.BGEU:
			taken = rs1 >= rs2
		}
		rec.Taken = taken
		if taken {
			next = m.pc + uint64(in.Imm)
		}
	case isa.JAL:
		val, writes = m.pc+isa.InstBytes, true
		rec.Taken = true
		next = m.pc + uint64(in.Imm)
	case isa.JALR:
		val, writes = m.pc+isa.InstBytes, true
		rec.Taken = true
		next = (rs1 + uint64(in.Imm)) &^ 1

	case isa.HALT:
		m.halted = true
	case isa.NOP:
		// nothing
	default:
		m.err = fmt.Errorf("emu: invalid opcode %v at PC %#x (inst %d)", in.Op, m.pc, m.seq)
		return trace.Rec{}, false
	}

	if writes {
		rec.Val = val
		if in.Rd != 0 {
			m.regs[in.Rd] = val
		}
	}
	rec.Target = next
	m.pc = next
	m.seq++
	return rec, true
}

// Run executes until HALT, a fault, or limit instructions (limit <= 0 means
// unlimited) and returns the collected trace.
func (m *Machine) Run(limit int) []trace.Rec {
	var out []trace.Rec
	if limit > 0 {
		out = make([]trace.Rec, 0, limit)
	}
	for {
		if limit > 0 && len(out) >= limit {
			return out
		}
		rec, ok := m.Step()
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// Next implements trace.Source: it steps the machine, streaming records
// without buffering them.
func (m *Machine) Next() (trace.Rec, bool) { return m.Step() }

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Program returns the program the machine is executing.
func (m *Machine) Program() *isa.Program { return m.prog }
