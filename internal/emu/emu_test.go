package emu

import (
	"math"
	"testing"
	"testing/quick"

	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// u converts a signed value to its two's-complement uint64 representation
// at run time (constant conversions of negatives are compile errors).
func u(v int64) uint64 { return uint64(v) }

// runALU executes `op t2, t0, t1` with the given inputs and returns t2.
func runALU(t *testing.T, op isa.Opcode, a, b uint64) uint64 {
	t.Helper()
	prog := &isa.Program{
		Insts: []isa.Inst{
			{Op: op, Rd: isa.T2, Rs1: isa.T0, Rs2: isa.T1},
			{Op: isa.HALT},
		},
		Entry: isa.TextBase,
	}
	m := New(prog)
	m.SetReg(isa.T0, a)
	m.SetReg(isa.T1, b)
	m.Run(0)
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	return m.Reg(isa.T2)
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a, b uint64
		want uint64
	}{
		{isa.ADD, 3, 4, 7},
		{isa.SUB, 3, 4, ^uint64(0)},
		{isa.MUL, 1 << 40, 1 << 30, 0},             // 2^70 wraps to 0 mod 2^64
		{isa.MUL, (1 << 32) + 3, 1 << 32, 3 << 32}, // partial wrap
		{isa.AND, 0b1100, 0b1010, 0b1000},
		{isa.OR, 0b1100, 0b1010, 0b1110},
		{isa.XOR, 0b1100, 0b1010, 0b0110},
		{isa.SLL, 1, 65, 2}, // shift masked to 6 bits
		{isa.SRL, uint64(1) << 63, 63, 1},
		{isa.SRA, uint64(math.MaxUint64), 5, uint64(math.MaxUint64)},
		{isa.SLT, uint64(1 << 63), 1, 1}, // negative < 1 signed
		{isa.SLTU, uint64(1 << 63), 1, 0},
		{isa.DIV, 7, 2, 3},
		{isa.DIV, u(-7), 2, u(-3)},
		{isa.DIV, 7, 0, ^uint64(0)},                          // div by zero
		{isa.DIV, u(math.MinInt64), u(-1), u(math.MinInt64)}, // overflow
		{isa.REM, 7, 3, 1},
		{isa.REM, u(-7), 3, u(-1)},
		{isa.REM, 7, 0, 7},
		{isa.REM, u(math.MinInt64), u(-1), 0},
	}
	for _, c := range cases {
		if got := runALU(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, int64(c.a), int64(c.b), int64(got), int64(c.want))
		}
	}
}

// TestALUAgainstGo cross-checks the emulator's ALU against Go's own
// semantics with random operands.
func TestALUAgainstGo(t *testing.T) {
	type spec struct {
		op isa.Opcode
		f  func(a, b uint64) uint64
	}
	specs := []spec{
		{isa.ADD, func(a, b uint64) uint64 { return a + b }},
		{isa.SUB, func(a, b uint64) uint64 { return a - b }},
		{isa.MUL, func(a, b uint64) uint64 { return a * b }},
		{isa.AND, func(a, b uint64) uint64 { return a & b }},
		{isa.OR, func(a, b uint64) uint64 { return a | b }},
		{isa.XOR, func(a, b uint64) uint64 { return a ^ b }},
		{isa.SLL, func(a, b uint64) uint64 { return a << (b & 63) }},
		{isa.SRL, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{isa.SRA, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }},
		{isa.SLT, func(a, b uint64) uint64 {
			if int64(a) < int64(b) {
				return 1
			}
			return 0
		}},
		{isa.SLTU, func(a, b uint64) uint64 {
			if a < b {
				return 1
			}
			return 0
		}},
	}
	for _, s := range specs {
		s := s
		f := func(a, b uint64) bool {
			return runALU(t, s.op, a, b) == s.f(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", s.op, err)
		}
	}
}

func TestImmediatesAndLI(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.T0, -5)
	b.Addi(isa.T1, isa.T0, 12)   // 7
	b.Andi(isa.T2, isa.T1, 0b11) // 3
	b.Ori(isa.T3, isa.T2, 0b100) // 7
	b.Xori(isa.T4, isa.T3, 0b1)  // 6
	b.Slli(isa.T5, isa.T4, 2)    // 24
	b.Srli(isa.T6, isa.T5, 1)    // 12
	b.Srai(isa.S0, isa.T0, 1)    // -3
	b.Slti(isa.S1, isa.T0, 0)    // 1
	b.Halt()
	m := New(asm.MustAssemble(b))
	m.Run(0)
	checks := map[isa.Reg]int64{
		isa.T1: 7, isa.T2: 3, isa.T3: 7, isa.T4: 6,
		isa.T5: 24, isa.T6: 12, isa.S0: -3, isa.S1: 1,
	}
	for r, want := range checks {
		if got := int64(m.Reg(r)); got != want {
			t.Errorf("%v = %d, want %d", r, got, want)
		}
	}
}

func TestMemoryOps(t *testing.T) {
	b := asm.NewBuilder()
	b.La(isa.S0, "buf")
	b.Li(isa.T0, 0x1122334455667788)
	b.Sd(isa.T0, isa.S0, 0)
	b.Ld(isa.T1, isa.S0, 0)
	b.Lb(isa.T2, isa.S0, 1) // second byte, zero-extended
	b.Li(isa.T3, 0x1FF)
	b.Sb(isa.T3, isa.S0, 8) // stores only the low byte
	b.Lb(isa.T4, isa.S0, 8)
	b.Halt()
	b.Space("buf", 16)
	m := New(asm.MustAssemble(b))
	recs := m.Run(0)
	if m.Reg(isa.T1) != 0x1122334455667788 {
		t.Errorf("ld roundtrip = %#x", m.Reg(isa.T1))
	}
	if m.Reg(isa.T2) != 0x77 {
		t.Errorf("lb = %#x, want 0x77", m.Reg(isa.T2))
	}
	if m.Reg(isa.T4) != 0xFF {
		t.Errorf("sb/lb = %#x, want 0xff", m.Reg(isa.T4))
	}
	// Trace must carry effective addresses and stored values.
	for _, r := range recs {
		if r.Op == isa.SD && r.Val != 0x1122334455667788 {
			t.Errorf("sd trace value = %#x", r.Val)
		}
		if r.Op.IsLoad() && r.Addr == 0 {
			t.Error("load trace missing address")
		}
	}
}

func TestBranchesAndJumps(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.T0, 1)
	b.Li(isa.T1, 2)
	b.Blt(isa.T0, isa.T1, "took") // taken
	b.Li(isa.S0, 111)             // skipped
	b.Label("took")
	b.Bge(isa.T0, isa.T1, "nottaken") // not taken
	b.Li(isa.S1, 222)
	b.Label("nottaken")
	b.Call("sub")
	b.Li(isa.S3, 444)
	b.Halt()
	b.Label("sub")
	b.Li(isa.S2, 333)
	b.Ret()
	m := New(asm.MustAssemble(b))
	recs := m.Run(0)
	if m.Reg(isa.S0) == 111 {
		t.Error("taken branch fell through")
	}
	if m.Reg(isa.S1) != 222 || m.Reg(isa.S2) != 333 || m.Reg(isa.S3) != 444 {
		t.Errorf("control flow wrong: s1=%d s2=%d s3=%d",
			m.Reg(isa.S1), m.Reg(isa.S2), m.Reg(isa.S3))
	}
	// Check trace Taken/Target annotations.
	for _, r := range recs {
		if r.Op.IsControl() {
			if r.Taken && r.Target == r.PC+isa.InstBytes && r.Op.IsBranch() {
				t.Errorf("taken branch with fallthrough target: %v", r)
			}
			if !r.Taken && r.Target != r.PC+isa.InstBytes {
				t.Errorf("not-taken branch with redirect: %v", r)
			}
		}
		if r.Target == 0 {
			t.Errorf("record without target: %v", r)
		}
	}
}

func TestJALLinkValue(t *testing.T) {
	b := asm.NewBuilder()
	b.Call("f") // inst 0: ra must become PCOf(1)
	b.Halt()
	b.Label("f")
	b.Ret()
	m := New(asm.MustAssemble(b))
	m.Run(0)
	if m.Reg(isa.RA) != isa.PCOf(1) {
		t.Errorf("ra = %#x, want %#x", m.Reg(isa.RA), isa.PCOf(1))
	}
	if !m.Halted() {
		t.Error("machine did not halt")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	prog := &isa.Program{
		Insts: []isa.Inst{
			{Op: isa.LI, Rd: isa.X0, Imm: 42},
			{Op: isa.ADD, Rd: isa.T0, Rs1: isa.X0, Rs2: isa.X0},
			{Op: isa.HALT},
		},
		Entry: isa.TextBase,
	}
	m := New(prog)
	recs := m.Run(0)
	if m.Reg(isa.X0) != 0 || m.Reg(isa.T0) != 0 {
		t.Error("x0 was written")
	}
	// The LI to x0 still records its value but WritesValue is false.
	if recs[0].WritesValue() {
		t.Error("write to x0 counted as a value producer")
	}
}

func TestFaults(t *testing.T) {
	t.Run("bad pc", func(t *testing.T) {
		prog := &isa.Program{
			Insts: []isa.Inst{{Op: isa.JALR, Rd: isa.X0, Rs1: isa.X0, Imm: 0x99999}},
			Entry: isa.TextBase,
		}
		m := New(prog)
		m.Run(0)
		if m.Err() == nil {
			t.Error("jump outside text did not fault")
		}
	})
	t.Run("bad opcode", func(t *testing.T) {
		prog := &isa.Program{Insts: []isa.Inst{{Op: isa.BAD}}, Entry: isa.TextBase}
		m := New(prog)
		m.Run(0)
		if m.Err() == nil {
			t.Error("BAD opcode did not fault")
		}
	})
}

func TestRunLimitAndSeq(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("loop")
	b.Addi(isa.T0, isa.T0, 1)
	b.J("loop")
	m := New(asm.MustAssemble(b))
	recs := m.Run(1000)
	if len(recs) != 1000 {
		t.Fatalf("limit ignored: %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("Seq not consecutive at %d", i)
		}
	}
	if m.InstCount() != 1000 {
		t.Errorf("InstCount = %d", m.InstCount())
	}
	// Step after limit continues.
	if _, ok := m.Step(); !ok {
		t.Error("machine stopped unexpectedly")
	}
}

func TestNopAndInitialState(t *testing.T) {
	b := asm.NewBuilder()
	b.Nop()
	b.Halt()
	m := New(asm.MustAssemble(b))
	if m.Reg(isa.SP) != isa.StackTop || m.Reg(isa.GP) != isa.DataBase {
		t.Error("sp/gp not initialised")
	}
	if m.PC() != isa.TextBase {
		t.Error("entry PC wrong")
	}
	recs := m.Run(0)
	if len(recs) != 2 {
		t.Errorf("expected 2 records, have %d", len(recs))
	}
	if _, ok := m.Step(); ok {
		t.Error("halted machine stepped")
	}
}

func TestJALRClearsLowBit(t *testing.T) {
	b := asm.NewBuilder()
	b.La(isa.T0, "target")
	b.Ori(isa.T0, isa.T0, 1) // set the low bit; JALR must clear it
	b.Jalr(isa.RA, isa.T0, 0)
	b.Halt()
	b.Label("target")
	b.Li(isa.S0, 99)
	b.Halt()
	m := New(asm.MustAssemble(b))
	m.Run(0)
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	if m.Reg(isa.S0) != 99 {
		t.Error("JALR with a dirty low bit missed its target")
	}
}

func TestLbZeroExtendsHighBytes(t *testing.T) {
	b := asm.NewBuilder()
	b.La(isa.S0, "buf")
	b.Lb(isa.T0, isa.S0, 0)
	b.Halt()
	b.Bytes("buf", []byte{0xF7})
	m := New(asm.MustAssemble(b))
	m.Run(0)
	if got := m.Reg(isa.T0); got != 0xF7 {
		t.Errorf("lb of 0xF7 = %#x; must zero-extend", got)
	}
}

func TestNegativeImmediateLI(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.T0, -1)
	b.Li(isa.T1, -1<<62)
	b.Halt()
	m := New(asm.MustAssemble(b))
	m.Run(0)
	if int64(m.Reg(isa.T0)) != -1 || int64(m.Reg(isa.T1)) != -1<<62 {
		t.Errorf("negative LI: %d, %d", int64(m.Reg(isa.T0)), int64(m.Reg(isa.T1)))
	}
}

func TestSourceInterface(t *testing.T) {
	b := asm.NewBuilder()
	b.Nop()
	b.Nop()
	b.Halt()
	m := New(asm.MustAssemble(b))
	n := 0
	for {
		_, ok := m.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("streamed %d records, want 3", n)
	}
}
