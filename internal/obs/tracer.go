package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Tracer collects cycle-level simulation events and exports them as Chrome
// trace_event JSON (the format read by chrome://tracing and Perfetto).
// Events are grouped into named tracks — one per simulated run, e.g.
// "fig5.1/gcc/n=4/vp" — which become threads in the trace viewer. The
// simulated cycle number is used as the microsecond timestamp, so one
// viewer microsecond is one machine cycle.
//
// Export is deterministic regardless of goroutine scheduling: tracks are
// sorted by name, events within a track are sorted by timestamp, and all
// numbers are formatted with strconv, so the same simulation produces a
// byte-identical trace file.
type Tracer struct {
	sample uint64

	mu     sync.Mutex
	tracks map[string]*track
	order  []string
}

// track is one event buffer. Each simulated run appends to its own track
// from a single goroutine; the tracer-level mutex only guards track
// creation.
type track struct {
	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one Chrome trace_event record. Args are an ordered list so
// the rendered JSON never depends on map iteration.
type traceEvent struct {
	name string
	ph   byte // 'C' counter, 'I' instant
	ts   uint64
	args []traceArg
}

type traceArg struct {
	key string
	val float64
}

// NewTracer returns a tracer that records counter events every sample
// cycles (sample < 1 is treated as 1; raise it to shrink trace files of
// long runs).
func NewTracer(sample int) *Tracer {
	if sample < 1 {
		sample = 1
	}
	return &Tracer{sample: uint64(sample), tracks: make(map[string]*track)}
}

// Sample returns the cycle sampling interval (1 for a nil tracer).
func (t *Tracer) Sample() uint64 {
	if t == nil {
		return 1
	}
	return t.sample
}

// track returns the named event buffer, creating it on first use. A nil
// tracer returns nil.
func (t *Tracer) trackByName(name string) *track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.tracks[name]
	if !ok {
		tr = &track{}
		t.tracks[name] = tr
		t.order = append(t.order, name)
	}
	return tr
}

// emit appends one event. No-op on a nil track.
func (tr *track) emit(ev traceEvent) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.events = append(tr.events, ev)
	tr.mu.Unlock()
}

// WriteJSON writes the collected events in Chrome trace_event JSON object
// format. A nil tracer writes an empty trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(`{"traceEvents":[`)
	first := true
	put := func(s string) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(s)
	}
	if t != nil {
		t.mu.Lock()
		names := append([]string(nil), t.order...)
		t.mu.Unlock()
		sort.Strings(names)
		tid := 0
		for _, name := range names {
			tr := t.trackByName(name)
			tr.mu.Lock()
			events := append([]traceEvent(nil), tr.events...)
			tr.mu.Unlock()
			if len(events) == 0 {
				continue // tracks that never recorded are not threads
			}
			tid++
			put(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
				tid, strconv.Quote(name)))
			sort.SliceStable(events, func(i, j int) bool { return events[i].ts < events[j].ts })
			for _, ev := range events {
				var eb strings.Builder
				fmt.Fprintf(&eb, `{"name":%s,"ph":%s,"ts":%d,"pid":1,"tid":%d,"args":{`,
					strconv.Quote(ev.name), strconv.Quote(string(ev.ph)), ev.ts, tid)
				for i, a := range ev.args {
					if i > 0 {
						eb.WriteByte(',')
					}
					fmt.Fprintf(&eb, "%s:%s", strconv.Quote(a.key),
						strconv.FormatFloat(a.val, 'g', -1, 64))
				}
				eb.WriteString("}}")
				put(eb.String())
			}
		}
	}
	sb.WriteString(`],"displayTimeUnit":"ms"}`)
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}
