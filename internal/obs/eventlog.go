package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventLog is the structured event stream shared by the serve stack, the
// plan runner and the trace store: one JSON object per line, with a fixed
// top-level field order (ts, span, component, event, fields) and
// caller-ordered payload fields, so the log's shape is deterministic even
// though its timestamps and interleaving are not. It replaces ad-hoc
// fmt.Fprintln logging: every line is grep-able AND machine-parseable, and
// the span field links a line to the HTTP request (or CLI run) that caused
// it.
//
// The JSON is rendered by hand exactly like the tracer's trace_event
// output — encoding/json over a map would randomize field order. Writes
// are serialized by a mutex, so one EventLog may be shared by every
// goroutine of a process; write errors are swallowed (an event log must
// never take down the run it narrates).
//
// EventLog lives in obs because emitting an event needs the wall clock,
// and obs is the one restricted package detlint allows to read it. The
// write side (Log, Start) is available to the simulation packages; there
// is deliberately no read side to ban.
//
// All methods are nil-safe: a nil *EventLog costs one nil check per event.
type EventLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewEventLog returns an event log writing one JSON line per event to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w}
}

// Field is one key/value pair of an event's payload. Values are rendered
// by dynamic type: string, bool, signed/unsigned integers and float64 get
// native JSON forms; anything else is formatted as a quoted string.
type Field struct {
	K string
	V any
}

// F is the Field constructor, short because call sites stack several.
func F(k string, v any) Field { return Field{K: k, V: v} }

// Log emits one event. component names the emitting subsystem ("serve",
// "plan", "tracestore", ...), event is a dot-separated event name
// ("request.done", "cell.start"), and fields carry the payload in the
// order given. The span id, if any, is taken from ctx (see WithSpan); a
// nil ctx or a span-less ctx renders span as "". No-op on a nil log.
func (l *EventLog) Log(ctx context.Context, component, event string, fields ...Field) {
	if l == nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(`{"ts":`)
	sb.WriteString(strconv.Quote(time.Now().UTC().Format(time.RFC3339Nano)))
	sb.WriteString(`,"span":`)
	sb.WriteString(strconv.Quote(SpanName(ctx)))
	sb.WriteString(`,"component":`)
	sb.WriteString(strconv.Quote(component))
	sb.WriteString(`,"event":`)
	sb.WriteString(strconv.Quote(event))
	sb.WriteString(`,"fields":{`)
	for i, f := range fields {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Quote(f.K))
		sb.WriteByte(':')
		writeFieldValue(&sb, f.V)
	}
	sb.WriteString("}}\n")
	l.mu.Lock()
	io.WriteString(l.w, sb.String()) //lint:ignore errlint an event log must never fail the run it narrates
	l.mu.Unlock()
}

// Start logs "<event>.start" immediately and returns a callback that logs
// "<event>.done" with the elapsed wall milliseconds, an ok flag, and any
// extra fields appended after the originals. It keeps the wall-clock read
// inside obs, so detlint-restricted packages (tracestore, plan via the
// Sink) can time their slow operations without touching time.Now. On a
// nil log both Start and its callback are no-ops.
func (l *EventLog) Start(ctx context.Context, component, event string, fields ...Field) func(ok bool, extra ...Field) {
	if l == nil {
		return func(bool, ...Field) {}
	}
	l.Log(ctx, component, event+".start", fields...)
	began := time.Now()
	return func(ok bool, extra ...Field) {
		done := make([]Field, 0, len(fields)+len(extra)+2)
		done = append(done, fields...)
		done = append(done, extra...)
		done = append(done,
			F("ok", ok),
			F("wall_ms", float64(time.Since(began))/float64(time.Millisecond)))
		l.Log(ctx, component, event+".done", done...)
	}
}

// writeFieldValue renders one payload value as JSON.
func writeFieldValue(sb *strings.Builder, v any) {
	switch v := v.(type) {
	case string:
		sb.WriteString(strconv.Quote(v))
	case bool:
		sb.WriteString(strconv.FormatBool(v))
	case int:
		sb.WriteString(strconv.FormatInt(int64(v), 10))
	case int64:
		sb.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		sb.WriteString(strconv.FormatUint(v, 10))
	case float64:
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	default:
		sb.WriteString(strconv.Quote(fmt.Sprint(v)))
	}
}

// --- request spans ---

// spanCtxKey is the context key carrying a request span id.
type spanCtxKey struct{}

// spanSeq mints process-unique span ids. Sequential rather than random on
// purpose: spans exist to correlate log lines, tracer events and progress
// within one process, and a counter keeps them short, collision-free and
// free of any randomness the determinism contract would have to reason
// about.
var spanSeq atomic.Uint64

// NextSpan mints a fresh span id. Serve's middleware calls it once per
// request; CLI tools may mint one per invocation.
func NextSpan() uint64 { return spanSeq.Add(1) }

// WithSpan returns a context carrying the span id, to be threaded through
// the request/cell path (ctxlint enforces the plumbing in serve, plan and
// experiment). Span propagation is value-only: deriving a simulation
// context from the server's base context and re-attaching the request's
// span keeps cancellation and correlation independent.
func WithSpan(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, id)
}

// SpanID extracts the span id from ctx (0, false when absent or ctx is
// nil).
func SpanID(ctx context.Context) (uint64, bool) {
	if ctx == nil {
		return 0, false
	}
	id, ok := ctx.Value(spanCtxKey{}).(uint64)
	return id, ok
}

// SpanName renders ctx's span id in the log form "req-<n>", or "" when the
// context carries none.
func SpanName(ctx context.Context) string {
	id, ok := SpanID(ctx)
	if !ok {
		return ""
	}
	return "req-" + strconv.FormatUint(id, 10)
}
