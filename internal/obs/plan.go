package obs

import (
	"context"
	"time"
)

// This file carries the plan-runner instrumentation: the execution
// engine (internal/plan) is a restricted simulation package and may not
// read the wall clock itself, so the timing side of its per-cell latency
// metric — and, since the live-telemetry layer, the cell lifecycle feed
// into Progress and the EventLog — lives here, behind the same
// write-only Sink facade as the machine models' instrumentation.

// planLatencyBounds bucket per-cell wall latency in milliseconds:
// sub-millisecond analysis cells up to multi-second full-trace
// simulations.
var planLatencyBounds = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000}

// planMetrics are the registry handles of the plan runner, resolved in
// New alongside the machine-model handles. Handles are nil (no-op) when
// the registry is.
type planMetrics struct {
	cells   *Counter
	errors  *Counter
	queue   *Gauge
	latency *Histogram
}

// newPlanMetrics resolves the runner's handles against reg (nil-safe).
func newPlanMetrics(reg *Registry) planMetrics {
	return planMetrics{
		cells:   reg.Counter("plan.cells"),
		errors:  reg.Counter("plan.cell_errors"),
		queue:   reg.Gauge("plan.queue_depth"),
		latency: reg.Histogram("plan.cell_latency_ms", planLatencyBounds),
	}
}

// CellQueued moves the plan.queue_depth gauge and the experiment's
// Progress queue count: +1 when a cell starts waiting for a pool token,
// -1 when it is admitted (or abandons the wait on cancellation). exp is
// the cell's experiment id. No-op on a nil sink.
func (s *Sink) CellQueued(exp string, delta int64) {
	if s == nil {
		return
	}
	s.planM.queue.Add(delta)
	s.prog.cellQueued(exp, delta)
}

// CellStart records the start of one plan cell and returns the completion
// callback: calling it with the cell's outcome counts the cell, records
// its wall latency in the plan.cell_latency_ms histogram and the
// experiment's Progress EWMA, drops an instant event into the tracer's
// "plan" track, and emits cell.start/cell.done events into the event log
// (span-stamped from ctx, linking the cell to the HTTP request or CLI run
// that scheduled it). The tracer event is timestamped with the cell's
// canonical index — not wall time — so exported traces remain
// byte-identical run to run; wall latency lands only in the histogram,
// the Progress aggregator and the event log, which (like manifests) are
// reporting metadata. On a nil sink both the method and the returned
// callback are no-ops.
func (s *Sink) CellStart(ctx context.Context, exp, key string, index int) func(ok bool) {
	if s == nil {
		return func(bool) {}
	}
	m := s.planM
	progDone := s.progressStart(exp)
	s.ev.Log(ctx, "plan", "cell.start", F("key", key), F("index", index))
	span, hasSpan := SpanID(ctx)
	start := time.Now()
	return func(ok bool) {
		since := time.Since(start)
		m.cells.Inc()
		if !ok {
			m.errors.Inc()
		}
		ms := float64(since) / float64(time.Millisecond)
		m.latency.Observe(float64(since.Milliseconds()))
		if progDone != nil {
			progDone(ok, since)
		}
		s.ev.Log(ctx, "plan", "cell.done",
			F("key", key), F("index", index), F("ok", ok), F("wall_ms", ms))
		if tb := s.tr.trackByName("plan"); tb != nil {
			outcome := 1.0
			if !ok {
				outcome = 0
			}
			args := []traceArg{{"ok", outcome}}
			if hasSpan {
				// The span id links this cell event to its request's span
				// on the serve track of the same trace.
				args = append(args, traceArg{"span", float64(span)})
			}
			tb.emit(traceEvent{name: key, ph: 'I', ts: uint64(index), args: args})
		}
	}
}
