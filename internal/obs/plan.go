package obs

import "time"

// This file carries the plan-runner instrumentation: the execution
// engine (internal/plan) is a restricted simulation package and may not
// read the wall clock itself, so the timing side of its per-cell latency
// metric lives here, behind the same write-only Sink facade as the
// machine models' instrumentation.

// planLatencyBounds bucket per-cell wall latency in milliseconds:
// sub-millisecond analysis cells up to multi-second full-trace
// simulations.
var planLatencyBounds = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000}

// planMetrics are the registry handles of the plan runner, resolved in
// New alongside the machine-model handles. Handles are nil (no-op) when
// the registry is.
type planMetrics struct {
	cells   *Counter
	errors  *Counter
	queue   *Gauge
	latency *Histogram
}

// newPlanMetrics resolves the runner's handles against reg (nil-safe).
func newPlanMetrics(reg *Registry) planMetrics {
	return planMetrics{
		cells:   reg.Counter("plan.cells"),
		errors:  reg.Counter("plan.cell_errors"),
		queue:   reg.Gauge("plan.queue_depth"),
		latency: reg.Histogram("plan.cell_latency_ms", planLatencyBounds),
	}
}

// CellQueued moves the plan.queue_depth gauge: +1 when a cell starts
// waiting for a pool token, -1 when it is admitted (or abandons the wait
// on cancellation). No-op on a nil sink.
func (s *Sink) CellQueued(delta int64) {
	if s == nil {
		return
	}
	s.planM.queue.Add(delta)
}

// CellStart records the start of one plan cell and returns the completion
// callback: calling it with the cell's outcome counts the cell, records
// its wall latency in the plan.cell_latency_ms histogram, and drops an
// instant event into the tracer's "plan" track. The tracer event is
// timestamped with the cell's canonical index — not wall time — so
// exported traces remain byte-identical run to run; wall latency lands
// only in the histogram, which (like manifests) is reporting metadata.
// On a nil sink both the method and the returned callback are no-ops.
func (s *Sink) CellStart(key string, index int) func(ok bool) {
	if s == nil {
		return func(bool) {}
	}
	m := s.planM
	start := time.Now()
	return func(ok bool) {
		m.cells.Inc()
		if !ok {
			m.errors.Inc()
		}
		m.latency.Observe(float64(time.Since(start).Milliseconds()))
		if tb := s.tr.trackByName("plan"); tb != nil {
			outcome := 1.0
			if !ok {
				outcome = 0
			}
			tb.emit(traceEvent{name: key, ph: 'I', ts: uint64(index), args: []traceArg{
				{"ok", outcome},
			}})
		}
	}
}
