package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// Manifest is the machine-readable record of one simulator invocation:
// what was run, with which configuration, how long it took, and the full
// metric snapshot at exit. It is the only place in the simulator allowed
// to read the wall clock (detlint exempts exactly this package) — wall
// time is reporting metadata and never flows back into simulated time.
//
// The JSON field order is fixed by the struct definition, so a manifest
// round-trips byte-identically through encoding/json: every slice is
// ordered, and there are no maps anywhere in the structure.
type Manifest struct {
	Tool        string   `json:"tool"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	Experiments []string `json:"experiments"`
	Workloads   []string `json:"workloads"`
	Seed        int64    `json:"seed"`
	Seeds       int      `json:"seeds"`
	TraceLen    int      `json:"trace_len"`
	Workers     int      `json:"workers,omitempty"`
	Start       string   `json:"start"`
	WallMS      int64    `json:"wall_ms"`
	Metrics     Snapshot `json:"metrics"`

	began time.Time
}

// Begin starts a manifest for the named tool, stamping the start time and
// build identity.
func Begin(tool string) *Manifest {
	now := time.Now()
	return &Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Start:     now.UTC().Format(time.RFC3339),
		began:     now,
	}
}

// Finish records the elapsed wall time and captures reg's metric snapshot
// (reg may be nil for an empty snapshot).
func (m *Manifest) Finish(reg *Registry) {
	m.WallMS = time.Since(m.began).Milliseconds()
	m.Metrics = reg.Snapshot()
}

// WriteJSON writes the manifest as indented JSON with the fixed field
// order of the struct definition.
func (m *Manifest) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
