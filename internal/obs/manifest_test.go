package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestManifestRoundTrip is the acceptance check for the manifest format:
// the written JSON must round-trip through encoding/json byte-identically,
// which holds exactly when the field order is fixed and the structure is
// map-free.
func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vp.useful").Add(42)
	reg.Gauge("tracestore.entries").Set(3)
	reg.Histogram("pipeline.window.occupancy", occupancyBounds).Observe(17)

	m := Begin("vpsim-test")
	m.Experiments = []string{"fig5.1", "fig5.3"}
	m.Workloads = []string{"gcc", "go"}
	m.Seed = 1
	m.Seeds = 2
	m.TraceLen = 200000
	m.Finish(reg)

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()

	var back Manifest
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Errorf("manifest does not round-trip byte-identically:\n%s\n----\n%s", first, buf2.Bytes())
	}

	if back.Tool != "vpsim-test" || back.TraceLen != 200000 {
		t.Errorf("fields lost in round trip: %+v", back)
	}
	if v, ok := back.Metrics.Counter("vp.useful"); !ok || v != 42 {
		t.Errorf("metrics snapshot lost in round trip: %d, %v", v, ok)
	}
	if back.WallMS < 0 {
		t.Errorf("negative wall time %d", back.WallMS)
	}
	if !strings.Contains(string(first), `"go_version"`) {
		t.Error("manifest missing go_version")
	}

	// Field order: tool must come first, metrics last.
	s := string(first)
	if !strings.HasPrefix(s, "{\n  \"tool\":") {
		t.Errorf("tool is not the first field:\n%s", s[:60])
	}
	if strings.Index(s, `"metrics"`) < strings.Index(s, `"wall_ms"`) {
		t.Error("metrics does not follow wall_ms")
	}
}
