package obs

import (
	"sort"
	"sync"
	"time"
)

// Progress is the live cell-grid aggregator: the plan runner reports each
// cell's lifecycle (declared → queued → running → done/error) through the
// Sink, and Progress folds those events into per-experiment counts, a
// rolling EWMA of cell wall latency, and a derived ETA. Consumers outside
// the simulation packages — vpsim's -progress stderr line, vpserve's
// GET /v1/progress — read it back with Snapshot while the grid is still
// running.
//
// Like every obs type it is strictly write-only from the simulator's side:
// plan and experiment only ever push events into it, and detlint's
// obs-read rule forbids the restricted packages from calling Snapshot, so
// live progress can never steer a simulation. Wall-clock time is read only
// here (the obs exemption): cell durations feed the EWMA, which is
// reporting metadata and never becomes simulated time.
//
// All methods are nil-safe; a nil *Progress costs its callers one nil
// check per event.
type Progress struct {
	mu    sync.Mutex
	exps  map[string]*expState
	order []string // registration order; snapshots sort, never range the map
}

// expState is the mutable per-experiment tally behind one Progress entry.
type expState struct {
	total   int64
	queued  int64
	running int64
	done    int64
	errors  int64
	// ewmaMS is the rolling EWMA of completed-cell wall latency in
	// milliseconds; ewmaInit marks the first observation (which seeds the
	// average instead of decaying from zero).
	ewmaMS   float64
	ewmaInit bool
}

// ewmaAlpha weights the most recent cell completion. 0.25 settles within
// ~8 cells while still smoothing the bimodal mix of cheap analysis cells
// and full-trace simulations that share one experiment grid.
const ewmaAlpha = 0.25

// NewProgress returns an empty aggregator.
func NewProgress() *Progress {
	return &Progress{exps: make(map[string]*expState)}
}

// state returns the named experiment's tally, creating it on first use.
// Called with p.mu held.
func (p *Progress) state(exp string) *expState {
	st, ok := p.exps[exp]
	if !ok {
		st = &expState{}
		p.exps[exp] = st
		p.order = append(p.order, exp)
	}
	return st
}

// declare adds n cells to the experiment's total (grid declaration).
func (p *Progress) declare(exp string, n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.state(exp).total += n
	p.mu.Unlock()
}

// queued moves the experiment's token-wait count by delta.
func (p *Progress) cellQueued(exp string, delta int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.state(exp).queued += delta
	p.mu.Unlock()
}

// cellRunning marks one cell admitted onto a worker.
func (p *Progress) cellRunning(exp string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.state(exp).running++
	p.mu.Unlock()
}

// cellDone marks one running cell finished, folding its wall latency into
// the experiment's EWMA.
func (p *Progress) cellDone(exp string, ok bool, wallMS float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	st := p.state(exp)
	st.running--
	st.done++
	if !ok {
		st.errors++
	}
	if st.ewmaInit {
		st.ewmaMS = ewmaAlpha*wallMS + (1-ewmaAlpha)*st.ewmaMS
	} else {
		st.ewmaMS, st.ewmaInit = wallMS, true
	}
	p.mu.Unlock()
}

// cellSkipped marks one declared cell abandoned before it ran (grid
// cancellation): it counts as done-with-error so Done converges on Total
// and a canceled run still reads as complete rather than stuck.
func (p *Progress) cellSkipped(exp string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	st := p.state(exp)
	st.done++
	st.errors++
	p.mu.Unlock()
}

// ExperimentProgress is one experiment's live tally in a snapshot. ETAMS
// extrapolates the remaining cells at the EWMA cell latency over the cells
// currently on workers: remaining × ewma ÷ max(running, 1). Zero until the
// first cell of the experiment completes.
type ExperimentProgress struct {
	Experiment string  `json:"experiment"`
	Total      int64   `json:"total"`
	Done       int64   `json:"done"`
	Errors     int64   `json:"errors"`
	Running    int64   `json:"running"`
	Queued     int64   `json:"queued"`
	EWMACellMS float64 `json:"ewma_cell_ms"`
	ETAMS      float64 `json:"eta_ms"`
}

// ProgressSnapshot is a point-in-time copy of the aggregator, with
// experiments sorted by id so rendering it is deterministic for a given
// state. Done is monotone non-decreasing and never exceeds Total.
type ProgressSnapshot struct {
	Total       int64                `json:"total"`
	Done        int64                `json:"done"`
	Errors      int64                `json:"errors"`
	Running     int64                `json:"running"`
	Queued      int64                `json:"queued"`
	Experiments []ExperimentProgress `json:"experiments"`
}

// Snapshot copies the aggregator's current state. A nil Progress yields an
// empty snapshot. (Snapshot is a read-back: detlint bars the simulation
// packages from calling it, exactly like Registry.Snapshot.)
func (p *Progress) Snapshot() ProgressSnapshot {
	var s ProgressSnapshot
	if p == nil {
		return s
	}
	p.mu.Lock()
	names := append([]string(nil), p.order...)
	sort.Strings(names)
	for _, name := range names {
		st := p.exps[name]
		remaining := st.total - st.done
		div := st.running
		if div < 1 {
			div = 1
		}
		var eta float64
		if st.ewmaInit && remaining > 0 {
			eta = float64(remaining) * st.ewmaMS / float64(div)
		}
		s.Experiments = append(s.Experiments, ExperimentProgress{
			Experiment: name,
			Total:      st.total,
			Done:       st.done,
			Errors:     st.errors,
			Running:    st.running,
			Queued:     st.queued,
			EWMACellMS: st.ewmaMS,
			ETAMS:      eta,
		})
		s.Total += st.total
		s.Done += st.done
		s.Errors += st.errors
		s.Running += st.running
		s.Queued += st.queued
	}
	p.mu.Unlock()
	return s
}

// --- Sink integration ---

// WithProgress derives a sink that additionally feeds the aggregator.
// Deriving from a nil sink materializes a minimal one (all metric handles
// disabled), so `-progress` works without `-metrics`; a nil aggregator
// returns the sink unchanged. The aggregator is inherited by Track
// children, so every cell of every grid run through the sink reports into
// the same Progress.
func (s *Sink) WithProgress(p *Progress) *Sink {
	if p == nil {
		return s
	}
	var child Sink
	if s != nil {
		child = *s
	}
	child.prog = p
	return &child
}

// GridStart declares a grid's cells to the aggregator: exps holds one
// experiment id per cell in canonical order. No-op on a nil sink.
func (s *Sink) GridStart(exps []string) {
	if s == nil || s.prog == nil {
		return
	}
	// Counting per id first keeps the lock pattern O(distinct ids): a grid
	// is typically many cells of one experiment.
	counts := make(map[string]int64, 1)
	var order []string
	for _, exp := range exps {
		if _, ok := counts[exp]; !ok {
			order = append(order, exp)
		}
		counts[exp]++
	}
	for _, exp := range order {
		s.prog.declare(exp, counts[exp])
	}
}

// CellSkipped reports a declared cell that will never run because the grid
// was canceled before it was admitted. No-op on a nil sink.
func (s *Sink) CellSkipped(exp string) {
	if s == nil {
		return
	}
	s.prog.cellSkipped(exp)
}

// progressStart marks a cell admitted and returns the completion hook used
// by CellStart's callback. Split out so the wall-clock read stays in one
// place. Nil-safe via the underlying aggregator.
func (s *Sink) progressStart(exp string) func(ok bool, since time.Duration) {
	if s == nil || s.prog == nil {
		return nil
	}
	s.prog.cellRunning(exp)
	prog := s.prog
	return func(ok bool, since time.Duration) {
		prog.cellDone(exp, ok, float64(since)/float64(time.Millisecond))
	}
}
