package obs

import "context"

// Sink is the instrumentation handle threaded through the simulator
// layers. It fans events out to a metrics Registry (process-wide
// aggregates) and a Tracer (per-run cycle-level event tracks); either or
// both may be absent. All methods are no-ops on a nil *Sink, so a disabled
// configuration costs the simulation hot loop exactly one nil-check per
// instrumentation point.
//
// A root Sink aggregates under the track name "sim"; Track derives a child
// sink whose tracer events land in their own named track while sharing the
// parent's registry handles. A derived sink's tracer-side tallies are not
// synchronized: use one derived sink per simulated run (the registry side
// is atomic and may be shared freely).
type Sink struct {
	reg   *Registry
	tr    *Tracer
	tb    *track
	prog  *Progress // live cell-grid aggregator (WithProgress); may be nil
	ev    *EventLog // structured event stream (WithEventLog); may be nil
	m     simMetrics
	planM planMetrics

	// Per-run cumulative tallies backing the tracer's counter series.
	// Written by the single goroutine driving this run.
	runVPAttempted uint64
	runVPCorrect   uint64
	runVPUseful    uint64
	runVPDenied    uint64
	runTCGroups    uint64
	runCoreGroups  uint64
	runStallBranch uint64
	runStallWindow uint64
}

// simMetrics are the pre-resolved registry handles shared by a sink and
// all its derived tracks. Handles are nil (no-op) when the registry is.
type simMetrics struct {
	cycles        *Counter
	fetchInsts    *Counter
	execInsts     *Counter
	commitInsts   *Counter
	fetchGroups   *Counter
	fetchMispred  *Counter
	tcGroups      *Counter
	tcInsts       *Counter
	stallBranch   *Counter
	stallWindow   *Counter
	vpAttempted   *Counter
	vpCorrect     *Counter
	vpUseful      *Counter
	vpShadowed    *Counter
	vpDenied      *Counter
	windowOcc     *Histogram
	fetchGroupLen *Histogram
}

// occupancyBounds bucket the 40-entry instruction window.
var occupancyBounds = []float64{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40}

// groupBounds bucket fetch-group sizes (the paper's widths of interest).
var groupBounds = []float64{0, 1, 2, 4, 8, 16, 24, 32, 40}

// New returns a sink recording into reg and tr (either may be nil; with
// both nil it returns nil, the fully disabled sink).
func New(reg *Registry, tr *Tracer) *Sink {
	if reg == nil && tr == nil {
		return nil
	}
	return &Sink{
		reg:   reg,
		tr:    tr,
		tb:    tr.trackByName("sim"),
		planM: newPlanMetrics(reg),
		m: simMetrics{
			cycles:        reg.Counter("sim.cycles"),
			fetchInsts:    reg.Counter("pipeline.fetch.insts"),
			execInsts:     reg.Counter("pipeline.exec.insts"),
			commitInsts:   reg.Counter("pipeline.commit.insts"),
			fetchGroups:   reg.Counter("fetch.groups"),
			fetchMispred:  reg.Counter("fetch.mispredict.groups"),
			tcGroups:      reg.Counter("fetch.tc.hit.groups"),
			tcInsts:       reg.Counter("fetch.tc.hit.insts"),
			stallBranch:   reg.Counter("stall.branch.cycles"),
			stallWindow:   reg.Counter("stall.window_full.cycles"),
			vpAttempted:   reg.Counter("vp.attempted"),
			vpCorrect:     reg.Counter("vp.correct"),
			vpUseful:      reg.Counter("vp.useful"),
			vpShadowed:    reg.Counter("vp.shadowed"),
			vpDenied:      reg.Counter("vp.denied"),
			windowOcc:     reg.Histogram("pipeline.window.occupancy", occupancyBounds),
			fetchGroupLen: reg.Histogram("fetch.group.insts", groupBounds),
		},
	}
}

// Track derives a sink whose tracer events land in their own named track.
// The registry handles are shared with the parent, so metrics stay
// process-wide aggregates. A nil sink derives nil.
func (s *Sink) Track(name string) *Sink {
	if s == nil {
		return nil
	}
	child := *s
	child.tb = s.tr.trackByName(name)
	child.runVPAttempted, child.runVPCorrect, child.runVPUseful, child.runVPDenied = 0, 0, 0, 0
	child.runTCGroups, child.runCoreGroups = 0, 0
	child.runStallBranch, child.runStallWindow = 0, 0
	return &child
}

// Cycle records one simulated cycle: the instructions entering each stage
// this cycle and the end-of-cycle window occupancy. In this trace-driven
// model decode/rename never stalls independently of fetch, so the rename
// stage count equals the fetched count; commit equals execute under
// scheduling-window semantics (the pipeline passes its own count under ROB
// semantics). Tracer counter events are emitted every tracer-sample
// cycles. No-op on a nil sink.
func (s *Sink) Cycle(cycle uint64, fetched, executed, committed, window int) {
	if s == nil {
		return
	}
	s.m.cycles.Inc()
	s.m.fetchInsts.Add(uint64(fetched))
	s.m.execInsts.Add(uint64(executed))
	s.m.commitInsts.Add(uint64(committed))
	s.m.windowOcc.Observe(float64(window))
	if s.tb != nil && cycle%s.tr.Sample() == 0 {
		s.tb.emit(traceEvent{name: "pipeline stages", ph: 'C', ts: cycle, args: []traceArg{
			{"fetch", float64(fetched)},
			{"rename", float64(fetched)},
			{"window", float64(window)},
			{"exec", float64(executed)},
			{"commit", float64(committed)},
		}})
		s.tb.emit(traceEvent{name: "value prediction", ph: 'C', ts: cycle, args: []traceArg{
			{"attempted", float64(s.runVPAttempted)},
			{"correct", float64(s.runVPCorrect)},
			{"useful", float64(s.runVPUseful)},
			{"denied", float64(s.runVPDenied)},
		}})
		s.tb.emit(traceEvent{name: "fetch path", ph: 'C', ts: cycle, args: []traceArg{
			{"trace-cache groups", float64(s.runTCGroups)},
			{"core groups", float64(s.runCoreGroups)},
		}})
		s.tb.emit(traceEvent{name: "stall cycles", ph: 'C', ts: cycle, args: []traceArg{
			{"branch", float64(s.runStallBranch)},
			{"window-full", float64(s.runStallWindow)},
		}})
	}
}

// StallBranch records a cycle in which fetch was blocked waiting for a
// mispredicted control transfer to resolve. No-op on a nil sink.
func (s *Sink) StallBranch() {
	if s == nil {
		return
	}
	s.m.stallBranch.Inc()
	s.runStallBranch++
}

// StallWindow records a cycle in which fetch was blocked by a full
// instruction window. No-op on a nil sink.
func (s *Sink) StallWindow() {
	if s == nil {
		return
	}
	s.m.stallWindow.Inc()
	s.runStallWindow++
}

// FetchGroup records one delivered fetch group. No-op on a nil sink.
func (s *Sink) FetchGroup(n int, fromTC, mispredict bool) {
	if s == nil {
		return
	}
	s.m.fetchGroups.Inc()
	s.m.fetchGroupLen.Observe(float64(n))
	if mispredict {
		s.m.fetchMispred.Inc()
	}
	if fromTC {
		s.m.tcGroups.Inc()
		s.m.tcInsts.Add(uint64(n))
		s.runTCGroups++
	} else {
		s.runCoreGroups++
	}
}

// VPAttempt records one confident value prediction and whether it matched
// the committed value. No-op on a nil sink.
func (s *Sink) VPAttempt(correct bool) {
	if s == nil {
		return
	}
	s.m.vpAttempted.Inc()
	s.runVPAttempted++
	if correct {
		s.m.vpCorrect.Inc()
		s.runVPCorrect++
	}
}

// VPUseful records a correct prediction that decoupled a consumer from an
// unexecuted producer — the paper's *useful* outcome, as opposed to a
// DID-shadowed correct prediction whose consumers' operands were ready
// anyway. No-op on a nil sink.
func (s *Sink) VPUseful() {
	if s == nil {
		return
	}
	s.m.vpUseful.Inc()
	s.runVPUseful++
}

// VPDenied records a prediction withheld by the delivery network (bank
// conflict, hint drop, or a merged copy of a denied primary). No-op on a
// nil sink.
func (s *Sink) VPDenied() {
	if s == nil {
		return
	}
	s.m.vpDenied.Inc()
	s.runVPDenied++
}

// RunDone closes out one simulated run: correct-but-never-useful
// predictions are counted as DID-shadowed, and a summary instant event is
// dropped at the final cycle. No-op on a nil sink.
func (s *Sink) RunDone(insts, cycles, correct, used uint64) {
	if s == nil {
		return
	}
	s.m.vpShadowed.Add(correct - used)
	if s.tb != nil {
		s.tb.emit(traceEvent{name: "run done", ph: 'I', ts: cycles, args: []traceArg{
			{"insts", float64(insts)},
			{"cycles", float64(cycles)},
			{"vp shadowed", float64(correct - used)},
		}})
	}
}

// Registry returns the sink's metrics registry (nil for a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// WithEventLog derives a sink that additionally emits structured events
// (cell lifecycle, grid starts) into l. Deriving from a nil sink
// materializes a minimal one, mirroring WithProgress; a nil log returns
// the sink unchanged.
func (s *Sink) WithEventLog(l *EventLog) *Sink {
	if l == nil {
		return s
	}
	var child Sink
	if s != nil {
		child = *s
	}
	child.ev = l
	return &child
}

// Event forwards one structured event to the sink's event log (no-op
// without one). It is the write-only hook the restricted packages
// (experiment, plan) use to narrate run lifecycle without holding an
// *EventLog themselves.
func (s *Sink) Event(ctx context.Context, component, event string, fields ...Field) {
	if s == nil {
		return
	}
	s.ev.Log(ctx, component, event, fields...)
}

// EventStart is the timed form of Event: it forwards to EventLog.Start,
// emitting "<event>.start" now and "<event>.done" (with ok and wall_ms)
// when the returned callback runs. The wall-clock read happens inside
// obs, so restricted packages may time their phases through it. Both the
// method and the callback are no-ops on a nil sink or absent log.
func (s *Sink) EventStart(ctx context.Context, component, event string, fields ...Field) func(ok bool, extra ...Field) {
	if s == nil {
		return func(bool, ...Field) {}
	}
	return s.ev.Start(ctx, component, event, fields...)
}
