package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.requests":       "vp_serve_requests",
		"plan.cell_latency_ms": "vp_plan_cell_latency_ms",
		"a.b-c/d":              "vp_a_b_c_d",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusBasic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.requests").Add(3)
	reg.Gauge("serve.inflight").Set(2)
	h := reg.Histogram("serve.latency_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE vp_serve_requests_total counter\n",
		"vp_serve_requests_total 3\n",
		"# TYPE vp_serve_inflight gauge\n",
		"vp_serve_inflight 2\n",
		"# TYPE vp_serve_latency_ms histogram\n",
		`vp_serve_latency_ms_bucket{le="1"} 1` + "\n",
		`vp_serve_latency_ms_bucket{le="10"} 2` + "\n",
		`vp_serve_latency_ms_bucket{le="+Inf"} 3` + "\n",
		"vp_serve_latency_ms_sum 105.5\n",
		"vp_serve_latency_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the le="+Inf" bucket equals _count.
	if strings.Contains(out, `vp_serve_latency_ms_bucket{le="+Inf"} 1`) {
		t.Errorf("+Inf bucket is per-bucket, not cumulative:\n%s", out)
	}
}

func TestWritePrometheusStatusLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.status.200").Add(5)
	reg.Counter("serve.status.404").Add(1)
	reg.Counter("serve.requests").Add(6)

	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if got := strings.Count(out, "# TYPE vp_serve_status_total counter"); got != 1 {
		t.Fatalf("labeled family should have exactly one TYPE line, got %d\n%s", got, out)
	}
	for _, want := range []string{
		`vp_serve_status_total{code="200"} 5`,
		`vp_serve_status_total{code="404"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "vp_serve_status_200") {
		t.Errorf("per-code counter leaked as its own family:\n%s", out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.two").Inc()
	reg.Counter("a.one").Inc()
	reg.Gauge("z.gauge").Set(1)
	snap := reg.Snapshot()

	var first, second strings.Builder
	if err := snap.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("exposition of the same snapshot must be byte-identical")
	}
	if strings.Index(first.String(), "vp_a_one") > strings.Index(first.String(), "vp_b_two") {
		t.Fatalf("families must appear in sorted name order:\n%s", first.String())
	}
}
