// Package obs is the simulator's observability layer: a typed metrics
// registry (counters, gauges, fixed-bucket histograms), a cycle-level event
// tracer exporting Chrome trace_event JSON, and run manifests recording the
// configuration and metric snapshot of an invocation.
//
// The layer is strictly write-only from the simulator's point of view:
// instrumentation points record events, and nothing in internal/pipeline,
// internal/ideal, internal/fetch or internal/experiment ever reads a metric
// back — metrics observe, they never steer. That one-way flow is what lets
// the determinism contract survive instrumentation (the same run renders
// bit-identical tables with obs enabled or disabled), and it is enforced by
// detlint's obs-read rule.
//
// Every type in this package is nil-safe: a nil *Registry hands out nil
// handles, and recording through a nil *Counter, *Gauge, *Histogram or
// *Sink is a no-op. Disabled instrumentation therefore costs the hot loop
// only a nil-check.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (occupancy, entry counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution metric. Bounds are inclusive
// upper bucket bounds in ascending order; an implicit +Inf bucket catches
// the overflow. Observation is lock-free (per-bucket atomic counters plus a
// CAS loop for the float sum), so concurrent simulation goroutines can
// share one histogram.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a concurrency-safe collection of named metrics. Handles are
// get-or-create: the first request for a name registers it, later requests
// (from any goroutine) return the same handle. Registration order is
// remembered so snapshots never iterate a map.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	counterNs []string
	gaugeNs   []string
	histNs    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.counterNs = append(r.counterNs, name)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.gaugeNs = append(r.gaugeNs, name)
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// inclusive upper bucket bounds (ascending; an implicit +Inf bucket is
// added) on first use. Later requests return the existing histogram and
// ignore bounds. A nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.hists[name] = h
		r.histNs = append(r.histNs, name)
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketValue is one histogram bucket in a snapshot. Le is the inclusive
// upper bound ("+Inf" for the overflow bucket, following the Prometheus
// convention).
type BucketValue struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketValue `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, ordered by metric name so
// that rendering it (text or JSON) is deterministic.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the registry's current values, sorted by name. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counterNs := append([]string(nil), r.counterNs...)
	gaugeNs := append([]string(nil), r.gaugeNs...)
	histNs := append([]string(nil), r.histNs...)
	r.mu.Unlock()
	sort.Strings(counterNs)
	sort.Strings(gaugeNs)
	sort.Strings(histNs)
	for _, n := range counterNs {
		s.Counters = append(s.Counters, CounterValue{Name: n, Value: r.Counter(n).Value()})
	}
	for _, n := range gaugeNs {
		s.Gauges = append(s.Gauges, GaugeValue{Name: n, Value: r.Gauge(n).Value()})
	}
	for _, n := range histNs {
		h := r.Histogram(n, nil)
		hv := HistogramValue{Name: n, Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hv.Buckets = append(hv.Buckets, BucketValue{Le: le, Count: h.counts[i].Load()})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	return s
}

// Counter returns the value of the named counter in the snapshot.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the value of the named gauge in the snapshot.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteText renders the snapshot as deterministic "name value" lines,
// grouped by metric kind.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%s\n",
			h.Name, h.Count, strconv.FormatFloat(h.Sum, 'g', -1, 64)); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "histogram %s le=%s %d\n", h.Name, b.Le, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
