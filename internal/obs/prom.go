package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4), the wire format every Prometheus-compatible scraper
// speaks. The mapping from the registry's canonical dotted names is
// mechanical and stable:
//
//   - dots and any other non-[a-zA-Z0-9_] byte become '_', and every name
//     gains the "vp_" namespace prefix ("serve.latency_ms" →
//     "vp_serve_latency_ms");
//   - counters gain the conventional "_total" suffix;
//   - dynamic name families are folded into stable label sets: the
//     per-status counters "serve.status.<code>" become one
//     "vp_serve_status_total" family with a code="<code>" label, so a
//     scraper sees a fixed metric set regardless of which codes occurred;
//   - histograms render cumulative "_bucket{le=...}" series (the
//     registry's per-bucket counts are summed upward) plus "_sum" and
//     "_count", with le="+Inf" equal to _count as the format requires.
//
// Output order is the snapshot's name order plus sorted label values, so
// the exposition is deterministic for a given snapshot — the same
// discipline as WriteText and the tracer.

// promName maps a canonical dotted metric name to its Prometheus family
// name (without kind suffixes).
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("vp_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// labeledFamilies maps a canonical name prefix to the label key its last
// dotted element becomes. The only dynamic family so far is the per-status
// request counter; new families added here keep the exposition's label
// sets stable by construction.
var labeledFamilies = map[string]string{
	"serve.status": "code",
}

// splitFamily reports whether name belongs to a labeled family, returning
// the family prefix and the label value (the element after the prefix).
func splitFamily(name string) (prefix, value string, ok bool) {
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return "", "", false
	}
	if _, ok := labeledFamilies[name[:i]]; !ok {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Families appear in snapshot (sorted-name) order, each preceded
// by its # TYPE line.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	// Counters: labeled families are grouped under one TYPE line; the
	// snapshot's sorted order already groups the members contiguously.
	var lastFamily string
	for _, c := range s.Counters {
		if prefix, value, ok := splitFamily(c.Name); ok {
			fam := promName(prefix) + "_total"
			if fam != lastFamily {
				if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam); err != nil {
					return err
				}
				lastFamily = fam
			}
			if _, err := fmt.Fprintf(w, "%s{%s=%s} %d\n",
				fam, labeledFamilies[prefix], strconv.Quote(value), c.Value); err != nil {
				return err
			}
			continue
		}
		name := promName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
		lastFamily = name
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		// The snapshot records each bucket's own count; the exposition
		// format wants cumulative counts with le="+Inf" last.
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%s} %d\n", name, strconv.Quote(b.Le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			name, strconv.FormatFloat(h.Sum, 'g', -1, 64), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
