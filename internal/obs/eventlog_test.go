package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventLogFieldOrder(t *testing.T) {
	var buf strings.Builder
	l := NewEventLog(&buf)
	ctx := WithSpan(context.Background(), 42)
	l.Log(ctx, "serve", "request.start",
		F("method", "GET"), F("path", "/v1/progress"), F("n", 7),
		F("ratio", 0.5), F("ok", true))

	line := strings.TrimSuffix(buf.String(), "\n")
	if strings.Contains(line, "\n") {
		t.Fatalf("one event must be one line, got %q", line)
	}
	// The top-level field order is fixed: ts, span, component, event,
	// fields — and payload fields keep caller order. Both are positional
	// guarantees encoding/json over a map could not make.
	wantOrder := []string{`"ts":`, `"span":"req-42"`, `"component":"serve"`,
		`"event":"request.start"`, `"fields":{`, `"method":"GET"`,
		`"path":"/v1/progress"`, `"n":7`, `"ratio":0.5`, `"ok":true`}
	pos := -1
	for _, marker := range wantOrder {
		i := strings.Index(line, marker)
		if i < 0 {
			t.Fatalf("event line missing %q: %s", marker, line)
		}
		if i < pos {
			t.Fatalf("field %q out of order in %s", marker, line)
		}
		pos = i
	}
	// And it must still be valid JSON.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(line), &parsed); err != nil {
		t.Fatalf("event line is not valid JSON: %v\n%s", err, line)
	}
	if parsed["span"] != "req-42" {
		t.Fatalf("span = %v, want req-42", parsed["span"])
	}
}

func TestEventLogNoSpanRendersEmpty(t *testing.T) {
	var buf strings.Builder
	l := NewEventLog(&buf)
	l.Log(context.Background(), "plan", "cell.start")
	//lint:ignore ctxlint exercising the nil-ctx tolerance contract of Log itself
	l.Log(nil, "plan", "cell.start")
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(line, `"span":""`) {
			t.Fatalf("span-less event should render span as empty, got %s", line)
		}
	}
}

func TestEventLogStart(t *testing.T) {
	var buf strings.Builder
	l := NewEventLog(&buf)
	done := l.Start(context.Background(), "tracestore", "generate", F("workload", "gcc"))
	done(true, F("records", 100))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("Start should emit exactly start+done, got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], `"event":"generate.start"`) {
		t.Fatalf("first line is not the start event: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"event":"generate.done"`) ||
		!strings.Contains(lines[1], `"ok":true`) ||
		!strings.Contains(lines[1], `"records":100`) ||
		!strings.Contains(lines[1], `"wall_ms":`) {
		t.Fatalf("done event missing ok/extra/wall_ms: %s", lines[1])
	}
}

func TestEventLogNilSafety(t *testing.T) {
	var l *EventLog
	l.Log(context.Background(), "c", "e", F("k", "v"))
	done := l.Start(context.Background(), "c", "e")
	done(true)

	var s *Sink
	s.Event(context.Background(), "c", "e")
	s.EventStart(context.Background(), "c", "e")(false)
	if s.WithEventLog(nil) != nil {
		t.Fatal("nil sink + nil log should stay nil")
	}
	if s.WithEventLog(NewEventLog(&strings.Builder{})) == nil {
		t.Fatal("WithEventLog on a nil sink should materialize one")
	}
}

func TestEventLogConcurrentLinesStayWhole(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	// strings.Builder is not goroutine-safe; the log's own mutex is what
	// keeps lines whole, so give the writer a racy-but-guarded shim.
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewEventLog(w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Log(context.Background(), "hammer", "event", F("g", g), F("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, line := range lines {
		var parsed map[string]any
		if err := json.Unmarshal([]byte(line), &parsed); err != nil {
			t.Fatalf("interleaved or torn event line: %v\n%s", err, line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestSpanHelpers(t *testing.T) {
	a, b := NextSpan(), NextSpan()
	if b != a+1 {
		t.Fatalf("NextSpan should be sequential: %d then %d", a, b)
	}
	ctx := WithSpan(context.Background(), 7)
	if id, ok := SpanID(ctx); !ok || id != 7 {
		t.Fatalf("SpanID = %d, %v, want 7, true", id, ok)
	}
	if got := SpanName(ctx); got != "req-7" {
		t.Fatalf("SpanName = %q, want req-7", got)
	}
	if _, ok := SpanID(context.Background()); ok {
		t.Fatal("span-less context should report no span")
	}
	//lint:ignore ctxlint exercising the nil-ctx tolerance contract of SpanID itself
	if _, ok := SpanID(nil); ok {
		t.Fatal("nil context should report no span")
	}
	if got := SpanName(context.Background()); got != "" {
		t.Fatalf("SpanName without a span = %q, want empty", got)
	}
}
