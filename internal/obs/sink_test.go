package obs

import (
	"sync"
	"testing"
)

func TestSinkRecordsMetrics(t *testing.T) {
	reg := NewRegistry()
	s := New(reg, nil)
	s.Cycle(1, 4, 3, 3, 12)
	s.Cycle(2, 0, 2, 2, 10)
	s.StallBranch()
	s.StallBranch()
	s.StallWindow()
	s.FetchGroup(4, false, true)
	s.FetchGroup(8, true, false)
	s.VPAttempt(true)
	s.VPAttempt(false)
	s.VPUseful()
	s.VPDenied()
	s.RunDone(100, 50, 10, 7)

	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"sim.cycles":               2,
		"pipeline.fetch.insts":     4,
		"pipeline.exec.insts":      5,
		"pipeline.commit.insts":    5,
		"fetch.groups":             2,
		"fetch.mispredict.groups":  1,
		"fetch.tc.hit.groups":      1,
		"fetch.tc.hit.insts":       8,
		"stall.branch.cycles":      2,
		"stall.window_full.cycles": 1,
		"vp.attempted":             2,
		"vp.correct":               1,
		"vp.useful":                1,
		"vp.denied":                1,
		"vp.shadowed":              3, // 10 correct - 7 used
	} {
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("counter %s = %d (present %v), want %d", name, got, ok, want)
		}
	}
}

// TestSinkTracksShareRegistry verifies Track() derives sinks that
// aggregate into the same process-wide counters, from concurrent runs.
func TestSinkTracksShareRegistry(t *testing.T) {
	reg := NewRegistry()
	root := New(reg, NewTracer(1))
	const runs = 8
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Track(string(rune('a' + i)))
			for cyc := uint64(1); cyc <= 100; cyc++ {
				s.Cycle(cyc, 2, 2, 2, 20)
				s.VPAttempt(cyc%2 == 0)
			}
		}(i)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got, _ := snap.Counter("sim.cycles"); got != runs*100 {
		t.Errorf("sim.cycles = %d, want %d", got, runs*100)
	}
	if got, _ := snap.Counter("vp.attempted"); got != runs*100 {
		t.Errorf("vp.attempted = %d, want %d", got, runs*100)
	}
	if got, _ := snap.Counter("vp.correct"); got != runs*50 {
		t.Errorf("vp.correct = %d, want %d", got, runs*50)
	}
}
