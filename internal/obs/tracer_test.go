package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// chromeTrace mirrors the Chrome trace_event JSON object format for
// schema validation.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   *float64       `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// validateChromeTrace parses data as trace_event JSON and applies the
// schema checks shared with the vpsim -trace-out test.
func validateChromeTrace(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	for i, ev := range ct.TraceEvents {
		if ev.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		switch ev.Ph {
		case "C", "I", "M":
		default:
			t.Errorf("event %d has unexpected phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" && ev.TS == nil {
			t.Errorf("event %d (%s) has no timestamp", i, ev.Name)
		}
		if ev.Pid == 0 || ev.Tid == 0 {
			t.Errorf("event %d (%s) missing pid/tid", i, ev.Name)
		}
		if ev.Args == nil {
			t.Errorf("event %d (%s) has no args", i, ev.Name)
		}
	}
	return ct
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(1)
	s := New(nil, tr)
	a := s.Track("run/a")
	b := s.Track("run/b")
	for cyc := uint64(1); cyc <= 3; cyc++ {
		a.Cycle(cyc, 4, 2, 2, 10)
		b.Cycle(cyc, 8, 8, 8, 40)
	}
	a.RunDone(6, 3, 2, 1)

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	ct := validateChromeTrace(t, []byte(sb.String()))
	if len(ct.TraceEvents) == 0 {
		t.Fatal("no events written")
	}

	// Track metadata must name both tracks, sorted.
	var threads []string
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threads = append(threads, ev.Args["name"].(string))
		}
	}
	if len(threads) != 2 || threads[0] != "run/a" || threads[1] != "run/b" {
		t.Errorf("thread names = %v", threads)
	}
}

// TestTracerDeterministicExport records the same events from tracks
// created in different interleavings and expects byte-identical JSON.
func TestTracerDeterministicExport(t *testing.T) {
	record := func(order []string) string {
		tr := NewTracer(1)
		root := New(nil, tr)
		var wg sync.WaitGroup
		for _, name := range order {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				s := root.Track(name)
				for cyc := uint64(1); cyc <= 5; cyc++ {
					s.Cycle(cyc, len(name), 1, 1, int(cyc))
				}
			}(name)
		}
		wg.Wait()
		var sb strings.Builder
		if err := tr.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	names := []string{"fig/one", "fig/two", "fig/three"}
	rev := []string{"fig/three", "fig/two", "fig/one"}
	if a, b := record(names), record(rev); a != b {
		t.Errorf("trace export depends on track creation order:\n%s\n----\n%s", a, b)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(10)
	s := New(nil, tr).Track("sampled")
	for cyc := uint64(1); cyc <= 100; cyc++ {
		s.Cycle(cyc, 1, 1, 1, 1)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	ct := validateChromeTrace(t, []byte(sb.String()))
	var stageEvents int
	for _, ev := range ct.TraceEvents {
		if ev.Name == "pipeline stages" {
			stageEvents++
		}
	}
	if stageEvents != 10 {
		t.Errorf("sampled %d stage events, want 10", stageEvents)
	}
}

func TestNilTracerAndSink(t *testing.T) {
	var tr *Tracer
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Errorf("nil tracer output %q", sb.String())
	}

	// Every Sink method must be callable through nil.
	var s *Sink
	if New(nil, nil) != nil {
		t.Error("New(nil, nil) should be the nil sink")
	}
	s = s.Track("x")
	if s != nil {
		t.Error("Track on nil sink should stay nil")
	}
	s.Cycle(1, 1, 1, 1, 1)
	s.StallBranch()
	s.StallWindow()
	s.FetchGroup(4, true, false)
	s.VPAttempt(true)
	s.VPUseful()
	s.VPDenied()
	s.RunDone(1, 1, 1, 1)
	if s.Registry() != nil {
		t.Error("nil sink has a registry")
	}
}
