package obs

import (
	"context"
	"math"
	"sync"
	"testing"
)

func TestProgressLifecycle(t *testing.T) {
	p := NewProgress()
	s := (*Sink)(nil).WithProgress(p)
	if s == nil {
		t.Fatal("WithProgress on a nil sink should materialize one")
	}

	s.GridStart([]string{"fig3.1", "fig3.1", "fig3.1", "fig5.1"})
	snap := p.Snapshot()
	if snap.Total != 4 || snap.Done != 0 {
		t.Fatalf("after GridStart: total=%d done=%d, want 4/0", snap.Total, snap.Done)
	}
	if len(snap.Experiments) != 2 {
		t.Fatalf("experiments = %d, want 2", len(snap.Experiments))
	}
	// Sorted by id.
	if snap.Experiments[0].Experiment != "fig3.1" || snap.Experiments[1].Experiment != "fig5.1" {
		t.Fatalf("experiment order = %q, %q", snap.Experiments[0].Experiment, snap.Experiments[1].Experiment)
	}
	if snap.Experiments[0].Total != 3 || snap.Experiments[1].Total != 1 {
		t.Fatalf("per-experiment totals = %d, %d, want 3, 1",
			snap.Experiments[0].Total, snap.Experiments[1].Total)
	}

	s.CellQueued("fig3.1", 1)
	if got := p.Snapshot().Queued; got != 1 {
		t.Fatalf("queued = %d, want 1", got)
	}
	s.CellQueued("fig3.1", -1)

	done := s.CellStart(context.Background(), "fig3.1", "fig3.1/gcc/seed=1", 0)
	if got := p.Snapshot().Running; got != 1 {
		t.Fatalf("running = %d, want 1", got)
	}
	done(true)
	snap = p.Snapshot()
	if snap.Done != 1 || snap.Running != 0 || snap.Errors != 0 {
		t.Fatalf("after one ok cell: done=%d running=%d errors=%d", snap.Done, snap.Running, snap.Errors)
	}

	done = s.CellStart(context.Background(), "fig3.1", "fig3.1/go/seed=1", 1)
	done(false)
	snap = p.Snapshot()
	if snap.Done != 2 || snap.Errors != 1 {
		t.Fatalf("after a failed cell: done=%d errors=%d, want 2, 1", snap.Done, snap.Errors)
	}

	// Skipped cells converge Done on Total so a canceled grid reads as
	// complete.
	s.CellSkipped("fig3.1")
	s.CellSkipped("fig5.1")
	snap = p.Snapshot()
	if snap.Done != 4 || snap.Done != snap.Total {
		t.Fatalf("after skips: done=%d total=%d, want equal at 4", snap.Done, snap.Total)
	}
}

func TestProgressEWMAAndETA(t *testing.T) {
	p := NewProgress()
	p.declare("e", 10)
	p.cellRunning("e")
	p.cellDone("e", true, 100)
	st := p.Snapshot().Experiments[0]
	if st.EWMACellMS != 100 {
		t.Fatalf("first observation should seed the EWMA: got %v", st.EWMACellMS)
	}
	// remaining=9, running=0 → divisor clamps to 1.
	if want := 9.0 * 100; st.ETAMS != want {
		t.Fatalf("ETA = %v, want %v", st.ETAMS, want)
	}

	p.cellRunning("e")
	p.cellRunning("e")
	p.cellDone("e", true, 200)
	st = p.Snapshot().Experiments[0]
	want := ewmaAlpha*200 + (1-ewmaAlpha)*100
	if math.Abs(st.EWMACellMS-want) > 1e-9 {
		t.Fatalf("EWMA after second observation = %v, want %v", st.EWMACellMS, want)
	}
	// remaining=8, one cell still running.
	if wantETA := 8 * want / 1; math.Abs(st.ETAMS-wantETA) > 1e-9 {
		t.Fatalf("ETA = %v, want %v", st.ETAMS, wantETA)
	}
}

func TestProgressMonotoneUnderConcurrency(t *testing.T) {
	p := NewProgress()
	s := (*Sink)(nil).WithProgress(p)
	const cells = 200
	exps := make([]string, cells)
	for i := range exps {
		exps[i] = "hammer"
	}
	s.GridStart(exps)

	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		var lastDone, lastTotal int64
		for {
			snap := p.Snapshot()
			if snap.Done < lastDone {
				t.Errorf("done went backwards: %d -> %d", lastDone, snap.Done)
				return
			}
			if snap.Total < lastTotal {
				t.Errorf("total went backwards: %d -> %d", lastTotal, snap.Total)
				return
			}
			if snap.Done > snap.Total {
				t.Errorf("done %d exceeds total %d", snap.Done, snap.Total)
				return
			}
			lastDone, lastTotal = snap.Done, snap.Total
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < cells; i += 8 {
				s.CellQueued("hammer", 1)
				s.CellQueued("hammer", -1)
				done := s.CellStart(context.Background(), "hammer", "k", i)
				done(i%7 != 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()

	snap := p.Snapshot()
	if snap.Done != cells || snap.Total != cells {
		t.Fatalf("final done/total = %d/%d, want %d/%d", snap.Done, snap.Total, cells, cells)
	}
	if snap.Running != 0 || snap.Queued != 0 {
		t.Fatalf("final running=%d queued=%d, want 0/0", snap.Running, snap.Queued)
	}
}

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.declare("e", 1)
	p.cellQueued("e", 1)
	p.cellRunning("e")
	p.cellDone("e", true, 1)
	p.cellSkipped("e")
	if snap := p.Snapshot(); snap.Total != 0 || len(snap.Experiments) != 0 {
		t.Fatalf("nil Progress snapshot should be empty, got %+v", snap)
	}

	var s *Sink
	s.GridStart([]string{"e"})
	s.CellQueued("e", 1)
	s.CellSkipped("e")
	done := s.CellStart(context.Background(), "e", "k", 0)
	done(true)
	if hook := s.progressStart("e"); hook != nil {
		t.Fatal("nil sink progressStart should return nil hook")
	}
	if s.WithProgress(nil) != nil {
		t.Fatal("nil sink + nil progress should stay nil")
	}
}
