package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("c") != c {
		t.Error("second Counter request returned a different handle")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}

	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Errorf("histogram sum = %g, want 106.5", h.Sum())
	}
	s := r.Snapshot()
	hv := s.Histograms[0]
	want := []uint64{2, 1, 1} // le=1: {0.5, 1}; le=10: {5}; +Inf: {100}
	for i, b := range hv.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %s = %d, want %d", b.Le, b.Count, want[i])
		}
	}
	if hv.Buckets[2].Le != "+Inf" {
		t.Errorf("overflow bucket labelled %q", hv.Buckets[2].Le)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter recorded a value")
	}
	g := r.Gauge("x")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge recorded a value")
	}
	h := r.Histogram("x", []float64{1})
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded a value")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestSnapshotDeterministic registers metrics in scrambled orders from
// concurrent goroutines and asserts the snapshot (text and JSON) is
// identical across registries — name-sorted, never map-ordered.
func TestSnapshotDeterministic(t *testing.T) {
	render := func(names []string) string {
		r := NewRegistry()
		var wg sync.WaitGroup
		for _, n := range names {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				r.Counter("c." + n).Add(uint64(len(n)))
				r.Gauge("g." + n).Set(int64(len(n)))
				r.Histogram("h."+n, []float64{1, 2}).Observe(1)
			}(n)
		}
		wg.Wait()
		var sb strings.Builder
		if err := r.Snapshot().WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return sb.String() + string(data)
	}
	a := render([]string{"zeta", "alpha", "mid", "beta"})
	b := render([]string{"beta", "mid", "alpha", "zeta"})
	if a != b {
		t.Errorf("snapshots differ by registration order:\n%s\n----\n%s", a, b)
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(9)
	r.Gauge("occ").Set(-2)
	s := r.Snapshot()
	if v, ok := s.Counter("hits"); !ok || v != 9 {
		t.Errorf("Counter(hits) = %d, %v", v, ok)
	}
	if _, ok := s.Counter("nope"); ok {
		t.Error("missing counter reported present")
	}
	if v, ok := s.Gauge("occ"); !ok || v != -2 {
		t.Errorf("Gauge(occ) = %d, %v", v, ok)
	}
}

// TestRegistryConcurrentHammer drives one registry from many goroutines —
// the pattern of concurrent experiment runs sharing a process-wide
// registry — and checks totals; run under -race this is the data-race
// proof for the obs hot path.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist", occupancyBounds)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 41))
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reader
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared.gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("shared.hist", nil)
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}
