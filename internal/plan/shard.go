package plan

// This file is the partitioning side of the plan layer: a Shard names one
// replica's slice of the canonical cell space. The canonical Key already
// orders every cell by (Experiment, Workload, Column, Variant, Seed); a
// Shard partitions that space on its Workload coordinate — the table-row
// axis — because every registered experiment's rows are workloads in
// presentation order and a row's cells depend only on that workload's
// simulations. Round-robin over the presentation-ordered workload list
// keeps the partition deterministic and independent of scheduling, so a
// fleet of replicas running disjoint shards can be recombined
// byte-identically by the canonical-order merge (internal/experiment's
// MergeShardFiles).

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard identifies one partition of a sharded run: partition Index of Of
// total, 1-based. The zero value means "unsharded" (Enabled reports
// false); a valid non-zero Shard has 1 <= Index <= Of.
type Shard struct {
	Index int `json:"index"`
	Of    int `json:"of"`
}

// ParseShard parses the "n/m" flag syntax ("1/2", "3/8") into a Shard.
// Malformed strings, n < 1, m < 1 and n > m are rejected with an error
// suitable for a usage message.
func ParseShard(s string) (Shard, error) {
	idx, of, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("plan: shard %q is not of the form n/m", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return Shard{}, fmt.Errorf("plan: shard index %q is not an integer", idx)
	}
	m, err := strconv.Atoi(strings.TrimSpace(of))
	if err != nil {
		return Shard{}, fmt.Errorf("plan: shard count %q is not an integer", of)
	}
	sh := Shard{Index: n, Of: m}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate checks the 1 <= Index <= Of invariant.
func (s Shard) Validate() error {
	if s.Of < 1 {
		return fmt.Errorf("plan: shard count must be >= 1, have %d", s.Of)
	}
	if s.Index < 1 || s.Index > s.Of {
		return fmt.Errorf("plan: shard index must be in [1, %d], have %d", s.Of, s.Index)
	}
	return nil
}

// Enabled reports whether the shard actually partitions anything: the zero
// value and 1/1 both select the whole space, but only the zero value is
// "unsharded" in the flag sense.
func (s Shard) Enabled() bool { return s.Of >= 1 && s.Index >= 1 }

// String renders the canonical "n/m" form ("-" for the zero value).
func (s Shard) String() string {
	if !s.Enabled() {
		return "-"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Of)
}

// Owns reports whether the item at position i (0-based, in canonical
// presentation order) belongs to this shard: round-robin assignment,
// position i goes to shard (i mod Of) + 1.
func (s Shard) Owns(i int) bool {
	if !s.Enabled() {
		return true
	}
	return i%s.Of == s.Index-1
}

// Partition returns the subsequence of items owned by this shard,
// preserving order. The result is a fresh slice; items is not modified.
func (s Shard) Partition(items []string) []string {
	var out []string
	for i, it := range items {
		if s.Owns(i) {
			out = append(out, it)
		}
	}
	return out
}
