package plan

import (
	"reflect"
	"testing"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"1/1":   {Index: 1, Of: 1},
		"1/2":   {Index: 1, Of: 2},
		"2/2":   {Index: 2, Of: 2},
		"3/8":   {Index: 3, Of: 8},
		" 2/4 ": {Index: 2, Of: 4}, // tolerate surrounding spaces per field
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil {
			t.Errorf("ParseShard(%q): unexpected error %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseShard(%q) = %v, want %v", in, got, want)
		}
	}
	bad := []string{"", "1", "1/", "/2", "a/2", "1/b", "0/2", "3/2", "-1/2", "1/0", "1/-3"}
	for _, in := range bad {
		if sh, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) = %v, want error", in, sh)
		}
	}
}

func TestShardString(t *testing.T) {
	if got := (Shard{Index: 2, Of: 4}).String(); got != "2/4" {
		t.Errorf("String() = %q, want %q", got, "2/4")
	}
	if got := (Shard{}).String(); got != "-" {
		t.Errorf("zero String() = %q, want %q", got, "-")
	}
}

func TestShardPartitionDisjointAndComplete(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for of := 1; of <= 10; of++ {
		seen := make(map[string]int)
		for idx := 1; idx <= of; idx++ {
			part := (Shard{Index: idx, Of: of}).Partition(items)
			// Each partition preserves presentation order.
			last := -1
			for _, it := range part {
				pos := indexOf(items, it)
				if pos <= last {
					t.Fatalf("shard %d/%d partition out of order: %v", idx, of, part)
				}
				last = pos
				seen[it]++
			}
		}
		for _, it := range items {
			if seen[it] != 1 {
				t.Fatalf("of=%d: item %q owned %d times, want exactly once", of, it, seen[it])
			}
		}
	}
}

func TestShardZeroOwnsEverything(t *testing.T) {
	items := []string{"a", "b", "c"}
	if got := (Shard{}).Partition(items); !reflect.DeepEqual(got, items) {
		t.Errorf("zero shard Partition = %v, want all items", got)
	}
}

func indexOf(items []string, it string) int {
	for i, x := range items {
		if x == it {
			return i
		}
	}
	return -1
}
