// Package plan is the simulator's execution engine: a declarative
// execution-plan model plus a deterministic bounded runner. An experiment
// no longer hand-rolls goroutines; it *declares* a Grid of Cells — one
// Cell per independent simulation, canonically keyed by (experiment,
// workload, column, variant, seed) — and the runner executes the cells in
// any order on a bounded worker pool, then merges the results strictly in
// declaration (canonical) order.
//
// The contract that makes parallelism safe under the determinism rules
// (DESIGN.md §9) is the merge discipline: cells may *complete* in any
// scheduler-dependent order, but results are returned in declaration
// order, the first error in declaration order wins regardless of
// completion order, and nothing a caller can observe depends on timing.
// Every table therefore renders byte-identically at workers=1 and
// workers=N — pinned by the experiment package's byte-identity sweep.
//
// The worker pool is process-global: one token pool bounds actual
// simulation parallelism across every concurrently running grid —
// experiment sweeps, multi-seed preloads and all of vpserve's coalesced
// flights share it. vpserve's admission semaphore bounds how many
// requests may simulate at once; this pool bounds how many *cells* are on
// a CPU at once, so total simulation concurrency is no longer
// requests × workloads. SetWorkers resizes the pool (the -workers flag of
// cmd/vpsim and cmd/vpserve); the default is GOMAXPROCS.
//
// Cancellation is cooperative and fails fast across the whole grid: once
// the run's context is canceled, cells that have not started are skipped,
// workers drain without acquiring further tokens, and Run reports the
// context's error in preference to any per-cell error — mirroring the
// checkpoint semantics of experiment.RunCtx one layer down.
package plan

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"valuepred/internal/obs"
)

// Key canonically identifies one cell of an execution plan. Experiments
// key cells by their position in the emitted table — the workload names
// the row, the column names the swept configuration, and the variant
// distinguishes the runs merged into one cell (typically "base" vs "vp").
// Unused coordinates stay empty.
type Key struct {
	// Experiment is the owning experiment id ("fig3.1", or a synthetic id
	// like "traces" for non-table grids).
	Experiment string
	// Workload is the benchmark name (the table row).
	Workload string
	// Column is the swept-configuration label (the table column).
	Column string
	// Variant distinguishes runs that merge into one table cell.
	Variant string
	// Seed is the workload input seed of this cell's run.
	Seed int64
}

// String renders the key in the observability track style,
// "fig3.1/gcc/BW=8/vp/seed=1"; empty coordinates are skipped.
func (k Key) String() string {
	s := k.Experiment
	for _, part := range []string{k.Workload, k.Column, k.Variant} {
		if part != "" {
			s += "/" + part
		}
	}
	return fmt.Sprintf("%s/seed=%d", s, k.Seed)
}

// Cell is one independent simulation of a grid: a canonical key plus the
// closure that computes the cell's value. Run must be self-contained —
// it builds its own predictors and machines, reads shared traces only —
// because cells execute concurrently in arbitrary order. The context is
// the grid run's context; long cells may (but need not) poll it.
type Cell struct {
	Key Key
	Run func(ctx context.Context) (any, error)
}

// Grid is the ordered cell set an experiment emits. Declaration order is
// the canonical order: Run returns results positionally aligned with the
// cells, and the first error in this order wins.
type Grid struct {
	cells []Cell
}

// Add appends one cell to the grid.
func (g *Grid) Add(key Key, run func(ctx context.Context) (any, error)) {
	g.cells = append(g.cells, Cell{Key: key, Run: run})
}

// Len returns the number of declared cells.
func (g *Grid) Len() int { return len(g.cells) }

// Cells returns the declared cells in canonical order. The slice is the
// grid's own backing store and must not be mutated.
func (g *Grid) Cells() []Cell { return g.cells }

// --- the process-global worker pool ---

// pool is the global simulation token pool. Acquiring a token admits one
// cell onto a CPU; the channel's capacity is the worker count. SetWorkers
// swaps the channel: releases go back to the channel they were drawn
// from, so a resize never corrupts accounting (parallelism may briefly
// exceed the new width while old tokens drain, which only matters to
// schedulers, never to results).
var pool struct {
	mu     sync.RWMutex
	tokens chan struct{}
}

func init() {
	pool.tokens = make(chan struct{}, runtime.GOMAXPROCS(0))
}

// SetWorkers resizes the global pool to n workers; n < 1 restores the
// default, GOMAXPROCS. The new width applies to cells not yet admitted;
// running cells finish on their old tokens. Returns the previous width so
// callers (tests, benchmarks) can restore it.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	pool.mu.Lock()
	prev := cap(pool.tokens)
	pool.tokens = make(chan struct{}, n)
	pool.mu.Unlock()
	return prev
}

// Workers returns the current width of the global pool.
func Workers() int {
	pool.mu.RLock()
	defer pool.mu.RUnlock()
	return cap(pool.tokens)
}

// acquire blocks until a pool token is free or ctx is canceled. It
// returns the channel the token was drawn from; release by receiving
// from exactly that channel.
func acquire(ctx context.Context) (chan struct{}, error) {
	pool.mu.RLock()
	tokens := pool.tokens
	pool.mu.RUnlock()
	select {
	case tokens <- struct{}{}:
		return tokens, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// --- the runner ---

// Run executes every cell of the grid on the global pool and returns the
// results in canonical (declaration) order. At most min(Workers, cells)
// worker goroutines serve one grid, and each must hold a global pool
// token while its cell computes, so concurrent grids share the pool
// rather than multiplying it.
//
// Determinism contract: results are merged positionally after all workers
// finish; cell errors do not abort sibling cells (every cell that can run
// does run, exactly as the serial loop would), and the returned error is
// the first per-cell error in canonical order regardless of completion
// order. Cancellation is the one fail-fast path: once ctx is canceled,
// unstarted cells are skipped and Run reports the wrapped context error —
// distinguishable with errors.Is(err, ctx.Err()) — in preference to any
// cell error, matching experiment.RunCtx's checkpoint semantics.
//
// A panicking cell is recovered and reported as that cell's error, so one
// broken simulation cannot take down a long-lived server process or leak
// a pool token. sink receives the runner's instrumentation (cell counts,
// queue depth, per-cell wall latency, the "plan" tracer track) and may be
// nil; like all obs plumbing it observes without steering — results are
// bit-identical with or without it.
func Run(ctx context.Context, g *Grid, sink *obs.Sink) ([]any, error) {
	cells := g.Cells()
	if len(cells) == 0 {
		return nil, nil
	}
	if ctx == nil {
		//lint:ignore ctxlint nil-ctx convenience default for library callers; a real caller ctx always wins
		ctx = context.Background()
	}
	results := make([]any, len(cells))
	errs := make([]error, len(cells))

	// Declare the grid to the live-progress aggregator: one experiment id
	// per cell, in canonical order, so consumers see cells-total jump to
	// its final value before the first cell runs and done/total stays
	// monotone.
	if sink != nil {
		exps := make([]string, len(cells))
		for i := range cells {
			exps[i] = cells[i].Key.Experiment
		}
		sink.GridStart(exps)
	}

	workers := Workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				// Skip-on-cancel checkpoint: a canceled grid stops
				// admitting cells; the per-index error is recorded only
				// so the merge can tell "skipped" from "never ran".
				exp := cells[i].Key.Experiment
				if err := ctx.Err(); err != nil {
					errs[i] = err
					sink.CellSkipped(exp)
					continue
				}
				sink.CellQueued(exp, 1)
				tokens, err := acquire(ctx)
				sink.CellQueued(exp, -1)
				if err != nil {
					errs[i] = err
					sink.CellSkipped(exp)
					continue
				}
				results[i], errs[i] = runCell(ctx, cells[i], i, sink)
				<-tokens
			}
		}()
	}
	wg.Wait()

	// Merge strictly in canonical order. The caller's cancellation wins
	// over every per-cell outcome: the whole grid was asked to stop.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan: run aborted: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("plan: cell %s: %w", cells[i].Key, err)
		}
	}
	return results, nil
}

// runCell executes one cell under the runner's panic barrier and
// instrumentation. index is the cell's canonical position, which the
// tracer uses as the event timestamp so exported traces stay
// byte-identical run to run. ctx carries the request span (if any) that
// the lifecycle events are stamped with.
func runCell(ctx context.Context, c Cell, index int, sink *obs.Sink) (result any, err error) {
	done := sink.CellStart(ctx, c.Key.Experiment, c.Key.String(), index)
	defer func() {
		if p := recover(); p != nil {
			result, err = nil, fmt.Errorf("cell panicked: %v", p)
		}
		done(err == nil)
	}()
	return c.Run(ctx)
}
