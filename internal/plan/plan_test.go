package plan

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"valuepred/internal/obs"
)

// setWorkers resizes the global pool for one test and restores it after.
func setWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
}

// grid builds an n-cell grid whose cell i runs fn(i).
func grid(id string, n int, fn func(i int) (any, error)) *Grid {
	g := &Grid{}
	for i := 0; i < n; i++ {
		i := i
		g.Add(Key{Experiment: id, Workload: fmt.Sprintf("w%02d", i)},
			func(context.Context) (any, error) { return fn(i) })
	}
	return g
}

func TestKeyString(t *testing.T) {
	k := Key{Experiment: "fig3.1", Workload: "gcc", Column: "BW=8", Variant: "vp", Seed: 1}
	if got, want := k.String(), "fig3.1/gcc/BW=8/vp/seed=1"; got != want {
		t.Errorf("Key.String() = %q, want %q", got, want)
	}
	sparse := Key{Experiment: "traces", Workload: "go", Seed: 7}
	if got, want := sparse.String(), "traces/go/seed=7"; got != want {
		t.Errorf("sparse Key.String() = %q, want %q", got, want)
	}
}

// TestResultsInCanonicalOrder checks the merge discipline: whatever order
// cells complete in, results come back positionally aligned with the
// declaration order.
func TestResultsInCanonicalOrder(t *testing.T) {
	setWorkers(t, 4)
	const n = 32
	results, err := Run(context.Background(), grid("order", n, func(i int) (any, error) {
		// Early-declared cells finish last.
		time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
		return i * 10, nil
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("len(results) = %d, want %d", len(results), n)
	}
	for i, r := range results {
		if r.(int) != i*10 {
			t.Errorf("results[%d] = %v, want %d", i, r, i*10)
		}
	}
}

// TestBoundedConcurrency checks that the global pool, not the grid size,
// bounds how many cells compute at once — including across two grids
// running concurrently.
func TestBoundedConcurrency(t *testing.T) {
	setWorkers(t, 3)
	var running, peak atomic.Int64
	cell := func(int) (any, error) {
		now := running.Add(1)
		for {
			old := peak.Load()
			if now <= old || peak.CompareAndSwap(old, now) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		running.Add(-1)
		return nil, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(context.Background(), grid("bound", 16, cell), nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency = %d, want <= 3 (two grids sharing one pool)", p)
	}
}

// TestFirstErrorInCanonicalOrderWins checks that a later-declared cell
// failing first does not displace the earlier-declared failure: cell
// errors never abort siblings, and the merge scans in declaration order.
func TestFirstErrorInCanonicalOrderWins(t *testing.T) {
	setWorkers(t, 4)
	errA := errors.New("cell 3 failed")
	errB := errors.New("cell 9 failed")
	_, err := Run(context.Background(), grid("errs", 12, func(i int) (any, error) {
		switch i {
		case 3:
			time.Sleep(5 * time.Millisecond) // completes after cell 9
			return nil, errA
		case 9:
			return nil, errB
		}
		return i, nil
	}), nil)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the canonical-first %v", err, errA)
	}
	if errors.Is(err, errB) {
		t.Fatalf("err = %v also wraps the canonically later error", err)
	}
	if !strings.Contains(err.Error(), "errs/w03") {
		t.Errorf("error %q does not name the failing cell", err)
	}
}

// TestCancelFailsFast is the cancel-mid-grid regression test: once the
// context is canceled, Run returns the wrapped context error promptly,
// cells that have not started are skipped, and the skip is reported in
// preference to any per-cell outcome.
func TestCancelFailsFast(t *testing.T) {
	setWorkers(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	var ran atomic.Int64
	g := grid("cancel", 64, func(i int) (any, error) {
		ran.Add(1)
		started <- struct{}{}
		<-ctx.Done() // park until the cancel lands
		return nil, nil
	})
	go func() {
		<-started
		<-started // both workers are inside cells
		cancel()
	}()
	_, err := Run(ctx, g, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	// Fail-fast: with two workers parked in cells until the cancel, no
	// other cell may start afterwards.
	if n := ran.Load(); n > 2 {
		t.Errorf("%d cells ran, want <= 2 (unstarted cells must be skipped)", n)
	}
}

// TestCancelPreferredOverCellError: a cancellation racing a failing cell
// reports the context error, matching experiment.RunCtx's "the caller
// asked the whole run to stop" semantics.
func TestCancelPreferredOverCellError(t *testing.T) {
	setWorkers(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(ctx, grid("both", 4, func(i int) (any, error) {
		cancel()
		return nil, errors.New("cell failure")
	}), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the context error to win", err)
	}
}

// TestPanicBecomesError: a panicking cell settles as that cell's error
// instead of unwinding a pool worker (which would kill a server process
// and leak a token).
func TestPanicBecomesError(t *testing.T) {
	setWorkers(t, 2)
	_, err := Run(context.Background(), grid("boom", 4, func(i int) (any, error) {
		if i == 1 {
			panic("kaboom")
		}
		return i, nil
	}), nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "boom/w01") {
		t.Fatalf("err = %v, want a keyed panic error", err)
	}
	// The pool must still be fully usable afterwards.
	if _, err := Run(context.Background(), grid("after", 4, func(i int) (any, error) { return i, nil }), nil); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
}

func TestEmptyAndNilContext(t *testing.T) {
	if res, err := Run(context.Background(), &Grid{}, nil); err != nil || res != nil {
		t.Fatalf("empty grid: %v, %v", res, err)
	}
	res, err := Run(nil, grid("nilctx", 3, func(i int) (any, error) { return i, nil }), nil) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil || len(res) != 3 {
		t.Fatalf("nil ctx: %v, %v", res, err)
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	if Workers() != 5 {
		t.Errorf("Workers() = %d after SetWorkers(5)", Workers())
	}
	if got := SetWorkers(0); got != 5 {
		t.Errorf("SetWorkers returned %d, want the previous width 5", got)
	}
	if Workers() < 1 {
		t.Errorf("Workers() = %d after SetWorkers(0), want the GOMAXPROCS default", Workers())
	}
}

// TestObsInstrumentation checks the runner's write-only metrics: cell
// count, error count, settled queue depth, and the deterministic "plan"
// tracer track.
func TestObsInstrumentation(t *testing.T) {
	setWorkers(t, 2)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1)
	sink := obs.New(reg, tr)
	_, err := Run(context.Background(), grid("metrics", 8, func(i int) (any, error) {
		if i == 5 {
			return nil, errors.New("one bad cell")
		}
		return i, nil
	}), sink)
	if err == nil {
		t.Fatal("want the cell error back")
	}
	snap := reg.Snapshot()
	if c, _ := snap.Counter("plan.cells"); c != 8 {
		t.Errorf("plan.cells = %d, want 8", c)
	}
	if c, _ := snap.Counter("plan.cell_errors"); c != 1 {
		t.Errorf("plan.cell_errors = %d, want 1", c)
	}
	if gauge, _ := snap.Gauge("plan.queue_depth"); gauge != 0 {
		t.Errorf("plan.queue_depth settled at %d, want 0", gauge)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"name":"plan"`) || !strings.Contains(sb.String(), "metrics/w05") {
		t.Errorf("tracer output missing the plan track or cell events:\n%s", sb.String())
	}
}

// TestRaceHammer drives many concurrent grids through a deliberately tiny
// pool; run under -race it is the runner's data-race regression test.
func TestRaceHammer(t *testing.T) {
	setWorkers(t, 2)
	const grids = 12
	var wg sync.WaitGroup
	for gi := 0; gi < grids; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("hammer%d", gi)
			results, err := Run(context.Background(), grid(id, 24, func(i int) (any, error) {
				return gi*1000 + i, nil
			}), nil)
			if err != nil {
				t.Error(err)
				return
			}
			for i, r := range results {
				if r.(int) != gi*1000+i {
					t.Errorf("%s: results[%d] = %v", id, i, r)
				}
			}
		}()
	}
	wg.Wait()
}
