// Package fetch implements the instruction-fetch engines of Section 5. The
// sequential engine fetches the dynamic instruction stream up to a
// configurable number of taken branches per cycle (the paper sweeps 1, 2,
// 3, 4 and unlimited); the trace-cache engine (see tracecache.go) adds a
// 64-entry trace cache in front of a one-taken-branch core fetch path.
//
// Engines are trace-driven: they walk the committed (correct-path)
// instruction stream and consult a branch predictor to decide where fetch
// breaks. Wrong-path instructions are not simulated; a branch misprediction
// truncates the fetch group and the pipeline charges the redirect bubble.
package fetch

import (
	"valuepred/internal/btb"
	"valuepred/internal/chunk"
	"valuepred/internal/isa"
	"valuepred/internal/obs"
	"valuepred/internal/trace"
)

// Group is the set of instructions delivered in one fetch cycle.
type Group struct {
	// Recs are correct-path instructions, in program order. The slice is a
	// read-only view aliasing the engine's underlying trace (DESIGN.md §12
	// "Memory discipline" and §13 "Streaming traces"): engines deliver
	// contiguous windows of the record stream instead of copying, so a
	// group costs no allocation. Callers must not modify the elements. The
	// view's lifetime depends on how the engine was built: over a flat
	// trace (NewSequential etc.) it stays valid for as long as the trace
	// does; over a streaming Source (NewSequentialSource etc.) it is valid
	// only until the next NextGroup call, which may reuse the window
	// buffer behind it. pipeline.Run copies each record it keeps in the
	// same cycle, so it satisfies the stricter contract already. The
	// marker below makes aliaslint enforce the read-only discipline
	// mechanically.
	//lint:view
	Recs []trace.Rec
	// Mispredict reports that the last instruction of Recs is a control
	// transfer the branch predictor got wrong; the pipeline must stall
	// fetch until that instruction resolves plus the branch penalty.
	Mispredict bool
	// FromTraceCache reports that the group was delivered by a trace-cache
	// hit (statistics).
	FromTraceCache bool
}

// Engine produces one fetch group per call.
type Engine interface {
	// NextGroup returns up to maxInsts instructions. ok=false signals end
	// of trace (an empty group with ok=true is a legal stall cycle).
	// g.Recs is a read-only view into the engine's trace — see Group.
	NextGroup(maxInsts int) (g Group, ok bool)
	// Stats returns cumulative fetch statistics.
	Stats() Stats
}

// Stats accumulates fetch-engine statistics.
type Stats struct {
	Cycles        uint64 // NextGroup calls
	Insts         uint64 // instructions delivered
	Predictions   uint64 // control instructions predicted
	Mispredicts   uint64
	TCLookups     uint64 // trace-cache engine only
	TCHits        uint64
	TCPartialHits uint64 // hits delivered as a truncated (partial) match
	TCHitInsts    uint64 // instructions delivered on the trace-cache path
	CoreInsts     uint64 // instructions delivered on the core path
}

// BranchAccuracy returns the fraction of correctly predicted control
// instructions. With no predictions at all (e.g. a branch-free trace)
// nothing was ever mispredicted, so the accuracy is 1 — returning 0 would
// report a perfect fetch stream as 0% accurate and drag down averaged
// accuracy columns.
func (s Stats) BranchAccuracy() float64 {
	if s.Predictions == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Predictions)
}

// TCHitRate returns the trace-cache hit rate. With no lookups (e.g. a
// sequential engine, which has no trace cache) the rate is 0: unlike
// BranchAccuracy this is a benefit rate, and an absent cache delivers no
// benefit.
func (s Stats) TCHitRate() float64 {
	if s.TCLookups == 0 {
		return 0
	}
	return float64(s.TCHits) / float64(s.TCLookups)
}

// stream is a cursor over the committed trace. It runs in one of two
// modes: flat (recs holds the whole trace, views are zero-copy subslices
// of it) or streaming (win buffers a bounded window of a trace.Source,
// views alias the window and live only until its next mark). Engines are
// written against this one API and are bit-identical across the modes.
type stream struct {
	recs []trace.Rec   // flat mode: the trace; nil in streaming mode
	win  *chunk.Window // streaming mode: the bounded window; nil in flat mode
	pos  int           // logical records consumed (maintained in both modes)
}

// newStream picks the mode for src: a SliceSource recovers the zero-copy
// flat path (materialized traces lose nothing by arriving as a Source);
// anything else is wrapped in a bounded window.
func newStream(src trace.Source) stream {
	if ss, ok := src.(*trace.SliceSource); ok {
		return stream{recs: ss.Recs()}
	}
	return stream{win: chunk.NewWindow(src)}
}

func (s *stream) peek(k int) (trace.Rec, bool) {
	if s.win != nil {
		return s.win.Peek(k)
	}
	if s.pos+k >= len(s.recs) {
		return trace.Rec{}, false
	}
	return s.recs[s.pos+k], true
}

func (s *stream) advance(n int) {
	if s.win != nil {
		s.win.Advance(n)
	}
	s.pos += n
}

// mark pins the current position as the start of the next view and
// returns it. In streaming mode this also releases everything before the
// position for buffer reuse — which is what limits a previously returned
// view's lifetime to the next mark.
func (s *stream) mark() int {
	if s.win != nil {
		s.win.Mark()
	}
	return s.pos
}

// view returns the records consumed since start — which must be the value
// of the most recent mark — as a read-only, capacity-capped window (no
// copy; callers cannot append into the backing storage through it).
func (s *stream) view(start int) []trace.Rec {
	if s.win != nil {
		return s.win.View()
	}
	return s.recs[start:s.pos:s.pos]
}

func (s *stream) eof() bool {
	if s.win != nil {
		return s.win.EOF()
	}
	return s.pos >= len(s.recs)
}

// rasSize bounds the return-address stack depth (a standard companion of a
// BTB; recursion deeper than this falls back to BTB target prediction).
const rasSize = 32

// ctrl combines the branch predictor with a return-address stack and owns
// all control-flow prediction done by the fetch engines. Direct jumps
// (JAL) are always predicted — their target is computable at decode;
// returns (jalr x0, 0(ra)) are predicted by the RAS; calls push their
// return address.
type ctrl struct {
	bp  btb.Predictor
	ras []uint64
}

func isReturn(rec trace.Rec) bool {
	return rec.Op == isa.JALR && rec.Rd == 0 && rec.Rs1 == isa.RA
}

func isCall(rec trace.Rec) bool {
	return (rec.Op == isa.JAL || rec.Op == isa.JALR) && rec.Rd == isa.RA
}

// direction returns the predicted direction without changing any state
// (used by the trace cache's line-selection phase).
func (c *ctrl) direction(rec trace.Rec) bool {
	if rec.Op.IsJump() {
		return true
	}
	return c.bp.Predict(rec.PC, rec.Taken, rec.Target).Taken
}

// fetchControl predicts and trains for one fetched control instruction,
// returning whether the prediction fully matched (direction and target).
func (c *ctrl) fetchControl(rec trace.Rec) (correct bool) {
	defer func() {
		if isCall(rec) {
			if len(c.ras) == rasSize {
				copy(c.ras, c.ras[1:])
				c.ras = c.ras[:rasSize-1]
			}
			c.ras = append(c.ras, rec.PC+isa.InstBytes)
		}
	}()
	switch {
	case rec.Op == isa.JAL:
		return true
	case isReturn(rec) && len(c.ras) > 0:
		top := c.ras[len(c.ras)-1]
		c.ras = c.ras[:len(c.ras)-1]
		return top == rec.Target
	case rec.Op == isa.JALR:
		pred := c.bp.Predict(rec.PC, rec.Taken, rec.Target)
		c.bp.Update(rec.PC, true, rec.Target)
		return pred.TargetValid && pred.Target == rec.Target
	default:
		pred := c.bp.Predict(rec.PC, rec.Taken, rec.Target)
		c.bp.Update(rec.PC, rec.Taken, rec.Target)
		if pred.Taken != rec.Taken {
			return false
		}
		if rec.Taken && (!pred.TargetValid || pred.Target != rec.Target) {
			return false
		}
		return true
	}
}

// counted reports whether the control instruction counts as a prediction in
// the statistics (JAL is free).
func counted(rec trace.Rec) bool { return rec.Op != isa.JAL }

// Sequential is the conventional fetch engine: contiguous fetch that may
// continue through not-taken branches and up to MaxTaken taken control
// transfers per cycle.
type Sequential struct {
	s        stream
	c        ctrl
	maxTaken int // < 0 means unlimited
	stats    Stats
	obs      *obs.Sink
}

// NewSequential returns a sequential fetch engine over recs. maxTaken < 0
// lifts the taken-branch limit.
func NewSequential(recs []trace.Rec, bp btb.Predictor, maxTaken int) *Sequential {
	return &Sequential{s: stream{recs: recs}, c: ctrl{bp: bp}, maxTaken: maxTaken}
}

// NewSequentialSource is NewSequential over a streaming record source:
// the engine holds a bounded window of the trace instead of all of it, so
// memory stays O(window) at any trace length. Delivered Group.Recs views
// are valid only until the next NextGroup call (see Group). A
// *trace.SliceSource is detected and unwrapped to the zero-copy flat path.
func NewSequentialSource(src trace.Source, bp btb.Predictor, maxTaken int) *Sequential {
	return &Sequential{s: newStream(src), c: ctrl{bp: bp}, maxTaken: maxTaken}
}

// Stats implements Engine.
func (e *Sequential) Stats() Stats { return e.stats }

// NextGroup implements Engine.
func (e *Sequential) NextGroup(maxInsts int) (Group, bool) {
	if e.s.eof() {
		return Group{}, false
	}
	e.stats.Cycles++
	var g Group
	start := e.s.mark()
	taken := 0
	for e.s.pos-start < maxInsts {
		rec, ok := e.s.peek(0)
		if !ok {
			break
		}
		if rec.Op.IsControl() {
			correct := e.c.fetchControl(rec)
			if counted(rec) {
				e.stats.Predictions++
			}
			e.s.advance(1)
			if !correct {
				e.stats.Mispredicts++
				g.Mispredict = true
				break
			}
			if rec.Taken {
				taken++
				if e.maxTaken >= 0 && taken >= e.maxTaken {
					break
				}
			}
			continue
		}
		e.s.advance(1)
	}
	g.Recs = e.s.view(start)
	e.stats.Insts += uint64(len(g.Recs))
	e.stats.CoreInsts += uint64(len(g.Recs))
	if e.obs != nil {
		e.obs.FetchGroup(len(g.Recs), false, g.Mispredict)
	}
	return g, true
}

var _ Engine = (*Sequential)(nil)
