package fetch

import "valuepred/internal/obs"

// ObsSetter is implemented by fetch engines that can record delivered
// groups into an observability sink. The sink is write-only: engines never
// read it back, so fetch behaviour is bit-identical with or without one.
type ObsSetter interface {
	SetObs(*obs.Sink)
}

// Instrument attaches s to eng if the engine supports observation. Engines
// outside this package simply go unobserved; group-level fetch metrics are
// then absent but the pipeline-level metrics still record.
func Instrument(eng Engine, s *obs.Sink) {
	if es, ok := eng.(ObsSetter); ok {
		es.SetObs(s)
	}
}

// SetObs implements ObsSetter.
func (e *Sequential) SetObs(s *obs.Sink) { e.obs = s }

// SetObs implements ObsSetter.
func (e *TraceCache) SetObs(s *obs.Sink) { e.obs = s }

// SetObs implements ObsSetter.
func (e *CollapsingBuffer) SetObs(s *obs.Sink) { e.obs = s }
