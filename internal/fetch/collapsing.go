package fetch

import (
	"valuepred/internal/btb"
	"valuepred/internal/obs"
	"valuepred/internal/trace"
)

// CBConfig parameterises the collapsing-buffer fetch engine, modelling the
// mechanism of Conte et al. that the paper surveys in Section 2.2: an
// interleaved instruction cache reads two cache lines per cycle — the line
// containing the fetch address and the line containing the predicted target
// of the first taken branch — and a collapsing buffer merges the valid
// instructions of both lines into one fetch group.
type CBConfig struct {
	// LineInsts is the instruction-cache line size in instructions
	// (lines are aligned on this boundary).
	LineInsts int
	// Lines is how many (possibly noncontiguous) lines are read per cycle.
	Lines int
}

// DefaultCBConfig returns the classic two-line, 16-instruction-line
// organisation.
func DefaultCBConfig() CBConfig { return CBConfig{LineInsts: 16, Lines: 2} }

// CollapsingBuffer is the two-line interleaved-cache fetch engine.
type CollapsingBuffer struct {
	s     stream
	c     ctrl
	cfg   CBConfig
	stats Stats
	obs   *obs.Sink
}

// NewCollapsingBuffer returns a collapsing-buffer engine over recs.
func NewCollapsingBuffer(recs []trace.Rec, bp btb.Predictor, cfg CBConfig) *CollapsingBuffer {
	return newCollapsingBuffer(stream{recs: recs}, bp, cfg)
}

// NewCollapsingBufferSource is NewCollapsingBuffer over a streaming record
// source: memory stays O(window) at any trace length, and delivered
// Group.Recs views are valid only until the next NextGroup call (see
// Group). A *trace.SliceSource is detected and unwrapped to the zero-copy
// flat path.
func NewCollapsingBufferSource(src trace.Source, bp btb.Predictor, cfg CBConfig) *CollapsingBuffer {
	return newCollapsingBuffer(newStream(src), bp, cfg)
}

func newCollapsingBuffer(s stream, bp btb.Predictor, cfg CBConfig) *CollapsingBuffer {
	if cfg.LineInsts <= 0 || cfg.LineInsts&(cfg.LineInsts-1) != 0 {
		panic("fetch: collapsing-buffer line size must be a positive power of two")
	}
	if cfg.Lines <= 0 {
		panic("fetch: collapsing buffer needs at least one line per cycle")
	}
	return &CollapsingBuffer{s: s, c: ctrl{bp: bp}, cfg: cfg}
}

// Stats implements Engine.
func (e *CollapsingBuffer) Stats() Stats { return e.stats }

// lineEnd returns the first address past the aligned cache line of pc.
func (e *CollapsingBuffer) lineEnd(pc uint64) uint64 {
	lineBytes := uint64(e.cfg.LineInsts * 4)
	return (pc &^ (lineBytes - 1)) + lineBytes
}

// NextGroup implements Engine. Each cycle reads up to cfg.Lines cache
// lines: fetch proceeds within a line through not-taken branches (the
// collapsing buffer squeezes them out); a taken control transfer ends the
// current line's contribution and redirects the next line read to its
// target. Instructions are delivered until the last permitted line is
// exhausted or a misprediction occurs.
func (e *CollapsingBuffer) NextGroup(maxInsts int) (Group, bool) {
	if e.s.eof() {
		return Group{}, false
	}
	e.stats.Cycles++
	var g Group
	start := e.s.mark()
	linesUsed := 0
	var end uint64
	newLine := true
	for e.s.pos-start < maxInsts {
		rec, ok := e.s.peek(0)
		if !ok {
			break
		}
		if newLine {
			if linesUsed >= e.cfg.Lines {
				break
			}
			linesUsed++
			end = e.lineEnd(rec.PC)
			newLine = false
		}
		if rec.PC >= end {
			// Fall-through past the line boundary: the next instruction
			// needs another line read.
			newLine = true
			continue
		}
		if rec.Op.IsControl() {
			correct := e.c.fetchControl(rec)
			if counted(rec) {
				e.stats.Predictions++
			}
			e.s.advance(1)
			if !correct {
				e.stats.Mispredicts++
				g.Mispredict = true
				break
			}
			if rec.Taken {
				// Redirect: the target lies in another (noncontiguous)
				// line.
				newLine = true
			}
			continue
		}
		e.s.advance(1)
	}
	g.Recs = e.s.view(start)
	e.stats.Insts += uint64(len(g.Recs))
	e.stats.CoreInsts += uint64(len(g.Recs))
	if e.obs != nil {
		e.obs.FetchGroup(len(g.Recs), false, g.Mispredict)
	}
	return g, true
}

var _ Engine = (*CollapsingBuffer)(nil)
