package fetch

import (
	"valuepred/internal/btb"
	"valuepred/internal/isa"
	"valuepred/internal/obs"
	"valuepred/internal/trace"
)

// TCConfig parameterises the trace cache (the paper uses the organisation
// of Rotenberg et al.: 64 direct-mapped entries, each holding up to 32
// instructions or 6 basic blocks, backed by a conventional core fetch path
// that delivers up to one taken branch per cycle).
type TCConfig struct {
	// Entries is the number of trace-cache lines (power of two; paper: 64).
	Entries int
	// MaxLineInsts is the instruction capacity of a line (paper: 32).
	MaxLineInsts int
	// MaxLineBlocks is the basic-block capacity of a line (paper: 6).
	MaxLineBlocks int
	// CoreMaxInsts bounds the core (instruction-cache) fetch path width.
	CoreMaxInsts int
	// CoreMaxTaken bounds taken branches per cycle on the core path.
	CoreMaxTaken int
	// PartialMatching enables the improvement of Friendly, Patel & Patt
	// (the paper's reference [6]): when the branch predictor disagrees
	// with a line's embedded outcome at some branch, the matching prefix
	// of the line is still delivered (through that branch) instead of
	// falling back to the core fetch path entirely.
	PartialMatching bool
}

// DefaultTCConfig returns the paper's Section 5 trace-cache organisation.
func DefaultTCConfig() TCConfig {
	return TCConfig{Entries: 64, MaxLineInsts: 32, MaxLineBlocks: 6, CoreMaxInsts: 16, CoreMaxTaken: 1}
}

// lineInst is one instruction slot of a trace-cache line: its address and,
// for control instructions, the embedded branch outcome the trace was
// recorded with.
type lineInst struct {
	pc        uint64
	isControl bool
	isJAL     bool
	taken     bool
}

type tcLine struct {
	valid   bool
	startPC uint64
	insts   []lineInst
}

// TraceCache is the trace-cache fetch engine: a lookup by fetch address
// that must also match the multiple-branch predictor's predicted outcomes
// against the line's embedded outcomes; misses fall back to the core fetch
// path, whose delivered instructions feed the fill unit.
type TraceCache struct {
	s     stream
	c     ctrl
	cfg   TCConfig
	lines []tcLine
	mask  uint64

	// Fill unit state. Instructions are buffered per basic block and lines
	// are composed of whole blocks, so every line starts at a block entry —
	// the addresses fetch actually looks up.
	pending      []lineInst
	pendingStart uint64
	pendingBlks  int
	blockBuf     []lineInst
	blockStart   uint64

	stats Stats
	obs   *obs.Sink
}

// NewTraceCache returns a trace-cache engine over recs.
func NewTraceCache(recs []trace.Rec, bp btb.Predictor, cfg TCConfig) *TraceCache {
	return newTraceCache(stream{recs: recs}, bp, cfg)
}

// NewTraceCacheSource is NewTraceCache over a streaming record source: the
// engine buffers a bounded window (the line-selection phase peeks up to
// MaxLineInsts records ahead), so memory stays O(window + lines) at any
// trace length. Delivered Group.Recs views are valid only until the next
// NextGroup call (see Group). A *trace.SliceSource is detected and
// unwrapped to the zero-copy flat path.
func NewTraceCacheSource(src trace.Source, bp btb.Predictor, cfg TCConfig) *TraceCache {
	return newTraceCache(newStream(src), bp, cfg)
}

func newTraceCache(s stream, bp btb.Predictor, cfg TCConfig) *TraceCache {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("fetch: trace cache entries must be a positive power of two")
	}
	if cfg.MaxLineInsts <= 0 || cfg.MaxLineBlocks <= 0 || cfg.CoreMaxInsts <= 0 {
		panic("fetch: invalid trace cache configuration")
	}
	return &TraceCache{
		s:     s,
		c:     ctrl{bp: bp},
		cfg:   cfg,
		lines: make([]tcLine, cfg.Entries),
		mask:  uint64(cfg.Entries - 1),
	}
}

// Stats implements Engine.
func (e *TraceCache) Stats() Stats { return e.stats }

func (e *TraceCache) index(pc uint64) *tcLine { return &e.lines[(pc>>2)&e.mask] }

// NextGroup implements Engine.
func (e *TraceCache) NextGroup(maxInsts int) (Group, bool) {
	if e.s.eof() {
		return Group{}, false
	}
	e.stats.Cycles++
	head, _ := e.s.peek(0)
	line := e.index(head.PC)
	e.stats.TCLookups++
	if line.valid && line.startPC == head.PC {
		if g, hit, partial := e.tryLine(line, maxInsts); hit {
			e.stats.TCHits++
			if partial {
				e.stats.TCPartialHits++
			}
			e.stats.TCHitInsts += uint64(len(g.Recs))
			e.stats.Insts += uint64(len(g.Recs))
			if e.obs != nil {
				e.obs.FetchGroup(len(g.Recs), true, g.Mispredict)
			}
			return g, true
		}
	}
	g := e.coreFetch(maxInsts)
	if e.obs != nil {
		e.obs.FetchGroup(len(g.Recs), false, g.Mispredict)
	}
	return g, true
}

// tryLine attempts a trace-cache hit. Selection requires the line's
// embedded branch outcomes to match the branch predictor's predicted
// directions (without touching predictor state) and the line to still lie
// on the dynamic path PC-wise; the delivered prefix is then truncated at
// the first actual misprediction, if any. With partial matching enabled, a
// direction disagreement truncates the line to the matching prefix
// (through the disagreeing branch) instead of missing outright.
func (e *TraceCache) tryLine(line *tcLine, maxInsts int) (Group, bool, bool) {
	n := len(line.insts)
	if n > maxInsts {
		n = maxInsts
	}
	partial := false
	for k := 0; k < n; k++ {
		rec, ok := e.s.peek(k)
		if !ok {
			n = k
			break
		}
		li := line.insts[k]
		if rec.PC != li.pc {
			return Group{}, false, false // stale line off the dynamic path
		}
		if li.isControl && e.c.direction(rec) != li.taken {
			if !e.cfg.PartialMatching {
				return Group{}, false, false // predictor does not select this line
			}
			// Partial match: deliver through this branch; the predictor's
			// direction (not the line's) decides what happens next cycle.
			n = k + 1
			partial = true
			break
		}
	}
	if n == 0 {
		return Group{}, false, false
	}
	// Delivery: predict/train each control instruction in order and
	// truncate at the first actual misprediction.
	g := Group{FromTraceCache: true}
	cut := 0
	for k := 0; k < n; k++ {
		rec, _ := e.s.peek(k)
		cut = k + 1
		if rec.Op.IsControl() {
			correct := e.c.fetchControl(rec)
			if counted(rec) {
				e.stats.Predictions++
			}
			if !correct {
				g.Mispredict = true
				e.stats.Mispredicts++
				break
			}
		}
	}
	start := e.s.mark()
	e.s.advance(cut)
	g.Recs = e.s.view(start)
	return g, true, partial
}

// coreFetch is the backing instruction-cache path: contiguous fetch up to
// CoreMaxInsts instructions and CoreMaxTaken taken branches. Its delivered
// instructions feed the fill unit.
func (e *TraceCache) coreFetch(maxInsts int) Group {
	limit := e.cfg.CoreMaxInsts
	if maxInsts < limit {
		limit = maxInsts
	}
	var g Group
	start := e.s.mark()
	taken := 0
	for e.s.pos-start < limit {
		rec, ok := e.s.peek(0)
		if !ok {
			break
		}
		if rec.Op.IsControl() {
			correct := e.c.fetchControl(rec)
			if counted(rec) {
				e.stats.Predictions++
			}
			e.s.advance(1)
			e.fill(rec)
			if !correct {
				e.stats.Mispredicts++
				g.Mispredict = true
				break
			}
			if rec.Taken {
				taken++
				if e.cfg.CoreMaxTaken >= 0 && taken >= e.cfg.CoreMaxTaken {
					break
				}
			}
			continue
		}
		e.s.advance(1)
		e.fill(rec)
	}
	g.Recs = e.s.view(start)
	e.stats.Insts += uint64(len(g.Recs))
	e.stats.CoreInsts += uint64(len(g.Recs))
	return g
}

// fill feeds one core-fetched instruction to the fill unit. Instructions
// accumulate into a basic block (closed by any control instruction or by
// reaching the line capacity); closed blocks are appended to the pending
// line, which is finalised when it is full by instructions or blocks.
func (e *TraceCache) fill(rec trace.Rec) {
	if len(e.blockBuf) == 0 {
		e.blockStart = rec.PC
	}
	e.blockBuf = append(e.blockBuf, lineInst{
		pc:        rec.PC,
		isControl: rec.Op.IsControl(),
		isJAL:     rec.Op == isa.JAL,
		taken:     rec.Taken,
	})
	if rec.Op.IsControl() || len(e.blockBuf) >= e.cfg.MaxLineInsts {
		e.closeBlock()
	}
}

// closeBlock moves the buffered basic block into the pending line, starting
// a fresh line at the block's entry address when the block would not fit.
func (e *TraceCache) closeBlock() {
	if len(e.blockBuf) == 0 {
		return
	}
	if len(e.pending) == 0 {
		e.pendingStart = e.blockStart
	} else if len(e.pending)+len(e.blockBuf) > e.cfg.MaxLineInsts {
		e.finalize()
		e.pendingStart = e.blockStart
	}
	e.pending = append(e.pending, e.blockBuf...)
	e.blockBuf = e.blockBuf[:0]
	e.pendingBlks++
	if e.pendingBlks >= e.cfg.MaxLineBlocks || len(e.pending) >= e.cfg.MaxLineInsts {
		e.finalize()
	}
}

func (e *TraceCache) finalize() {
	if len(e.pending) == 0 {
		return
	}
	line := e.index(e.pendingStart)
	line.valid = true
	line.startPC = e.pendingStart
	line.insts = append(line.insts[:0], e.pending...)
	e.pending = e.pending[:0]
	e.pendingBlks = 0
}

var _ Engine = (*TraceCache)(nil)
