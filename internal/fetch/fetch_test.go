package fetch

import (
	"testing"

	"valuepred/internal/asm"
	"valuepred/internal/btb"
	"valuepred/internal/emu"
	"valuepred/internal/isa"
	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

// loopTrace builds a trace of a counted loop: body instructions plus a
// taken backward branch per iteration, ending with a not-taken exit.
func loopTrace(t *testing.T, iters, bodyLen int) []trace.Rec {
	t.Helper()
	b := asm.NewBuilder()
	b.Li(isa.S0, int64(iters))
	b.Label("loop")
	for i := 0; i < bodyLen; i++ {
		b.Addi(isa.T0, isa.T0, 1)
	}
	b.Addi(isa.S1, isa.S1, 1)
	b.Blt(isa.S1, isa.S0, "loop")
	b.Halt()
	m := emu.New(asm.MustAssemble(b))
	recs := m.Run(0)
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	return recs
}

func drain(t *testing.T, e Engine, maxInsts int) []Group {
	t.Helper()
	var groups []Group
	for {
		g, ok := e.NextGroup(maxInsts)
		if !ok {
			return groups
		}
		groups = append(groups, g)
		if len(groups) > 1_000_000 {
			t.Fatal("fetch engine never terminates")
		}
	}
}

func TestSequentialRespectsMaxInsts(t *testing.T) {
	recs := loopTrace(t, 10, 20)
	e := NewSequential(recs, btb.NewPerfect(), -1)
	var total int
	for _, g := range drain(t, e, 7) {
		if len(g.Recs) > 7 {
			t.Fatalf("group of %d exceeds max 7", len(g.Recs))
		}
		total += len(g.Recs)
	}
	if total != len(recs) {
		t.Errorf("delivered %d of %d", total, len(recs))
	}
}

func TestSequentialTakenBranchLimit(t *testing.T) {
	recs := loopTrace(t, 50, 3) // iteration = 4 insts + taken branch
	for _, n := range []int{1, 2, 3} {
		e := NewSequential(recs, btb.NewPerfect(), n)
		for _, g := range drain(t, e, 400) {
			taken := 0
			for _, r := range g.Recs {
				if r.Op.IsControl() && r.Taken {
					taken++
				}
			}
			if taken > n {
				t.Fatalf("n=%d: group contains %d taken branches", n, taken)
			}
		}
	}
	// Unlimited: with a huge width everything can arrive in one group
	// under a perfect predictor.
	e := NewSequential(recs, btb.NewPerfect(), -1)
	g, _ := e.NextGroup(1 << 20)
	if len(g.Recs) != len(recs) {
		t.Errorf("unlimited fetch delivered %d of %d", len(g.Recs), len(recs))
	}
}

func TestSequentialGroupsAreProgramOrder(t *testing.T) {
	recs := loopTrace(t, 20, 5)
	e := NewSequential(recs, btb.NewPerfect(), 2)
	var seq uint64
	for _, g := range drain(t, e, 16) {
		for _, r := range g.Recs {
			if r.Seq != seq {
				t.Fatalf("out of order: got seq %d, want %d", r.Seq, seq)
			}
			seq++
		}
	}
}

func TestSequentialMispredictTruncates(t *testing.T) {
	recs := loopTrace(t, 30, 2)
	// A cold 2-level BTB mispredicts the first taken encounter of the loop
	// branch; the group must end exactly at that branch.
	e := NewSequential(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), -1)
	g, _ := e.NextGroup(1 << 20)
	if !g.Mispredict {
		t.Fatal("cold BTB did not mispredict")
	}
	last := g.Recs[len(g.Recs)-1]
	if !last.Op.IsControl() {
		t.Error("mispredicted group does not end at a control instruction")
	}
	st := e.Stats()
	if st.Mispredicts == 0 || st.Predictions == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BranchAccuracy() >= 1 {
		t.Error("accuracy must drop below 1 after a mispredict")
	}
}

func TestBranchAccuracyZeroSample(t *testing.T) {
	// A branch-free stream makes zero predictions; its accuracy is a
	// vacuous 100%, not 0% (which would drag averaged accuracy columns
	// down for straight-line traces).
	if got := (Stats{}).BranchAccuracy(); got != 1 {
		t.Errorf("zero-sample BranchAccuracy = %v, want 1", got)
	}
	b := asm.NewBuilder()
	for i := 0; i < 40; i++ {
		b.Addi(isa.T0, isa.T0, 1)
	}
	b.Halt()
	m := emu.New(asm.MustAssemble(b))
	recs := m.Run(0)
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	e := NewSequential(recs[:len(recs)-1], btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), 1)
	drain(t, e, 8)
	st := e.Stats()
	if st.Predictions != 0 {
		t.Fatalf("straight-line trace made %d predictions", st.Predictions)
	}
	if got := st.BranchAccuracy(); got != 1 {
		t.Errorf("branch-free trace BranchAccuracy = %v, want 1", got)
	}
	// The zero-sample trace-cache hit rate stays 0 (no lookups, no benefit).
	if got := st.TCHitRate(); got != 0 {
		t.Errorf("zero-sample TCHitRate = %v, want 0", got)
	}
}

func TestRASPredictsReturns(t *testing.T) {
	// call/return pairs: with a completely cold BTB, the RAS must still
	// predict every return correctly.
	b := asm.NewBuilder()
	b.Li(isa.S0, 30)
	b.Label("loop")
	b.Call("f")
	b.Call("g")
	b.Addi(isa.S1, isa.S1, 1)
	b.Blt(isa.S1, isa.S0, "loop")
	b.Halt()
	b.Label("f")
	b.Addi(isa.T0, isa.T0, 1)
	b.Ret()
	b.Label("g")
	b.Addi(isa.T1, isa.T1, 1)
	b.Ret()
	m := emu.New(asm.MustAssemble(b))
	recs := m.Run(0)

	e := NewSequential(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), -1)
	for _, g := range drain(t, e, 64) {
		if g.Mispredict {
			last := g.Recs[len(g.Recs)-1]
			if isReturn(last) {
				t.Fatalf("RAS failed to predict return at seq %d", last.Seq)
			}
		}
	}
}

func TestTraceCacheLearnsLoop(t *testing.T) {
	recs := loopTrace(t, 200, 6) // 8 insts per iteration
	e := NewTraceCache(recs, btb.NewPerfect(), DefaultTCConfig())
	groups := drain(t, e, 40)
	var total int
	sawHit := false
	for _, g := range groups {
		total += len(g.Recs)
		if g.FromTraceCache {
			sawHit = true
		}
	}
	if total != len(recs) {
		t.Fatalf("delivered %d of %d", total, len(recs))
	}
	if !sawHit {
		t.Fatal("trace cache never hit on a tight loop")
	}
	st := e.Stats()
	if st.TCHitRate() < 0.5 {
		t.Errorf("hit rate on a tight loop = %.2f", st.TCHitRate())
	}
	if st.TCHitInsts+st.CoreInsts != st.Insts {
		t.Errorf("instruction accounting broken: %+v", st)
	}
}

// TestTraceCacheCrossesTakenBranches is the point of the trace cache: a hit
// group may span multiple taken branches (loop iterations) in one cycle.
func TestTraceCacheCrossesTakenBranches(t *testing.T) {
	recs := loopTrace(t, 300, 2) // 4-inst iterations: a 32-inst line = 8 iterations
	e := NewTraceCache(recs, btb.NewPerfect(), DefaultTCConfig())
	sawMulti := false
	for _, g := range drain(t, e, 40) {
		if !g.FromTraceCache {
			continue
		}
		taken := 0
		for _, r := range g.Recs {
			if r.Op.IsControl() && r.Taken {
				taken++
			}
		}
		if taken > 1 {
			sawMulti = true
		}
	}
	if !sawMulti {
		t.Error("no trace-cache group crossed more than one taken branch")
	}
}

func TestTraceCacheLineLimits(t *testing.T) {
	recs := loopTrace(t, 400, 1)
	cfg := DefaultTCConfig()
	e := NewTraceCache(recs, btb.NewPerfect(), cfg)
	for _, g := range drain(t, e, 1<<20) {
		if !g.FromTraceCache {
			continue
		}
		if len(g.Recs) > cfg.MaxLineInsts {
			t.Fatalf("line of %d insts exceeds max %d", len(g.Recs), cfg.MaxLineInsts)
		}
		controls := 0
		for _, r := range g.Recs {
			if r.Op.IsControl() {
				controls++
			}
		}
		if controls > cfg.MaxLineBlocks {
			t.Fatalf("line with %d blocks exceeds max %d", controls, cfg.MaxLineBlocks)
		}
	}
}

func TestTraceCacheOutcomeMismatchIsMiss(t *testing.T) {
	// A branch alternating each iteration: a line recorded with one
	// outcome must not hit when the predictor (perfect here) knows the
	// next outcome differs. We check the invariant that delivered groups
	// are always on the correct path.
	b := asm.NewBuilder()
	b.Li(isa.S0, 400)
	b.Label("loop")
	b.Andi(isa.T1, isa.S1, 1)
	b.Beqz(isa.T1, "even")
	b.Addi(isa.T2, isa.T2, 7)
	b.J("join")
	b.Label("even")
	b.Addi(isa.T3, isa.T3, 3)
	b.Label("join")
	b.Addi(isa.S1, isa.S1, 1)
	b.Blt(isa.S1, isa.S0, "loop")
	b.Halt()
	m := emu.New(asm.MustAssemble(b))
	recs := m.Run(0)
	e := NewTraceCache(recs, btb.NewPerfect(), DefaultTCConfig())
	var seq uint64
	for _, g := range drain(t, e, 40) {
		if g.Mispredict {
			t.Fatal("perfect predictor produced a mispredict")
		}
		for _, r := range g.Recs {
			if r.Seq != seq {
				t.Fatalf("wrong-path delivery at seq %d (want %d)", r.Seq, seq)
			}
			seq++
		}
	}
	if seq != uint64(len(recs)) {
		t.Errorf("delivered %d of %d", seq, len(recs))
	}
}

func TestTraceCacheWithRealBTBStaysOnPath(t *testing.T) {
	recs := workload.MustTrace("gcc", 1, 30_000)
	e := NewTraceCache(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), DefaultTCConfig())
	var seq uint64
	for _, g := range drain(t, e, 40) {
		for _, r := range g.Recs {
			if r.Seq != seq {
				t.Fatalf("wrong-path delivery at seq %d (want %d)", r.Seq, seq)
			}
			seq++
		}
		if g.Mispredict {
			last := g.Recs[len(g.Recs)-1]
			if !last.Op.IsControl() {
				t.Fatal("mispredict flag on a non-control tail")
			}
		}
	}
	if seq != uint64(len(recs)) {
		t.Errorf("delivered %d of %d", seq, len(recs))
	}
}

func TestTraceCacheConfigPanics(t *testing.T) {
	for _, cfg := range []TCConfig{
		{Entries: 0, MaxLineInsts: 32, MaxLineBlocks: 6, CoreMaxInsts: 16},
		{Entries: 3, MaxLineInsts: 32, MaxLineBlocks: 6, CoreMaxInsts: 16},
		{Entries: 64, MaxLineInsts: 0, MaxLineBlocks: 6, CoreMaxInsts: 16},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewTraceCache(nil, btb.NewPerfect(), cfg)
		}()
	}
}

func TestEnginesEOF(t *testing.T) {
	seqEng := NewSequential(nil, btb.NewPerfect(), -1)
	if _, ok := seqEng.NextGroup(8); ok {
		t.Error("empty sequential engine returned a group")
	}
	tcEng := NewTraceCache(nil, btb.NewPerfect(), DefaultTCConfig())
	if _, ok := tcEng.NextGroup(8); ok {
		t.Error("empty trace-cache engine returned a group")
	}
}

// TestPartialMatching: with a real BTB (frequent disagreement with line
// outcomes) partial matching must convert outright misses into partial
// hits, raising the trace-cache hit rate without ever delivering
// wrong-path instructions.
func TestPartialMatching(t *testing.T) {
	recs := workload.MustTrace("gcc", 1, 40_000)
	run := func(partial bool) Stats {
		cfg := DefaultTCConfig()
		cfg.PartialMatching = partial
		e := NewTraceCache(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), cfg)
		var seq uint64
		for _, g := range drain(t, e, 40) {
			for _, r := range g.Recs {
				if r.Seq != seq {
					t.Fatalf("wrong-path delivery at seq %d", r.Seq)
				}
				seq++
			}
		}
		return e.Stats()
	}
	off := run(false)
	on := run(true)
	if on.TCPartialHits == 0 {
		t.Fatal("partial matching produced no partial hits")
	}
	if off.TCPartialHits != 0 {
		t.Error("partial hits counted with the feature off")
	}
	if on.TCHitRate() <= off.TCHitRate() {
		t.Errorf("partial matching did not raise hit rate: %.3f vs %.3f",
			on.TCHitRate(), off.TCHitRate())
	}
}
