package fetch

import (
	"testing"

	"valuepred/internal/btb"
	"valuepred/internal/workload"
)

func TestCollapsingBufferDelivery(t *testing.T) {
	recs := loopTrace(t, 100, 4) // 6-inst iterations with a taken back edge
	e := NewCollapsingBuffer(recs, btb.NewPerfect(), DefaultCBConfig())
	var seq uint64
	groups := drain(t, e, 40)
	for _, g := range groups {
		for _, r := range g.Recs {
			if r.Seq != seq {
				t.Fatalf("out of order at seq %d", r.Seq)
			}
			seq++
		}
	}
	if seq != uint64(len(recs)) {
		t.Fatalf("delivered %d of %d", seq, len(recs))
	}
	if e.Stats().Cycles == 0 || e.Stats().Insts != uint64(len(recs)) {
		t.Errorf("stats = %+v", e.Stats())
	}
}

// TestCollapsingBufferLineLimits: each group touches at most cfg.Lines
// cache lines, so its instructions come from at most that many aligned
// regions / taken-branch targets.
func TestCollapsingBufferLineLimits(t *testing.T) {
	recs := loopTrace(t, 300, 1) // 3-inst iterations: many taken branches
	cfg := DefaultCBConfig()
	e := NewCollapsingBuffer(recs, btb.NewPerfect(), cfg)
	for _, g := range drain(t, e, 1<<20) {
		taken := 0
		for _, r := range g.Recs {
			if r.Op.IsControl() && r.Taken {
				taken++
			}
		}
		// With 2 lines per cycle at most one taken branch can be crossed
		// (the second line's terminating taken branch ends the group).
		if taken > cfg.Lines {
			t.Fatalf("group crossed %d taken branches with %d lines", taken, cfg.Lines)
		}
		if len(g.Recs) > cfg.Lines*cfg.LineInsts {
			t.Fatalf("group of %d insts exceeds %d lines of %d",
				len(g.Recs), cfg.Lines, cfg.LineInsts)
		}
	}
}

// TestCollapsingBufferBeatsSingleLine: two lines per cycle must deliver at
// least the bandwidth of one line per cycle.
func TestCollapsingBufferBandwidth(t *testing.T) {
	recs := workload.MustTrace("ijpeg", 1, 20_000)
	cycles := func(lines int) uint64 {
		cfg := DefaultCBConfig()
		cfg.Lines = lines
		e := NewCollapsingBuffer(recs, btb.NewPerfect(), cfg)
		var n uint64
		for {
			if _, ok := e.NextGroup(64); !ok {
				break
			}
			n++
		}
		return n
	}
	one, two := cycles(1), cycles(2)
	if two > one {
		t.Errorf("2-line fetch needs more cycles (%d) than 1-line (%d)", two, one)
	}
	if two == one {
		t.Error("second line added no bandwidth on a loopy workload")
	}
}

func TestCollapsingBufferFallThroughLines(t *testing.T) {
	// A straight-line block longer than one cache line must consume two
	// line reads in a cycle.
	recs := loopTrace(t, 10, 40) // 42-inst iterations span 3 lines
	cfg := DefaultCBConfig()
	e := NewCollapsingBuffer(recs, btb.NewPerfect(), cfg)
	g, ok := e.NextGroup(1 << 10)
	if !ok {
		t.Fatal("no group")
	}
	if len(g.Recs) > cfg.Lines*cfg.LineInsts {
		t.Fatalf("group of %d exceeds two lines", len(g.Recs))
	}
	if len(g.Recs) <= cfg.LineInsts {
		t.Errorf("group of %d did not use the second line", len(g.Recs))
	}
}

func TestCollapsingBufferMispredict(t *testing.T) {
	recs := loopTrace(t, 50, 4)
	e := NewCollapsingBuffer(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), DefaultCBConfig())
	sawMis := false
	for _, g := range drain(t, e, 64) {
		if g.Mispredict {
			sawMis = true
			if !g.Recs[len(g.Recs)-1].Op.IsControl() {
				t.Fatal("mispredict group does not end at a control instruction")
			}
		}
	}
	if !sawMis {
		t.Error("cold BTB never mispredicted")
	}
}

func TestCollapsingBufferConfigPanics(t *testing.T) {
	for _, cfg := range []CBConfig{{LineInsts: 0, Lines: 2}, {LineInsts: 12, Lines: 2}, {LineInsts: 16, Lines: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewCollapsingBuffer(nil, btb.NewPerfect(), cfg)
		}()
	}
}
