// Package isa defines the register instruction set executed by the
// functional emulator and analysed by every machine model in this
// repository.
//
// The ISA is a compact RV64-flavoured RISC: 32 integer registers (x0 is
// hard-wired to zero), 64-bit values, 4-byte instruction slots, loads and
// stores of bytes and 64-bit words, conditional branches and direct and
// indirect jumps. One deliberate non-RISC convenience exists: LI carries a
// full 64-bit immediate in a single instruction, which keeps workload
// programs free of constant-synthesis noise that the paper's SPARC traces
// would not contain either.
package isa

import "fmt"

// Reg names one of the 32 architectural integer registers. Register 0 reads
// as zero and writes to it are discarded; it never participates in a
// true-data dependence.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 32

// ABI-style register aliases used by the assembler DSL and the workloads.
const (
	X0                                       Reg = iota
	RA                                           // return address (link)
	SP                                           // stack pointer
	GP                                           // global/data pointer
	TP                                           // thread/heap pointer
	T0, T1, T2                               Reg = 5, 6, 7
	S0, S1                                   Reg = 8, 9
	A0, A1, A2, A3, A4, A5, A6, A7           Reg = 10, 11, 12, 13, 14, 15, 16, 17
	S2, S3, S4, S5, S6, S7, S8, S9, S10, S11 Reg = 18, 19, 20, 21, 22, 23, 24, 25, 26, 27
	T3, T4, T5, T6                           Reg = 28, 29, 30, 31
)

// Zero is the canonical alias for the hard-wired zero register.
const Zero = X0

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Opcode identifies an operation. The zero value is invalid so that
// accidentally zeroed instructions are caught early.
type Opcode uint8

// Operation codes.
const (
	BAD Opcode = iota

	// Register-register ALU.
	ADD
	SUB
	MUL
	DIV // signed; division by zero yields all-ones (RISC-V semantics)
	REM // signed; remainder of division by zero yields the dividend
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU

	// Register-immediate ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI

	// Constant materialisation: rd = imm (full 64-bit immediate).
	LI

	// Memory. Effective address is rs1 + imm.
	LD // load 64-bit word
	LB // load byte, zero-extended
	SD // store 64-bit word (value in rs2)
	SB // store low byte (value in rs2)

	// Control transfer. Branch targets are byte offsets in imm relative to
	// the branch's own PC. JAL writes pc+4 to rd and jumps pc+imm. JALR
	// writes pc+4 to rd and jumps (rs1+imm) with the low bit cleared.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL
	JALR

	// HALT stops the machine; NOP does nothing.
	HALT
	NOP

	numOpcodes
)

// NumOpcodes is the number of defined opcodes (including BAD).
const NumOpcodes = int(numOpcodes)

type opInfo struct {
	name     string
	writesRd bool
	readsRs1 bool
	readsRs2 bool
	hasImm   bool
	class    Class
}

// Class groups opcodes by their role in the machine models.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassLoad
	ClassStore
	ClassBranch // conditional control transfer
	ClassJump   // unconditional control transfer
	ClassSystem // HALT, NOP, BAD
)

var opTable = [NumOpcodes]opInfo{
	BAD:  {"bad", false, false, false, false, ClassSystem},
	ADD:  {"add", true, true, true, false, ClassALU},
	SUB:  {"sub", true, true, true, false, ClassALU},
	MUL:  {"mul", true, true, true, false, ClassALU},
	DIV:  {"div", true, true, true, false, ClassALU},
	REM:  {"rem", true, true, true, false, ClassALU},
	AND:  {"and", true, true, true, false, ClassALU},
	OR:   {"or", true, true, true, false, ClassALU},
	XOR:  {"xor", true, true, true, false, ClassALU},
	SLL:  {"sll", true, true, true, false, ClassALU},
	SRL:  {"srl", true, true, true, false, ClassALU},
	SRA:  {"sra", true, true, true, false, ClassALU},
	SLT:  {"slt", true, true, true, false, ClassALU},
	SLTU: {"sltu", true, true, true, false, ClassALU},
	ADDI: {"addi", true, true, false, true, ClassALU},
	ANDI: {"andi", true, true, false, true, ClassALU},
	ORI:  {"ori", true, true, false, true, ClassALU},
	XORI: {"xori", true, true, false, true, ClassALU},
	SLLI: {"slli", true, true, false, true, ClassALU},
	SRLI: {"srli", true, true, false, true, ClassALU},
	SRAI: {"srai", true, true, false, true, ClassALU},
	SLTI: {"slti", true, true, false, true, ClassALU},
	LI:   {"li", true, false, false, true, ClassALU},
	LD:   {"ld", true, true, false, true, ClassLoad},
	LB:   {"lb", true, true, false, true, ClassLoad},
	SD:   {"sd", false, true, true, true, ClassStore},
	SB:   {"sb", false, true, true, true, ClassStore},
	BEQ:  {"beq", false, true, true, true, ClassBranch},
	BNE:  {"bne", false, true, true, true, ClassBranch},
	BLT:  {"blt", false, true, true, true, ClassBranch},
	BGE:  {"bge", false, true, true, true, ClassBranch},
	BLTU: {"bltu", false, true, true, true, ClassBranch},
	BGEU: {"bgeu", false, true, true, true, ClassBranch},
	JAL:  {"jal", true, false, false, true, ClassJump},
	JALR: {"jalr", true, true, false, true, ClassJump},
	HALT: {"halt", false, false, false, false, ClassSystem},
	NOP:  {"nop", false, false, false, false, ClassSystem},
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < NumOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined, non-BAD opcode.
func (op Opcode) Valid() bool { return op > BAD && int(op) < NumOpcodes }

// WritesRd reports whether the opcode produces a register result. Only
// result-producing instructions are candidates for value prediction.
func (op Opcode) WritesRd() bool { return int(op) < NumOpcodes && opTable[op].writesRd }

// ReadsRs1 reports whether the opcode reads its first source register.
func (op Opcode) ReadsRs1() bool { return int(op) < NumOpcodes && opTable[op].readsRs1 }

// ReadsRs2 reports whether the opcode reads its second source register.
func (op Opcode) ReadsRs2() bool { return int(op) < NumOpcodes && opTable[op].readsRs2 }

// HasImm reports whether the opcode carries an immediate operand.
func (op Opcode) HasImm() bool { return int(op) < NumOpcodes && opTable[op].hasImm }

// Class returns the opcode's instruction class.
func (op Opcode) Class() Class {
	if int(op) < NumOpcodes {
		return opTable[op].class
	}
	return ClassSystem
}

// IsBranch reports whether the opcode is a conditional branch.
func (op Opcode) IsBranch() bool { return op.Class() == ClassBranch }

// IsJump reports whether the opcode is an unconditional control transfer.
func (op Opcode) IsJump() bool { return op.Class() == ClassJump }

// IsControl reports whether the opcode can redirect the PC.
func (op Opcode) IsControl() bool {
	c := op.Class()
	return c == ClassBranch || c == ClassJump
}

// IsLoad reports whether the opcode reads memory.
func (op Opcode) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether the opcode writes memory.
func (op Opcode) IsStore() bool { return op.Class() == ClassStore }

// Inst is a single static instruction.
type Inst struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch {
	case in.Op == HALT || in.Op == NOP || in.Op == BAD:
		return in.Op.String()
	case in.Op == LI:
		return fmt.Sprintf("li %s, %d", in.Rd, in.Imm)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %+d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.Op == JAL:
		return fmt.Sprintf("jal %s, %+d", in.Rd, in.Imm)
	case in.Op == JALR:
		return fmt.Sprintf("jalr %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
	case in.Op.HasImm():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// InstBytes is the architectural size of one instruction slot.
const InstBytes = 4

// Default memory-layout addresses shared by the assembler and emulator.
const (
	// TextBase is the address of the first instruction.
	TextBase uint64 = 0x0000_1000
	// DataBase is the address of the first data byte.
	DataBase uint64 = 0x0010_0000
	// HeapBase is where emulator-managed dynamic allocation begins.
	HeapBase uint64 = 0x0100_0000
	// StackTop is the initial stack pointer (stack grows down).
	StackTop uint64 = 0x0400_0000
)

// Segment is a contiguous range of initialised memory in a program image.
type Segment struct {
	Addr uint64
	Data []byte
}

// Program is an assembled program: its text, initial data image and symbol
// table.
type Program struct {
	// Insts is the instruction text; instruction i lives at
	// TextBase + i*InstBytes.
	Insts []Inst
	// Entry is the address of the first instruction to execute.
	Entry uint64
	// Segments is the initial data memory image.
	Segments []Segment
	// Symbols maps labels (code and data) to addresses.
	Symbols map[string]uint64
}

// PCOf returns the address of instruction index i.
func PCOf(i int) uint64 { return TextBase + uint64(i)*InstBytes }

// IndexOf returns the instruction index of address pc and whether pc lies in
// the text segment of a program with n instructions.
func IndexOf(pc uint64, n int) (int, bool) {
	if pc < TextBase || (pc-TextBase)%InstBytes != 0 {
		return 0, false
	}
	i := int((pc - TextBase) / InstBytes)
	if i < 0 || i >= n {
		return 0, false
	}
	return i, true
}

// At returns the instruction at address pc.
func (p *Program) At(pc uint64) (Inst, bool) {
	i, ok := IndexOf(pc, len(p.Insts))
	if !ok {
		return Inst{}, false
	}
	return p.Insts[i], true
}

// Symbol returns the address of a label, panicking if it is unknown. It is
// intended for test and workload setup code where a missing label is a
// programming error.
func (p *Program) Symbol(name string) uint64 {
	a, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: unknown symbol %q", name))
	}
	return a
}
