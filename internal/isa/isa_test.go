package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		X0: "zero", RA: "ra", SP: "sp", GP: "gp", TP: "tp",
		T0: "t0", T2: "t2", S0: "s0", A0: "a0", A7: "a7",
		S2: "s2", S11: "s11", T3: "t3", T6: "t6",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(r), got, want)
		}
	}
	if got := Reg(40).String(); got != "x40" {
		t.Errorf("out-of-range reg = %q", got)
	}
}

func TestRegValid(t *testing.T) {
	if !X0.Valid() || !T6.Valid() {
		t.Error("architectural registers must be valid")
	}
	if Reg(32).Valid() {
		t.Error("register 32 must be invalid")
	}
}

func TestOpcodeMetadata(t *testing.T) {
	// Every defined opcode (except BAD) must have a name and a class.
	for op := Opcode(1); int(op) < NumOpcodes; op++ {
		if !op.Valid() {
			t.Errorf("opcode %d should be valid", op)
		}
		if op.String() == "" || op.String() == "bad" {
			t.Errorf("opcode %d has bad name %q", op, op)
		}
	}
	if Opcode(0).Valid() || Opcode(200).Valid() {
		t.Error("BAD and out-of-range opcodes must be invalid")
	}
	if Opcode(200).String() != "op(200)" {
		t.Errorf("out-of-range opcode name = %q", Opcode(200))
	}

	// Structural invariants tying metadata to classes.
	for op := Opcode(1); int(op) < NumOpcodes; op++ {
		switch op.Class() {
		case ClassLoad:
			if !op.WritesRd() || !op.ReadsRs1() || op.ReadsRs2() {
				t.Errorf("load %v has wrong operand metadata", op)
			}
		case ClassStore:
			if op.WritesRd() || !op.ReadsRs1() || !op.ReadsRs2() {
				t.Errorf("store %v has wrong operand metadata", op)
			}
		case ClassBranch:
			if op.WritesRd() {
				t.Errorf("branch %v must not write a register", op)
			}
			if !op.IsControl() {
				t.Errorf("branch %v must be control", op)
			}
		case ClassJump:
			if !op.WritesRd() {
				t.Errorf("jump %v must produce a link value", op)
			}
		}
	}
	if !JAL.IsJump() || !BEQ.IsBranch() || !LD.IsLoad() || !SD.IsStore() {
		t.Error("class predicates broken")
	}
	if HALT.IsControl() || ADD.IsControl() {
		t.Error("non-control opcodes flagged as control")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: T0, Rs1: T1, Rs2: T2}, "add t0, t1, t2"},
		{Inst{Op: ADDI, Rd: A0, Rs1: A1, Imm: -3}, "addi a0, a1, -3"},
		{Inst{Op: LI, Rd: S0, Imm: 99}, "li s0, 99"},
		{Inst{Op: LD, Rd: T0, Rs1: SP, Imm: 8}, "ld t0, 8(sp)"},
		{Inst{Op: SD, Rs1: SP, Rs2: T1, Imm: 16}, "sd t1, 16(sp)"},
		{Inst{Op: BEQ, Rs1: T0, Rs2: T1, Imm: -8}, "beq t0, t1, -8"},
		{Inst{Op: JAL, Rd: RA, Imm: 16}, "jal ra, +16"},
		{Inst{Op: JALR, Rd: X0, Rs1: RA}, "jalr zero, 0(ra)"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: NOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	n := 1000
	f := func(i uint16) bool {
		idx := int(i) % n
		got, ok := IndexOf(PCOf(idx), n)
		return ok && got == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexOfRejects(t *testing.T) {
	if _, ok := IndexOf(TextBase-4, 10); ok {
		t.Error("address below text accepted")
	}
	if _, ok := IndexOf(TextBase+1, 10); ok {
		t.Error("misaligned address accepted")
	}
	if _, ok := IndexOf(PCOf(10), 10); ok {
		t.Error("address one past the end accepted")
	}
}

func TestProgramAtAndSymbol(t *testing.T) {
	p := &Program{
		Insts:   []Inst{{Op: NOP}, {Op: HALT}},
		Entry:   TextBase,
		Symbols: map[string]uint64{"start": TextBase},
	}
	if in, ok := p.At(PCOf(1)); !ok || in.Op != HALT {
		t.Errorf("At(PCOf(1)) = %v, %v", in, ok)
	}
	if _, ok := p.At(PCOf(2)); ok {
		t.Error("At past end succeeded")
	}
	if p.Symbol("start") != TextBase {
		t.Error("Symbol lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Symbol of unknown name should panic")
		}
	}()
	p.Symbol("nonesuch")
}
