// Package jobs is the deterministic job store behind the serve layer's
// asynchronous API: one Job per canonical request key, with an id derived
// from the key (so resubmitting the same request is idempotent), a
// queued → running → done/failed lifecycle, a bounded FIFO of jobs waiting
// for an execution slot, and bounded retention of settled jobs so a
// long-lived server cannot accumulate results without limit.
//
// The store owns lifecycle and bookkeeping only. Execution policy — the
// semaphore, the simulation context, caching of results — stays with the
// caller (internal/serve): the store never runs anything and never blocks.
// Waiting for a result is the caller's select on Job.Done versus its own
// request context, which is what lets a job outlive the client that
// submitted it.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for NewStore arguments <= 0.
const (
	// DefaultRetention bounds how many settled (done or failed) jobs the
	// store keeps for later result fetches; beyond it the oldest-settled
	// are evicted. Queued and running jobs are never evicted.
	DefaultRetention = 256
	// DefaultQueueLimit bounds the jobs waiting for an execution slot;
	// beyond it submissions are refused (the caller sheds load).
	DefaultQueueLimit = 64
)

// State is a job's lifecycle phase.
type State string

// The lifecycle states, in order.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// IDFor derives the deterministic job id for a canonical request key:
// "j" plus the first 128 bits of the key's SHA-256, hex-encoded. Equal
// requests always map to equal ids, across replicas and restarts.
func IDFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return "j" + hex.EncodeToString(sum[:16])
}

// Job is one unit of work identified by its canonical request key. All
// mutable fields are guarded by mu; the result and error are additionally
// published by the close of done, so a waiter that returned from Done()
// may read them through Result without holding anything.
type Job struct {
	id         string
	key        string
	experiment string
	spec       any
	created    time.Time
	done       chan struct{}

	// Followers counts requests currently waiting on this job beyond the
	// one that created it; the serve layer's progress endpoint reports it.
	Followers atomic.Int64

	mu      sync.Mutex
	state   State
	result  any
	err     error
	settled time.Time
}

// ID returns the deterministic job id (IDFor of the key).
func (j *Job) ID() string { return j.id }

// Key returns the canonical request key the job was created under.
func (j *Job) Key() string { return j.key }

// Experiment returns the experiment id the job runs.
func (j *Job) Experiment() string { return j.experiment }

// Spec returns the opaque request payload stored at creation.
func (j *Job) Spec() any { return j.spec }

// Created returns the job's creation time.
func (j *Job) Created() time.Time { return j.created }

// Done returns the channel closed when the job settles.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the settled result and error. Valid only after Done()
// is closed; before that it returns (nil, nil).
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID         string
	Key        string
	Experiment string
	State      State
	Created    time.Time
	Settled    time.Time // zero until done/failed
	Followers  int64
	Err        string // non-empty only when failed
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:         j.id,
		Key:        j.key,
		Experiment: j.experiment,
		State:      j.state,
		Created:    j.created,
		Settled:    j.settled,
		Followers:  j.Followers.Load(),
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Store is the concurrency-safe job registry. Create it with NewStore.
type Store struct {
	mu         sync.Mutex
	byID       map[string]*Job
	order      []*Job // creation order, for List
	queue      []*Job // FIFO awaiting an execution slot
	settledLog []*Job // settle order, for retention eviction
	retention  int
	queueLimit int
}

// NewStore returns a Store retaining at most retention settled jobs and
// queueing at most queueLimit waiting jobs (<= 0 selects the defaults).
func NewStore(retention, queueLimit int) *Store {
	if retention <= 0 {
		retention = DefaultRetention
	}
	if queueLimit <= 0 {
		queueLimit = DefaultQueueLimit
	}
	return &Store{
		byID:       make(map[string]*Job),
		retention:  retention,
		queueLimit: queueLimit,
	}
}

// Create returns the job for key, creating it in StateQueued if none
// exists. The boolean reports whether the job was created by this call;
// false means an existing job (in any state) was returned instead.
func (st *Store) Create(key, experiment string, spec any) (*Job, bool) {
	id := IDFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.byID[id]; ok {
		return j, false
	}
	j := &Job{
		id:         id,
		key:        key,
		experiment: experiment,
		spec:       spec,
		created:    time.Now(),
		done:       make(chan struct{}),
		state:      StateQueued,
	}
	st.byID[id] = j
	st.order = append(st.order, j)
	return j, true
}

// Get returns the job with the given id.
func (st *Store) Get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	return j, ok
}

// ByKey returns the job for the canonical request key.
func (st *Store) ByKey(key string) (*Job, bool) { return st.Get(IDFor(key)) }

// MarkRunning transitions the job to StateRunning.
func (st *Store) MarkRunning(j *Job) {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

// Enqueue appends the job to the waiting FIFO, reporting false (and
// leaving the store unchanged) when the queue is at its limit. The caller
// decides what refusal means — the serve layer sheds the request.
func (st *Store) Enqueue(j *Job) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.queue) >= st.queueLimit {
		return false
	}
	st.queue = append(st.queue, j)
	return true
}

// Dequeue pops the oldest waiting job, if any.
func (st *Store) Dequeue() (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.queue) == 0 {
		return nil, false
	}
	j := st.queue[0]
	st.queue = st.queue[1:]
	return j, true
}

// QueueLen reports how many jobs are waiting for a slot.
func (st *Store) QueueLen() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.queue)
}

// Settle publishes the job's result (done on nil err, failed otherwise),
// closes its Done channel, and applies retention: settled jobs beyond the
// store's limit are evicted oldest-first. It returns how many jobs were
// evicted so the caller can count them.
func (st *Store) Settle(j *Job, result any, err error) (evicted int) {
	j.mu.Lock()
	j.result, j.err = result, err
	if err != nil {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	j.settled = time.Now()
	j.mu.Unlock()
	close(j.done)

	st.mu.Lock()
	defer st.mu.Unlock()
	st.settledLog = append(st.settledLog, j)
	for len(st.settledLog) > st.retention {
		old := st.settledLog[0]
		st.settledLog = st.settledLog[1:]
		st.removeLocked(old)
		evicted++
	}
	return evicted
}

// Drop removes the job from the store entirely: the id map, the creation
// order, the waiting queue and the settled log. Used when an admission
// fails after Create, and to clear a failed job so the same key can be
// retried with a fresh run.
func (st *Store) Drop(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, q := range st.queue {
		if q == j {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			break
		}
	}
	for i, s := range st.settledLog {
		if s == j {
			st.settledLog = append(st.settledLog[:i], st.settledLog[i+1:]...)
			break
		}
	}
	st.removeLocked(j)
}

// removeLocked deletes the job from the id map and creation order. The
// identity check keeps a stale handle (already evicted and re-created)
// from removing its successor.
func (st *Store) removeLocked(j *Job) {
	if cur, ok := st.byID[j.id]; ok && cur == j {
		delete(st.byID, j.id)
	}
	for i, o := range st.order {
		if o == j {
			st.order = append(st.order[:i], st.order[i+1:]...)
			return
		}
	}
}

// List snapshots every live job in creation order.
func (st *Store) List() []Status {
	st.mu.Lock()
	jobs := append([]*Job(nil), st.order...)
	st.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// Len reports how many jobs the store currently tracks.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}
