package jobs

import (
	"errors"
	"fmt"
	"testing"
)

func TestIDForDeterministicAndDistinct(t *testing.T) {
	a := IDFor("fig3.3|seed=1|len=200000|seeds=1|wl=gcc,go")
	b := IDFor("fig3.3|seed=1|len=200000|seeds=1|wl=gcc,go")
	c := IDFor("fig3.3|seed=2|len=200000|seeds=1|wl=gcc,go")
	if a != b {
		t.Errorf("same key produced different ids: %s vs %s", a, b)
	}
	if a == c {
		t.Errorf("different keys produced the same id: %s", a)
	}
	if len(a) != 33 || a[0] != 'j' {
		t.Errorf("unexpected id shape %q", a)
	}
}

func TestCreateIsIdempotentPerKey(t *testing.T) {
	st := NewStore(0, 0)
	j1, created := st.Create("k1", "fig3.3", nil)
	if !created {
		t.Fatal("first Create did not create")
	}
	j2, created := st.Create("k1", "fig3.3", nil)
	if created || j2 != j1 {
		t.Fatal("second Create for the same key did not return the existing job")
	}
	if j1.State() != StateQueued {
		t.Errorf("new job state = %s, want %s", j1.State(), StateQueued)
	}
	if got, ok := st.ByKey("k1"); !ok || got != j1 {
		t.Error("ByKey did not find the job")
	}
	if got, ok := st.Get(j1.ID()); !ok || got != j1 {
		t.Error("Get did not find the job")
	}
}

func TestLifecycleAndResult(t *testing.T) {
	st := NewStore(0, 0)
	j, _ := st.Create("k", "fig3.3", "spec")
	st.MarkRunning(j)
	if j.State() != StateRunning {
		t.Fatalf("state = %s, want running", j.State())
	}
	select {
	case <-j.Done():
		t.Fatal("Done closed before Settle")
	default:
	}
	st.Settle(j, 42, nil)
	<-j.Done() // must not block
	if j.State() != StateDone {
		t.Errorf("state = %s, want done", j.State())
	}
	res, err := j.Result()
	if res != 42 || err != nil {
		t.Errorf("Result() = (%v, %v), want (42, nil)", res, err)
	}
	if j.Spec() != "spec" {
		t.Errorf("Spec() = %v", j.Spec())
	}

	f, _ := st.Create("k2", "fig3.3", nil)
	st.Settle(f, nil, errors.New("boom"))
	if f.State() != StateFailed {
		t.Errorf("state = %s, want failed", f.State())
	}
	if s := f.Status(); s.Err != "boom" || s.Settled.IsZero() {
		t.Errorf("failed Status = %+v", s)
	}
}

func TestRetentionEvictsOldestSettled(t *testing.T) {
	st := NewStore(2, 0)
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, _ := st.Create(fmt.Sprintf("k%d", i), "fig3.3", nil)
		jobs = append(jobs, j)
	}
	if n := st.Settle(jobs[0], 0, nil); n != 0 {
		t.Errorf("evicted %d on first settle, want 0", n)
	}
	st.Settle(jobs[1], 1, nil)
	if n := st.Settle(jobs[2], 2, nil); n != 1 {
		t.Errorf("evicted %d on third settle, want 1", n)
	}
	if _, ok := st.Get(jobs[0].ID()); ok {
		t.Error("oldest settled job survived retention")
	}
	if _, ok := st.Get(jobs[1].ID()); !ok {
		t.Error("second settled job evicted too early")
	}
	// The never-settled job is untouchable by retention.
	if _, ok := st.Get(jobs[3].ID()); !ok {
		t.Error("unsettled job was evicted")
	}
	if st.Len() != 3 {
		t.Errorf("Len() = %d, want 3", st.Len())
	}
	// An evicted id can be re-created.
	if _, created := st.Create("k0", "fig3.3", nil); !created {
		t.Error("re-creating an evicted key did not create")
	}
}

func TestQueueFIFOAndLimit(t *testing.T) {
	st := NewStore(0, 2)
	a, _ := st.Create("a", "x", nil)
	b, _ := st.Create("b", "x", nil)
	c, _ := st.Create("c", "x", nil)
	if !st.Enqueue(a) || !st.Enqueue(b) {
		t.Fatal("enqueue within limit refused")
	}
	if st.Enqueue(c) {
		t.Fatal("enqueue beyond limit accepted")
	}
	if st.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", st.QueueLen())
	}
	if j, ok := st.Dequeue(); !ok || j != a {
		t.Errorf("first Dequeue = %v, want job a", j)
	}
	if j, ok := st.Dequeue(); !ok || j != b {
		t.Errorf("second Dequeue = %v, want job b", j)
	}
	if _, ok := st.Dequeue(); ok {
		t.Error("Dequeue on empty queue reported ok")
	}
}

func TestDropClearsEveryStructure(t *testing.T) {
	st := NewStore(0, 0)
	j, _ := st.Create("k", "x", nil)
	st.Enqueue(j)
	st.Drop(j)
	if _, ok := st.Get(j.ID()); ok {
		t.Error("dropped job still resolvable")
	}
	if st.QueueLen() != 0 {
		t.Error("dropped job still queued")
	}
	if len(st.List()) != 0 {
		t.Error("dropped job still listed")
	}
	// Dropping a failed (settled) job frees the key for a retry.
	f, _ := st.Create("k", "x", nil)
	st.Settle(f, nil, errors.New("boom"))
	st.Drop(f)
	if _, created := st.Create("k", "x", nil); !created {
		t.Error("retry after dropping a failed job did not create")
	}
}

func TestListCreationOrder(t *testing.T) {
	st := NewStore(0, 0)
	for i := 0; i < 3; i++ {
		st.Create(fmt.Sprintf("k%d", i), "x", nil)
	}
	list := st.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d, want 3", len(list))
	}
	for i, s := range list {
		if want := IDFor(fmt.Sprintf("k%d", i)); s.ID != want {
			t.Errorf("List[%d].ID = %s, want %s", i, s.ID, want)
		}
	}
}
