// Package lint assembles the vplint analyzer suite and runs it over
// loaded packages. It is the engine behind cmd/vplint and `make lint`.
//
// # Suppressing a false positive
//
// A diagnostic can be silenced with a directive comment naming the
// analyzer and giving a reason:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The directive applies to diagnostics on its own line or on the line
// immediately below it (so it can sit on its own line above a long
// statement). `//lint:ignore all <reason>` silences every analyzer. The
// reason is mandatory: a directive without one suppresses nothing and is
// itself reported as a diagnostic (analyzer "lint"), as is a directive
// naming an analyzer that is not in the suite. The pre-PR-7 spelling
// `//vplint:ignore` is accepted as a legacy alias with the same grammar.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"valuepred/internal/lint/aliaslint"
	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/ctxlint"
	"valuepred/internal/lint/detlint"
	"valuepred/internal/lint/doclint"
	"valuepred/internal/lint/errlint"
	"valuepred/internal/lint/keyedlint"
	"valuepred/internal/lint/loader"
	"valuepred/internal/lint/mutexlint"
	"valuepred/internal/lint/poollint"
)

// Analyzers returns the full vplint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		aliaslint.Analyzer,
		ctxlint.Analyzer,
		detlint.Analyzer,
		doclint.Analyzer,
		errlint.Analyzer,
		keyedlint.Analyzer,
		mutexlint.Analyzer,
		poollint.Analyzer,
	}
}

// Diagnostic is one resolved finding.
type Diagnostic struct {
	// Analyzer is the name of the check that fired ("lint" for a
	// malformed suppression directive).
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run loads the packages matched by patterns relative to dir, applies the
// given analyzers, filters out suppressed findings and returns the rest —
// plus one diagnostic per malformed suppression directive — sorted by
// position. Packages are analyzed in dependency order and share one fact
// store, so analyzers see facts exported by the packages a target imports.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Directive validation is checked against the full suite, not the
	// possibly -only-filtered selection: a directive naming a deselected
	// analyzer is fine, one naming a nonexistent analyzer is a typo that
	// would silently suppress nothing.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	facts := analysis.NewFactStore()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := suppressions(pkg, known)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.matches(a.Name, pos) {
					return
				}
				diags = append(diags, Diagnostic{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppression records one well-formed ignore directive.
type suppression struct {
	file      string
	line      int
	analyzers map[string]bool // nil means "all"
}

type suppressionSet []suppression

// directives are the accepted spellings; the first is canonical, the
// second the pre-PR-7 legacy alias.
var directives = []string{"//lint:ignore", "//vplint:ignore"}

// suppressions collects the ignore directives of every file in pkg. A
// directive missing its reason, or naming an analyzer outside the suite,
// is returned as a diagnostic instead of a suppression: it silences
// nothing.
func suppressions(pkg *loader.Package, known map[string]bool) (suppressionSet, []Diagnostic) {
	var set suppressionSet
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				var rest string
				matched := false
				for _, d := range directives {
					if c.Text == d || strings.HasPrefix(c.Text, d+" ") || strings.HasPrefix(c.Text, d+"\t") {
						rest = strings.TrimPrefix(c.Text, d)
						matched = true
						break
					}
				}
				if !matched {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				report := func(format string, args ...any) {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf(format, args...),
					})
				}
				if len(fields) == 0 {
					report("suppression directive names no analyzer; use //lint:ignore <analyzer> <reason>")
					continue
				}
				if len(fields) < 2 {
					report("suppression directive has no reason and suppresses nothing; use //lint:ignore %s <reason>", fields[0])
					continue
				}
				s := suppression{file: pos.Filename, line: pos.Line}
				if fields[0] != "all" {
					s.analyzers = make(map[string]bool)
					ok := true
					for _, name := range strings.Split(fields[0], ",") {
						if !known[name] {
							report("suppression directive names unknown analyzer %q (run vplint -list)", name)
							ok = false
							break
						}
						s.analyzers[name] = true
					}
					if !ok {
						continue
					}
				}
				set = append(set, s)
			}
		}
	}
	return set, bad
}

// matches reports whether a diagnostic from the named analyzer at pos is
// covered by a directive on the same line or the line above.
func (set suppressionSet) matches(name string, pos token.Position) bool {
	for _, s := range set {
		if s.file != pos.Filename {
			continue
		}
		if s.line != pos.Line && s.line != pos.Line-1 {
			continue
		}
		if s.analyzers == nil || s.analyzers[name] {
			return true
		}
	}
	return false
}
