// Package lint assembles the vplint analyzer suite and runs it over
// loaded packages. It is the engine behind cmd/vplint and `make lint`.
//
// # Suppressing a false positive
//
// A diagnostic can be silenced with a directive comment naming the
// analyzer and giving a reason:
//
//	go st.Preload(names, seed, n) //vplint:ignore errlint re-reported by the foreground Get
//
// The directive applies to diagnostics on its own line or on the line
// immediately below it (so it can sit on its own line above a long
// statement). `//vplint:ignore all <reason>` silences every analyzer.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/detlint"
	"valuepred/internal/lint/doclint"
	"valuepred/internal/lint/errlint"
	"valuepred/internal/lint/keyedlint"
	"valuepred/internal/lint/loader"
	"valuepred/internal/lint/mutexlint"
)

// Analyzers returns the full vplint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detlint.Analyzer,
		doclint.Analyzer,
		errlint.Analyzer,
		keyedlint.Analyzer,
		mutexlint.Analyzer,
	}
}

// Diagnostic is one resolved finding.
type Diagnostic struct {
	// Analyzer is the name of the check that fired.
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run loads the packages matched by patterns relative to dir, applies the
// given analyzers, filters out suppressed findings and returns the rest
// sorted by position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := suppressions(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.matches(a.Name, pos) {
					return
				}
				diags = append(diags, Diagnostic{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppression records one //vplint:ignore directive.
type suppression struct {
	file      string
	line      int
	analyzers map[string]bool // nil means "all"
}

type suppressionSet []suppression

const directive = "//vplint:ignore"

// suppressions collects the ignore directives of every file in pkg.
func suppressions(pkg *loader.Package) suppressionSet {
	var set suppressionSet
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directive))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				s := suppression{
					file: pkg.Fset.Position(c.Pos()).Filename,
					line: pkg.Fset.Position(c.Pos()).Line,
				}
				if fields[0] != "all" {
					s.analyzers = make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						s.analyzers[name] = true
					}
				}
				set = append(set, s)
			}
		}
	}
	return set
}

// matches reports whether a diagnostic from the named analyzer at pos is
// covered by a directive on the same line or the line above.
func (set suppressionSet) matches(name string, pos token.Position) bool {
	for _, s := range set {
		if s.file != pos.Filename {
			continue
		}
		if s.line != pos.Line && s.line != pos.Line-1 {
			continue
		}
		if s.analyzers == nil || s.analyzers[name] {
			return true
		}
	}
	return false
}
