// Package ctxlint enforces the cooperative-cancellation discipline of the
// request and cell paths (DESIGN.md §11–§12): vpserve's per-run timeouts
// and graceful drain only work because every layer between the HTTP
// handler and the simulation checkpoints passes one context down and
// checks it between units of work. Inside the registry's ctx-scoped
// packages (serve, plan, experiment):
//
//   - a function that takes a context.Context must take it as its first
//     parameter (the Go convention every caller and wrapper relies on;
//     a buried ctx parameter is how a wrapper ends up threading the wrong
//     context);
//   - context.Background() and context.TODO() are forbidden — a request
//     or cell path that mints its own root context detaches itself from
//     the caller's cancellation. The rare legitimate root (a server's
//     base context, a nil-ctx compatibility default) carries a
//     //lint:ignore ctxlint <reason> directive;
//   - a loop that calls a RunCtx-style API (a function or method whose
//     name ends in "Ctx") must check ctx.Err() or select on ctx.Done()
//     in its body: each iteration launches cancellable work, so the loop
//     itself must be able to stop between iterations instead of feeding
//     an aborted run another cell.
package ctxlint

import (
	"go/ast"
	"go/types"
	"strings"

	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/scope"
)

// Analyzer is the cancellation-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxlint",
	Doc: "in the request/cell-path packages: context.Context must be the first " +
		"parameter, context.Background()/TODO() are forbidden (suppress a " +
		"legitimate root with a reasoned //lint:ignore), and loops calling " +
		"*Ctx APIs must check ctx.Err() or ctx.Done() between iterations",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Member(scope.Ctx, pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkParamOrder(pass, n.Type)
		case *ast.FuncLit:
			checkParamOrder(pass, n.Type)
		case *ast.CallExpr:
			checkRootContext(pass, n)
		case *ast.ForStmt:
			checkLoop(pass, n, n.Body)
		case *ast.RangeStmt:
			checkLoop(pass, n, n.Body)
		}
		return true
	})
	return nil, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkParamOrder flags context.Context parameters that are not first.
func checkParamOrder(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		if t != nil && isContextType(t) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter, not parameter %d", idx+1)
		}
		idx += n
	}
}

// checkRootContext flags context.Background() and context.TODO().
func checkRootContext(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		pass.Reportf(call.Pos(),
			"context.%s mints a root context inside a request/cell path, detaching it from the caller's cancellation; thread the caller's ctx instead", fn.Name())
	}
}

// checkLoop requires a cancellation check in loops that call *Ctx APIs.
func checkLoop(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt) {
	var callee string
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure runs on its own schedule
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return true
		}
		if strings.HasSuffix(name, "Ctx") && len(name) > len("Ctx") {
			callee = name
			return false
		}
		return true
	})
	if callee == "" {
		return
	}
	if hasCtxGuard(pass, body) {
		return
	}
	pass.Reportf(loop.Pos(),
		"loop calls %s without checking ctx.Err() or ctx.Done() between iterations; a canceled run would keep launching work", callee)
}

// hasCtxGuard reports whether body references Err or Done on a
// context-typed value (an `if ctx.Err() != nil` checkpoint or a select on
// ctx.Done()).
func hasCtxGuard(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}
