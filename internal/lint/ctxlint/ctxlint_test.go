package ctxlint_test

import (
	"testing"

	"valuepred/internal/lint/analysistest"
	"valuepred/internal/lint/ctxlint"
)

// TestCtxlint runs the fixture module: guarded loops and ctx-first
// signatures accepted, buried/minted/unguarded contexts rejected, and the
// out-of-scope package left silent.
func TestCtxlint(t *testing.T) {
	analysistest.Run(t, "testdata", ctxlint.Analyzer, "./...")
}
