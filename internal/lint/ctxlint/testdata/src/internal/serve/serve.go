// Package serve is the ctxlint fixture: request-path code that must
// thread one cancellation context end to end. Each rule has an accepting
// and a rejecting case.
package serve

import "context"

// RunCtx stands in for the cancellable simulation entry point.
func RunCtx(ctx context.Context, id string) error { return ctx.Err() }

// goodFirst threads the caller's context, first parameter, loop guarded.
func goodFirst(ctx context.Context, ids []string) error {
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := RunCtx(ctx, id); err != nil {
			return err
		}
	}
	return nil
}

// goodSelectLoop guards with a select on Done instead of Err.
func goodSelectLoop(ctx context.Context, ids []string) error {
	for _, id := range ids {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := RunCtx(ctx, id); err != nil {
			return err
		}
	}
	return nil
}

// badSecond buries the context behind another parameter.
func badSecond(id string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	return RunCtx(ctx, id)
}

// badLitSecond is the same violation in a function literal.
var badLitSecond = func(id string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	return RunCtx(ctx, id)
}

// badRoot mints a root context mid-request.
func badRoot(id string) error {
	return RunCtx(context.Background(), id) // want `context\.Background mints a root context`
}

// badTODO hides behind TODO.
func badTODO(id string) error {
	return RunCtx(context.TODO(), id) // want `context\.TODO mints a root context`
}

// badUnguardedLoop keeps feeding an aborted run more cells.
func badUnguardedLoop(ctx context.Context, ids []string) error {
	for _, id := range ids { // want `loop calls RunCtx without checking ctx\.Err\(\) or ctx\.Done\(\)`
		if err := RunCtx(ctx, id); err != nil {
			return err
		}
	}
	return nil
}

// goodNoCtxLoop calls nothing cancellable; no guard required.
func goodNoCtxLoop(ids []string) int {
	n := 0
	for range ids {
		n++
	}
	return n
}
