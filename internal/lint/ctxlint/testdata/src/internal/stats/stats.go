// Package stats is the ctxlint fixture's out-of-scope package: it is not
// on a request or cell path, so the same shapes draw no diagnostics.
package stats

import "context"

// LoadCtx is free to sit second here: the package is outside the ctx
// contract.
func LoadCtx(path string, ctx context.Context) error {
	return RefreshCtx(context.Background(), path)
}

// RefreshCtx loops unguarded, legally.
func RefreshCtx(ctx context.Context, path string) error {
	for i := 0; i < 3; i++ {
		if err := LoadCtx(path, ctx); err != nil {
			return err
		}
	}
	return nil
}
