// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract: a line that should
// trigger a diagnostic carries a comment of the form
//
//	bad() // want `regexp`
//
// (one backquoted regexp per expected diagnostic on that line). Every
// diagnostic must match a want on its line and every want must be matched,
// otherwise the test fails with the full mismatch list.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/loader"
)

// wantRe extracts the backquoted expectations of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one want on one line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads patterns from dir/src (a self-contained fixture module),
// applies a, and diffs diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := loader.Load(filepath.Join(dir, "src"), patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	// One fact store for the whole fixture module: the loader returns
	// packages dependency-first, so facts exported by a declaring package
	// are visible to the fixture packages importing it, exactly as in the
	// real driver.
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		wants := collectWants(t, pkg)
		var unexpected []string
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			for i := range wants {
				w := &wants[i]
				if w.matched || w.file != pos.Filename || w.line != pos.Line {
					continue
				}
				if w.pattern.MatchString(d.Message) {
					w.matched = true
					return
				}
			}
			unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		for _, u := range unexpected {
			t.Error(u)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.pattern)
			}
		}
	}
}

// collectWants parses the want comments of every file in pkg.
func collectWants(t *testing.T, pkg *loader.Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if !strings.HasPrefix(c.Text, "//") || idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}
