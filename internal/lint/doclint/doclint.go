// Package doclint enforces the repository's package-documentation
// contract: every package under an internal/ or cmd/ directory must carry
// a package doc comment, and the comment must open with the godoc
// convention — "Package <name> ..." for libraries, "Command <name> ..."
// for main packages (named after the command's directory). The doc
// comment is the first thing a reader meets in godoc and in the source;
// packages outside internal/ and cmd/ (fixtures, the module facade) are
// left to taste.
package doclint

import (
	"go/ast"
	"path"
	"strings"

	"valuepred/internal/lint/analysis"
)

// Analyzer is the package-documentation check.
var Analyzer = &analysis.Analyzer{
	Name: "doclint",
	Doc: "require a package doc comment starting \"Package <name>\" " +
		"(or \"Command <name>\" for main packages) on every internal/* " +
		"and cmd/* package",
	Run: run,
}

// inScope reports whether pkgPath lies under an internal/ or cmd/
// directory: some strict parent segment of the import path is "internal"
// or "cmd".
func inScope(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	for _, s := range segs[:len(segs)-1] {
		if s == "internal" || s == "cmd" {
			return true
		}
	}
	return false
}

// wantPrefix is the mandated opening of the package's doc comment.
func wantPrefix(pass *analysis.Pass) string {
	if pass.Pkg.Name() == "main" {
		return "Command " + path.Base(pass.Pkg.Path())
	}
	return "Package " + pass.Pkg.Name()
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	want := wantPrefix(pass)
	var docs []*ast.File
	for _, f := range pass.Files {
		if f.Doc != nil {
			docs = append(docs, f)
		}
	}
	if len(docs) == 0 {
		// The loader hands files over in go list order; anchor the
		// diagnostic on the first package clause so it has a stable home.
		pass.Reportf(pass.Files[0].Name.Pos(),
			"package %s has no package doc comment; add one starting %q",
			pass.Pkg.Name(), want)
		return nil, nil
	}
	for _, f := range docs {
		text := f.Doc.Text()
		if text == want || strings.HasPrefix(text, want+" ") ||
			strings.HasPrefix(text, want+"\n") ||
			strings.HasPrefix(text, want+".") ||
			strings.HasPrefix(text, want+",") {
			continue
		}
		pass.Reportf(f.Doc.Pos(), "package doc comment should start %q", want)
	}
	return nil, nil
}
