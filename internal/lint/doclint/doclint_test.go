package doclint_test

import (
	"testing"

	"valuepred/internal/lint/analysistest"
	"valuepred/internal/lint/doclint"
)

func TestDoclint(t *testing.T) {
	analysistest.Run(t, "testdata", doclint.Analyzer, "./...")
}
