// Command tool is a conforming main package: its doc names the command
// after the directory, not the package.
package main

func main() {}
