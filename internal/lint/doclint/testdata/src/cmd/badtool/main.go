// Package main uses the library convention on a command. // want `package doc comment should start "Command badtool"`
package main

func main() {}
