package plain

// V exists so the package is not empty: plain sits outside internal/ and
// cmd/, so doclint leaves its missing package doc alone.
var V int
