// The streaming window over a chunk cursor. // want `package doc comment should start "Package chunk"`
package chunk

// Window exists so the second doc-carrying file is not empty: a stray
// doc comment on a non-doc.go file must still open with the convention.
type Window struct{}
