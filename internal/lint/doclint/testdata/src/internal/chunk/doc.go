// Package chunk mirrors the real streaming-chunk package's documentation
// shape: the package doc opens with the godoc convention and states the
// memory-ownership contract its types live by, so the fixture pins the
// exact comment style DESIGN.md §13 mandates for the streaming pipeline.
package chunk

// Chunk is a pooled, reusable record buffer. Ownership transfers to the
// consumer until it is released back to the pool.
type Chunk struct{}
