// Package mispelt opens with the wrong package name. // want `package doc comment should start "Package wrongname"`
package wrongname

// V exists so the package is not empty.
var V int
