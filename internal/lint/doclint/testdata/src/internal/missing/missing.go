package missing // want `package missing has no package doc comment`

// V exists so the package is not empty.
var V int
