// Package documented carries a conforming doc comment and stays quiet.
package documented

// V exists so the package is not empty.
var V int
