package documented

// W lives in a second, deliberately undocumented file; the package doc in
// doc.go covers the package.
var W int
