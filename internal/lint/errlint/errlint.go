// Package errlint flags discarded error returns from the result-integrity
// packages: stats, tracestore, experiment and plan. Those errors are the
// mechanism by which a malformed run fails loudly — AverageTables rejects
// shape mismatches, the trace store surfaces generation failures, Run
// reports unknown experiments, the plan runner reports the first failed
// cell — and a caller that drops one silently converts a detectable
// corruption into a wrong number in a table.
package errlint

import (
	"go/ast"
	"go/types"

	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/scope"
)

// Analyzer is the ignored-error check.
var Analyzer = &analysis.Analyzer{
	Name: "errlint",
	Doc: "flag error returns from the stats, tracestore, experiment and plan packages " +
		"that are discarded (call used as a statement, go/defer call, or error " +
		"result assigned to the blank identifier)",
	Run: run,
}

// fromTarget reports whether fn belongs to a package whose error returns
// must be consumed. The member list lives in the shared scoping registry
// (internal/lint/scope, contract scope.Errors); like every registry
// contract it matches internal packages of this module and of test
// fixture modules alike.
func fromTarget(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return scope.Member(scope.Errors, fn.Pkg().Path())
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDropped(pass, call, "is discarded")
			}
		case *ast.GoStmt:
			checkDropped(pass, n.Call, "is unobservable in a go statement; recover it on the foreground path")
		case *ast.DeferStmt:
			checkDropped(pass, n.Call, "is discarded by defer; wrap it in a closure that checks the error")
		case *ast.AssignStmt:
			checkBlankAssign(pass, n)
		}
		return true
	})
	return nil, nil
}

// callee resolves the static callee of a direct call, or nil for calls
// through function values, builtins and conversions.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

var errType = types.Universe.Lookup("error").Type()

// errorResults returns the indices of error-typed results of fn's
// signature.
func errorResults(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

func checkDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := callee(pass, call)
	if !fromTarget(fn) {
		return
	}
	if len(errorResults(fn)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s.%s %s", fn.Pkg().Name(), fn.Name(), how)
}

// checkBlankAssign flags `_`-discards of error results in assignments
// whose right side is a single call into a target package, e.g.
// `v, _ := stats.AverageTables(ts)`.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := callee(pass, call)
	if !fromTarget(fn) {
		return
	}
	for _, i := range errorResults(fn) {
		if i >= len(as.Lhs) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(id.Pos(), "error returned by %s.%s is assigned to the blank identifier", fn.Pkg().Name(), fn.Name())
		}
	}
}
