package errlint_test

import (
	"testing"

	"valuepred/internal/lint/analysistest"
	"valuepred/internal/lint/errlint"
)

func TestErrlint(t *testing.T) {
	analysistest.Run(t, "testdata", errlint.Analyzer, "./...")
}
