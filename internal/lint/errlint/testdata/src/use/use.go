// Package use calls into the fixture stats/tracestore packages, dropping
// some of their errors.
package use

import (
	"fix/internal/plan"
	"fix/internal/stats"
	"fix/internal/tracestore"
)

func Bad(t *stats.Table) {
	t.Render()                       // want `error returned by stats\.Render is discarded`
	stats.AverageTables(nil)         // want `error returned by stats\.AverageTables is discarded`
	_, _ = stats.AverageTables(nil)  // want `error returned by stats\.AverageTables is assigned to the blank identifier`
	go tracestore.Preload(nil)       // want `error returned by tracestore\.Preload is unobservable in a go statement`
	defer tracestore.Preload(nil)    // want `error returned by tracestore\.Preload is discarded by defer`
	plan.Run(nil)                    // want `error returned by plan\.Run is discarded`
	_, _ = plan.Run(nil)             // want `error returned by plan\.Run is assigned to the blank identifier`
}

func Good(t *stats.Table) error {
	t.AddRow("go") // no error result: fine
	if err := t.Render(); err != nil {
		return err
	}
	avg, err := stats.AverageTables(nil)
	if err != nil {
		return err
	}
	_ = avg // discarding the value is fine; only the error is load-bearing
	if res, err := plan.Run(nil); err != nil || res == nil {
		return err
	}
	return tracestore.Preload(nil)
}
