// Package tracestore mimics the real trace store's error-returning API.
package tracestore

// Preload mimics the concurrent cache warmer.
func Preload(names []string) error { return nil }
