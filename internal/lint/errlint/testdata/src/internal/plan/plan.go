// Package plan mimics the real execution engine's error-returning API.
package plan

// Grid mimes the declarative cell set.
type Grid struct{}

// Run mimics the bounded parallel runner: the returned error carries the
// first failed cell in canonical order.
func Run(g *Grid) ([]any, error) { return nil, nil }
