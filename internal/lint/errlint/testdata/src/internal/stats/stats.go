// Package stats mimics the shape of the real stats package: table
// rendering and aggregation APIs whose errors report result corruption.
package stats

// Table is a stand-in result table.
type Table struct{}

// Render pretends to write the table somewhere.
func (t *Table) Render() error { return nil }

// AddRow returns nothing; statements calling it are fine.
func (t *Table) AddRow(label string) {}

// AverageTables mimics the shape-checking aggregator.
func AverageTables(tables []*Table) (*Table, error) { return nil, nil }
