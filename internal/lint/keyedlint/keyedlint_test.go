package keyedlint_test

import (
	"testing"

	"valuepred/internal/lint/analysistest"
	"valuepred/internal/lint/keyedlint"
)

func TestKeyedlint(t *testing.T) {
	analysistest.Run(t, "testdata", keyedlint.Analyzer, "./...")
}
