// Package keyed exercises the keyed-config-literal rule.
package keyed

// Config mimics a machine configuration: a bag of same-typed knobs where
// positional literals silently swap parameters if fields are reordered.
type Config struct {
	FetchWidth int
	WindowSize int
}

// TCConfig mimics the trace-cache configuration.
type TCConfig struct {
	Entries      int
	MaxLineInsts int
}

// Params mimics experiment.Params, which the rule names explicitly.
type Params struct {
	Seed     int64
	TraceLen int
}

// point is unexported and not configuration; positional fields are fine.
type point struct{ x, y int }

// Options does not match the naming rule.
type Options struct{ A, B int }

func Bad() []any {
	return []any{
		Config{4, 40},      // want `unkeyed fields in composite literal of Config`
		TCConfig{64, 32},   // want `unkeyed fields in composite literal of TCConfig`
		Params{1, 200000},  // want `unkeyed fields in composite literal of Params`
		&Config{8, 40},     // want `unkeyed fields in composite literal of Config`
	}
}

func Good() []any {
	return []any{
		Config{FetchWidth: 4, WindowSize: 40},
		Config{},
		TCConfig{Entries: 64},
		point{1, 2},
		Options{1, 2},
		[]int{1, 2, 3},
		map[string]int{"a": 1},
	}
}
