// Package keyedlint requires keyed composite literals for configuration
// struct types. A machine configuration like pipeline.Config or
// fetch.TCConfig is a bag of same-typed integers (widths, window sizes,
// penalties); an unkeyed literal binds them by position, so reordering the
// struct's fields silently swaps machine parameters and every regenerated
// table changes meaning without a compile error.
package keyedlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"valuepred/internal/lint/analysis"
)

// Analyzer is the keyed-config-literal check.
var Analyzer = &analysis.Analyzer{
	Name: "keyedlint",
	Doc: "require keyed fields in composite literals of exported configuration " +
		"struct types (names ending in \"Config\", plus experiment Params)",
	Run: run,
}

// configType reports whether a composite literal of the named struct type
// must use keyed fields: exported, and named like a configuration.
func configType(name string) bool {
	if name == "" || !token.IsExported(name) {
		return false
	}
	return strings.HasSuffix(name, "Config") || name == "Params"
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok {
			return true
		}
		named, ok := types.Unalias(tv.Type).(*types.Named)
		if !ok {
			return true
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			return true
		}
		if !configType(named.Obj().Name()) {
			return true
		}
		for _, elt := range lit.Elts {
			if _, keyed := elt.(*ast.KeyValueExpr); !keyed {
				pass.Reportf(lit.Pos(),
					"unkeyed fields in composite literal of %s: field order encodes machine parameters, use keyed fields",
					named.Obj().Name())
				break
			}
		}
		return true
	})
	return nil, nil
}
