// Package loader loads and type-checks Go packages for the lint suite
// without golang.org/x/tools/go/packages (the build environment is
// offline). It shells out to `go list -deps -export -json`, which compiles
// dependencies and reports the export-data file of every package in the
// build cache, then parses only the target packages from source and
// type-checks them with the standard gc importer reading those export
// files. The result is full go/types information for every package matched
// by the patterns, with real source positions for diagnostics.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Fset is the file set shared by every package of the same Load call.
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records types and objects for every expression.
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns, resolving them
// relative to dir (the module to analyze). Test files are not loaded: the
// lint contract covers shipped simulator code, and `go vet` already runs
// over the tests in the same `make check` gate.
//
// Packages are returned in dependency order — every package sorts after
// the packages it imports (ties broken by import path) — so a driver that
// walks the slice front to back sees a package only after all of its
// analyzed dependencies. Cross-package analysis facts (see
// internal/lint/analysis.FactStore) rely on this ordering.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// GOWORK=off keeps a workspace file in a parent directory from pulling
	// unrelated modules into the fixture loads under testdata.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	targets = sortDeps(targets)

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("loader: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// sortDeps orders targets dependency-first: a package appears after every
// target it (transitively) imports. The walk visits packages in import-path
// order and each package's imports in sorted order, so the result is
// deterministic for a given package set regardless of `go list` output
// order.
func sortDeps(targets []listPackage) []listPackage {
	byPath := make(map[string]*listPackage, len(targets))
	paths := make([]string, 0, len(targets))
	for i := range targets {
		byPath[targets[i].ImportPath] = &targets[i]
		paths = append(paths, targets[i].ImportPath)
	}
	sort.Strings(paths)

	sorted := make([]listPackage, 0, len(targets))
	visited := make(map[string]bool, len(targets))
	var visit func(path string)
	visit = func(path string) {
		p, ok := byPath[path]
		if !ok || visited[path] {
			return // not a target (dep-only, stdlib) or already placed
		}
		visited[path] = true
		imports := append([]string(nil), p.Imports...)
		sort.Strings(imports)
		for _, imp := range imports {
			visit(imp)
		}
		sorted = append(sorted, *p)
	}
	for _, path := range paths {
		visit(path)
	}
	return sorted
}
