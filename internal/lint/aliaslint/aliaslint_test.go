package aliaslint_test

import (
	"testing"

	"valuepred/internal/lint/aliaslint"
	"valuepred/internal/lint/analysistest"
)

// TestAliaslint runs the fixture module: the declaring package (owner
// exemption, every same-package rule), the importing package (facts across
// the package boundary) and the out-of-scope package (no diagnostics).
func TestAliaslint(t *testing.T) {
	analysistest.Run(t, "testdata", aliaslint.Analyzer, "./...")
}
