// Package stats is the aliaslint fixture's out-of-scope package: it is
// not in the registry's alias contract, so even a marked view may be
// violated here without a diagnostic (the file proves the analyzer's
// scoping, i.e. that the check can pass as well as fail).
package stats

// Row carries a marked view that the alias contract nevertheless does not
// guard in this package.
type Row struct {
	Cells []float64 //lint:view
}

// Mutate would be three diagnostics inside the alias scope; here it must
// be silent.
func Mutate(r Row) {
	r.Cells = append(r.Cells, 1)
	r.Cells[0] = 2
	copy(r.Cells, r.Cells)
}
