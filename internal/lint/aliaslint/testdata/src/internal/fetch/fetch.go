// Package fetch is the aliaslint fixture's declaring package: it marks
// Group.Recs as a //lint:view slice, exercises the owner exemption (the
// declaring type's methods may manage the field) and carries same-package
// violations of every rule.
package fetch

// Rec stands in for trace.Rec.
type Rec struct {
	PC  uint64
	Val uint64
}

// Group is the delivered fetch group; Recs aliases the shared trace.
type Group struct {
	// Recs is a read-only window of the shared immutable trace.
	//lint:view
	Recs []Rec
	// Scratch is an ordinary owned slice: no marker, no restrictions.
	Scratch []Rec
}

// Engine owns a trace and delivers groups.
type Engine struct {
	recs []Rec
	pos  int
}

// NextGroup legally rebinds the view field: storing a window into a
// marked field is the construction idiom, not an escape.
func (e *Engine) NextGroup(n int) Group {
	start := e.pos
	e.pos += n
	g := Group{}
	g.Recs = e.recs[start:e.pos:e.pos]
	return g
}

// Reset is the owner exemption at work: Group's own methods may manage
// the marked field's backing storage.
func (g *Group) Reset() {
	g.Recs = append(g.Recs[:0], Rec{})
	g.Recs[0] = Rec{}
}

var leaked []Rec

// badAppend grows the view in place, clobbering the trace records that
// follow the delivered window.
func badAppend(g Group) {
	g.Recs = append(g.Recs, Rec{}) // want `append writes into g\.Recs, a read-only view`
}

// badElementWrite writes through the view.
func badElementWrite(g Group) {
	g.Recs[0] = Rec{} // want `assignment writes through g\.Recs, a read-only view`
}

// badFieldWrite writes one field of a viewed element.
func badFieldWrite(g Group) {
	g.Recs[0].Val = 7 // want `assignment writes through g\.Recs, a read-only view`
}

// badStore parks the view in a package variable, outliving the delivery.
func badStore(g Group) {
	leaked = g.Recs // want `view g\.Recs is stored in package variable leaked`
}

// holder is long-lived state a view must not escape into.
type holder struct {
	kept []Rec
}

// badFieldStore parks the view in an unmarked struct field.
func badFieldStore(h *holder, g Group) {
	h.kept = g.Recs // want `view g\.Recs is stored in struct field kept`
}

// badCapReslice reaches past the delivered window.
func badCapReslice(g Group) []Rec {
	return g.Recs[:cap(g.Recs)] // want `re-slicing g\.Recs to its capacity reaches past the delivered view`
}

// badGoCapture hands the view to a goroutine that outlives the delivery.
func badGoCapture(g Group, done chan struct{}) {
	go func() {
		_ = g.Recs[0] // want `view g\.Recs is captured by a goroutine`
		close(done)
	}()
}

// badTaintedLocal shows the taint propagation: a local rebound from the
// view is still the view.
func badTaintedLocal(g Group) {
	recs := g.Recs
	window := recs[1:]
	window[0] = Rec{} // want `assignment writes through window, a read-only view`
}

// goodReads exercises every legal consumption pattern: indexing, ranging,
// len/cap, sub-slicing within bounds, copying out, and appending the view
// as a *source* into a caller-owned destination.
func goodReads(g Group) (uint64, []Rec) {
	var sum uint64
	for _, r := range g.Recs {
		sum += r.Val
	}
	if len(g.Recs) > 0 {
		sum += g.Recs[0].Val
	}
	head := g.Recs[:1]
	out := make([]Rec, 0, len(g.Recs))
	out = append(out, g.Recs...)
	copy(out, head)
	g.Scratch = append(g.Scratch, Rec{}) // unmarked field: no restrictions
	g.Scratch[0] = Rec{}
	return sum, out
}
