// Package pipeline is the aliaslint fixture's consuming package: it
// imports the view-marked Group from fix/internal/fetch, proving that
// view-ness crosses package boundaries through the driver's fact store
// (the declaring package is analyzed first; this one reads its facts).
package pipeline

import "fix/internal/fetch"

// machine is long-lived per-run state.
type machine struct {
	pending []fetch.Rec
}

// badCrossPackageAppend appends into a view declared one package away.
func badCrossPackageAppend(g fetch.Group) {
	g.Recs = append(g.Recs, fetch.Rec{}) // want `append writes into g\.Recs, a read-only view`
}

// badCrossPackageStore parks a foreign view in machine state.
func (m *machine) badCrossPackageStore(g fetch.Group) {
	m.pending = g.Recs // want `view g\.Recs is stored in struct field pending`
}

// goodIngest consumes the view the way the real pipeline does: reads,
// ranges, and copies into owned storage.
func (m *machine) goodIngest(g fetch.Group) uint64 {
	var sum uint64
	for _, r := range g.Recs {
		sum += r.Val
	}
	m.pending = append(m.pending[:0], g.Recs...)
	return sum
}
