// Package aliaslint enforces the zero-copy ownership contract of
// DESIGN.md §12: slices marked with a `//lint:view` comment on their field
// declaration — fetch.Group.Recs and the network's reused group buffers —
// are read-only views aliasing memory someone else owns (the shared
// immutable trace, a reused per-cycle arena). Writing through such a view,
// appending into it, re-slicing it out to its capacity, parking it in a
// struct field or package variable, or capturing it in a goroutine all
// corrupt state that other cells, workers or cycles are concurrently
// reading — the exact class of bug PR 6 traded for its ~4200× allocation
// win when it replaced copies with conventions.
//
// The owning type itself is exempt: methods whose receiver is the type
// declaring a view field may manage that field's backing storage (the
// network rebuilds slots/prims every cycle; the fetch engines rebind
// Group.Recs per group). Everyone else treats the view as frozen.
//
// View-ness crosses package boundaries through the driver's fact store:
// analyzing the declaring package exports one fact per marked field, and
// consumer packages (analyzed later — the loader orders packages
// dependency-first) import them, so internal/pipeline cannot append into
// fetch.Group.Recs no matter which package the slice was declared in.
package aliaslint

import (
	"go/ast"
	"go/types"
	"strings"

	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/scope"
)

// Marker is the comment directive that declares a struct field to be a
// read-only view.
const Marker = "//lint:view"

// Analyzer is the view-ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "aliaslint",
	Doc: "forbid appending to, writing through, capacity re-slicing, storing " +
		"(struct field / package var) or goroutine capture of slices marked " +
		"//lint:view (read-only views of shared memory) inside the zero-copy " +
		"packages; the declaring type's own methods are exempt",
	Run: run,
}

// fieldKey returns the stable fact key of a struct field:
// "<pkg path>.<Type>.<Field>".
func fieldKey(pkgPath, typeName, field string) string {
	return pkgPath + "." + typeName + "." + field
}

func run(pass *analysis.Pass) (any, error) {
	// Export the view markers of this package unconditionally — a package
	// outside the alias scope may still declare views its consumers must
	// respect.
	exportMarkers(pass)
	if !scope.Member(scope.Alias, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// exportMarkers records a fact for every //lint:view-marked field declared
// in this package.
func exportMarkers(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					if !hasMarker(f) {
						continue
					}
					for _, name := range f.Names {
						pass.ExportFact(fieldKey(pass.Pkg.Path(), ts.Name.Name, name.Name), true)
					}
				}
			}
		}
	}
}

// hasMarker reports whether the field carries a //lint:view directive in
// its doc comment or line comment.
func hasMarker(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
				return true
			}
		}
	}
	return false
}

// viewField resolves sel to a view-marked struct field, returning the
// owning named type, or nil if sel is not a marked field selection.
func viewField(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Named {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return nil
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil
	}
	key := fieldKey(named.Obj().Pkg().Path(), named.Obj().Name(), field.Name())
	if _, marked := pass.ImportFact(key); !marked {
		return nil
	}
	return named
}

// checkFunc applies the view rules to one function. exempt is the named
// type (if any) whose views this function may legally manage: the method
// receiver's base type.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var exempt *types.Named
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			exempt = named
		}
	}
	tainted := taintedLocals(pass, fd, exempt)

	// isView reports whether e denotes a view: a marked field selection
	// (of a non-exempt owner), a view-tainted local, or a re-slice/paren
	// of either.
	var isView func(e ast.Expr) bool
	isView = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return isView(e.X)
		case *ast.SliceExpr:
			return isView(e.X)
		case *ast.SelectorExpr:
			owner := viewField(pass, e)
			return owner != nil && !sameNamed(owner, exempt)
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
				return tainted[v]
			}
		}
		return false
	}

	var inGo int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Everything referenced under the go statement — arguments and
			// the spawned body alike — outlives the current delivery.
			save := inGo
			inGo++
			ast.Inspect(n.Call, walk)
			inGo = save
			return false
		case *ast.CallExpr:
			checkCall(pass, n, isView)
		case *ast.AssignStmt:
			checkAssign(pass, n, isView)
		case *ast.SliceExpr:
			checkCapReslice(pass, n, isView)
		case *ast.SelectorExpr:
			if inGo > 0 {
				if owner := viewField(pass, n); owner != nil && !sameNamed(owner, exempt) {
					pass.Reportf(n.Pos(),
						"view %s.%s is captured by a goroutine that may outlive its delivery; copy the records instead", exprString(n.X), n.Sel.Name)
				}
			}
		case *ast.Ident:
			if inGo > 0 && isView(n) {
				pass.Reportf(n.Pos(),
					"view %s is captured by a goroutine that may outlive its delivery; copy the records instead", n.Name)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// taintedLocals computes the function's view-tainted local variables: a
// local assigned (directly, or through a re-slice) from a view expression
// is itself a view. The propagation iterates to a small fixpoint so chains
// of rebindings are caught.
func taintedLocals(pass *analysis.Pass, fd *ast.FuncDecl, exempt *types.Named) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	source := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.SelectorExpr:
				owner := viewField(pass, x)
				return owner != nil && !sameNamed(owner, exempt)
			case *ast.Ident:
				if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
					return tainted[v]
				}
				return false
			default:
				return false
			}
		}
	}
	for i := 0; i < 4; i++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !source(as.Rhs[j]) {
					continue
				}
				var v *types.Var
				if obj, ok := pass.TypesInfo.Defs[id]; ok {
					v, _ = obj.(*types.Var)
				} else if obj, ok := pass.TypesInfo.Uses[id]; ok {
					v, _ = obj.(*types.Var)
				}
				if v != nil && !tainted[v] {
					tainted[v] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return tainted
}

// checkCall flags append with a view as its destination.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, isView func(ast.Expr) bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
		return
	}
	if isView(call.Args[0]) {
		pass.Reportf(call.Pos(),
			"append writes into %s, a read-only view of shared memory; build the result in a caller-owned slice", exprString(call.Args[0]))
	}
}

// checkAssign flags element writes through a view and stores of a view
// into a struct field or package-level variable.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, isView func(ast.Expr) bool) {
	for _, lhs := range as.Lhs {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			if isView(l.X) {
				pass.Reportf(l.Pos(),
					"assignment writes through %s, a read-only view of shared memory", exprString(l.X))
			}
		case *ast.SelectorExpr:
			// view[i].F = v — writing a field of a viewed element.
			if idx, ok := l.X.(*ast.IndexExpr); ok && isView(idx.X) {
				pass.Reportf(l.Pos(),
					"assignment writes through %s, a read-only view of shared memory", exprString(idx.X))
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isView(rhs) {
			continue
		}
		switch l := as.Lhs[i].(type) {
		case *ast.SelectorExpr:
			// Storing into a field that is itself declared a view is the
			// construction idiom (engines rebind Group.Recs per group);
			// only escapes into unmarked fields are flagged.
			if viewField(pass, l) != nil {
				continue
			}
			if sel, ok := pass.TypesInfo.Selections[l]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(as.Pos(),
					"view %s is stored in struct field %s, outliving its delivery; copy the records instead", exprString(rhs), l.Sel.Name)
			}
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[l].(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				pass.Reportf(as.Pos(),
					"view %s is stored in package variable %s, outliving its delivery; copy the records instead", exprString(rhs), l.Name)
			}
		}
	}
}

// checkCapReslice flags re-slicing a view with a bound derived from its
// capacity: a capacity-capped view deliberately hides trailing records of
// the shared backing array, and cap-based re-slicing is the one slice
// operation that can reach past the delivered window.
func checkCapReslice(pass *analysis.Pass, se *ast.SliceExpr, isView func(ast.Expr) bool) {
	if !isView(se.X) {
		return
	}
	for _, bound := range []ast.Expr{se.High, se.Max} {
		if bound == nil {
			continue
		}
		usesCap := false
		ast.Inspect(bound, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cap" {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					usesCap = true
					return false
				}
			}
			return true
		})
		if usesCap {
			pass.Reportf(se.Pos(),
				"re-slicing %s to its capacity reaches past the delivered view into shared memory", exprString(se.X))
			return
		}
	}
}

// sameNamed reports whether two named types denote the same declaration,
// comparing their TypeName objects so the test is stable across
// type-checker instances.
func sameNamed(a, b *types.Named) bool {
	return a != nil && b != nil && a.Obj() == b.Obj()
}

// exprString renders a small expression for a diagnostic message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "the view"
}
