package scope

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestMember(t *testing.T) {
	for _, tc := range []struct {
		contract, path string
		want           bool
	}{
		{Determinism, "valuepred/internal/emu", true},
		{Determinism, "valuepred/internal/plan", true},
		{Determinism, "fix/internal/ideal", true}, // fixture modules match too
		{Determinism, "valuepred/internal/serve", false},
		{Determinism, "emu", false},            // no internal element
		{Determinism, "valuepred/cmd/vpsim", false},
		{Errors, "valuepred/internal/stats", true},
		{Errors, "valuepred/internal/fetch", false},
		{Alias, "valuepred/internal/fetch", true},
		{Alias, "valuepred/internal/core", true},
		{Alias, "valuepred/internal/trace", false},
		{Ctx, "valuepred/internal/serve", true},
		{Ctx, "valuepred/internal/experiment", true},
		{Ctx, "valuepred/internal/ideal", false},
		{"nosuch", "valuepred/internal/emu", false},
	} {
		if got := Member(tc.contract, tc.path); got != tc.want {
			t.Errorf("Member(%q, %q) = %v, want %v", tc.contract, tc.path, got, tc.want)
		}
	}
}

// repoInternalDirs walks up from the test's working directory to the
// module root (the go.mod declaring module valuepred) and returns the
// top-level internal/* directory names that contain at least one
// non-test Go file anywhere beneath them.
func repoInternalDirs(t *testing.T) []string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if b, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil &&
			strings.HasPrefix(string(b), "module valuepred") {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root with `module valuepred` not found above the test directory")
		}
		dir = parent
	}
	root := filepath.Join(dir, "internal")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		hasGo := false
		err := filepath.WalkDir(filepath.Join(root, e.Name()), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() && d.Name() == "testdata" {
				return filepath.SkipDir // fixture modules are not repo packages
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				hasGo = true
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if hasGo {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestRegistryCoversInternal is the scoping-drift gate: every internal/*
// package must either be a member of at least one lint contract or carry
// an explicit exemption with a reason. A new package (the next
// internal/stream, say) that is neither fails this test until its author
// decides — and records — which contracts bind it.
func TestRegistryCoversInternal(t *testing.T) {
	for _, name := range repoInternalDirs(t) {
		covered := Covered(name)
		reason, exempt := Exempt[name]
		switch {
		case covered && exempt:
			t.Errorf("internal/%s is both in a contract set and exempt (%q); pick one", name, reason)
		case !covered && !exempt:
			t.Errorf("internal/%s is in no lint contract and not exempt; add it to a scope set or to scope.Exempt with a reason", name)
		case exempt && strings.TrimSpace(reason) == "":
			t.Errorf("internal/%s is exempt without a reason", name)
		}
	}
}

// TestRegistryHasNoStaleEntries is the reverse drift direction: a set or
// exemption entry naming a package that no longer exists in the tree is
// dead weight that misleads the next reader.
func TestRegistryHasNoStaleEntries(t *testing.T) {
	have := make(map[string]bool)
	for _, name := range repoInternalDirs(t) {
		have[name] = true
	}
	for contract, set := range sets {
		for name := range set {
			if !have[name] {
				t.Errorf("scope set %q names internal/%s, which does not exist", contract, name)
			}
		}
	}
	for name := range Exempt {
		if !have[name] {
			t.Errorf("scope.Exempt names internal/%s, which does not exist", name)
		}
	}
}
