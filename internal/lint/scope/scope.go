// Package scope is the lint suite's single scoping registry: one table
// mapping each enforcement contract to the internal packages it binds.
// Before this package existed, detlint, errlint and their successors each
// carried a private hand-maintained package map, and every new simulator
// package (plan in PR 5, the pooled scratches in PR 6) had to be added to
// each map separately — a drift-prone ritual that TestRegistryCoversInternal
// now makes impossible to forget: every internal/* package must either be a
// member of at least one contract here or be listed in Exempt with a
// reason.
package scope

import "strings"

// Contract names. Each analyzer that is package-scoped declares which
// contract bounds it; analyzers that apply structurally everywhere
// (doclint, keyedlint, mutexlint) need no entry.
const (
	// Determinism binds the simulation packages whose outputs must be
	// bit-reproducible (detlint), and which therefore also carry the
	// pooled-scratch hygiene rules (poollint): nondeterministic pool reuse
	// is just another way to break reproducibility.
	Determinism = "determinism"
	// Errors binds the result-integrity packages whose error returns must
	// be consumed (errlint).
	Errors = "errors"
	// Alias binds the zero-copy packages where view-marked slices
	// (//lint:view) alias the shared immutable trace and must be treated
	// as read-only (aliaslint).
	Alias = "alias"
	// Ctx binds the request/cell-path packages where cancellation is
	// cooperative and context discipline is enforced (ctxlint).
	Ctx = "ctx"
)

// sets is the registry proper: contract → member package names. A package
// is named by the last element of its import path; membership additionally
// requires an "internal" element somewhere above it (see Member), so the
// same rule applies to this module and to test fixture modules.
var sets = map[string]map[string]bool{
	Determinism: {
		"emu": true, "fetch": true, "pipeline": true, "predictor": true,
		"experiment": true, "stats": true, "trace": true, "workload": true,
		"ideal": true, "dfg": true, "btb": true, "core": true, "obs": true,
		"tracestore": true, "plan": true, "chunk": true,
	},
	Errors: {
		"stats": true, "tracestore": true, "experiment": true, "plan": true,
		"jobs": true,
	},
	Alias: {
		"fetch": true, "core": true, "ideal": true, "pipeline": true,
		"chunk": true,
	},
	Ctx: {
		"serve": true, "plan": true, "experiment": true, "jobs": true,
	},
}

// Exempt lists the internal packages deliberately outside every contract,
// each with the reason a reviewer needs. An exemption covers the named
// top-level internal/<name> directory and everything beneath it.
var Exempt = map[string]string{
	"asm": "programmatic assembler for workload definitions: pure code " +
		"construction, runs before any simulation state exists",
	"isa": "instruction-set constants and pure decoders: stateless " +
		"functions of their inputs, nothing to make nondeterministic",
	"lint": "the analysis tooling itself: never on a result path, and its " +
		"own fixtures must be free to violate every contract",
}

// Member reports whether pkgPath is bound by the named contract: the path
// has an "internal" element and its last element is in the contract's set.
// An unknown contract name binds nothing.
func Member(contract, pkgPath string) bool {
	parts := strings.Split(pkgPath, "/")
	if !sets[contract][parts[len(parts)-1]] {
		return false
	}
	for _, p := range parts[:len(parts)-1] {
		if p == "internal" {
			return true
		}
	}
	return false
}

// Covered reports whether the bare package name belongs to at least one
// contract set.
func Covered(name string) bool {
	for _, set := range sets {
		if set[name] {
			return true
		}
	}
	return false
}

// Members returns the contract's member names (unordered); callers that
// print them must sort. Nil for an unknown contract.
func Members(contract string) map[string]bool { return sets[contract] }
