package mutexlint_test

import (
	"testing"

	"valuepred/internal/lint/analysistest"
	"valuepred/internal/lint/mutexlint"
)

func TestMutexlint(t *testing.T) {
	analysistest.Run(t, "testdata", mutexlint.Analyzer, "./...")
}
