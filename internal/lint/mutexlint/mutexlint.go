// Package mutexlint flags values of lock-carrying types — anything that
// transitively contains a sync.Mutex, sync.Once, sync.WaitGroup or a
// sync/atomic value type — being copied: passed or returned by value,
// assigned from an existing value, copied by a range clause, or handed to
// a call by value. The trace store's concurrency safety (singleflight
// dedup, LRU eviction) depends on every goroutine seeing the same mutex
// word; a copied lock guards nothing.
package mutexlint

import (
	"go/ast"
	"go/types"

	"valuepred/internal/lint/analysis"
)

// Analyzer is the lock-copy check.
var Analyzer = &analysis.Analyzer{
	Name: "mutexlint",
	Doc: "flag by-value copies of types containing sync.Mutex, sync.RWMutex, " +
		"sync.Once, sync.WaitGroup, sync.Cond, sync.Map, sync.Pool or " +
		"sync/atomic value types",
	Run: run,
}

// syncTypes and atomicTypes are the primitive lock-carrying types.
var syncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
	"Cond": true, "Map": true, "Pool": true,
}

var atomicTypes = map[string]bool{
	"Value": true, "Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true, "Pointer": true,
}

type checker struct {
	pass *analysis.Pass
	memo map[types.Type]bool
}

// containsLock reports whether a value of type t embeds a lock by value,
// directly or through struct fields and array elements. Pointers, slices,
// maps and channels reference their payload, so they copy safely.
func (c *checker) containsLock(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // break cycles in recursive types
	result := false
	switch u := t.(type) {
	case *types.Alias:
		result = c.containsLock(types.Unalias(t))
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				result = syncTypes[obj.Name()]
			case "sync/atomic":
				result = atomicTypes[obj.Name()]
			}
		}
		if !result {
			result = c.containsLock(u.Underlying())
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsLock(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = c.containsLock(u.Elem())
	}
	c.memo[t] = result
	return result
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, memo: make(map[types.Type]bool)}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				c.checkFieldList(n.Recv, "receiver")
			}
			c.checkFuncType(n.Type)
		case *ast.FuncLit:
			c.checkFuncType(n.Type)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.RangeStmt:
			c.checkRange(n)
		case *ast.CallExpr:
			c.checkCallArgs(n)
		}
		return true
	})
	return nil, nil
}

func (c *checker) checkFuncType(ft *ast.FuncType) {
	c.checkFieldList(ft.Params, "parameter")
	if ft.Results != nil {
		c.checkFieldList(ft.Results, "result")
	}
}

func (c *checker) checkFieldList(fl *ast.FieldList, kind string) {
	for _, f := range fl.List {
		tv, ok := c.pass.TypesInfo.Types[f.Type]
		if !ok {
			continue
		}
		if c.containsLock(tv.Type) {
			c.pass.Reportf(f.Type.Pos(), "%s passes %s by value, copying its lock; use a pointer", kind, tv.Type)
		}
	}
}

// copiesExisting reports whether evaluating e copies an already-live
// value. Composite literals, calls (including conversions of untyped
// values) and function literals construct fresh values whose copy has not
// yet been shared, so they are allowed, matching cmd/vet's copylocks.
func copiesExisting(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
		return false
	}
	return true
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // tuple form: the RHS call constructs the values
	}
	for i, rhs := range as.Rhs {
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue // assigning to blank discards the value; nothing is copied
		}
		if !copiesExisting(rhs) {
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[rhs]
		if !ok {
			continue
		}
		if c.containsLock(tv.Type) {
			c.pass.Reportf(rhs.Pos(), "assignment copies a value of %s, which contains a lock; use a pointer", tv.Type)
		}
	}
}

func (c *checker) checkRange(rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := c.typeOf(rng.Value)
	if t != nil && c.containsLock(t) {
		c.pass.Reportf(rng.Value.Pos(), "range clause copies a value of %s, which contains a lock; iterate by index or over pointers", t)
	}
}

// typeOf resolves an expression's type, falling back to the definition or
// use of an identifier — range variables introduced by `:=` are recorded
// in Defs rather than in the expression-type map.
func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := c.pass.TypesInfo.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
		if obj, ok := c.pass.TypesInfo.Uses[id]; ok {
			return obj.Type()
		}
	}
	return nil
}

func (c *checker) checkCallArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		if !copiesExisting(arg) {
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[arg]
		if !ok {
			continue
		}
		if c.containsLock(tv.Type) {
			c.pass.Reportf(arg.Pos(), "call passes a value of %s by value, copying its lock; pass a pointer", tv.Type)
		}
	}
}
