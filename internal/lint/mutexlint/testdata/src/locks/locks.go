// Package locks exercises the lock-copy rule.
package locks

import (
	"sync"
	"sync/atomic"
)

// Store mimics the trace store: a mutex-guarded cache.
type Store struct {
	mu      sync.Mutex
	entries int
}

// Counter embeds a lock transitively through a struct field.
type Counter struct {
	inner Store
	hits  atomic.Uint64
}

// Plain carries no locks and copies freely.
type Plain struct{ n int }

func byValueParam(s Store) {} // want `parameter passes fix/locks\.Store by value`

func byValueResult() (s Store) { return } // want `result passes fix/locks\.Store by value`

// Snapshot has a by-value receiver of a lock-carrying type.
func (s Store) Snapshot() int { return s.entries } // want `receiver passes fix/locks\.Store by value`

func copies(s *Store, c Counter) { // want `parameter passes fix/locks\.Counter by value`
	cp := *s // want `assignment copies a value of fix/locks\.Store`
	_ = cp
	alias := c.inner // want `assignment copies a value of fix/locks\.Store`
	_ = alias
	byValueParam(*s) // want `call passes a value of fix/locks\.Store by value`

	var arr [2]Store
	for _, st := range arr { // want `range clause copies a value of fix/locks\.Store`
		_ = st
	}
}

func allowed() *Store {
	s := &Store{}        // pointer: fine
	fresh := Store{}     // composite literal constructs a fresh value: fine
	_ = fresh
	p := Plain{n: 1}     // no locks anywhere: fine
	q := p               // copying a lock-free struct: fine
	_ = q
	var ptrs []*Store
	for _, sp := range ptrs { // iterating pointers: fine
		_ = sp
	}
	return s
}
