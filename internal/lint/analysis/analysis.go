// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis. The build environment for this
// repository is fully offline (no module proxy), so the upstream framework
// cannot be added to go.mod; this package mirrors the subset of its API
// that the vplint analyzers use — Analyzer, Pass, Diagnostic, Reportf —
// with identical field names and semantics. If the x/tools dependency ever
// becomes available, each analyzer ports to the real framework by swapping
// this import path and nothing else.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics and in
// suppression directives (see the lint driver); Doc is the human
// description printed by `vplint -list`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer. All fields
// mirror golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass in source order, calling f for each
// node exactly as ast.Inspect does.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
