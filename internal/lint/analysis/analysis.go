// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis. The build environment for this
// repository is fully offline (no module proxy), so the upstream framework
// cannot be added to go.mod; this package mirrors the subset of its API
// that the vplint analyzers use — Analyzer, Pass, Diagnostic, Reportf —
// with identical field names and semantics, plus a simplified stand-in for
// the upstream facts mechanism (FactStore: string-keyed, analyzer-scoped,
// filled in dependency order) so analyzers can learn properties across
// package boundaries. If the x/tools dependency ever becomes available,
// each analyzer ports to the real framework by swapping this import path
// and translating FactStore keys to object facts.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics and in
// suppression directives (see the lint driver); Doc is the human
// description printed by `vplint -list`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer. All fields
// mirror golang.org/x/tools/go/analysis.Pass; Facts is this framework's
// simplified stand-in for the upstream facts mechanism (see FactStore).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Facts is the cross-package fact store shared by every pass of one
	// driver run. Nil is legal: ExportFact then creates a pass-private
	// store, so a standalone single-package pass still works (it simply
	// cannot see facts from other packages).
	Facts *FactStore
}

// FactStore carries analyzer-scoped key→value facts across the packages of
// one driver run. It replaces the upstream framework's typed, serialized
// object facts with the minimal thing the offline suite needs: the driver
// analyzes packages in dependency order (loader.Load guarantees it), an
// analyzer running on a dependency exports facts under stable string keys
// (e.g. "pkg/path.Type.Field"), and the same analyzer running on an
// importer reads them back. Facts are namespaced per analyzer, so two
// analyzers can use the same key without colliding.
type FactStore struct {
	m map[factKey]any
}

type factKey struct{ analyzer, key string }

// NewFactStore returns an empty store for one driver run.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]any)}
}

// ExportFact records value under key in the pass's analyzer namespace,
// overwriting any previous value for the key.
func (p *Pass) ExportFact(key string, value any) {
	if p.Facts == nil {
		p.Facts = NewFactStore()
	}
	p.Facts.m[factKey{p.Analyzer.Name, key}] = value
}

// ImportFact returns the fact recorded under key by this pass's analyzer
// during any earlier (or the current) package's pass of the same driver
// run.
func (p *Pass) ImportFact(key string) (any, bool) {
	if p.Facts == nil {
		return nil, false
	}
	v, ok := p.Facts.m[factKey{p.Analyzer.Name, key}]
	return v, ok
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass in source order, calling f for each
// node exactly as ast.Inspect does.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
