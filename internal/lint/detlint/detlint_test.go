package detlint_test

import (
	"testing"

	"valuepred/internal/lint/analysistest"
	"valuepred/internal/lint/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata", detlint.Analyzer, "./...")
}

func TestApplies(t *testing.T) {
	// The analyzer must not fire outside internal/<restricted> paths; the
	// "other" fixture package above asserts the positive half, this guards
	// the path predicate itself against regressions.
	for path, want := range map[string]bool{
		"valuepred/internal/emu":        true,
		"valuepred/internal/experiment": true,
		"fix/internal/stats":            true,
		"valuepred/internal/obs":        true, // restricted, with the wall-clock exemption
		"valuepred/internal/tracestore": true,
		"valuepred/internal/plan":       true, // the execution engine merges into ordered output
		"valuepred/internal/ideal":      true, // pooled scratch (scratch.go) lives here
		"valuepred/internal/pipeline":   true, // pooled scratch (scratch.go) lives here
		"valuepred/internal/fetch":      true, // zero-copy group views
		"valuepred/internal/core":       true, // reused network group buffers

		"valuepred/cmd/vpsim":           false,
		"valuepred":                     false,
		"emu":                           false, // no internal element
		"valuepred/internal/lint":       false, // not a simulator package
	} {
		if got := detlint.Applies(path); got != want {
			t.Errorf("Applies(%q) = %v, want %v", path, got, want)
		}
	}
}
