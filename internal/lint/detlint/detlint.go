// Package detlint enforces the simulator's determinism contract: the
// paper's tables and figures must be bit-reproducible run to run, so the
// simulation packages may not read wall-clock time, draw from the shared
// math/rand source, or let Go's randomized map iteration order leak into
// anything ordered (slices, table rows, rendered output).
//
// The observability layer (internal/obs) gets one exemption and one extra
// rule. Exemption: obs may read the wall clock — run manifests stamp wall
// time, which is reporting metadata and never becomes simulated time. Extra
// rule: no other restricted package may read a recorded metric back
// (Counter.Value, Snapshot, ...); metrics observe, they never steer, which
// is what keeps instrumented and uninstrumented runs bit-identical.
package detlint

import (
	"go/ast"
	"go/types"
	"strings"

	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/scope"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "forbid wall-clock reads (time.Now/Since), the package-global math/rand " +
		"source, map iteration whose body appends to a slice, writes table " +
		"rows, or emits output, and reads of recorded obs metrics, inside the " +
		"simulation packages (internal/obs itself may read the wall clock)",
	Run: run,
}

// Applies reports whether pkgPath is bound by the determinism contract.
// The member list lives in the shared scoping registry
// (internal/lint/scope): the analyzer fires only in internal packages the
// registry binds to scope.Determinism; cmd/ and the public facade are
// covered indirectly because everything they emit comes from these
// packages.
func Applies(pkgPath string) bool {
	return scope.Member(scope.Determinism, pkgPath)
}

// randAllowed lists math/rand package-level functions that do not touch
// the global source: constructors for explicitly seeded generators.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// isObsPkg reports whether pkgPath is the observability layer
// (internal/.../obs): the one restricted package allowed to read the wall
// clock, and the package whose recorded values no other restricted package
// may read back.
func isObsPkg(pkgPath string) bool {
	parts := strings.Split(pkgPath, "/")
	if parts[len(parts)-1] != "obs" {
		return false
	}
	for _, p := range parts[:len(parts)-1] {
		if p == "internal" {
			return true
		}
	}
	return false
}

// obsReads names the obs functions and methods that return recorded metric
// values. Calling one from a restricted simulation package would let
// instrumentation steer the simulation, breaking the guarantee that
// results are bit-identical with observability on or off. (Write-side
// methods — Inc, Add, Observe, Cycle, ... — and plumbing like Track or
// Registry are fine.)
var obsReads = map[string]bool{
	"Value": true, "Count": true, "Sum": true, "Snapshot": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !Applies(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkSelector(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
		return true
	})
	return nil, nil
}

// checkSelector flags references to time.Now/time.Since, to any
// package-level math/rand function that draws from the process-global
// source, and to obs functions or methods that read recorded metric values
// back into a simulation package.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if isObsPkg(fn.Pkg().Path()) && !isObsPkg(pass.Pkg.Path()) && obsReads[fn.Name()] {
		pass.Reportf(sel.Pos(),
			"obs.%s reads a recorded metric inside a simulation package; metrics observe, they never steer", fn.Name())
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if isObsPkg(pass.Pkg.Path()) {
			return // manifests stamp wall time: reporting metadata, never simulated time
		}
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulated time must come from the machine model", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randAllowed[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the package-global source; use an explicitly seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapRange flags `range` over a map whose body performs an
// order-sensitive operation: appending to a slice, writing table rows or
// notes, or emitting output. Map iteration order is randomized per run, so
// each of these bakes nondeterministic ordering into a result. Order-free
// bodies (summing, counting, writing another map) are not flagged; a
// deliberately order-insensitive append can be suppressed with a
// `//lint:ignore detlint <reason>` directive.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what := orderSensitive(pass, call); what != "" {
			pass.Reportf(rng.Pos(), "map iteration order is randomized, but this loop %s; iterate a sorted key slice instead", what)
			return false
		}
		return true
	})
}

// tableMethods are stats.Table-style mutators that give rows and notes
// their presentation order.
var tableMethods = map[string]bool{
	"AddRow": true, "AddNote": true, "AddColumn": true, "AppendAverage": true,
}

// writerMethods order bytes in an output stream or buffer.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// orderSensitive classifies a call inside a map-range body; it returns a
// description of the violation, or "" if the call is order-free.
func orderSensitive(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				return "appends to a slice"
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() == nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
					return "emits output via fmt." + fn.Name()
				}
				return ""
			}
			if tableMethods[fn.Name()] {
				return "writes table rows or notes via " + fn.Name()
			}
			if writerMethods[fn.Name()] {
				return "writes to an output stream via " + fn.Name()
			}
		}
	}
	return ""
}
