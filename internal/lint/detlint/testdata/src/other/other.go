// Package other is outside the restricted simulator packages (no
// "internal" path element), so detlint must stay silent here even for
// constructs it would flag in internal/emu.
package other

import (
	"math/rand"
	"time"
)

func Unrestricted(m map[string]int) []string {
	_ = time.Now()
	_ = rand.Intn(8)
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
