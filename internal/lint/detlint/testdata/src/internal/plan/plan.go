// Package plan is a detlint fixture: the execution engine merges cell
// results into ordered output, so the determinism contract applies — no
// wall-clock reads, no map-order-dependent merges.
package plan

import (
	"sort"
	"time"
)

type key struct{ workload string }

func timeCell() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func mergeByMapOrder(results map[key]float64) []float64 {
	var out []float64
	for _, v := range results { // want `map iteration order is randomized, but this loop appends to a slice`
		out = append(out, v)
	}
	return out
}

func mergeByCanonicalOrder(cells []key, results map[key]float64) []float64 {
	out := make([]float64, 0, len(cells))
	for _, c := range cells { // keyed lookup in declaration order: not flagged
		out = append(out, results[c])
	}
	return out
}

func sortedKeys(results map[key]float64) []string {
	names := make(map[string]bool, len(results))
	for k := range results { // writing another map is order-free: not flagged
		names[k.workload] = true
	}
	var out []string
	for n := range names { // want `map iteration order is randomized, but this loop appends to a slice`
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
