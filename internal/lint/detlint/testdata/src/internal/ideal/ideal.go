// Package ideal is a detlint fixture shaped like the pooled-scratch code
// the simulation packages use (DESIGN.md §12): chunk arenas, free lists
// and a sync.Pool of per-run scratches. Pooled state is the easiest place
// to smuggle nondeterminism back in — a "randomized" reset, a wall-clock
// high-water stamp, or a map drained in iteration order into a free list —
// so the analyzer must keep firing inside code of exactly this shape.
package ideal

import (
	"math/rand"
	"sync"
	"time"
)

type producerInfo struct{ execCycle uint64 }

type scratch struct {
	free    []*producerInfo
	memProd map[uint64]*producerInfo
	stamp   time.Duration
}

var pool = sync.Pool{New: func() any {
	return &scratch{memProd: make(map[uint64]*producerInfo)}
}}

// badStampedGet stamps the scratch with wall-clock time — reporting
// metadata has no business inside a simulation scratch.
func badStampedGet() *scratch {
	s := pool.Get().(*scratch)
	start := time.Now() // want `time\.Now reads the wall clock`
	s.stamp = time.Since(start) // want `time\.Since reads the wall clock`
	return s
}

// badDrainReset recycles the map's values through the free list in map
// iteration order, so the order entries are handed back out is randomized
// per run.
func badDrainReset(s *scratch) {
	for _, p := range s.memProd { // want `map iteration order is randomized, but this loop appends to a slice`
		s.free = append(s.free, p)
	}
}

// badJitteredAlloc sizes a chunk from the global rand source.
func badJitteredAlloc() []producerInfo {
	return make([]producerInfo, 64+rand.Intn(64)) // want `math/rand\.Intn draws from the package-global source`
}

// goodClearReset is the discipline the real scratches follow: clear the
// map in place and truncate the free list — no per-entry iteration, no
// order to get wrong.
func goodClearReset(s *scratch) {
	clear(s.memProd)
	s.free = s.free[:0]
}

// goodCountReset is an order-free reduction over pooled state: allowed.
func goodCountReset(s *scratch) int {
	n := 0
	for range s.memProd {
		n++
	}
	return n
}
