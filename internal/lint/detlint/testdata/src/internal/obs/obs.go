// Package obs is a detlint fixture for the observability exemption: its
// import path ends in "obs" under an internal element, so wall-clock reads
// are allowed (manifests stamp wall time) while the global math/rand source
// and order-sensitive map iteration stay forbidden.
package obs

import (
	"math/rand"
	"time"
)

// Counter mimics the real obs.Counter: writes from anywhere, reads only
// outside the simulation packages.
type Counter struct{ v uint64 }

// Inc is a write: always fine.
func (c *Counter) Inc() { c.v++ }

// Value is a read: fine here in obs, flagged in restricted packages.
func (c *Counter) Value() uint64 { return c.v }

// Registry mimics the real obs.Registry.
type Registry struct{ c Counter }

// Counter hands out a write handle (plumbing, not a read).
func (r *Registry) Counter() *Counter { return &r.c }

// Snapshot is a read: fine here, flagged in restricted packages.
func (r *Registry) Snapshot() uint64 { return r.c.Value() }

// Wall is the manifest's legitimate wall-clock read: exempt in obs.
func Wall() time.Time { return time.Now() }

// Elapsed is likewise exempt in obs.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }

// globalRand stays forbidden even in obs: randomness is never exempt.
func globalRand() int {
	return rand.Intn(8) // want `math/rand\.Intn draws from the package-global source`
}

var _ = globalRand
