// Package pipeline is a detlint fixture shaped like the Section 5
// machine's pooled ingest buffers: the per-group PC lookup slice and its
// slot index are rebuilt every fetch group, and the rebuild is the exact
// spot where a map-ordered drain or a wall-clock stamp would smuggle
// nondeterminism into a bit-reproducible run.
package pipeline

import "time"

type scratch struct {
	pcs     []uint64
	slotIdx []int
	memProd map[uint64]int
}

// badLookupDrain rebuilds the lookup buffer by draining the producer map,
// so the network sees the group's PCs in randomized order.
func badLookupDrain(s *scratch) {
	s.pcs = s.pcs[:0]
	for pc := range s.memProd { // want `map iteration order is randomized, but this loop appends to a slice`
		s.pcs = append(s.pcs, pc)
	}
}

// badStampedIngest measures the rebuild with the wall clock.
func badStampedIngest(s *scratch) time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	s.slotIdx = s.slotIdx[:0]
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// goodIndexedRebuild is the real ingest discipline: the buffers are filled
// from the group's records in program order, never from a map.
func goodIndexedRebuild(s *scratch, pcs []uint64) {
	s.pcs = s.pcs[:0]
	s.slotIdx = s.slotIdx[:0]
	for i, pc := range pcs {
		s.pcs = append(s.pcs, pc)
		s.slotIdx = append(s.slotIdx, i)
	}
}

// goodLookupCount is an order-free reduction over the producer map.
func goodLookupCount(s *scratch) int {
	n := 0
	for range s.memProd {
		n++
	}
	return n
}
