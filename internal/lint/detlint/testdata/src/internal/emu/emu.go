// Package emu is a detlint fixture: its import path ends in a restricted
// simulator package name, so the determinism contract applies.
package emu

import (
	"fmt"
	"math/rand"
	"time"

	"fix/internal/obs"
)

func clocks() time.Duration {
	start := time.Now()            // want `time\.Now reads the wall clock`
	return time.Since(start)       // want `time\.Since reads the wall clock`
}

func globalRand() int {
	rand.Seed(42)                  // want `math/rand\.Seed draws from the package-global source`
	return rand.Intn(8)            // want `math/rand\.Intn draws from the package-global source`
}

func seededRand() int {
	rng := rand.New(rand.NewSource(1)) // constructors are allowed
	return rng.Intn(8)                 // methods on a seeded *rand.Rand are allowed
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is randomized, but this loop appends to a slice`
		keys = append(keys, k)
	}
	return keys
}

func mapEmit(m map[string]int) {
	for k, v := range m { // want `map iteration order is randomized, but this loop emits output via fmt\.Println`
		fmt.Println(k, v)
	}
}

type table struct{}

func (*table) AddRow(label string, cells ...float64) {}

func mapRows(m map[string]float64, t *table) {
	for k, v := range m { // want `map iteration order is randomized, but this loop writes table rows or notes via AddRow`
		t.AddRow(k, v)
	}
}

func mapSum(m map[string]int) int {
	total := 0
	for _, v := range m { // order-free reduction: not flagged
		total += v
	}
	return total
}

func mapInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // writing another map is order-free: not flagged
		out[v] = k
	}
	return out
}

func obsWrite(c *obs.Counter) {
	c.Inc() // recording into obs is fine everywhere
}

func obsSteer(c *obs.Counter, r *obs.Registry) uint64 {
	_ = r.Counter()   // plumbing (handle lookup) is fine
	_ = r.Snapshot()  // want `obs\.Snapshot reads a recorded metric inside a simulation package`
	return c.Value()  // want `obs\.Value reads a recorded metric inside a simulation package`
}

func sliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs { // ranging a slice is ordered: not flagged
		out = append(out, x)
	}
	return out
}
