// Package poollint enforces the pooled-scratch hygiene contract of
// DESIGN.md §12: a struct handed out by a sync.Pool carries whatever the
// previous run left in it, so the acquire path must reset *every* field
// before the value is used, and a value returned with Put must never be
// touched again. The field-coverage check is structural — the set of
// fields reset between Get and first use is compared against the struct
// type's full field list — so adding a field to a pooled scratch without
// resetting it is a deterministic lint error at the Get site, not a
// once-in-a-thousand-runs race-hammer flake.
//
// Concretely, inside the determinism-scoped packages (the registry's
// scope.Determinism set):
//
//   - every `s := pool.Get().(*T)` must be followed, in the same function
//     (or in methods of T it calls on s, one level deep), by a reset of
//     each field of T: an assignment to s.f, a method call on s.f
//     (s.producers.reset()), or clear(s.f);
//   - a (*sync.Pool).Get result that is not bound by that pattern —
//     passed straight to a call, returned, or asserted elsewhere — is
//     flagged, because nothing can prove it was reset before first use;
//   - after `pool.Put(s)` the variable s must not be read again in that
//     function (rebinding it is fine).
package poollint

import (
	"go/ast"
	"go/token"
	"go/types"

	"valuepred/internal/lint/analysis"
	"valuepred/internal/lint/scope"
)

// Analyzer is the pool-hygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "poollint",
	Doc: "require sync.Pool acquire paths in the simulation packages to reset " +
		"every field of the pooled struct before first use (missing fields are " +
		"named), forbid Get results that escape the acquire pattern, and forbid " +
		"reading a value after it was Put back",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Member(scope.Determinism, pass.Pkg.Path()) {
		return nil, nil
	}
	methods := packageMethods(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd, methods)
			}
		}
	}
	return nil, nil
}

// methodKey identifies a method declared in this package.
type methodKey struct {
	recv *types.TypeName
	name string
}

// packageMethods indexes this package's method declarations by (receiver
// type, name) so the coverage walk can follow one level of s.reset()-style
// indirection.
func packageMethods(pass *analysis.Pass) map[methodKey]*ast.FuncDecl {
	m := make(map[methodKey]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				m[methodKey{named.Obj(), fd.Name.Name}] = fd
			}
		}
	}
	return m
}

// poolMethod resolves call to a (*sync.Pool) method of the given name,
// returning false otherwise.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, methods map[methodKey]*ast.FuncDecl) {
	// acquired maps the variable bound by `s := pool.Get().(*T)` to the
	// assert expression's Get call (diagnostic anchor).
	type acquire struct {
		v    *types.Var
		typ  *types.Named
		call *ast.CallExpr
	}
	var acquires []acquire
	boundGets := make(map[*ast.CallExpr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		ta, ok := as.Rhs[0].(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		call, ok := ast.Unparen(ta.X).(*ast.CallExpr)
		if !ok || !poolMethod(pass, call, "Get") {
			return true
		}
		boundGets[call] = true
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		var v *types.Var
		if obj, ok := pass.TypesInfo.Defs[id]; ok {
			v, _ = obj.(*types.Var)
		} else if obj, ok := pass.TypesInfo.Uses[id]; ok {
			v, _ = obj.(*types.Var)
		}
		t := pass.TypesInfo.TypeOf(ta.Type)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, _ := t.(*types.Named)
		if v != nil && named != nil {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				acquires = append(acquires, acquire{v: v, typ: named, call: call})
			}
		}
		return true
	})

	// Any Get call outside the bound pattern escapes unreset.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || boundGets[call] || !poolMethod(pass, call, "Get") {
			return true
		}
		pass.Reportf(call.Pos(),
			"sync.Pool Get result escapes without a reset; bind it with `s := pool.Get().(*T)` and reset every field before use")
		return true
	})

	for _, a := range acquires {
		covered := make(map[string]bool)
		coverBody(pass, fd.Body, a.v, covered)
		// One level of indirection: methods of T called on the acquired
		// variable (s.reset()) contribute their own receiver's coverage.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !isVar(pass, sel.X, a.v) {
				return true
			}
			md, ok := methods[methodKey{a.typ.Obj(), sel.Sel.Name}]
			if !ok || md.Recv == nil || len(md.Recv.List) == 0 || len(md.Recv.List[0].Names) == 0 {
				return true
			}
			var recvVar *types.Var
			if obj, ok := pass.TypesInfo.Defs[md.Recv.List[0].Names[0]]; ok {
				recvVar, _ = obj.(*types.Var)
			}
			if recvVar != nil {
				coverBody(pass, md.Body, recvVar, covered)
			}
			return true
		})
		st := a.typ.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !covered[f.Name()] {
				pass.Reportf(a.call.Pos(),
					"field %s of pooled %s is not reset between Get and first use; a stale value from the previous run leaks into this one", f.Name(), a.typ.Obj().Name())
			}
		}
	}

	checkPutRetention(pass, fd)
}

// isVar reports whether e is an identifier denoting v.
func isVar(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	return ok && obj == v
}

// coverBody records which fields of recv are reset in body: assignments to
// recv.f (including recv.f = recv.f[:0] and deeper paths recv.f.g = x),
// method calls on recv.f, and clear(recv.f).
func coverBody(pass *analysis.Pass, body *ast.BlockStmt, recv *types.Var, covered map[string]bool) {
	fieldOf := func(e ast.Expr) (string, bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		// Walk down to the selector rooted at recv: recv.f, recv.f.g, ...
		for {
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok {
				break
			}
			if isVar(pass, inner.X, recv) {
				sel = inner
				break
			}
			sel = inner
		}
		if !isVar(pass, sel.X, recv) {
			return "", false
		}
		return sel.Sel.Name, true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f, ok := fieldOf(lhs); ok {
					covered[f] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "clear" && len(n.Args) == 1 {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					if f, ok := fieldOf(n.Args[0]); ok {
						covered[f] = true
					}
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if f, ok := fieldOf(sel.X); ok {
					covered[f] = true
				}
			}
		}
		return true
	})
}

// checkPutRetention flags reads of a variable after it was handed back
// with (*sync.Pool).Put. The check is positional within one function:
// sound for the straight-line acquire/release bodies the contract covers,
// and every flagged use is a real read-after-free of pooled memory.
func checkPutRetention(pass *analysis.Pass, fd *ast.FuncDecl) {
	type put struct {
		v    *types.Var
		end  token.Pos
		dead bool // a later rebind started a fresh value
	}
	var puts []put
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !poolMethod(pass, call, "Put") || len(call.Args) != 1 {
			return true
		}
		// A deferred Put runs at function exit: nothing after it textually
		// runs after it temporally, so only statement-position Puts gate.
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				puts = append(puts, put{v: v, end: call.End()})
			}
		}
		return true
	})
	if len(puts) == 0 {
		return
	}
	// Deferred Puts are exempt: drop those inside defer statements.
	deferred := make(map[token.Pos]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(ds.Call, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && poolMethod(pass, call, "Put") {
					deferred[call.End()] = true
				}
				return true
			})
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// A rebind after the Put starts a fresh value: the old put stops
		// gating from that point on. Inspect visits the AssignStmt before
		// the uses that follow it, so earlier uses were already checked.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.TypesInfo.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				for i := range puts {
					if v == puts[i].v && id.Pos() > puts[i].end {
						puts[i].dead = true
					}
				}
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		for _, p := range puts {
			if v == p.v && !p.dead && !deferred[p.end] && id.Pos() > p.end {
				pass.Reportf(id.Pos(),
					"%s is read after being returned to the pool; another goroutine may already own it", id.Name)
				return true
			}
		}
		return true
	})
}
