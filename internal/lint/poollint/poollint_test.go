package poollint_test

import (
	"testing"

	"valuepred/internal/lint/analysistest"
	"valuepred/internal/lint/poollint"
)

// TestPoollint runs the fixture module: every reset idiom accepted, every
// hygiene rule rejected, and the out-of-scope package left silent.
func TestPoollint(t *testing.T) {
	analysistest.Run(t, "testdata", poollint.Analyzer, "./...")
}
