// Package ideal is the poollint fixture, shaped like the real pooled
// scratches of internal/ideal and internal/pipeline: a sync.Pool of per-run
// scratch structs whose every field must be reset at acquire. It carries
// one accepting acquire per reset idiom (direct assignment, truncation,
// clear, field-method call, whole-struct reset method) and one rejecting
// case per rule.
package ideal

import "sync"

type arena struct {
	chunks [][]byte
	used   int
}

func (a *arena) reset() { a.used = 0 }

type scratch struct {
	producers arena
	window    []int
	memProd   map[uint64]int
	cursor    int
}

// reset is the whole-struct reset method goodMethodGet relies on.
func (s *scratch) reset() {
	s.producers.reset()
	s.window = s.window[:0]
	clear(s.memProd)
	s.cursor = 0
}

var pool = sync.Pool{New: func() any {
	return &scratch{memProd: make(map[uint64]int)}
}}

// goodInlineGet resets every field at acquire, one idiom each: a method
// call on the field, a truncation, a clear, a zeroing assignment.
func goodInlineGet() *scratch {
	s := pool.Get().(*scratch)
	s.producers.reset()
	s.window = s.window[:0]
	clear(s.memProd)
	s.cursor = 0
	return s
}

// goodMethodGet routes the reset through a method of the pooled type; the
// analyzer follows one level of indirection.
func goodMethodGet() *scratch {
	s := pool.Get().(*scratch)
	s.reset()
	return s
}

// badMissingField forgets the map — precisely the bug class the check
// exists for: add a field, forget its reset, inherit the last run's state.
func badMissingField() *scratch {
	s := pool.Get().(*scratch) // want `field memProd of pooled scratch is not reset between Get and first use`
	s.producers.reset()
	s.window = s.window[:0]
	s.cursor = 0
	return s
}

// badEscapingGet never binds the result, so no reset can be proven.
func badEscapingGet(f func(*scratch)) {
	f(pool.Get().(*scratch)) // want `sync\.Pool Get result escapes without a reset`
}

// badUseAfterPut reads the scratch after handing it back.
func badUseAfterPut(s *scratch) int {
	pool.Put(s)
	return s.cursor // want `s is read after being returned to the pool`
}

// goodDeferredPut is the real scratches' idiom: the deferred Put runs at
// function exit, so the body's uses of s are all before it temporally.
func goodDeferredPut() int {
	s := goodInlineGet()
	defer pool.Put(s)
	s.cursor = 7
	return s.cursor
}

// goodRebindAfterPut rebinds the variable to a fresh value after Put:
// uses of the new value are legal.
func goodRebindAfterPut() int {
	s := goodInlineGet()
	pool.Put(s)
	s = goodInlineGet()
	defer pool.Put(s)
	return s.cursor
}
