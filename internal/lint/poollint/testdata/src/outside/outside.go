// Package outside sits outside the determinism scope: poollint must stay
// silent here even for a textbook violation, proving the analyzer's
// scoping (the registry's determinism set bounds it).
package outside

import "sync"

type thing struct{ n int }

var pool sync.Pool

// Unreset would be a poollint diagnostic inside the simulator packages.
func Unreset() any {
	return pool.Get()
}
