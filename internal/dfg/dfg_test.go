package dfg

import (
	"testing"
	"testing/quick"

	"valuepred/internal/isa"
	"valuepred/internal/trace"
)

func TestBucketOf(t *testing.T) {
	cases := map[uint64]Bucket{
		1: BucketDID1, 2: BucketDID2, 3: BucketDID3,
		4: BucketDID4to7, 7: BucketDID4to7,
		8: BucketDID8to15, 15: BucketDID8to15,
		16: BucketDID16to31, 31: BucketDID16to31,
		32: BucketDID32up, 1000000: BucketDID32up,
	}
	for did, want := range cases {
		if got := BucketOf(did); got != want {
			t.Errorf("BucketOf(%d) = %v, want %v", did, got, want)
		}
	}
	// Monotonicity property.
	f := func(a, b uint32) bool {
		x, y := uint64(a)+1, uint64(b)+1
		if x > y {
			x, y = y, x
		}
		return BucketOf(x) <= BucketOf(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for b := BucketDID1; b < NumBuckets; b++ {
		if b.String() == "" {
			t.Errorf("bucket %d has no label", b)
		}
	}
}

// chain builds a trace where each instruction consumes the previous
// instruction's result: every arc has DID 1.
func chain(n int) []trace.Rec {
	recs := make([]trace.Rec, n)
	for i := range recs {
		recs[i] = trace.Rec{
			Seq: uint64(i), PC: isa.PCOf(i % 4),
			Op: isa.ADDI, Rd: isa.T0, Rs1: isa.T0, Val: uint64(i),
		}
	}
	return recs
}

func TestAnalyzeChain(t *testing.T) {
	a := Analyze(chain(100), Config{})
	if a.Insts != 100 {
		t.Fatalf("insts = %d", a.Insts)
	}
	// First instruction has no producer.
	if a.Arcs != 99 {
		t.Fatalf("arcs = %d, want 99", a.Arcs)
	}
	if a.AvgDID() != 1 {
		t.Errorf("avg DID = %f, want 1", a.AvgDID())
	}
	if a.Hist[BucketDID1] != 99 {
		t.Errorf("DID=1 bucket = %d", a.Hist[BucketDID1])
	}
	if a.FracDIDAtLeast4() != 0 {
		t.Errorf("frac >=4 = %f", a.FracDIDAtLeast4())
	}
}

// TestAnalyzeKnownGraph reproduces the Figure 3.2 arc structure with exact
// DIDs.
func TestAnalyzeKnownGraph(t *testing.T) {
	mk := func(seq uint64, rd, rs1 isa.Reg, val uint64) trace.Rec {
		op := isa.ADDI
		if rs1 == 0 {
			op = isa.LI
		}
		return trace.Rec{Seq: seq, PC: isa.PCOf(int(seq)), Op: op, Rd: rd, Rs1: rs1, Val: val}
	}
	recs := []trace.Rec{
		mk(0, isa.T0, 0, 1),      // 1
		mk(1, isa.T1, isa.T0, 2), // 2: 1->2, DID 1
		mk(2, isa.T2, 0, 3),      // 3
		mk(3, isa.T3, isa.T1, 4), // 4: 2->4, DID 2
		mk(4, isa.T4, isa.T0, 5), // 5: 1->5, DID 4
		mk(5, isa.T5, isa.T4, 6), // 6: 5->6, DID 1
		mk(6, isa.T6, isa.T2, 7), // 7: 3->7, DID 4
		mk(7, isa.S0, isa.T6, 8), // 8: 7->8, DID 1
	}
	a := Analyze(recs, Config{})
	if a.Arcs != 6 {
		t.Fatalf("arcs = %d, want 6", a.Arcs)
	}
	wantSum := uint64(1 + 2 + 4 + 1 + 4 + 1)
	if a.SumDID != wantSum {
		t.Errorf("sum DID = %d, want %d", a.SumDID, wantSum)
	}
	if a.Hist[BucketDID1] != 3 || a.Hist[BucketDID2] != 1 || a.Hist[BucketDID4to7] != 2 {
		t.Errorf("hist = %v", a.Hist)
	}
}

func TestAnalyzeSameRegisterOperandsCountOnce(t *testing.T) {
	recs := []trace.Rec{
		{Seq: 0, PC: isa.PCOf(0), Op: isa.LI, Rd: isa.T0, Val: 2},
		{Seq: 1, PC: isa.PCOf(1), Op: isa.ADD, Rd: isa.T1, Rs1: isa.T0, Rs2: isa.T0, Val: 4},
	}
	a := Analyze(recs, Config{})
	if a.Arcs != 1 {
		t.Errorf("rs1 == rs2 counted as %d arcs", a.Arcs)
	}
}

func TestAnalyzeZeroRegisterNoDep(t *testing.T) {
	recs := []trace.Rec{
		{Seq: 0, PC: isa.PCOf(0), Op: isa.ADDI, Rd: isa.T0, Rs1: 0, Val: 1},
		{Seq: 1, PC: isa.PCOf(1), Op: isa.ADDI, Rd: isa.T1, Rs1: 0, Val: 2},
	}
	if a := Analyze(recs, Config{}); a.Arcs != 0 {
		t.Errorf("x0 reads created %d arcs", a.Arcs)
	}
}

func TestMemoryDeps(t *testing.T) {
	recs := []trace.Rec{
		{Seq: 0, PC: isa.PCOf(0), Op: isa.LI, Rd: isa.T0, Val: 9},
		{Seq: 1, PC: isa.PCOf(1), Op: isa.SD, Rs1: isa.SP, Rs2: isa.T0, Addr: 0x40, Val: 9},
		{Seq: 2, PC: isa.PCOf(2), Op: isa.NOP},
		{Seq: 3, PC: isa.PCOf(3), Op: isa.LD, Rd: isa.T1, Rs1: isa.SP, Addr: 0x40, Val: 9},
	}
	noMem := Analyze(recs, Config{})
	withMem := Analyze(recs, Config{IncludeMemoryDeps: true})
	// Register-only: only the SD's rs2 read of t0.
	if noMem.Arcs != 1 {
		t.Errorf("register arcs = %d", noMem.Arcs)
	}
	// With memory: plus the store->load arc (DID 2) — rs1 reads of sp have
	// no producer in this trace.
	if withMem.Arcs != 2 {
		t.Errorf("arcs with memory = %d", withMem.Arcs)
	}
	if withMem.SumDID != noMem.SumDID+2 {
		t.Errorf("store->load DID wrong: %d vs %d", withMem.SumDID, noMem.SumDID)
	}
}

// TestPredictability feeds a stride-perfect producer and checks the arcs
// land in the predictable histogram after warmup.
func TestPredictability(t *testing.T) {
	var recs []trace.Rec
	seq := uint64(0)
	for i := 0; i < 50; i++ {
		recs = append(recs,
			trace.Rec{Seq: seq, PC: 0x1000, Op: isa.ADDI, Rd: isa.T0, Rs1: isa.T0, Val: uint64(i) * 4},
			trace.Rec{Seq: seq + 1, PC: 0x1004, Op: isa.ADDI, Rd: isa.T1, Rs1: isa.T0, Val: uint64(i)*4 + 1},
		)
		seq += 2
	}
	a := Analyze(recs, Config{})
	if a.Predictable() == 0 {
		t.Fatal("no predictable arcs found")
	}
	// After warmup nearly all t0->t1 arcs (DID 1) and loop-carried t0->t0
	// arcs (DID 2) are predictable.
	frac := float64(a.Predictable()) / float64(a.Arcs)
	if frac < 0.9 {
		t.Errorf("predictable fraction = %.2f", frac)
	}
	if a.FracPredictableShort() < 0.9 {
		t.Errorf("predictable-short = %.2f", a.FracPredictableShort())
	}
	if a.FracPredictableLong() != 0 {
		t.Errorf("predictable-long = %.2f on short-DID trace", a.FracPredictableLong())
	}
}

func TestEmptyAnalysis(t *testing.T) {
	a := Analyze(nil, Config{})
	if a.AvgDID() != 0 || a.FracDIDAtLeast4() != 0 ||
		a.FracPredictableShort() != 0 || a.FracPredictableLong() != 0 {
		t.Error("empty analysis must return zeros")
	}
}
