// Package dfg implements the paper's dataflow-graph analysis (Section 3.3):
// the Dynamic Instruction Distance (DID) of every true-data dependence, the
// per-benchmark average DID (Figure 3.3), the DID distribution histogram
// (Figure 3.4), and the joint distribution of dependences by value
// predictability and DID (Figure 3.5).
//
// The DFG is built over the entire dynamic trace, ignoring basic-block
// boundaries, exactly as the paper describes: node numbers are the dynamic
// appearance order and the DID of an arc producer→consumer is the
// difference of their sequence numbers.
package dfg

import (
	"fmt"

	"valuepred/internal/predictor"
	"valuepred/internal/trace"
)

// Bucket indexes the DID histogram ranges used by Figure 3.4 / 3.5.
type Bucket int

// Histogram buckets.
const (
	BucketDID1 Bucket = iota // DID == 1
	BucketDID2               // DID == 2
	BucketDID3               // DID == 3
	BucketDID4to7
	BucketDID8to15
	BucketDID16to31
	BucketDID32up
	NumBuckets
)

// String returns the bucket's range label.
func (b Bucket) String() string {
	switch b {
	case BucketDID1:
		return "1"
	case BucketDID2:
		return "2"
	case BucketDID3:
		return "3"
	case BucketDID4to7:
		return "4-7"
	case BucketDID8to15:
		return "8-15"
	case BucketDID16to31:
		return "16-31"
	case BucketDID32up:
		return ">=32"
	default:
		return fmt.Sprintf("bucket(%d)", int(b))
	}
}

// BucketOf maps a DID to its histogram bucket. DIDs are always >= 1.
func BucketOf(did uint64) Bucket {
	switch {
	case did <= 1:
		return BucketDID1
	case did == 2:
		return BucketDID2
	case did == 3:
		return BucketDID3
	case did < 8:
		return BucketDID4to7
	case did < 16:
		return BucketDID8to15
	case did < 32:
		return BucketDID16to31
	default:
		return BucketDID32up
	}
}

// Config controls the analysis.
type Config struct {
	// IncludeMemoryDeps additionally treats a load as a consumer of the
	// most recent store to the same address. The paper's register dataflow
	// analysis is the default (false).
	IncludeMemoryDeps bool
}

// Analysis is the result of scanning a trace.
type Analysis struct {
	// Insts is the number of dynamic instructions scanned.
	Insts uint64
	// Arcs is the number of true-data dependence arcs found.
	Arcs uint64
	// SumDID accumulates DIDs for the average.
	SumDID uint64
	// Hist is the DID histogram over all arcs (Figure 3.4).
	Hist [NumBuckets]uint64
	// Unpredictable counts arcs whose producer instance was not correctly
	// predicted by the infinite stride predictor (Figure 3.5's
	// "uncorrectly predicted" category).
	Unpredictable uint64
	// PredHist is the DID histogram restricted to predictable arcs
	// (Figure 3.5).
	PredHist [NumBuckets]uint64
}

// AvgDID returns the average dynamic instruction distance (Figure 3.3).
func (a *Analysis) AvgDID() float64 {
	if a.Arcs == 0 {
		return 0
	}
	return float64(a.SumDID) / float64(a.Arcs)
}

// FracDIDAtLeast4 returns the fraction of arcs with DID >= 4 (the paper
// reports ~60% on average).
func (a *Analysis) FracDIDAtLeast4() float64 {
	if a.Arcs == 0 {
		return 0
	}
	long := a.Hist[BucketDID4to7] + a.Hist[BucketDID8to15] +
		a.Hist[BucketDID16to31] + a.Hist[BucketDID32up]
	return float64(long) / float64(a.Arcs)
}

// Predictable returns the number of arcs whose producer instance was
// correctly stride-predicted.
func (a *Analysis) Predictable() uint64 { return a.Arcs - a.Unpredictable }

// FracPredictableShort returns the fraction of arcs that are both
// predictable and span fewer than 4 instructions (paper: ~23% average).
func (a *Analysis) FracPredictableShort() float64 {
	if a.Arcs == 0 {
		return 0
	}
	short := a.PredHist[BucketDID1] + a.PredHist[BucketDID2] + a.PredHist[BucketDID3]
	return float64(short) / float64(a.Arcs)
}

// FracPredictableLong returns the fraction of arcs that are predictable
// with DID >= 4 (paper: ~40% m88ksim, >55% vortex, 20-25% others).
func (a *Analysis) FracPredictableLong() float64 {
	if a.Arcs == 0 {
		return 0
	}
	long := a.PredHist[BucketDID4to7] + a.PredHist[BucketDID8to15] +
		a.PredHist[BucketDID16to31] + a.PredHist[BucketDID32up]
	return float64(long) / float64(a.Arcs)
}

// Analyze scans recs and computes the DFG statistics. Producer
// predictability is evaluated with an infinite stride predictor per the
// paper's Figure 3.5 methodology.
func Analyze(recs []trace.Rec, cfg Config) *Analysis {
	return AnalyzeSource(trace.NewSliceSource(recs), cfg)
}

// AnalyzeSource is Analyze over a streaming record source. The analysis is
// inherently single-pass — producer state is 32 registers plus (optionally)
// a last-store-per-address map — so it never needs the trace materialized;
// records are consumed one at a time and not retained.
func AnalyzeSource(src trace.Source, cfg Config) *Analysis {
	a := &Analysis{}
	type producer struct {
		seq     uint64
		correct bool
		valid   bool
	}
	var regProducer [32]producer
	memProducer := make(map[uint64]producer)
	stride := predictor.NewStride()

	addArc := func(p producer, consumerSeq uint64) {
		did := consumerSeq - p.seq
		a.Arcs++
		a.SumDID += did
		b := BucketOf(did)
		a.Hist[b]++
		if p.correct {
			a.PredHist[b]++
		} else {
			a.Unpredictable++
		}
	}

	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		a.Insts++
		// Consume register operands.
		if r.Op.ReadsRs1() && r.Rs1 != 0 {
			if p := regProducer[r.Rs1]; p.valid {
				addArc(p, r.Seq)
			}
		}
		if r.Op.ReadsRs2() && r.Rs2 != 0 && !(r.Rs2 == r.Rs1 && r.Op.ReadsRs1()) {
			if p := regProducer[r.Rs2]; p.valid {
				addArc(p, r.Seq)
			}
		}
		if cfg.IncludeMemoryDeps && r.Op.IsLoad() {
			if p, ok := memProducer[r.Addr]; ok {
				addArc(p, r.Seq)
			}
		}
		// Produce.
		if r.WritesValue() {
			pr := stride.Lookup(r.PC)
			correct := pr.HasValue && pr.Value == r.Val
			stride.Update(r.PC, r.Val)
			regProducer[r.Rd] = producer{seq: r.Seq, correct: correct, valid: true}
		}
		if cfg.IncludeMemoryDeps && r.Op.IsStore() {
			// The stored value's predictability is tracked with the
			// store's own PC-indexed stride history: a store→load arc is
			// eliminable when the flowing value is predictable.
			pr := stride.Lookup(r.PC)
			correct := pr.HasValue && pr.Value == r.Val
			stride.Update(r.PC, r.Val)
			memProducer[r.Addr] = producer{seq: r.Seq, correct: correct, valid: true}
		}
	}
	return a
}
