package workload

import (
	"testing"

	"valuepred/internal/trace"
)

// goldenLimit is generous enough for every workload to finish its first
// pass (the longest, ijpeg, needs ~250k instructions per pass).
const goldenLimit = 800_000

// TestGoldenChecksums is the master correctness test for the assembly
// workloads: each program's first-pass checksum must equal the pure-Go
// golden model's result.
func TestGoldenChecksums(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 20260706} {
				m, _, err := Run(spec.Name, seed, goldenLimit)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				addr := m.Program().Symbol("golden")
				got := m.Mem().Read64(addr)
				if got == 0 {
					t.Fatalf("seed %d: golden slot still zero after %d insts (first pass did not finish)", seed, goldenLimit)
				}
				want := spec.Golden(seed)
				if got != want {
					t.Errorf("seed %d: golden checksum = %#x, want %#x", seed, got, want)
				}
			}
		})
	}
}

// TestWorkloadsRunForever verifies that no workload halts or faults within
// a long window, the contract the experiment harness relies on.
func TestWorkloadsRunForever(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			recs, err := Trace(name, 7, 1_500_000)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1_500_000 {
				t.Fatalf("trace ended early: %d records", len(recs))
			}
		})
	}
}

// TestTraceDeterminism checks that rebuilding and re-running a workload
// yields an identical trace: the experiments depend on replayability.
func TestTraceDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := Trace(name, 3, 50_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Trace(name, 3, 50_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trace diverges at %d: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestSeedsDiverge checks that different seeds give different dynamic
// behaviour (otherwise per-seed experiments would be meaningless).
func TestSeedsDiverge(t *testing.T) {
	for _, name := range Names() {
		a, err := Trace(name, 1, 30_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Trace(name, 2, 30_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 produced identical traces", name)
		}
	}
}

// TestPassesDiverge verifies the in-program perturbation: the checksum of a
// later pass must differ from the first pass for workloads that perturb
// their input (m88ksim's state evolves forever instead, so its checksum is
// written only once and is exempt).
func TestPassesDiverge(t *testing.T) {
	for _, name := range Names() {
		if name == "m88ksim" {
			continue
		}
		m, _, err := Run(name, 5, 3_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		golden := m.Mem().Read64(m.Program().Symbol("golden"))
		checksum := m.Mem().Read64(m.Program().Symbol("checksum"))
		if golden == 0 {
			t.Fatalf("%s: first pass did not finish", name)
		}
		if checksum == golden {
			t.Errorf("%s: checksum after 3M insts still equals first-pass golden; perturbation ineffective", name)
		}
	}
}

// TestRegistry checks registry consistency.
func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("want 8 benchmarks, have %d", len(names))
	}
	for _, n := range names {
		s, ok := Get(n)
		if !ok {
			t.Fatalf("benchmark %q not registered", n)
		}
		if s.Name != n || s.Build == nil || s.Golden == nil || s.Description == "" {
			t.Errorf("benchmark %q has an incomplete spec", n)
		}
	}
	if _, ok := Get("nonesuch"); ok {
		t.Error("Get(nonesuch) unexpectedly succeeded")
	}
	if _, _, err := Run("nonesuch", 1, 10); err == nil {
		t.Error("Run(nonesuch) should fail")
	}
}

// TestTraceShape sanity-checks dynamic properties every workload must have
// for the paper's experiments to be meaningful.
func TestTraceShape(t *testing.T) {
	for _, name := range Names() {
		recs, err := Trace(name, 11, 200_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := trace.Summarize(recs)
		if s.ValueWriters < s.Insts/4 {
			t.Errorf("%s: only %d/%d instructions produce values", name, s.ValueWriters, s.Insts)
		}
		if s.CondBranches+s.Jumps < s.Insts/20 {
			t.Errorf("%s: too few control transfers (%d cond + %d jumps of %d)",
				name, s.CondBranches, s.Jumps, s.Insts)
		}
		if s.StaticPCs < 30 {
			t.Errorf("%s: touches only %d static instructions", name, s.StaticPCs)
		}
		if s.Loads == 0 || s.Stores == 0 {
			t.Errorf("%s: loads=%d stores=%d; workloads must exercise memory", name, s.Loads, s.Stores)
		}
	}
}
