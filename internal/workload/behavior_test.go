package workload

import (
	"testing"

	"valuepred/internal/isa"
	"valuepred/internal/trace"
)

// pcHits counts dynamic executions per static PC.
func pcHits(recs []trace.Rec) map[uint64]uint64 {
	h := make(map[uint64]uint64)
	for _, r := range recs {
		h[r.PC]++
	}
	return h
}

// symbolPC resolves a code label to its address for the given benchmark.
func symbolPC(t *testing.T, name, label string, seed int64) uint64 {
	t.Helper()
	s, ok := Get(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	prog, err := s.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := prog.Symbols[label]
	if !ok {
		t.Fatalf("%s has no label %q", name, label)
	}
	return addr
}

// TestM88ksimExercisesAllHandlers: the interpreter must reach every opcode
// handler its guest program uses, through the indirect dispatch jump.
func TestM88ksimExercisesAllHandlers(t *testing.T) {
	recs := MustTrace("m88ksim", 1, 100_000)
	hits := pcHits(recs)
	for _, label := range []string{"op_li", "op_add", "op_addi", "op_mul", "op_ld", "op_st", "op_blt", "op_beq"} {
		if hits[symbolPC(t, "m88ksim", label, 1)] == 0 {
			t.Errorf("handler %s never executed", label)
		}
	}
	// The dispatch JALR must dominate the indirect-jump profile.
	jalrs := 0
	for _, r := range recs {
		if r.Op == isa.JALR {
			jalrs++
		}
	}
	if jalrs < len(recs)/40 {
		t.Errorf("only %d indirect dispatches in %d insts", jalrs, len(recs))
	}
}

// TestCompressDictionaryBehaviour: the LZW loop must take both the hit and
// the miss paths, and the dictionary must fill substantially.
func TestCompressDictionaryBehaviour(t *testing.T) {
	recs := MustTrace("compress95", 1, 60_000)
	hits := pcHits(recs)
	found := hits[symbolPC(t, "compress95", "found", 1)]
	miss := hits[symbolPC(t, "compress95", "miss", 1)]
	if found == 0 || miss == 0 {
		t.Errorf("LZW paths unbalanced: found=%d miss=%d", found, miss)
	}
	// Misses must dominate early (cold dictionary) but hits must exist:
	// typical text compresses, so hits are a sizeable minority.
	if found*20 < miss {
		t.Errorf("suspiciously few dictionary hits: found=%d miss=%d", found, miss)
	}
}

// TestGCCCompilesEveryStatement: the parser entry must run once per
// generated statement per pass.
func TestGCCCompilesEveryStatement(t *testing.T) {
	recs := MustTrace("gcc", 1, 400_000)
	passPC := symbolPC(t, "gcc", "pass_loop", 1)
	stmtPC := symbolPC(t, "gcc", "parse_stmt", 1)
	// Count parse_stmt entries strictly inside the first pass.
	passStarts := 0
	var stmt uint64
	for _, r := range recs {
		if r.PC == passPC {
			passStarts++
			if passStarts == 2 {
				break
			}
		}
		if r.PC == stmtPC {
			stmt++
		}
	}
	if passStarts < 2 {
		t.Fatal("first pass did not complete in 400k instructions")
	}
	// One parse_stmt per ';'-terminated statement in the source.
	src := gccSource(1)
	var want uint64
	for _, c := range src {
		if c == ';' {
			want++
		}
	}
	if stmt != want {
		t.Errorf("parse_stmt ran %d times in pass 1, want %d", stmt, want)
	}
}

// TestLiRecursionDepth: the evaluator must actually recurse (sp dips well
// below the stack top).
func TestLiRecursionDepth(t *testing.T) {
	recs := MustTrace("li", 1, 60_000)
	minSP := uint64(1) << 63
	for _, r := range recs {
		if r.Op == isa.SD && r.Rs1 == isa.SP && r.Addr < minSP {
			minSP = r.Addr
		}
	}
	if minSP == uint64(1)<<63 {
		t.Fatal("no stack traffic observed")
	}
	depth := (isa.StackTop - minSP) / 24 // eval frame is 24 bytes
	if depth < 3 {
		t.Errorf("max recursion depth %d, expected deep eval recursion", depth)
	}
}

// TestVortexTransactionMix: all three transaction handlers must run, and
// the record arena must stay inside its bounds.
func TestVortexTransactionMix(t *testing.T) {
	m, recs, err := Run("vortex", 1, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	hits := pcHits(recs)
	for _, label := range []string{"do_insert", "do_lookup", "do_update", "chase_loop"} {
		if hits[symbolPC(t, "vortex", label, 1)] == 0 {
			t.Errorf("%s never executed", label)
		}
	}
	// The bump allocator must have materialised records inside the arena:
	// the first record's id field is 1 after the first insert.
	lo := m.Program().Symbol("objects")
	if got := m.Mem().Read64(lo); got != 1 {
		t.Errorf("first record id = %d, want 1", got)
	}
}

// TestPerlSortsEveryWord: the insertion sort must run per word, and the
// bucket table must produce anagram groups (hit path taken).
func TestPerlSortsEveryWord(t *testing.T) {
	recs := MustTrace("perl", 1, 120_000)
	hits := pcHits(recs)
	if hits[symbolPC(t, "perl", "sort_outer", 1)] == 0 {
		t.Fatal("insertion sort never ran")
	}
	if hits[symbolPC(t, "perl", "bucket_hit", 1)] == 0 {
		t.Error("no anagram bucket hits — generator should create collisions")
	}
	if hits[symbolPC(t, "perl", "bucket_new", 1)] == 0 {
		t.Error("no new buckets created")
	}
}

// TestIjpegBlocksCovered: all 16 blocks of the image are transformed per
// pass (the block loops reach their bounds).
func TestIjpegBlocksCovered(t *testing.T) {
	recs := MustTrace("ijpeg", 1, 500_000)
	hits := pcHits(recs)
	zz := hits[symbolPC(t, "ijpeg", "zz_loop", 1)]
	if zz == 0 {
		t.Fatal("zigzag loop never ran")
	}
	// 64 zigzag steps per block, 16 blocks per pass.
	if zz < 64*16 {
		t.Errorf("only %d zigzag iterations; first pass incomplete", zz)
	}
}

// TestGoPrunes: alpha-beta must actually prune (the early exit from the
// child loop is taken) and recursion must reach the leaf evaluator.
func TestGoPrunes(t *testing.T) {
	recs := MustTrace("go", 1, 200_000)
	hits := pcHits(recs)
	retBest := hits[symbolPC(t, "go", "ret_best", 1)]
	childLoop := hits[symbolPC(t, "go", "child_loop", 1)]
	if retBest == 0 || childLoop == 0 {
		t.Fatal("negamax structure not exercised")
	}
	// Without pruning every interior node iterates exactly goBranch times;
	// with pruning the average is lower.
	if childLoop >= retBest*goBranch {
		t.Errorf("no pruning: %d child iterations for %d nodes", childLoop, retBest)
	}
}
