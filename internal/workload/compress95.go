package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// compress95: adaptive LZW compression (the SPEC95 compress analogue). The
// program compresses a synthetic text buffer with a hash-probed dictionary,
// folding the emitted code stream into a checksum. The dictionary is cleared
// when it reaches maxCodes, mirroring compress's CLEAR handling. After each
// pass the input is perturbed in place by the PRNG.

const (
	lzwInputLen  = 2048
	lzwTableSize = 8192 // power of two
	lzwMaxCodes  = 4096
	lzwHashK     = 0x9E3779B97F4A7C15
	lzwHashShift = 51 // 64 - log2(lzwTableSize)
)

func init() {
	register(Spec{
		Name:        "compress95",
		Description: "Data compression program using adaptive Lempel-Ziv coding.",
		Build:       buildCompress,
		Golden:      goldenCompress,
	})
}

func compressInput(seed int64) []byte {
	return genText(NewRand(seed^0x5e95), lzwInputLen)
}

func buildCompress(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	input := compressInput(seed)

	// Register plan for the main loop:
	//   s0 input base     s1 i          s2 N            s3 w
	//   s4 next_code      s5 keys base  s6 codes base   s7 checksum
	//   s8 table mask     s9 pass       s10 hash K      s11 31 (fold mult)
	b.La(isa.S0, "input")
	b.Li(isa.S2, lzwInputLen)
	b.La(isa.S5, "dict_keys")
	b.La(isa.S6, "dict_codes")
	b.Li(isa.S8, lzwTableSize-1)
	b.Li(isa.S9, 1) // pass counter
	b.Li(isa.S10, imm64(lzwHashK))
	b.Li(isa.S11, 31)

	b.Label("pass_loop")
	// Clear the dictionary key table.
	b.Mv(isa.T0, isa.S5)
	b.Li(isa.T1, lzwTableSize*8)
	b.Add(isa.T1, isa.T0, isa.T1)
	b.Label("clear_loop")
	b.Sd(isa.Zero, isa.T0, 0)
	b.Addi(isa.T0, isa.T0, 8)
	b.Blt(isa.T0, isa.T1, "clear_loop")
	b.Li(isa.S4, 256) // next_code
	b.Li(isa.S7, 0)   // checksum
	// w = input[0]; i = 1
	b.Lb(isa.S3, isa.S0, 0)
	b.Li(isa.S1, 1)

	b.Label("byte_loop")
	b.Bge(isa.S1, isa.S2, "flush")
	b.Add(isa.T0, isa.S0, isa.S1)
	b.Lb(isa.T0, isa.T0, 0) // c
	// key = w<<8 | c
	b.Slli(isa.T1, isa.S3, 8)
	b.Or(isa.T1, isa.T1, isa.T0)
	// h = (key * K) >> 51
	b.Mul(isa.T2, isa.T1, isa.S10)
	b.Srli(isa.T2, isa.T2, lzwHashShift)
	b.Label("probe")
	b.Slli(isa.T3, isa.T2, 3)
	b.Add(isa.T3, isa.T3, isa.S5)
	b.Ld(isa.T4, isa.T3, 0)
	b.Beq(isa.T4, isa.T1, "found")
	b.Beqz(isa.T4, "miss")
	b.Addi(isa.T2, isa.T2, 1)
	b.And(isa.T2, isa.T2, isa.S8)
	b.J("probe")

	b.Label("found")
	// w = dict_codes[h]
	b.Slli(isa.T3, isa.T2, 3)
	b.Add(isa.T3, isa.T3, isa.S6)
	b.Ld(isa.S3, isa.T3, 0)
	b.Addi(isa.S1, isa.S1, 1)
	b.J("byte_loop")

	b.Label("miss")
	// emit w: checksum = checksum*31 + w
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.S3)
	// dictionary full? clear instead of inserting (compress CLEAR).
	b.Li(isa.T4, lzwMaxCodes)
	b.Bge(isa.S4, isa.T4, "dict_full")
	// insert key -> next_code at slot h (t3 still points at the key slot)
	b.Sd(isa.T1, isa.T3, 0)
	b.Slli(isa.T4, isa.T2, 3)
	b.Add(isa.T4, isa.T4, isa.S6)
	b.Sd(isa.S4, isa.T4, 0)
	b.Addi(isa.S4, isa.S4, 1)
	b.Mv(isa.S3, isa.T0) // w = c
	b.Addi(isa.S1, isa.S1, 1)
	b.J("byte_loop")

	b.Label("dict_full")
	b.Mv(isa.T0, isa.S5)
	b.Li(isa.T1, lzwTableSize*8)
	b.Add(isa.T1, isa.T0, isa.T1)
	b.Label("clear2_loop")
	b.Sd(isa.Zero, isa.T0, 0)
	b.Addi(isa.T0, isa.T0, 8)
	b.Blt(isa.T0, isa.T1, "clear2_loop")
	b.Li(isa.S4, 256)
	// After a clear the current byte restarts the phrase: w = c; i++.
	b.Add(isa.T0, isa.S0, isa.S1)
	b.Lb(isa.S3, isa.T0, 0)
	b.Addi(isa.S1, isa.S1, 1)
	b.J("byte_loop")

	b.Label("flush")
	// emit final w and the code count
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.S3)
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.S4)
	// store checksum; first pass also stores the golden value
	b.La(isa.T0, "checksum")
	b.Sd(isa.S7, isa.T0, 0)
	b.Li(isa.T1, 1)
	b.Bne(isa.S9, isa.T1, "perturb")
	b.La(isa.T0, "golden")
	b.Sd(isa.S7, isa.T0, 0)

	b.Label("perturb")
	// Perturb 128 pseudo-random input bytes: in[idx] = ((in[idx] ^ r) & 0xff) | 1.
	b.Li(isa.S3, 0)
	b.Label("perturb_loop")
	b.Call("rng_next")
	b.Andi(isa.T0, isa.A7, lzwInputLen-1)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Lb(isa.T1, isa.T0, 0)
	b.Srli(isa.T2, isa.A7, 11)
	b.Xor(isa.T1, isa.T1, isa.T2)
	b.Andi(isa.T1, isa.T1, 0xff)
	b.Ori(isa.T1, isa.T1, 1)
	b.Sb(isa.T1, isa.T0, 0)
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 128)
	b.Bnez(isa.T0, "perturb_loop")
	b.Addi(isa.S9, isa.S9, 1)
	b.J("pass_loop")

	emitRNG(b, "rng_state", uint64(seed)^0xc0135)
	b.Bytes("input", input)
	b.Space("dict_keys", lzwTableSize*8)
	b.Space("dict_codes", lzwTableSize*8)
	b.Quads("checksum", 0)
	b.Quads("golden", 0)
	return b.Assemble()
}

// goldenCompress replays the first pass in Go. The emitted code sequence
// depends only on the dictionary mapping, so a plain map reproduces it as
// long as the CLEAR points match.
func goldenCompress(seed int64) uint64 {
	input := compressInput(seed)
	dict := make(map[uint64]uint64)
	nextCode := uint64(256)
	var checksum uint64
	emit := func(code uint64) { checksum = checksum*31 + code }
	w := uint64(input[0])
	for i := 1; i < len(input); {
		c := uint64(input[i])
		key := w<<8 | c
		if code, ok := dict[key]; ok {
			w = code
			i++
			continue
		}
		emit(w)
		if nextCode >= lzwMaxCodes {
			dict = make(map[uint64]uint64)
			nextCode = 256
			w = uint64(input[i])
			i++
			continue
		}
		dict[key] = nextCode
		nextCode++
		w = c
		i++
	}
	emit(w)
	emit(nextCode)
	return checksum
}
