// Package workload provides the eight SPEC95-integer analogue benchmarks
// used throughout this reproduction (Table 3.1 of the paper). Each workload
// is a real program — LZW compression, an interpreter, a DCT encoder, a
// database, a game-tree search, … — written in the assembler DSL and
// executed on the functional emulator to produce a dynamic trace with
// genuine value streams and control flow.
//
// The paper traced SPEC95 binaries with Shade for 100M instructions; these
// analogues replace the proprietary binaries (see DESIGN.md §2). Every
// workload runs indefinitely: an outer loop perturbs its input with a
// deterministic PRNG each pass, so traces of any requested length are
// available, and the first pass computes a checksum over unperturbed input
// that the test suite verifies against a pure-Go golden model.
package workload

import (
	"fmt"
	"sort"

	"valuepred/internal/emu"
	"valuepred/internal/isa"
	"valuepred/internal/trace"
)

// Spec describes one benchmark.
type Spec struct {
	// Name is the benchmark's registry key (the SPEC95 name).
	Name string
	// Description matches the role given in Table 3.1 of the paper.
	Description string
	// Build assembles the program with inputs derived from seed.
	Build func(seed int64) (*isa.Program, error)
	// Golden computes, in pure Go, the checksum the program stores at the
	// "golden" symbol during its first pass over the input.
	Golden func(seed int64) uint64
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
}

// Names returns the benchmark names in the paper's presentation order.
func Names() []string {
	return []string{"go", "m88ksim", "gcc", "compress95", "li", "ijpeg", "perl", "vortex"}
}

// All returns the specs in presentation order.
func All() []Spec {
	var out []Spec
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Get returns the spec for name.
func Get(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// sanity check at init that the registry and Names agree.
func init() {
	names := Names()
	sort.Strings(names)
	// registration happens in each benchmark file's init; checked in tests.
	_ = names
}

// Run builds the named benchmark with the given seed, executes up to limit
// instructions and returns the machine (for state inspection) and the trace.
func Run(name string, seed int64, limit int) (*emu.Machine, []trace.Rec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	prog, err := s.Build(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: building %s: %w", name, err)
	}
	m := emu.New(prog)
	recs := m.Run(limit)
	if err := m.Err(); err != nil {
		return nil, nil, fmt.Errorf("workload: running %s: %w", name, err)
	}
	if limit > 0 && len(recs) < limit && m.Halted() {
		return nil, nil, fmt.Errorf("workload: %s halted after %d instructions; workloads must run forever", name, len(recs))
	}
	return m, recs, nil
}

// Trace is Run returning only the trace records.
func Trace(name string, seed int64, limit int) ([]trace.Rec, error) {
	_, recs, err := Run(name, seed, limit)
	return recs, err
}

// Stream is the record-at-a-time form of Run: a trace.Source that steps
// the emulator lazily, so the streaming trace path (internal/chunk) never
// holds more than the record in flight. It owns its emulator outright;
// records returned by Next are copies the caller may retain.
//
// Error semantics mirror Run exactly: after Next returns false, Err
// reports a machine fault or an early halt (workloads must run forever —
// halting before the requested limit is a bug in the workload) with the
// same messages Run wraps around them.
type Stream struct {
	name   string
	m      *emu.Machine
	limit  int
	served int
	err    error
}

// Open builds the named benchmark with the given seed and returns a Stream
// over its first limit instructions (limit <= 0 streams forever — callers
// must impose their own bound, since workloads never halt).
func Open(name string, seed int64, limit int) (*Stream, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	prog, err := s.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("workload: building %s: %w", name, err)
	}
	return &Stream{name: name, m: emu.New(prog), limit: limit}, nil
}

// Next implements trace.Source.
func (s *Stream) Next() (trace.Rec, bool) {
	if s.err != nil || (s.limit > 0 && s.served >= s.limit) {
		return trace.Rec{}, false
	}
	r, ok := s.m.Step()
	if !ok {
		if err := s.m.Err(); err != nil {
			s.err = fmt.Errorf("workload: running %s: %w", s.name, err)
		} else if s.limit > 0 && s.m.Halted() {
			s.err = fmt.Errorf("workload: %s halted after %d instructions; workloads must run forever", s.name, s.served)
		}
		return trace.Rec{}, false
	}
	s.served++
	return r, true
}

// Err returns the fault or early-halt error, if any. Valid after Next
// returns false; a nil Err means the stream ended cleanly at its limit.
func (s *Stream) Err() error { return s.err }

// Len returns the stream's limit (0 when unbounded), so trace.Collect can
// size its output up front.
func (s *Stream) Len() int { return s.limit }

// MustTrace is Trace that panics on error; for benchmarks and examples
// whose workloads are validated by the test suite.
func MustTrace(name string, seed int64, limit int) []trace.Rec {
	recs, err := Trace(name, seed, limit)
	if err != nil {
		panic(err)
	}
	return recs
}
