package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// Rand is the xorshift64 PRNG used for all input generation and for the
// in-program input perturbation between passes. The assembler-level routine
// emitted by emitRNG implements exactly the same recurrence so that Go
// golden models and emulated programs stay in lockstep.
type Rand struct{ state uint64 }

// NewRand returns a PRNG; a zero seed is remapped to a fixed constant
// because xorshift64 has an all-zero fixed point.
func NewRand(seed int64) *Rand {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &Rand{state: s}
}

// Next advances the generator and returns the new 64-bit state.
func (r *Rand) Next() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// emitRNG declares the PRNG state symbol (named stateSym) initialised to
// seed, and emits the routine label rng_next:
//
//	a7 = next rng value; clobbers t5, t6 only.
//
// The routine is call-free (no stack traffic) so workloads can call it from
// any context.
func emitRNG(b *asm.Builder, stateSym string, seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	b.Quads(stateSym, int64(seed))
	b.Label("rng_next")
	b.La(isa.T5, stateSym)
	b.Ld(isa.T6, isa.T5, 0)
	b.Slli(isa.A7, isa.T6, 13)
	b.Xor(isa.T6, isa.T6, isa.A7)
	b.Srli(isa.A7, isa.T6, 7)
	b.Xor(isa.T6, isa.T6, isa.A7)
	b.Slli(isa.A7, isa.T6, 17)
	b.Xor(isa.T6, isa.T6, isa.A7)
	b.Sd(isa.T6, isa.T5, 0)
	b.Mv(isa.A7, isa.T6)
	b.Ret()
}

// imm64 converts an unsigned 64-bit constant to the signed immediate the
// assembler DSL expects (a runtime conversion, since constant conversions
// that overflow are rejected by the compiler).
func imm64(v uint64) int64 { return int64(v) }

// genText produces n bytes of synthetic English-like text (letters, spaces
// and newlines with a second-order bias) used by compress95.
func genText(r *Rand, n int) []byte {
	const letters = "etaoinshrdlucmfwypvbgkjqxz"
	out := make([]byte, n)
	word := 0
	for i := range out {
		switch {
		case word >= 3 && r.Intn(10) < 4:
			out[i] = ' '
			word = 0
		default:
			// Bias toward frequent letters and short-range repetition.
			if i >= 2 && r.Intn(5) == 0 {
				out[i] = out[i-2]
			} else {
				out[i] = letters[r.Intn(len(letters))%len(letters)]
			}
			word++
		}
		if i > 0 && i%64 == 0 {
			out[i] = '\n'
			word = 0
		}
	}
	return out
}

// genWords produces count lowercase words of length 3..8 for perl, with a
// deliberate fraction of anagram pairs so that bucket collisions occur.
func genWords(r *Rand, count int) []string {
	words := make([]string, 0, count)
	for len(words) < count {
		n := 3 + r.Intn(6)
		w := make([]byte, n)
		for i := range w {
			w[i] = byte('a' + r.Intn(26))
		}
		words = append(words, string(w))
		// With probability ~1/3, also add a shuffled (anagram) copy.
		if len(words) < count && r.Intn(3) == 0 {
			sh := []byte(words[len(words)-1])
			for i := len(sh) - 1; i > 0; i-- {
				j := r.Intn(i + 1)
				sh[i], sh[j] = sh[j], sh[i]
			}
			words = append(words, string(sh))
		}
	}
	return words
}

// genImage produces a w×h 8-bit image with smooth gradients plus noise for
// ijpeg.
func genImage(r *Rand, w, h int) []byte {
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 2*x + 3*y + r.Intn(17)
			img[y*w+x] = byte(v)
		}
	}
	return img
}
