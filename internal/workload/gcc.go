package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// gcc: a compiler. The program compiles a buffer of assignment statements
// ("xy = 12 + a * (3 - b);") through three real phases — a character-class
// lexer, a recursive-descent parser building AST nodes in an arena, and a
// recursive code generator emitting a stack-machine instruction stream that
// is folded into the checksum. Irregular token-dependent control flow gives
// the modest value predictability the paper observes for gcc.

// Token types.
const (
	gccTokEOF = iota
	gccTokIdent
	gccTokNum
	gccTokPlus
	gccTokMinus
	gccTokStar
	gccTokSlash
	gccTokLParen
	gccTokRParen
	gccTokAssign
	gccTokSemi
)

// AST node kinds.
const (
	gccNodeNum = iota
	gccNodeVar
	gccNodeAdd
	gccNodeSub
	gccNodeMul
	gccNodeDiv
	gccNodeAssign
)

// Stack-machine opcodes emitted by the code generator.
const (
	gccOpPush  = 1
	gccOpLoad  = 2
	gccOpStore = 3
	gccOpAdd   = 4
	gccOpSub   = 5
	gccOpMul   = 6
	gccOpDiv   = 7
)

const (
	gccNumStmts  = 256
	gccSrcBytes  = 8192
	gccMaxTokens = 4096
	gccMaxNodes  = 4096
)

func init() {
	register(Spec{
		Name:        "gcc",
		Description: "A GNU C compiler version 2.5.3.",
		Build:       buildGCC,
		Golden:      goldenGCC,
	})
}

// gccSource generates the source text compiled by the benchmark.
func gccSource(seed int64) []byte {
	r := NewRand(seed ^ 0x6cc)
	var out []byte
	ident := func() {
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			out = append(out, byte('a'+r.Intn(26)))
		}
	}
	number := func() {
		v := 1 + r.Intn(999)
		if v < 10 {
			out = append(out, byte('0'+v))
			return
		}
		var digits []byte
		for v > 0 {
			digits = append(digits, byte('0'+v%10))
			v /= 10
		}
		for i := len(digits) - 1; i >= 0; i-- {
			out = append(out, digits[i])
		}
	}
	var expr func(depth int)
	factor := func(depth int) {
		switch {
		case depth < 3 && r.Intn(4) == 0:
			out = append(out, '(')
			expr(depth + 1)
			out = append(out, ')')
		case r.Intn(2) == 0:
			number()
		default:
			ident()
		}
	}
	expr = func(depth int) {
		factor(depth)
		for n := r.Intn(3); n > 0; n-- {
			out = append(out, " +-*/"[1+r.Intn(4)])
			factor(depth)
		}
	}
	for s := 0; s < gccNumStmts && len(out) < gccSrcBytes-64; s++ {
		ident()
		out = append(out, ' ', '=', ' ')
		expr(0)
		out = append(out, ';', '\n')
	}
	out = append(out, 0) // terminator
	// Pad to the full buffer size so the in-place perturbation loop always
	// indexes inside the symbol.
	for len(out) < gccSrcBytes {
		out = append(out, 0)
	}
	return out
}

func buildGCC(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	src := gccSource(seed)

	// Register plan:
	//   s0 src base      s1 tokens base  s2 lexer write cursor (token idx)
	//   s3 lexer byte i  s4 parser token cursor  s5 node arena ptr
	//   s6 arena base    s7 checksum     s9 pass  s11 31
	b.La(isa.S0, "src")
	b.La(isa.S1, "tokens")
	b.La(isa.S6, "nodes")
	b.Li(isa.S9, 1)
	b.Li(isa.S11, 31)

	b.Label("pass_loop")
	b.Li(isa.S7, 0)
	b.Mv(isa.S5, isa.S6)

	// ---- phase 1: lexer ----
	b.Li(isa.S2, 0)
	b.Li(isa.S3, 0)
	b.Label("lex_loop")
	b.Add(isa.T0, isa.S0, isa.S3)
	b.Lb(isa.T1, isa.T0, 0)
	b.Beqz(isa.T1, "lex_done")
	// whitespace?
	b.Li(isa.T2, ' ')
	b.Beq(isa.T1, isa.T2, "lex_skip")
	b.Li(isa.T2, '\n')
	b.Beq(isa.T1, isa.T2, "lex_skip")
	// letter?
	b.Li(isa.T2, 'a')
	b.Blt(isa.T1, isa.T2, "lex_not_letter")
	b.Li(isa.T2, 'z'+1)
	b.Bge(isa.T1, isa.T2, "lex_not_letter")
	// ident: value = value*26 + (c-'a') while letters
	b.Li(isa.T3, 0)
	b.Label("lex_ident")
	b.Li(isa.T4, 26)
	b.Mul(isa.T3, isa.T3, isa.T4)
	b.Addi(isa.T1, isa.T1, -'a')
	b.Add(isa.T3, isa.T3, isa.T1)
	b.Addi(isa.S3, isa.S3, 1)
	b.Add(isa.T0, isa.S0, isa.S3)
	b.Lb(isa.T1, isa.T0, 0)
	b.Li(isa.T2, 'a')
	b.Blt(isa.T1, isa.T2, "lex_ident_done")
	b.Li(isa.T2, 'z'+1)
	b.Blt(isa.T1, isa.T2, "lex_ident")
	b.Label("lex_ident_done")
	b.Li(isa.T1, gccTokIdent)
	b.J("lex_store")
	b.Label("lex_not_letter")
	// digit?
	b.Li(isa.T2, '0')
	b.Blt(isa.T1, isa.T2, "lex_punct")
	b.Li(isa.T2, '9'+1)
	b.Bge(isa.T1, isa.T2, "lex_punct")
	b.Li(isa.T3, 0)
	b.Label("lex_num")
	b.Li(isa.T4, 10)
	b.Mul(isa.T3, isa.T3, isa.T4)
	b.Addi(isa.T1, isa.T1, -'0')
	b.Add(isa.T3, isa.T3, isa.T1)
	b.Addi(isa.S3, isa.S3, 1)
	b.Add(isa.T0, isa.S0, isa.S3)
	b.Lb(isa.T1, isa.T0, 0)
	b.Li(isa.T2, '0')
	b.Blt(isa.T1, isa.T2, "lex_num_done")
	b.Li(isa.T2, '9'+1)
	b.Blt(isa.T1, isa.T2, "lex_num")
	b.Label("lex_num_done")
	b.Li(isa.T1, gccTokNum)
	b.J("lex_store")
	// punctuation chain
	b.Label("lex_punct")
	b.Li(isa.T3, 0)
	punct := []struct {
		ch  byte
		tok int64
	}{
		{'+', gccTokPlus}, {'-', gccTokMinus}, {'*', gccTokStar},
		{'/', gccTokSlash}, {'(', gccTokLParen}, {')', gccTokRParen},
		{'=', gccTokAssign}, {';', gccTokSemi},
	}
	for _, p := range punct {
		lbl := "lex_p_" + string(p.ch)
		b.Li(isa.T2, int64(p.ch))
		b.Bne(isa.T1, isa.T2, lbl)
		b.Li(isa.T1, p.tok)
		b.Addi(isa.S3, isa.S3, 1)
		b.J("lex_store")
		b.Label(lbl)
	}
	// unknown byte: skip it
	b.Label("lex_skip")
	b.Addi(isa.S3, isa.S3, 1)
	b.J("lex_loop")
	b.Label("lex_store")
	// tokens[cursor] = (type, value); cursor++
	b.Slli(isa.T0, isa.S2, 4)
	b.Add(isa.T0, isa.T0, isa.S1)
	b.Sd(isa.T1, isa.T0, 0)
	b.Sd(isa.T3, isa.T0, 8)
	b.Addi(isa.S2, isa.S2, 1)
	b.J("lex_loop")
	b.Label("lex_done")
	// terminator token
	b.Slli(isa.T0, isa.S2, 4)
	b.Add(isa.T0, isa.T0, isa.S1)
	b.Sd(isa.Zero, isa.T0, 0)
	b.Sd(isa.Zero, isa.T0, 8)

	// ---- phase 2+3: parse and generate per statement ----
	b.Li(isa.S4, 0)
	b.Label("compile_loop")
	b.Slli(isa.T0, isa.S4, 4)
	b.Add(isa.T0, isa.T0, isa.S1)
	b.Ld(isa.T1, isa.T0, 0)
	b.Beqz(isa.T1, "pass_end")
	b.Call("parse_stmt")
	b.Call("gen") // a0 = root node
	b.J("compile_loop")

	b.Label("pass_end")
	b.La(isa.T0, "checksum")
	b.Sd(isa.S7, isa.T0, 0)
	b.Li(isa.T1, 1)
	b.Bne(isa.S9, isa.T1, "perturb")
	b.La(isa.T0, "golden")
	b.Sd(isa.S7, isa.T0, 0)
	// Perturb 64 random digit bytes: '1'..'8' increment, '9'->'1', '0'->'5'.
	b.Label("perturb")
	b.Li(isa.S3, 0)
	b.Label("perturb_loop")
	b.Call("rng_next")
	b.Andi(isa.T0, isa.A7, gccSrcBytes-1)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Lb(isa.T1, isa.T0, 0)
	b.Li(isa.T2, '0')
	b.Blt(isa.T1, isa.T2, "perturb_next")
	b.Li(isa.T2, '9')
	b.Blt(isa.T2, isa.T1, "perturb_next")
	b.Beq(isa.T1, isa.T2, "perturb_nine")
	b.Li(isa.T2, '0')
	b.Beq(isa.T1, isa.T2, "perturb_zero")
	b.Addi(isa.T1, isa.T1, 1)
	b.J("perturb_store")
	b.Label("perturb_nine")
	b.Li(isa.T1, '1')
	b.J("perturb_store")
	b.Label("perturb_zero")
	b.Li(isa.T1, '5')
	b.Label("perturb_store")
	b.Sb(isa.T1, isa.T0, 0)
	b.Label("perturb_next")
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 64)
	b.Bnez(isa.T0, "perturb_loop")
	b.Addi(isa.S9, isa.S9, 1)
	b.J("pass_loop")

	// --- helpers ---

	// curType/curVal inline sequences.
	curType := func(dst isa.Reg) {
		b.Slli(dst, isa.S4, 4)
		b.Add(dst, dst, isa.S1)
		b.Ld(dst, dst, 0)
	}
	curVal := func(dst isa.Reg) {
		b.Slli(dst, isa.S4, 4)
		b.Add(dst, dst, isa.S1)
		b.Ld(dst, dst, 8)
	}

	// new_node(a0=kind, a1=left, a2=right, a3=value) -> a0 = node ptr.
	b.Label("new_node")
	b.Sd(isa.A0, isa.S5, 0)
	b.Sd(isa.A1, isa.S5, 8)
	b.Sd(isa.A2, isa.S5, 16)
	b.Sd(isa.A3, isa.S5, 24)
	b.Mv(isa.A0, isa.S5)
	b.Addi(isa.S5, isa.S5, 32)
	b.Ret()

	// parse_stmt: ident '=' expr ';' -> a0 = assign node.
	b.Label("parse_stmt")
	b.Addi(isa.SP, isa.SP, -16)
	b.Sd(isa.RA, isa.SP, 0)
	curVal(isa.A3)
	b.Addi(isa.S4, isa.S4, 1) // consume ident
	b.Li(isa.A0, gccNodeVar)
	b.Li(isa.A1, 0)
	b.Li(isa.A2, 0)
	b.Call("new_node")
	b.Sd(isa.A0, isa.SP, 8)   // var node
	b.Addi(isa.S4, isa.S4, 1) // consume '='
	b.Call("parse_expr")
	b.Mv(isa.A2, isa.A0)
	b.Ld(isa.A1, isa.SP, 8)
	b.Li(isa.A0, gccNodeAssign)
	b.Li(isa.A3, 0)
	b.Call("new_node")
	b.Addi(isa.S4, isa.S4, 1) // consume ';'
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 16)
	b.Ret()

	// parse_expr: term (('+'|'-') term)* -> a0.
	b.Label("parse_expr")
	b.Addi(isa.SP, isa.SP, -16)
	b.Sd(isa.RA, isa.SP, 0)
	b.Call("parse_term")
	b.Sd(isa.A0, isa.SP, 8) // left
	b.Label("expr_loop")
	curType(isa.T0)
	b.Li(isa.T1, gccTokPlus)
	b.Beq(isa.T0, isa.T1, "expr_add")
	b.Li(isa.T1, gccTokMinus)
	b.Beq(isa.T0, isa.T1, "expr_sub")
	b.Ld(isa.A0, isa.SP, 8)
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 16)
	b.Ret()
	b.Label("expr_add")
	b.Addi(isa.S4, isa.S4, 1)
	b.Call("parse_term")
	b.Mv(isa.A2, isa.A0)
	b.Ld(isa.A1, isa.SP, 8)
	b.Li(isa.A0, gccNodeAdd)
	b.Li(isa.A3, 0)
	b.Call("new_node")
	b.Sd(isa.A0, isa.SP, 8)
	b.J("expr_loop")
	b.Label("expr_sub")
	b.Addi(isa.S4, isa.S4, 1)
	b.Call("parse_term")
	b.Mv(isa.A2, isa.A0)
	b.Ld(isa.A1, isa.SP, 8)
	b.Li(isa.A0, gccNodeSub)
	b.Li(isa.A3, 0)
	b.Call("new_node")
	b.Sd(isa.A0, isa.SP, 8)
	b.J("expr_loop")

	// parse_term: factor (('*'|'/') factor)* -> a0.
	b.Label("parse_term")
	b.Addi(isa.SP, isa.SP, -16)
	b.Sd(isa.RA, isa.SP, 0)
	b.Call("parse_factor")
	b.Sd(isa.A0, isa.SP, 8)
	b.Label("term_loop")
	curType(isa.T0)
	b.Li(isa.T1, gccTokStar)
	b.Beq(isa.T0, isa.T1, "term_mul")
	b.Li(isa.T1, gccTokSlash)
	b.Beq(isa.T0, isa.T1, "term_div")
	b.Ld(isa.A0, isa.SP, 8)
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 16)
	b.Ret()
	b.Label("term_mul")
	b.Addi(isa.S4, isa.S4, 1)
	b.Call("parse_factor")
	b.Mv(isa.A2, isa.A0)
	b.Ld(isa.A1, isa.SP, 8)
	b.Li(isa.A0, gccNodeMul)
	b.Li(isa.A3, 0)
	b.Call("new_node")
	b.Sd(isa.A0, isa.SP, 8)
	b.J("term_loop")
	b.Label("term_div")
	b.Addi(isa.S4, isa.S4, 1)
	b.Call("parse_factor")
	b.Mv(isa.A2, isa.A0)
	b.Ld(isa.A1, isa.SP, 8)
	b.Li(isa.A0, gccNodeDiv)
	b.Li(isa.A3, 0)
	b.Call("new_node")
	b.Sd(isa.A0, isa.SP, 8)
	b.J("term_loop")

	// parse_factor: number | ident | '(' expr ')' -> a0.
	b.Label("parse_factor")
	b.Addi(isa.SP, isa.SP, -16)
	b.Sd(isa.RA, isa.SP, 0)
	curType(isa.T0)
	b.Li(isa.T1, gccTokNum)
	b.Beq(isa.T0, isa.T1, "factor_num")
	b.Li(isa.T1, gccTokIdent)
	b.Beq(isa.T0, isa.T1, "factor_ident")
	// parenthesised expression
	b.Addi(isa.S4, isa.S4, 1) // consume '('
	b.Call("parse_expr")
	b.Addi(isa.S4, isa.S4, 1) // consume ')'
	b.J("factor_ret")
	b.Label("factor_num")
	curVal(isa.A3)
	b.Addi(isa.S4, isa.S4, 1)
	b.Li(isa.A0, gccNodeNum)
	b.Li(isa.A1, 0)
	b.Li(isa.A2, 0)
	b.Call("new_node")
	b.J("factor_ret")
	b.Label("factor_ident")
	curVal(isa.A3)
	b.Addi(isa.S4, isa.S4, 1)
	b.Li(isa.A0, gccNodeVar)
	b.Li(isa.A1, 0)
	b.Li(isa.A2, 0)
	b.Call("new_node")
	b.Label("factor_ret")
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 16)
	b.Ret()

	// gen(a0 = node): recursive code generator; folds (op, operand) pairs
	// into the checksum in s7.
	emitFold := func(opReg, operandReg isa.Reg) {
		b.Mul(isa.S7, isa.S7, isa.S11)
		b.Add(isa.S7, isa.S7, opReg)
		b.Mul(isa.S7, isa.S7, isa.S11)
		b.Add(isa.S7, isa.S7, operandReg)
	}
	b.Label("gen")
	b.Addi(isa.SP, isa.SP, -16)
	b.Sd(isa.RA, isa.SP, 0)
	b.Sd(isa.A0, isa.SP, 8)
	b.Ld(isa.T0, isa.A0, 0) // kind
	b.Li(isa.T1, gccNodeNum)
	b.Beq(isa.T0, isa.T1, "gen_num")
	b.Li(isa.T1, gccNodeVar)
	b.Beq(isa.T0, isa.T1, "gen_var")
	b.Li(isa.T1, gccNodeAssign)
	b.Beq(isa.T0, isa.T1, "gen_assign")
	// binary operator: gen(left); gen(right); emit op
	b.Ld(isa.A0, isa.A0, 8)
	b.Call("gen")
	b.Ld(isa.A0, isa.SP, 8)
	b.Ld(isa.A0, isa.A0, 16)
	b.Call("gen")
	b.Ld(isa.T0, isa.SP, 8)
	b.Ld(isa.T0, isa.T0, 0) // kind again
	b.Addi(isa.T0, isa.T0, gccOpAdd-gccNodeAdd)
	emitFold(isa.T0, isa.Zero)
	b.J("gen_ret")
	b.Label("gen_num")
	b.Ld(isa.T2, isa.A0, 24)
	b.Li(isa.T0, gccOpPush)
	emitFold(isa.T0, isa.T2)
	b.J("gen_ret")
	b.Label("gen_var")
	b.Ld(isa.T2, isa.A0, 24)
	b.Li(isa.T0, gccOpLoad)
	emitFold(isa.T0, isa.T2)
	b.J("gen_ret")
	b.Label("gen_assign")
	b.Ld(isa.A0, isa.A0, 16) // rhs
	b.Call("gen")
	b.Ld(isa.T0, isa.SP, 8)
	b.Ld(isa.T0, isa.T0, 8)  // lhs var node
	b.Ld(isa.T2, isa.T0, 24) // its name
	b.Li(isa.T0, gccOpStore)
	emitFold(isa.T0, isa.T2)
	b.Label("gen_ret")
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 16)
	b.Ret()

	emitRNG(b, "rng_state", uint64(seed)^0x9cc11)
	b.Bytes("src", src)
	b.Space("tokens", gccMaxTokens*16)
	b.Space("nodes", gccMaxNodes*32)
	b.Quads("checksum", 0)
	b.Quads("golden", 0)
	return b.Assemble()
}

// goldenGCC compiles the same source in pure Go, folding the identical
// (op, operand) stream.
func goldenGCC(seed int64) uint64 {
	src := gccSource(seed)
	// lex
	type token struct {
		typ int
		val uint64
	}
	var toks []token
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == 0:
			i = len(src)
		case c == ' ' || c == '\n':
			i++
		case c >= 'a' && c <= 'z':
			var v uint64
			for i < len(src) && src[i] >= 'a' && src[i] <= 'z' {
				v = v*26 + uint64(src[i]-'a')
				i++
			}
			toks = append(toks, token{gccTokIdent, v})
		case c >= '0' && c <= '9':
			var v uint64
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				v = v*10 + uint64(src[i]-'0')
				i++
			}
			toks = append(toks, token{gccTokNum, v})
		default:
			m := map[byte]int{'+': gccTokPlus, '-': gccTokMinus, '*': gccTokStar,
				'/': gccTokSlash, '(': gccTokLParen, ')': gccTokRParen,
				'=': gccTokAssign, ';': gccTokSemi}
			if t, ok := m[c]; ok {
				toks = append(toks, token{t, 0})
			}
			i++
		}
	}
	toks = append(toks, token{gccTokEOF, 0})

	// parse
	type node struct {
		kind        int
		left, right *node
		val         uint64
	}
	pos := 0
	var parseExpr func() *node
	parseFactor := func() *node {
		t := toks[pos]
		switch t.typ {
		case gccTokNum:
			pos++
			return &node{kind: gccNodeNum, val: t.val}
		case gccTokIdent:
			pos++
			return &node{kind: gccNodeVar, val: t.val}
		default: // '('
			pos++
			e := parseExpr()
			pos++ // ')'
			return e
		}
	}
	parseTerm := func() *node {
		left := parseFactor()
		for toks[pos].typ == gccTokStar || toks[pos].typ == gccTokSlash {
			kind := gccNodeMul
			if toks[pos].typ == gccTokSlash {
				kind = gccNodeDiv
			}
			pos++
			left = &node{kind: kind, left: left, right: parseFactor()}
		}
		return left
	}
	parseExpr = func() *node {
		left := parseTerm()
		for toks[pos].typ == gccTokPlus || toks[pos].typ == gccTokMinus {
			kind := gccNodeAdd
			if toks[pos].typ == gccTokMinus {
				kind = gccNodeSub
			}
			pos++
			left = &node{kind: kind, left: left, right: parseTerm()}
		}
		return left
	}

	// generate
	var checksum uint64
	fold := func(op int, operand uint64) {
		checksum = checksum*31 + uint64(op)
		checksum = checksum*31 + operand
	}
	var gen func(n *node)
	gen = func(n *node) {
		switch n.kind {
		case gccNodeNum:
			fold(gccOpPush, n.val)
		case gccNodeVar:
			fold(gccOpLoad, n.val)
		case gccNodeAssign:
			gen(n.right)
			fold(gccOpStore, n.left.val)
		default:
			gen(n.left)
			gen(n.right)
			fold(n.kind+gccOpAdd-gccNodeAdd, 0)
		}
	}
	for toks[pos].typ != gccTokEOF {
		// statement: ident '=' expr ';'
		v := &node{kind: gccNodeVar, val: toks[pos].val}
		pos += 2
		rhs := parseExpr()
		pos++ // ';'
		gen(&node{kind: gccNodeAssign, left: v, right: rhs})
	}
	return checksum
}
