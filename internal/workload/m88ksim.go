package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// m88ksim: an instruction-set simulator running inside the emulated
// machine, mirroring SPEC95's 88100 simulator. The host program is a
// fetch/decode/dispatch interpreter (indirect jumps through a jump table)
// for a toy 16-register ISA ("t88"); the guest program is a counter-heavy
// nested loop. Interpreter state (guest PC, counters, register-file
// traffic) is exactly the kind of stride- and last-value-predictable value
// stream the paper reports for m88ksim.

// t88 opcodes.
const (
	t88Halt = iota
	t88Addi
	t88Add
	t88Sub
	t88Mul
	t88Ld
	t88St
	t88Beq
	t88Bne
	t88Li
	t88Blt
	t88NumOps
)

// t88GoldenSteps is the guest instruction count after which the host folds
// the guest register file into the golden checksum.
const t88GoldenSteps = 4096

// t88Enc packs one guest instruction word.
func t88Enc(op, rd, rs, rt int, imm int64) uint64 {
	return uint64(op&0xff) | uint64(rd&0xf)<<8 | uint64(rs&0xf)<<12 |
		uint64(rt&0xf)<<16 | uint64(uint16(imm))<<32
}

// t88Program builds the guest program. It loops forever: an inner
// multiply-accumulate loop of 16 iterations, a store/load round trip, and
// an unconditional back-edge.
func t88Program(seed int64) []uint64 {
	initTotal := seed & 0x3fff
	return []uint64{
		t88Enc(t88Li, 1, 0, 0, 0),         // 0: li r1, 0        (i)
		t88Enc(t88Li, 7, 0, 0, initTotal), // 1: li r7, seed     (total)
		t88Enc(t88Li, 2, 0, 0, 0),         // 2: outer: li r2, 0 (j)
		t88Enc(t88Li, 4, 0, 0, 0),         // 3: li r4, 0        (sum)
		t88Enc(t88Mul, 5, 1, 2, 0),        // 4: inner: r5 = i*j
		t88Enc(t88Add, 4, 4, 5, 0),        // 5: sum += r5
		t88Enc(t88Addi, 2, 2, 0, 1),       // 6: j++
		t88Enc(t88Li, 6, 0, 0, 16),        // 7: r6 = 16
		t88Enc(t88Blt, 0, 2, 6, -4),       // 8: if j < 16 goto inner
		t88Enc(t88Add, 7, 7, 4, 0),        // 9: total += sum
		t88Enc(t88St, 0, 1, 4, 0),         // 10: mem[i] = sum
		t88Enc(t88Ld, 3, 1, 0, 0),         // 11: r3 = mem[i]
		t88Enc(t88Add, 7, 7, 3, 0),        // 12: total += r3
		t88Enc(t88Addi, 1, 1, 0, 1),       // 13: i++
		t88Enc(t88Beq, 0, 0, 0, -12),      // 14: goto outer
	}
}

func init() {
	register(Spec{
		Name:        "m88ksim",
		Description: "A simulator for the 88100 processor.",
		Build:       buildM88ksim,
		Golden:      goldenM88ksim,
	})
}

func buildM88ksim(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	guest := t88Program(seed)
	words := make([]int64, len(guest))
	for i, w := range guest {
		words[i] = int64(w)
	}

	// Host register plan:
	//   s0 guest text base   s1 guest regfile base  s2 guest data base
	//   s3 guest pc          s4 dispatch table base s5 guest inst counter
	//   s6 golden threshold  s11 31 (fold mult)
	b.La(isa.S0, "t_prog")
	b.La(isa.S1, "t_regs")
	b.La(isa.S2, "t_mem")
	b.Li(isa.S3, 0)
	b.La(isa.S4, "t88_dispatch")
	b.Li(isa.S5, 0)
	b.Li(isa.S6, t88GoldenSteps)
	b.Li(isa.S11, 31)

	b.Label("t88_loop")
	// fetch
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Ld(isa.T0, isa.T0, 0) // t0 = guest word, kept live across dispatch
	// dispatch
	b.Andi(isa.T1, isa.T0, 0xff)
	b.Slli(isa.T2, isa.T1, 3)
	b.Add(isa.T2, isa.T2, isa.S4)
	b.Ld(isa.T2, isa.T2, 0)
	b.Jalr(isa.Zero, isa.T2, 0)

	// Decode helpers used below (inline at each handler):
	//   rd  = (w >> 8)  & 15
	//   rs  = (w >> 12) & 15
	//   rt  = (w >> 16) & 15
	//   imm = sign-extended bits 32..47
	decodeRd := func(dst isa.Reg) {
		b.Srli(dst, isa.T0, 8)
		b.Andi(dst, dst, 15)
	}
	decodeRs := func(dst isa.Reg) {
		b.Srli(dst, isa.T0, 12)
		b.Andi(dst, dst, 15)
	}
	decodeRt := func(dst isa.Reg) {
		b.Srli(dst, isa.T0, 16)
		b.Andi(dst, dst, 15)
	}
	decodeImm := func(dst isa.Reg) {
		b.Slli(dst, isa.T0, 16)
		b.Srai(dst, dst, 48)
	}
	loadGuestReg := func(dst, idx isa.Reg) {
		b.Slli(dst, idx, 3)
		b.Add(dst, dst, isa.S1)
		b.Ld(dst, dst, 0)
	}
	storeGuestReg := func(val, idx isa.Reg) {
		b.Slli(isa.T6, idx, 3)
		b.Add(isa.T6, isa.T6, isa.S1)
		b.Sd(val, isa.T6, 0)
	}

	b.Label("op_halt")
	b.Li(isa.S3, 0)
	b.J("t88_step")

	b.Label("op_addi")
	decodeRs(isa.T2)
	loadGuestReg(isa.T3, isa.T2)
	decodeImm(isa.T4)
	b.Add(isa.T3, isa.T3, isa.T4)
	decodeRd(isa.T1)
	storeGuestReg(isa.T3, isa.T1)
	b.Addi(isa.S3, isa.S3, 1)
	b.J("t88_step")

	b.Label("op_li")
	decodeImm(isa.T4)
	decodeRd(isa.T1)
	storeGuestReg(isa.T4, isa.T1)
	b.Addi(isa.S3, isa.S3, 1)
	b.J("t88_step")

	// Three-register ALU handlers share decode structure.
	alu := func(label string, emit func()) {
		b.Label(label)
		decodeRs(isa.T2)
		loadGuestReg(isa.T3, isa.T2)
		decodeRt(isa.T2)
		loadGuestReg(isa.T4, isa.T2)
		emit() // combines t3 op t4 into t3
		decodeRd(isa.T1)
		storeGuestReg(isa.T3, isa.T1)
		b.Addi(isa.S3, isa.S3, 1)
		b.J("t88_step")
	}
	alu("op_add", func() { b.Add(isa.T3, isa.T3, isa.T4) })
	alu("op_sub", func() { b.Sub(isa.T3, isa.T3, isa.T4) })
	alu("op_mul", func() { b.Mul(isa.T3, isa.T3, isa.T4) })

	b.Label("op_ld")
	decodeRs(isa.T2)
	loadGuestReg(isa.T3, isa.T2)
	decodeImm(isa.T4)
	b.Add(isa.T3, isa.T3, isa.T4)
	b.Andi(isa.T3, isa.T3, 255)
	b.Slli(isa.T3, isa.T3, 3)
	b.Add(isa.T3, isa.T3, isa.S2)
	b.Ld(isa.T3, isa.T3, 0)
	decodeRd(isa.T1)
	storeGuestReg(isa.T3, isa.T1)
	b.Addi(isa.S3, isa.S3, 1)
	b.J("t88_step")

	b.Label("op_st")
	decodeRs(isa.T2)
	loadGuestReg(isa.T3, isa.T2)
	decodeImm(isa.T4)
	b.Add(isa.T3, isa.T3, isa.T4)
	b.Andi(isa.T3, isa.T3, 255)
	b.Slli(isa.T3, isa.T3, 3)
	b.Add(isa.T3, isa.T3, isa.S2)
	decodeRt(isa.T2)
	loadGuestReg(isa.T4, isa.T2)
	b.Sd(isa.T4, isa.T3, 0)
	b.Addi(isa.S3, isa.S3, 1)
	b.J("t88_step")

	// Branch handlers: compare regs[rs] with regs[rt], add imm to guest PC
	// when the condition holds, else fall through.
	branch := func(label string, jump func(taken string)) {
		b.Label(label)
		decodeRs(isa.T2)
		loadGuestReg(isa.T3, isa.T2)
		decodeRt(isa.T2)
		loadGuestReg(isa.T4, isa.T2)
		jump(label + "_taken")
		b.Addi(isa.S3, isa.S3, 1)
		b.J("t88_step")
		b.Label(label + "_taken")
		decodeImm(isa.T4)
		b.Add(isa.S3, isa.S3, isa.T4)
		b.J("t88_step")
	}
	branch("op_beq", func(t string) { b.Beq(isa.T3, isa.T4, t) })
	branch("op_bne", func(t string) { b.Bne(isa.T3, isa.T4, t) })
	branch("op_blt", func(t string) { b.Blt(isa.T3, isa.T4, t) })

	b.Label("t88_step")
	b.Addi(isa.S5, isa.S5, 1)
	b.Bne(isa.S5, isa.S6, "t88_loop")
	// Fold the guest register file into the golden checksum (runs once).
	b.Li(isa.T1, 0) // k
	b.Li(isa.T3, 0) // checksum
	b.Label("fold_loop")
	b.Slli(isa.T2, isa.T1, 3)
	b.Add(isa.T2, isa.T2, isa.S1)
	b.Ld(isa.T2, isa.T2, 0)
	b.Mul(isa.T3, isa.T3, isa.S11)
	b.Add(isa.T3, isa.T3, isa.T2)
	b.Addi(isa.T1, isa.T1, 1)
	b.Slti(isa.T2, isa.T1, 16)
	b.Bnez(isa.T2, "fold_loop")
	b.La(isa.T1, "golden")
	b.Sd(isa.T3, isa.T1, 0)
	b.La(isa.T1, "checksum")
	b.Sd(isa.T3, isa.T1, 0)
	b.J("t88_loop")

	b.Quads("t_prog", words...)
	b.Space("t_regs", 16*8)
	b.Space("t_mem", 256*8)
	b.QuadAddrs("t88_dispatch",
		"op_halt", "op_addi", "op_add", "op_sub", "op_mul",
		"op_ld", "op_st", "op_beq", "op_bne", "op_li", "op_blt")
	b.Quads("golden", 0)
	b.Quads("checksum", 0)
	return b.Assemble()
}

// goldenM88ksim interprets the guest program for t88GoldenSteps
// instructions in pure Go and folds the register file.
func goldenM88ksim(seed int64) uint64 {
	prog := t88Program(seed)
	var regs [16]uint64
	var mem [256]uint64
	pc := int64(0)
	dec := func(w uint64) (op, rd, rs, rt int, imm int64) {
		return int(w & 0xff), int(w >> 8 & 0xf), int(w >> 12 & 0xf),
			int(w >> 16 & 0xf), int64(int16(w >> 32))
	}
	for step := 0; step < t88GoldenSteps; step++ {
		w := prog[pc]
		op, rd, rs, rt, imm := dec(w)
		switch op {
		case t88Halt:
			pc = 0
			continue
		case t88Addi:
			regs[rd] = regs[rs] + uint64(imm)
		case t88Li:
			regs[rd] = uint64(imm)
		case t88Add:
			regs[rd] = regs[rs] + regs[rt]
		case t88Sub:
			regs[rd] = regs[rs] - regs[rt]
		case t88Mul:
			regs[rd] = regs[rs] * regs[rt]
		case t88Ld:
			regs[rd] = mem[(regs[rs]+uint64(imm))&255]
		case t88St:
			mem[(regs[rs]+uint64(imm))&255] = regs[rt]
		case t88Beq:
			if regs[rs] == regs[rt] {
				pc += imm
				continue
			}
		case t88Bne:
			if regs[rs] != regs[rt] {
				pc += imm
				continue
			}
		case t88Blt:
			if int64(regs[rs]) < int64(regs[rt]) {
				pc += imm
				continue
			}
		}
		pc++
	}
	var c uint64
	for _, r := range regs {
		c = c*31 + r
	}
	return c
}
