package workload

import (
	"testing"
	"testing/quick"

	"valuepred/internal/asm"
	"valuepred/internal/emu"
	"valuepred/internal/isa"
)

// TestRandBasics covers the PRNG used by every input generator.
func TestRandBasics(t *testing.T) {
	r := NewRand(0) // zero seed remaps to a fixed constant
	if r.Next() == 0 {
		t.Error("xorshift must never produce zero from a nonzero state")
	}
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("PRNG not deterministic")
		}
	}
	if NewRand(1).Next() == NewRand(2).Next() {
		t.Error("different seeds produced the same first value")
	}
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := NewRand(int64(n) + 1).Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewRand(1).Intn(0) != 0 || NewRand(1).Intn(-5) != 0 {
		t.Error("Intn of non-positive bound must be 0")
	}
}

// TestEmitRNGMatchesGo locks the assembly rng_next routine to the Go Rand:
// a tiny program draws 32 values and stores them; they must equal the Go
// sequence exactly. Every workload's perturbation path depends on this.
func TestEmitRNGMatchesGo(t *testing.T) {
	const n = 32
	const seed = 0xABCDEF
	b := asm.NewBuilder()
	b.La(isa.S0, "out")
	b.Li(isa.S1, 0)
	b.Label("loop")
	b.Call("rng_next")
	b.Slli(isa.T0, isa.S1, 3)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Sd(isa.A7, isa.T0, 0)
	b.Addi(isa.S1, isa.S1, 1)
	b.Slti(isa.T0, isa.S1, n)
	b.Bnez(isa.T0, "loop")
	b.Halt()
	emitRNG(b, "rng_state", seed)
	b.Space("out", n*8)
	m := emu.New(asm.MustAssemble(b))
	m.Run(0)
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	ref := &Rand{state: seed}
	base := m.Program().Symbol("out")
	for i := 0; i < n; i++ {
		want := ref.Next()
		if got := m.Mem().Read64(base + uint64(8*i)); got != want {
			t.Fatalf("draw %d: asm %#x, go %#x", i, got, want)
		}
	}
}

func TestGenText(t *testing.T) {
	txt := genText(NewRand(3), 1000)
	if len(txt) != 1000 {
		t.Fatalf("length = %d", len(txt))
	}
	for i, c := range txt {
		if !(c == ' ' || c == '\n' || (c >= 'a' && c <= 'z')) {
			t.Fatalf("byte %d = %q out of alphabet", i, c)
		}
	}
}

func TestGenWords(t *testing.T) {
	words := genWords(NewRand(4), 128)
	if len(words) != 128 {
		t.Fatalf("count = %d", len(words))
	}
	anagrams := 0
	for i, w := range words {
		if len(w) < 3 || len(w) > 8 {
			t.Fatalf("word %d length %d", i, len(w))
		}
		for _, c := range w {
			if c < 'a' || c > 'z' {
				t.Fatalf("word %q has non-letter", w)
			}
		}
		if i > 0 && len(words[i-1]) == len(w) {
			anagrams++
		}
	}
	if anagrams == 0 {
		t.Error("generator produced no candidate anagram pairs")
	}
}

func TestGenImage(t *testing.T) {
	img := genImage(NewRand(5), 32, 32)
	if len(img) != 1024 {
		t.Fatalf("size = %d", len(img))
	}
	// The gradient must make the image non-constant.
	allSame := true
	for _, px := range img {
		if px != img[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("image is constant")
	}
}

func TestT88EncodeDecode(t *testing.T) {
	f := func(op, rd, rs, rt uint8, imm int16) bool {
		w := t88Enc(int(op), int(rd), int(rs), int(rt), int64(imm))
		return int(w&0xff) == int(op) &&
			int(w>>8&0xf) == int(rd&0xf) &&
			int(w>>12&0xf) == int(rs&0xf) &&
			int(w>>16&0xf) == int(rt&0xf) &&
			int16(w>>32) == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestT88ProgramShape(t *testing.T) {
	prog := t88Program(7)
	if len(prog) == 0 {
		t.Fatal("empty guest program")
	}
	for i, w := range prog {
		op := int(w & 0xff)
		if op >= t88NumOps {
			t.Errorf("guest inst %d has bad opcode %d", i, op)
		}
	}
	// Branch targets must stay inside the program.
	for i, w := range prog {
		op := int(w & 0xff)
		if op == t88Beq || op == t88Bne || op == t88Blt {
			imm := int64(int16(w >> 32))
			tgt := int64(i) + imm
			if tgt < 0 || tgt >= int64(len(prog)) {
				t.Errorf("guest branch %d targets %d", i, tgt)
			}
		}
	}
}

func TestGCCSourceWellFormed(t *testing.T) {
	src := gccSource(9)
	if len(src) != gccSrcBytes {
		t.Fatalf("source length = %d, want %d", len(src), gccSrcBytes)
	}
	depth := 0
	terminated := false
	for _, c := range src {
		switch {
		case c == 0:
			terminated = true
		case terminated && c != 0:
			t.Fatal("bytes after terminator")
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth < 0 {
				t.Fatal("unbalanced parentheses")
			}
		}
	}
	if !terminated || depth != 0 {
		t.Fatalf("terminated=%v depth=%d", terminated, depth)
	}
}

func TestLiForestStructure(t *testing.T) {
	cells, roots, leaves := liForest(11)
	if len(roots) != liNumTrees {
		t.Fatalf("roots = %d", len(roots))
	}
	if len(leaves) == 0 {
		t.Fatal("no leaves")
	}
	for _, idx := range append(append([]int64{}, roots...), leaves...) {
		if idx < 0 || idx >= int64(len(cells)) {
			t.Fatalf("index %d out of range", idx)
		}
	}
	for i, c := range cells {
		if c.tag < liTagNum || c.tag > liTagMax {
			t.Errorf("cell %d tag %d", i, c.tag)
		}
		if c.tag != liTagNum {
			if c.left >= int64(i) || c.right >= int64(i) {
				t.Errorf("cell %d references later cells (left %d right %d)", i, c.left, c.right)
			}
		}
	}
	for _, l := range leaves {
		if cells[l].tag != liTagNum {
			t.Errorf("leaf %d is not a number cell", l)
		}
	}
}

func TestJpgZigzagIsPermutation(t *testing.T) {
	z := jpgZigzag()
	if len(z) != 64 {
		t.Fatalf("length = %d", len(z))
	}
	seen := map[int64]bool{}
	for _, idx := range z {
		if idx < 0 || idx > 63 || seen[idx] {
			t.Fatalf("zigzag not a permutation: %v", z)
		}
		seen[idx] = true
	}
	// First entries of the standard zigzag: 0, 1, 8, 16, 9, 2.
	want := []int64{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if z[i] != w {
			t.Errorf("zigzag[%d] = %d, want %d", i, z[i], w)
		}
	}
}

func TestJpgDCTMatrix(t *testing.T) {
	c := jpgCosMatrix()
	// Row 0 is the DC basis: constant.
	for x := 1; x < 8; x++ {
		if c[x] != c[0] {
			t.Errorf("DC row not constant: %v", c[:8])
		}
	}
	if c[0] <= 0 {
		t.Error("DC coefficient must be positive")
	}
	// Basis rows are orthogonal in the continuous transform; in the
	// integer approximation, the dot product of rows 1 and 2 is near zero
	// relative to their norms.
	var dot, n1, n2 int64
	for x := 0; x < 8; x++ {
		dot += c[8+x] * c[16+x]
		n1 += c[8+x] * c[8+x]
		n2 += c[16+x] * c[16+x]
	}
	if n1 == 0 || n2 == 0 {
		t.Fatal("degenerate basis rows")
	}
	if dot > n1/8 || dot < -n1/8 {
		t.Errorf("rows 1 and 2 far from orthogonal: dot %d, norms %d %d", dot, n1, n2)
	}
	for _, q := range jpgQuantTable() {
		if q <= 0 {
			t.Fatal("non-positive quantisation divisor")
		}
	}
}

func TestVortexScriptShape(t *testing.T) {
	txs := vortexScript(13)
	if len(txs) != vtxNumTx {
		t.Fatalf("script length = %d", len(txs))
	}
	for i := 0; i < 8; i++ {
		if txs[i]&3 != vtxInsert {
			t.Errorf("tx %d is not an insert", i)
		}
	}
	counts := map[uint64]int{}
	for _, w := range txs {
		counts[w&3]++
	}
	if counts[vtxInsert] < vtxNumTx/8 {
		t.Errorf("too few inserts: %v", counts)
	}
	if counts[vtxLookup]+counts[vtxLookup2] < vtxNumTx/4 {
		t.Errorf("too few lookups: %v", counts)
	}
}

func TestPerlPackWords(t *testing.T) {
	words := []string{"abc", "defgh"}
	buf := perlPackWords(words)
	if len(buf) != 2*perlWordBytes {
		t.Fatalf("buffer = %d bytes", len(buf))
	}
	if buf[0] != 3 || string(buf[1:4]) != "abc" {
		t.Errorf("record 0 = %v", buf[:perlWordBytes])
	}
	if buf[perlWordBytes] != 5 || string(buf[perlWordBytes+1:perlWordBytes+6]) != "defgh" {
		t.Errorf("record 1 = %v", buf[perlWordBytes:])
	}
}

// TestGoldenDeterminism: golden models are pure functions of the seed.
func TestGoldenDeterminism(t *testing.T) {
	for _, s := range All() {
		if s.Golden(42) != s.Golden(42) {
			t.Errorf("%s golden not deterministic", s.Name)
		}
		if s.Golden(1) == s.Golden(2) {
			t.Errorf("%s golden identical across seeds", s.Name)
		}
	}
}

// TestBuildersProduceDistinctPrograms: seeds must alter the data segment.
func TestBuildersProduceDistinctPrograms(t *testing.T) {
	for _, s := range All() {
		p1, err := s.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		p2, err := s.Build(2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(p1.Insts) != len(p2.Insts) {
			t.Errorf("%s: text differs across seeds (%d vs %d insts)",
				s.Name, len(p1.Insts), len(p2.Insts))
		}
	}
}
