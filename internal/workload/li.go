package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// li: a Lisp interpreter. The program recursively evaluates a forest of
// s-expression trees stored as cons-like cells (tag, left, right) in a
// heap, using an explicit call stack. Recursion-dominated control flow and
// pointer-heavy cell access mimic xlisp's eval/apply loop; leaf values are
// perturbed every pass so the value stream keeps drifting.

// Cell tags.
const (
	liTagNum = iota
	liTagAdd
	liTagSub
	liTagMul
	liTagMax
)

const (
	liNumTrees = 64
	liDepth    = 5
	liCellSize = 32
)

func init() {
	register(Spec{
		Name:        "li",
		Description: "Lisp interpreter.",
		Build:       buildLi,
		Golden:      goldenLi,
	})
}

// liCell is the Go-side cell representation; left/right are cell indices.
type liCell struct {
	tag         int64
	left, right int64
}

// liForest builds the trees. It returns the cell arena, the root indices
// and the indices of leaf cells (perturbation targets).
func liForest(seed int64) (cells []liCell, roots, leaves []int64) {
	r := NewRand(seed ^ 0x111)
	newCell := func(c liCell) int64 {
		cells = append(cells, c)
		return int64(len(cells) - 1)
	}
	var gen func(depth int) int64
	gen = func(depth int) int64 {
		if depth == 0 || r.Intn(4) == 0 {
			v := int64(r.Intn(1000)) - 500
			idx := newCell(liCell{tag: liTagNum, left: v})
			leaves = append(leaves, idx)
			return idx
		}
		tag := int64(liTagAdd + r.Intn(4))
		l := gen(depth - 1)
		rt := gen(depth - 1)
		return newCell(liCell{tag: tag, left: l, right: rt})
	}
	for i := 0; i < liNumTrees; i++ {
		roots = append(roots, gen(liDepth))
	}
	return cells, roots, leaves
}

func buildLi(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	cells, roots, leaves := liForest(seed)

	cellWords := make([]int64, 0, len(cells)*4)
	for _, c := range cells {
		cellWords = append(cellWords, c.tag, c.left, c.right, 0)
	}

	// Register plan: s0 cells base, s1 roots base, s2 leaves base,
	// s3 loop index, s7 checksum, s9 pass, s10 #leaves, s11 31.
	b.La(isa.S0, "cells")
	b.La(isa.S1, "roots")
	b.La(isa.S2, "leaves")
	b.Li(isa.S9, 1)
	b.Li(isa.S10, int64(len(leaves)))
	b.Li(isa.S11, 31)

	b.Label("pass_loop")
	b.Li(isa.S7, 0)
	b.Li(isa.S3, 0)
	b.Label("tree_loop")
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.S1)
	b.Ld(isa.A0, isa.T0, 0)
	b.Call("eval")
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.A0)
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, liNumTrees)
	b.Bnez(isa.T0, "tree_loop")

	b.La(isa.T0, "checksum")
	b.Sd(isa.S7, isa.T0, 0)
	b.Li(isa.T1, 1)
	b.Bne(isa.S9, isa.T1, "perturb")
	b.La(isa.T0, "golden")
	b.Sd(isa.S7, isa.T0, 0)

	// Perturb 32 random leaf values: value += (r & 0xff) - 128.
	b.Label("perturb")
	b.Li(isa.S3, 0)
	b.Label("perturb_loop")
	b.Call("rng_next")
	b.Srli(isa.T1, isa.A7, 1) // keep the dividend non-negative for signed REM
	b.Rem(isa.T0, isa.T1, isa.S10)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.S2)
	b.Ld(isa.T0, isa.T0, 0) // leaf cell index
	b.Slli(isa.T0, isa.T0, 5)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Ld(isa.T2, isa.T0, 8)
	b.Andi(isa.T3, isa.A7, 0xff)
	b.Addi(isa.T3, isa.T3, -128)
	b.Add(isa.T2, isa.T2, isa.T3)
	b.Sd(isa.T2, isa.T0, 8)
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 32)
	b.Bnez(isa.T0, "perturb_loop")
	b.Addi(isa.S9, isa.S9, 1)
	b.J("pass_loop")

	// eval(a0 = cell index) -> a0 = value.
	b.Label("eval")
	b.Slli(isa.T0, isa.A0, 5)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Ld(isa.T1, isa.T0, 0) // tag
	b.Bnez(isa.T1, "eval_interior")
	b.Ld(isa.A0, isa.T0, 8)
	b.Ret()
	b.Label("eval_interior")
	b.Addi(isa.SP, isa.SP, -24)
	b.Sd(isa.RA, isa.SP, 0)
	b.Sd(isa.T0, isa.SP, 8) // cell ptr
	b.Ld(isa.A0, isa.T0, 8)
	b.Call("eval")
	b.Sd(isa.A0, isa.SP, 16) // left value
	b.Ld(isa.T0, isa.SP, 8)
	b.Ld(isa.A0, isa.T0, 16)
	b.Call("eval")
	b.Ld(isa.T2, isa.SP, 16) // left value
	b.Ld(isa.T0, isa.SP, 8)
	b.Ld(isa.T1, isa.T0, 0) // tag
	b.Li(isa.T3, liTagAdd)
	b.Beq(isa.T1, isa.T3, "eval_add")
	b.Li(isa.T3, liTagSub)
	b.Beq(isa.T1, isa.T3, "eval_sub")
	b.Li(isa.T3, liTagMul)
	b.Beq(isa.T1, isa.T3, "eval_mul")
	// max
	b.Bge(isa.T2, isa.A0, "eval_takeleft")
	b.J("eval_ret")
	b.Label("eval_takeleft")
	b.Mv(isa.A0, isa.T2)
	b.J("eval_ret")
	b.Label("eval_add")
	b.Add(isa.A0, isa.T2, isa.A0)
	b.J("eval_ret")
	b.Label("eval_sub")
	b.Sub(isa.A0, isa.T2, isa.A0)
	b.J("eval_ret")
	b.Label("eval_mul")
	b.Mul(isa.A0, isa.T2, isa.A0)
	b.Label("eval_ret")
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 24)
	b.Ret()

	emitRNG(b, "rng_state", uint64(seed)^0x4111)
	b.Quads("cells", cellWords...)
	b.Quads("roots", roots...)
	b.Quads("leaves", leaves...)
	b.Quads("checksum", 0)
	b.Quads("golden", 0)
	return b.Assemble()
}

// goldenLi evaluates the unperturbed forest in pure Go.
func goldenLi(seed int64) uint64 {
	cells, roots, _ := liForest(seed)
	var eval func(idx int64) int64
	eval = func(idx int64) int64 {
		c := cells[idx]
		switch c.tag {
		case liTagNum:
			return c.left
		case liTagAdd:
			return eval(c.left) + eval(c.right)
		case liTagSub:
			return eval(c.left) - eval(c.right)
		case liTagMul:
			return eval(c.left) * eval(c.right)
		default: // max
			l, r := eval(c.left), eval(c.right)
			if l >= r {
				return l
			}
			return r
		}
	}
	var fold uint64
	for _, root := range roots {
		fold = fold*31 + uint64(eval(root))
	}
	return fold
}
