package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// go: game playing. A negamax search with alpha-beta pruning over a
// procedurally generated game tree (branching factor 4, fixed depth): child
// positions are derived from the parent position key with an xorshift mix
// and leaves are scored from their key. Deep recursion, data-dependent
// pruning branches and hash-like leaf values give the low value
// predictability the paper observes for go.

const (
	goDepth    = 5
	goBranch   = 4
	goGames    = 8
	goChildK   = 0x9E3779B97F4A7C15
	goBest0    = -100000
	goInfinity = 100000
)

func init() {
	register(Spec{
		Name:        "go",
		Description: "Game playing.",
		Build:       buildGo,
		Golden:      goldenGo,
	})
}

// goMix is the position-key mixer shared (exactly) by the assembly and the
// golden model.
func goMix(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

func goBase(seed int64) uint64 { return uint64(seed)*0x100000001b3 ^ 0x90909090 }

func buildGo(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()

	// Register plan (main): s0 root base, s3 game index, s7 fold, s9 pass.
	b.Li(isa.S0, int64(goBase(seed)))
	b.Li(isa.S9, 1)
	b.Li(isa.S11, 31)

	b.Label("pass_loop")
	b.Li(isa.S7, 0)
	b.Li(isa.S3, 0)
	b.Label("game_loop")
	// root key = base + (game+1) * childK
	b.Addi(isa.T0, isa.S3, 1)
	b.Li(isa.T1, imm64(goChildK))
	b.Mul(isa.T0, isa.T0, isa.T1)
	b.Add(isa.A0, isa.S0, isa.T0)
	b.Li(isa.A1, goDepth)
	b.Li(isa.A2, goBest0)
	b.Li(isa.A3, goInfinity)
	b.Call("negamax")
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.A0)
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, goGames)
	b.Bnez(isa.T0, "game_loop")

	b.La(isa.T0, "checksum")
	b.Sd(isa.S7, isa.T0, 0)
	b.Li(isa.T1, 1)
	b.Bne(isa.S9, isa.T1, "perturb")
	b.La(isa.T0, "golden")
	b.Sd(isa.S7, isa.T0, 0)
	b.Label("perturb")
	b.Call("rng_next")
	b.Add(isa.S0, isa.S0, isa.A7) // new starting position set
	b.Addi(isa.S9, isa.S9, 1)
	b.J("pass_loop")

	// negamax(a0=key, a1=depth, a2=alpha, a3=beta) -> a0 = score.
	// Frame layout: 0 ra, 8 key, 16 depth, 24 alpha, 32 beta, 40 best, 48 i.
	b.Label("negamax")
	b.Bnez(isa.A1, "interior")
	// Leaf: score = (mix(key) & 0xff) - 128.
	b.Slli(isa.T0, isa.A0, 13)
	b.Xor(isa.A0, isa.A0, isa.T0)
	b.Srli(isa.T0, isa.A0, 7)
	b.Xor(isa.A0, isa.A0, isa.T0)
	b.Slli(isa.T0, isa.A0, 17)
	b.Xor(isa.A0, isa.A0, isa.T0)
	b.Andi(isa.A0, isa.A0, 0xff)
	b.Addi(isa.A0, isa.A0, -128)
	b.Ret()

	b.Label("interior")
	b.Addi(isa.SP, isa.SP, -56)
	b.Sd(isa.RA, isa.SP, 0)
	b.Sd(isa.A0, isa.SP, 8)
	b.Sd(isa.A1, isa.SP, 16)
	b.Sd(isa.A2, isa.SP, 24)
	b.Sd(isa.A3, isa.SP, 32)
	b.Li(isa.T0, goBest0)
	b.Sd(isa.T0, isa.SP, 40)
	b.Sd(isa.Zero, isa.SP, 48)

	b.Label("child_loop")
	b.Ld(isa.T1, isa.SP, 48) // i
	b.Slti(isa.T2, isa.T1, goBranch)
	b.Beqz(isa.T2, "ret_best")
	// child = mix(key + (i+1)*childK)
	b.Ld(isa.T3, isa.SP, 8)
	b.Addi(isa.T4, isa.T1, 1)
	b.Li(isa.T5, imm64(goChildK))
	b.Mul(isa.T4, isa.T4, isa.T5)
	b.Add(isa.T3, isa.T3, isa.T4)
	b.Slli(isa.T4, isa.T3, 13)
	b.Xor(isa.T3, isa.T3, isa.T4)
	b.Srli(isa.T4, isa.T3, 7)
	b.Xor(isa.T3, isa.T3, isa.T4)
	b.Slli(isa.T4, isa.T3, 17)
	b.Xor(isa.T3, isa.T3, isa.T4)
	// recurse with (child, depth-1, -beta, -alpha)
	b.Mv(isa.A0, isa.T3)
	b.Ld(isa.A1, isa.SP, 16)
	b.Addi(isa.A1, isa.A1, -1)
	b.Ld(isa.T1, isa.SP, 24) // alpha
	b.Ld(isa.T2, isa.SP, 32) // beta
	b.Sub(isa.A2, isa.Zero, isa.T2)
	b.Sub(isa.A3, isa.Zero, isa.T1)
	b.Call("negamax")
	b.Sub(isa.A0, isa.Zero, isa.A0) // v = -score
	// best = max(best, v)
	b.Ld(isa.T1, isa.SP, 40)
	b.Bge(isa.T1, isa.A0, "no_best")
	b.Sd(isa.A0, isa.SP, 40)
	b.Mv(isa.T1, isa.A0)
	b.Label("no_best")
	// alpha = max(alpha, best)
	b.Ld(isa.T2, isa.SP, 24)
	b.Bge(isa.T2, isa.T1, "no_alpha")
	b.Sd(isa.T1, isa.SP, 24)
	b.Mv(isa.T2, isa.T1)
	b.Label("no_alpha")
	// beta cutoff
	b.Ld(isa.T3, isa.SP, 32)
	b.Bge(isa.T2, isa.T3, "ret_best")
	b.Ld(isa.T1, isa.SP, 48)
	b.Addi(isa.T1, isa.T1, 1)
	b.Sd(isa.T1, isa.SP, 48)
	b.J("child_loop")

	b.Label("ret_best")
	b.Ld(isa.A0, isa.SP, 40)
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 56)
	b.Ret()

	emitRNG(b, "rng_state", uint64(seed)^0x60601)
	b.Quads("checksum", 0)
	b.Quads("golden", 0)
	return b.Assemble()
}

// goldenGo replays the first pass (8 games) in pure Go.
func goldenGo(seed int64) uint64 {
	var negamax func(key uint64, depth int, alpha, beta int64) int64
	negamax = func(key uint64, depth int, alpha, beta int64) int64 {
		if depth == 0 {
			return int64(goMix(key)&0xff) - 128
		}
		best := int64(goBest0)
		for i := 0; i < goBranch; i++ {
			child := goMix(key + uint64(i+1)*goChildK)
			v := -negamax(child, depth-1, -beta, -alpha)
			if v > best {
				best = v
			}
			if best > alpha {
				alpha = best
			}
			if alpha >= beta {
				break
			}
		}
		return best
	}
	base := goBase(seed)
	var fold uint64
	for g := 0; g < goGames; g++ {
		root := base + uint64(g+1)*goChildK
		score := negamax(root, goDepth, goBest0, goInfinity)
		fold = fold*31 + uint64(score)
	}
	return fold
}
