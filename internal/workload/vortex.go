package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// vortex: an object-oriented database transaction benchmark. Each pass is a
// database session: records (id, type, value, link) are bump-allocated in
// an arena, indexed by a hash table keyed on sequential object IDs, and a
// fixed transaction script performs inserts, lookups (with a 3-hop link
// chase) and updates. Sequential IDs and the bump allocator give the long,
// strongly stride-predictable dependence chains the paper reports for
// vortex.

const (
	vtxNumTx      = 2048
	vtxIndexSize  = 8192 // power of two
	vtxIndexShift = 51
	vtxRecBytes   = 32
)

// vortex transaction opcodes (low 2 bits of the script word).
const (
	vtxInsert  = 0
	vtxLookup  = 1
	vtxUpdate  = 2
	vtxLookup2 = 3 // second lookup encoding, so lookups are half the mix
)

func init() {
	register(Spec{
		Name:        "vortex",
		Description: "A single-user object-oriented database transaction benchmark.",
		Build:       buildVortex,
		Golden:      goldenVortex,
	})
}

// vortexScript generates the transaction script. The first 8 transactions
// are inserts so that lookups always have a target.
func vortexScript(seed int64) []uint64 {
	r := NewRand(seed ^ 0x7709)
	txs := make([]uint64, vtxNumTx)
	for i := range txs {
		op := uint64(r.Intn(4))
		if i < 8 {
			op = vtxInsert
		}
		payload := r.Next() >> 2
		txs[i] = payload<<2 | op
	}
	return txs
}

func buildVortex(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	script := vortexScript(seed)
	words := make([]int64, len(script))
	for i, w := range script {
		words[i] = int64(w)
	}

	// Register plan:
	//   s0 objects base  s1 index base  s2 script base  s3 tx index
	//   s4 arena ptr     s5 next_id     s6 prev record  s7 accumulator
	//   s8 index mask    s9 pass        s10 hash K      s11 #tx
	b.La(isa.S0, "objects")
	b.La(isa.S1, "obj_index")
	b.La(isa.S2, "txs")
	b.Li(isa.S8, vtxIndexSize-1)
	b.Li(isa.S9, 1)
	b.Li(isa.S10, imm64(lzwHashK))
	b.Li(isa.S11, vtxNumTx)

	b.Label("pass_loop")
	// Session reset: clear index, rewind arena, restart IDs.
	b.Mv(isa.T0, isa.S1)
	b.Li(isa.T1, vtxIndexSize*8)
	b.Add(isa.T1, isa.T0, isa.T1)
	b.Label("clear_loop")
	b.Sd(isa.Zero, isa.T0, 0)
	b.Addi(isa.T0, isa.T0, 8)
	b.Blt(isa.T0, isa.T1, "clear_loop")
	b.Mv(isa.S4, isa.S0) // arena ptr
	b.Li(isa.S5, 1)      // next_id
	b.Li(isa.S6, 0)      // prev record
	b.Li(isa.S7, 0)      // accumulator
	b.Li(isa.S3, 0)      // tx index

	b.Label("tx_loop")
	b.Bge(isa.S3, isa.S11, "pass_end")
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.S2)
	b.Ld(isa.A0, isa.T0, 0) // tx word
	b.Andi(isa.T1, isa.A0, 3)
	b.Srli(isa.A0, isa.A0, 2) // payload
	b.Li(isa.T2, vtxInsert)
	b.Beq(isa.T1, isa.T2, "do_insert")
	b.Li(isa.T2, vtxUpdate)
	b.Beq(isa.T1, isa.T2, "do_update")
	b.J("do_lookup")

	// --- insert ---
	b.Label("do_insert")
	b.Mv(isa.T3, isa.S4) // rec
	b.Addi(isa.S4, isa.S4, vtxRecBytes)
	b.Sd(isa.S5, isa.T3, 0) // rec.id = next_id
	b.Andi(isa.T4, isa.S5, 7)
	b.Sd(isa.T4, isa.T3, 8) // rec.type = id & 7
	b.Xor(isa.T4, isa.A0, isa.S5)
	b.Sd(isa.T4, isa.T3, 16) // rec.value = payload ^ id
	b.Sd(isa.S6, isa.T3, 24) // rec.link = prev
	b.Mv(isa.S6, isa.T3)
	// index insert: probe for an empty slot
	b.Mul(isa.T0, isa.S5, isa.S10)
	b.Srli(isa.T0, isa.T0, vtxIndexShift)
	b.Label("ins_probe")
	b.Slli(isa.T1, isa.T0, 3)
	b.Add(isa.T1, isa.T1, isa.S1)
	b.Ld(isa.T2, isa.T1, 0)
	b.Beqz(isa.T2, "ins_store")
	b.Addi(isa.T0, isa.T0, 1)
	b.And(isa.T0, isa.T0, isa.S8)
	b.J("ins_probe")
	b.Label("ins_store")
	b.Sd(isa.T3, isa.T1, 0)
	b.Addi(isa.S5, isa.S5, 1)
	b.J("tx_next")

	// --- lookup: acc += value of target and of up to 3 linked records ---
	b.Label("do_lookup")
	b.Call("find_rec") // a0 payload -> a1 record ptr (clobbers t0..t4)
	b.Ld(isa.T0, isa.A1, 16)
	b.Add(isa.S7, isa.S7, isa.T0)
	b.Ld(isa.T1, isa.A1, 24) // link
	b.Li(isa.T2, 0)          // hop counter
	b.Label("chase_loop")
	b.Beqz(isa.T1, "tx_next")
	b.Ld(isa.T0, isa.T1, 16)
	b.Add(isa.S7, isa.S7, isa.T0)
	b.Ld(isa.T1, isa.T1, 24)
	b.Addi(isa.T2, isa.T2, 1)
	b.Slti(isa.T0, isa.T2, 3)
	b.Bnez(isa.T0, "chase_loop")
	b.J("tx_next")

	// --- update: rec.value += payload & 0xff; acc += new value ---
	b.Label("do_update")
	b.Call("find_rec")
	b.Ld(isa.T0, isa.A1, 16)
	b.Andi(isa.T1, isa.A0, 0xff)
	b.Add(isa.T0, isa.T0, isa.T1)
	b.Sd(isa.T0, isa.A1, 16)
	b.Add(isa.S7, isa.S7, isa.T0)
	b.J("tx_next")

	b.Label("tx_next")
	b.Addi(isa.S3, isa.S3, 1)
	b.J("tx_loop")

	b.Label("pass_end")
	b.La(isa.T0, "checksum")
	b.Sd(isa.S7, isa.T0, 0)
	b.Li(isa.T1, 1)
	b.Bne(isa.S9, isa.T1, "perturb")
	b.La(isa.T0, "golden")
	b.Sd(isa.S7, isa.T0, 0)

	// Perturb 64 script payloads so later sessions diverge.
	b.Label("perturb")
	b.Li(isa.S3, 0)
	b.Label("perturb_loop")
	b.Call("rng_next")
	b.Andi(isa.T0, isa.A7, vtxNumTx-1)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.S2)
	b.Ld(isa.T1, isa.T0, 0)
	b.Srli(isa.T2, isa.A7, 13)
	b.Slli(isa.T2, isa.T2, 9) // keep the low opcode bits intact
	b.Xor(isa.T1, isa.T1, isa.T2)
	b.Sd(isa.T1, isa.T0, 0)
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 64)
	b.Bnez(isa.T0, "perturb_loop")
	b.Addi(isa.S9, isa.S9, 1)
	b.J("pass_loop")

	// find_rec: a0 = payload -> a1 = pointer to record with
	// id = payload % (next_id-1) + 1. Targets always exist because the
	// script begins with inserts. Clobbers t0..t4.
	b.Label("find_rec")
	b.Addi(isa.T4, isa.S5, -1)
	b.Rem(isa.T4, isa.A0, isa.T4)
	b.Addi(isa.T4, isa.T4, 1) // target id
	b.Mul(isa.T0, isa.T4, isa.S10)
	b.Srli(isa.T0, isa.T0, vtxIndexShift)
	b.Label("find_probe")
	b.Slli(isa.T1, isa.T0, 3)
	b.Add(isa.T1, isa.T1, isa.S1)
	b.Ld(isa.A1, isa.T1, 0)
	b.Ld(isa.T2, isa.A1, 0) // rec.id
	b.Beq(isa.T2, isa.T4, "find_done")
	b.Addi(isa.T0, isa.T0, 1)
	b.And(isa.T0, isa.T0, isa.S8)
	b.J("find_probe")
	b.Label("find_done")
	b.Ret()

	emitRNG(b, "rng_state", uint64(seed)^0x007709)
	b.Quads("txs", words...)
	b.Space("objects", vtxNumTx*vtxRecBytes)
	b.Space("obj_index", vtxIndexSize*8)
	b.Quads("checksum", 0)
	b.Quads("golden", 0)
	return b.Assemble()
}

// goldenVortex replays the first database session in pure Go.
func goldenVortex(seed int64) uint64 {
	script := vortexScript(seed)
	type rec struct {
		id, typ, val uint64
		link         int // index into recs, -1 for none
	}
	var recs []rec
	prev := -1
	nextID := uint64(1)
	var acc uint64
	find := func(payload uint64) *rec {
		target := payload%(nextID-1) + 1
		// IDs are dense and sequential: record k has id k+1.
		return &recs[target-1]
	}
	for _, w := range script {
		op := w & 3
		payload := w >> 2
		switch op {
		case vtxInsert:
			recs = append(recs, rec{
				id:   nextID,
				typ:  nextID & 7,
				val:  payload ^ nextID,
				link: prev,
			})
			prev = len(recs) - 1
			nextID++
		case vtxUpdate:
			r := find(payload)
			r.val += payload & 0xff
			acc += r.val
		default: // vtxLookup, vtxLookup2
			r := find(payload)
			acc += r.val
			p := r.link
			for hop := 0; hop < 3 && p >= 0; hop++ {
				acc += recs[p].val
				p = recs[p].link
			}
		}
	}
	return acc
}
