package workload

import (
	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// perl: an anagram search program. Every pass canonicalises each word of a
// word list by insertion-sorting its letters, hashes the sorted signature
// into an open-addressed table of (signature, count) buckets, and then
// scans the table folding the anagram group sizes into the checksum. Short
// data-dependent sort loops and hash probing dominate, mimicking the
// string/hash behaviour of the SPEC95 perl anagram workload.

const (
	perlNumWords   = 512
	perlWordBytes  = 16 // record: len byte + up to 8 letters + padding
	perlTableSize  = 2048
	perlTableShift = 53 // 64 - log2(perlTableSize)
)

func init() {
	register(Spec{
		Name:        "perl",
		Description: "Anagram search program.",
		Build:       buildPerl,
		Golden:      goldenPerl,
	})
}

func perlWords(seed int64) []string {
	return genWords(NewRand(seed^0x9e21), perlNumWords)
}

func perlPackWords(words []string) []byte {
	buf := make([]byte, len(words)*perlWordBytes)
	for i, w := range words {
		rec := buf[i*perlWordBytes:]
		rec[0] = byte(len(w))
		copy(rec[1:], w)
	}
	return buf
}

func buildPerl(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	words := perlWords(seed)

	// Register plan:
	//   s0 words base    s1 table base   s2 word index  s3 sort buf base
	//   s4 word len      s7 checksum     s8 table mask  s9 pass
	//   s10 hash K       s11 31
	b.La(isa.S0, "words")
	b.La(isa.S1, "buckets")
	b.La(isa.S3, "sortbuf")
	b.Li(isa.S8, perlTableSize-1)
	b.Li(isa.S9, 1)
	b.Li(isa.S10, imm64(lzwHashK))
	b.Li(isa.S11, 31)

	b.Label("pass_loop")
	// clear bucket table (sig, count pairs)
	b.Mv(isa.T0, isa.S1)
	b.Li(isa.T1, perlTableSize*16)
	b.Add(isa.T1, isa.T0, isa.T1)
	b.Label("clear_loop")
	b.Sd(isa.Zero, isa.T0, 0)
	b.Sd(isa.Zero, isa.T0, 8)
	b.Addi(isa.T0, isa.T0, 16)
	b.Blt(isa.T0, isa.T1, "clear_loop")

	b.Li(isa.S2, 0)
	b.Label("word_loop")
	// t0 = record base
	b.Slli(isa.T0, isa.S2, 4)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Lb(isa.S4, isa.T0, 0) // len
	// copy letters into sortbuf
	b.Li(isa.T1, 0)
	b.Label("copy_loop")
	b.Bge(isa.T1, isa.S4, "copy_done")
	b.Add(isa.T2, isa.T0, isa.T1)
	b.Lb(isa.T3, isa.T2, 1)
	b.Add(isa.T2, isa.S3, isa.T1)
	b.Sb(isa.T3, isa.T2, 0)
	b.Addi(isa.T1, isa.T1, 1)
	b.J("copy_loop")
	b.Label("copy_done")
	// insertion sort sortbuf[0..len)
	b.Li(isa.T1, 1) // i
	b.Label("sort_outer")
	b.Bge(isa.T1, isa.S4, "sort_done")
	b.Add(isa.T2, isa.S3, isa.T1)
	b.Lb(isa.T3, isa.T2, 0) // key
	b.Mv(isa.T4, isa.T1)    // j
	b.Label("sort_inner")
	b.Beqz(isa.T4, "sort_place")
	b.Addi(isa.T5, isa.T4, -1)
	b.Add(isa.T2, isa.S3, isa.T5)
	b.Lb(isa.T6, isa.T2, 0)
	b.Bge(isa.T3, isa.T6, "sort_place")
	// shift right: buf[j] = buf[j-1]
	b.Add(isa.T2, isa.S3, isa.T4)
	b.Sb(isa.T6, isa.T2, 0)
	b.Mv(isa.T4, isa.T5)
	b.J("sort_inner")
	b.Label("sort_place")
	b.Add(isa.T2, isa.S3, isa.T4)
	b.Sb(isa.T3, isa.T2, 0)
	b.Addi(isa.T1, isa.T1, 1)
	b.J("sort_outer")
	b.Label("sort_done")
	// signature = fold(len, sorted letters)
	b.Mv(isa.T3, isa.S4)
	b.Li(isa.T1, 0)
	b.Label("sig_loop")
	b.Bge(isa.T1, isa.S4, "sig_done")
	b.Add(isa.T2, isa.S3, isa.T1)
	b.Lb(isa.T4, isa.T2, 0)
	b.Mul(isa.T3, isa.T3, isa.S11)
	b.Add(isa.T3, isa.T3, isa.T4)
	b.Addi(isa.T1, isa.T1, 1)
	b.J("sig_loop")
	b.Label("sig_done")
	b.Ori(isa.T3, isa.T3, 1) // signatures are never zero (zero = empty slot)
	// probe buckets for signature t3
	b.Mul(isa.T0, isa.T3, isa.S10)
	b.Srli(isa.T0, isa.T0, perlTableShift)
	b.Label("bucket_probe")
	b.Slli(isa.T1, isa.T0, 4)
	b.Add(isa.T1, isa.T1, isa.S1)
	b.Ld(isa.T2, isa.T1, 0)
	b.Beq(isa.T2, isa.T3, "bucket_hit")
	b.Beqz(isa.T2, "bucket_new")
	b.Addi(isa.T0, isa.T0, 1)
	b.And(isa.T0, isa.T0, isa.S8)
	b.J("bucket_probe")
	b.Label("bucket_hit")
	b.Ld(isa.T2, isa.T1, 8)
	b.Addi(isa.T2, isa.T2, 1)
	b.Sd(isa.T2, isa.T1, 8)
	b.J("word_next")
	b.Label("bucket_new")
	b.Sd(isa.T3, isa.T1, 0)
	b.Li(isa.T2, 1)
	b.Sd(isa.T2, isa.T1, 8)
	b.Label("word_next")
	b.Addi(isa.S2, isa.S2, 1)
	b.Slti(isa.T0, isa.S2, perlNumWords)
	b.Bnez(isa.T0, "word_loop")

	// scan table: fold group sizes > 1 (anagram groups) in slot order
	b.Li(isa.S7, 0)
	b.Li(isa.T0, 0)
	b.Label("scan_loop")
	b.Slli(isa.T1, isa.T0, 4)
	b.Add(isa.T1, isa.T1, isa.S1)
	b.Ld(isa.T2, isa.T1, 0)
	b.Beqz(isa.T2, "scan_next")
	b.Ld(isa.T3, isa.T1, 8)
	b.Li(isa.T4, 2)
	b.Blt(isa.T3, isa.T4, "scan_next")
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.T3)
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.T2)
	b.Label("scan_next")
	b.Addi(isa.T0, isa.T0, 1)
	b.Slti(isa.T1, isa.T0, perlTableSize)
	b.Bnez(isa.T1, "scan_loop")

	b.La(isa.T0, "checksum")
	b.Sd(isa.S7, isa.T0, 0)
	b.Li(isa.T1, 1)
	b.Bne(isa.S9, isa.T1, "perturb")
	b.La(isa.T0, "golden")
	b.Sd(isa.S7, isa.T0, 0)

	// Perturb: rotate one letter in each of 48 random words.
	b.Label("perturb")
	b.Li(isa.S2, 0)
	b.Label("perturb_loop")
	b.Call("rng_next")
	b.Andi(isa.T0, isa.A7, perlNumWords-1)
	b.Slli(isa.T0, isa.T0, 4)
	b.Add(isa.T0, isa.T0, isa.S0) // record
	b.Lb(isa.T1, isa.T0, 0)       // len
	b.Srli(isa.T2, isa.A7, 11)
	b.Rem(isa.T2, isa.T2, isa.T1) // letter index (len > 0)
	b.Add(isa.T2, isa.T2, isa.T0)
	b.Lb(isa.T3, isa.T2, 1)
	b.Addi(isa.T3, isa.T3, -'a'+1)
	b.Li(isa.T4, 26)
	b.Rem(isa.T3, isa.T3, isa.T4)
	b.Addi(isa.T3, isa.T3, 'a')
	b.Sb(isa.T3, isa.T2, 1)
	b.Addi(isa.S2, isa.S2, 1)
	b.Slti(isa.T0, isa.S2, 48)
	b.Bnez(isa.T0, "perturb_loop")
	b.Addi(isa.S9, isa.S9, 1)
	b.J("pass_loop")

	emitRNG(b, "rng_state", uint64(seed)^0x3e21)
	b.Bytes("words", perlPackWords(words))
	b.Space("sortbuf", 16)
	b.Space("buckets", perlTableSize*16)
	b.Quads("checksum", 0)
	b.Quads("golden", 0)
	return b.Assemble()
}

// goldenPerl replays the first pass in Go with an identical open-addressed
// table (the checksum depends on slot order, so a map will not do).
func goldenPerl(seed int64) uint64 {
	words := perlWords(seed)
	sigs := make([]uint64, perlTableSize)
	counts := make([]uint64, perlTableSize)
	for _, w := range words {
		letters := []byte(w)
		for i := 1; i < len(letters); i++ {
			key := letters[i]
			j := i
			for j > 0 && letters[j-1] > key {
				letters[j] = letters[j-1]
				j--
			}
			letters[j] = key
		}
		sig := uint64(len(letters))
		for _, c := range letters {
			sig = sig*31 + uint64(c)
		}
		sig |= 1
		h := sig * lzwHashK >> perlTableShift
		for {
			if sigs[h] == sig {
				counts[h]++
				break
			}
			if sigs[h] == 0 {
				sigs[h] = sig
				counts[h] = 1
				break
			}
			h = (h + 1) & (perlTableSize - 1)
		}
	}
	var fold uint64
	for i := 0; i < perlTableSize; i++ {
		if sigs[i] != 0 && counts[i] >= 2 {
			fold = fold*31 + counts[i]
			fold = fold*31 + sigs[i]
		}
	}
	return fold
}
