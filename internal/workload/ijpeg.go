package workload

import (
	"math"

	"valuepred/internal/asm"
	"valuepred/internal/isa"
)

// ijpeg: JPEG encoding. Each pass level-shifts every 8×8 block of a 32×32
// image, applies a separable integer DCT (two 8×8×8 matrix multiplies with
// fixed-point coefficients), quantises, walks the coefficients in zigzag
// order and folds a run-length encoding of them into the checksum. Dense
// regular loop nests give the stride-heavy address and value streams the
// paper sees for ijpeg.

const (
	jpgImageW   = 32
	jpgImageH   = 32
	jpgDCTScale = 64 // fixed-point scale of the coefficient matrix
	jpgShift    = 12 // 2*log2(jpgDCTScale) after two multiplies
)

func init() {
	register(Spec{
		Name:        "ijpeg",
		Description: "JPEG encoder.",
		Build:       buildIjpeg,
		Golden:      goldenIjpeg,
	})
}

// jpgCosMatrix returns the fixed-point DCT-II coefficient matrix C[u][x] =
// round(scale * c_u/2 * cos((2x+1)uπ/16)), the standard 8-point DCT basis.
func jpgCosMatrix() []int64 {
	c := make([]int64, 64)
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			v := float64(jpgDCTScale) * cu / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
			c[u*8+x] = int64(math.Round(v))
		}
	}
	return c
}

// jpgQuantTable returns a frequency-weighted quantisation table.
func jpgQuantTable() []int64 {
	q := make([]int64, 64)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			q[u*8+v] = int64(8 + 4*(u+v))
		}
	}
	return q
}

// jpgZigzag returns the standard zigzag scan order of an 8×8 block
// (0, 1, 8, 16, 9, 2, …): odd anti-diagonals run down-left, even ones
// up-right.
func jpgZigzag() []int64 {
	order := make([]int64, 0, 64)
	for s := 0; s < 15; s++ {
		lo, hi := 0, s
		if s > 7 {
			lo, hi = s-7, 7
		}
		if s%2 == 1 {
			for u := lo; u <= hi; u++ {
				order = append(order, int64(u*8+(s-u)))
			}
		} else {
			for u := hi; u >= lo; u-- {
				order = append(order, int64(u*8+(s-u)))
			}
		}
	}
	return order
}

func ijpegImage(seed int64) []byte {
	return genImage(NewRand(seed^0x19e6), jpgImageW, jpgImageH)
}

func buildIjpeg(seed int64) (*isa.Program, error) {
	b := asm.NewBuilder()

	// Register plan:
	//   s0 image base  s1 by  s2 bx  s3 outer loop idx  s4 inner  s5 k
	//   s6 accumulator/zero-run  s7 checksum  s8 blk base  s9 pass
	//   s10 C matrix base  s11 31
	b.La(isa.S0, "image")
	b.La(isa.S8, "blk")
	b.La(isa.S10, "cosmat")
	b.Li(isa.S9, 1)
	b.Li(isa.S11, 31)

	b.Label("pass_loop")
	b.Li(isa.S7, 0)
	b.Li(isa.S1, 0) // by
	b.Label("by_loop")
	b.Li(isa.S2, 0) // bx
	b.Label("bx_loop")

	// --- load block: blk[y*8+x] = image[(by*8+y)*32 + bx*8+x] - 128 ---
	b.Li(isa.S3, 0) // y
	b.Label("load_y")
	b.Li(isa.S4, 0) // x
	b.Label("load_x")
	b.Slli(isa.T0, isa.S1, 3)
	b.Add(isa.T0, isa.T0, isa.S3) // by*8+y
	b.Slli(isa.T0, isa.T0, 5)     // *32
	b.Slli(isa.T1, isa.S2, 3)
	b.Add(isa.T0, isa.T0, isa.T1)
	b.Add(isa.T0, isa.T0, isa.S4)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Lb(isa.T2, isa.T0, 0)
	b.Addi(isa.T2, isa.T2, -128)
	b.Slli(isa.T3, isa.S3, 3)
	b.Add(isa.T3, isa.T3, isa.S4)
	b.Slli(isa.T3, isa.T3, 3)
	b.Add(isa.T3, isa.T3, isa.S8)
	b.Sd(isa.T2, isa.T3, 0)
	b.Addi(isa.S4, isa.S4, 1)
	b.Slti(isa.T0, isa.S4, 8)
	b.Bnez(isa.T0, "load_x")
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 8)
	b.Bnez(isa.T0, "load_y")

	// --- tmp = C * blk ---
	b.La(isa.T6, "tmpmat")
	b.Li(isa.S3, 0) // u
	b.Label("mm1_u")
	b.Li(isa.S4, 0) // x
	b.Label("mm1_x")
	b.Li(isa.S6, 0) // acc
	b.Li(isa.S5, 0) // k
	b.Label("mm1_k")
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.S5)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.S10)
	b.Ld(isa.T1, isa.T0, 0) // C[u][k]
	b.Slli(isa.T0, isa.S5, 3)
	b.Add(isa.T0, isa.T0, isa.S4)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.S8)
	b.Ld(isa.T2, isa.T0, 0) // blk[k][x]
	b.Mul(isa.T1, isa.T1, isa.T2)
	b.Add(isa.S6, isa.S6, isa.T1)
	b.Addi(isa.S5, isa.S5, 1)
	b.Slti(isa.T0, isa.S5, 8)
	b.Bnez(isa.T0, "mm1_k")
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.S4)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.T6)
	b.Sd(isa.S6, isa.T0, 0) // tmp[u][x]
	b.Addi(isa.S4, isa.S4, 1)
	b.Slti(isa.T0, isa.S4, 8)
	b.Bnez(isa.T0, "mm1_x")
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 8)
	b.Bnez(isa.T0, "mm1_u")

	// --- out[u][v] = (sum_k tmp[u][k] * C[v][k]) >> jpgShift ---
	b.Li(isa.S3, 0) // u
	b.Label("mm2_u")
	b.Li(isa.S4, 0) // v
	b.Label("mm2_v")
	b.Li(isa.S6, 0)
	b.Li(isa.S5, 0) // k
	b.Label("mm2_k")
	b.La(isa.T6, "tmpmat")
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.S5)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.T6)
	b.Ld(isa.T1, isa.T0, 0) // tmp[u][k]
	b.Slli(isa.T0, isa.S4, 3)
	b.Add(isa.T0, isa.T0, isa.S5)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.S10)
	b.Ld(isa.T2, isa.T0, 0) // C[v][k]
	b.Mul(isa.T1, isa.T1, isa.T2)
	b.Add(isa.S6, isa.S6, isa.T1)
	b.Addi(isa.S5, isa.S5, 1)
	b.Slti(isa.T0, isa.S5, 8)
	b.Bnez(isa.T0, "mm2_k")
	b.Srai(isa.S6, isa.S6, jpgShift)
	b.La(isa.T6, "outmat")
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.S4)
	b.Slli(isa.T0, isa.T0, 3)
	b.Add(isa.T0, isa.T0, isa.T6)
	b.Sd(isa.S6, isa.T0, 0)
	b.Addi(isa.S4, isa.S4, 1)
	b.Slti(isa.T0, isa.S4, 8)
	b.Bnez(isa.T0, "mm2_v")
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 8)
	b.Bnez(isa.T0, "mm2_u")

	// --- quantise + zigzag RLE fold ---
	b.Li(isa.S3, 0) // zigzag position
	b.Li(isa.S6, 0) // zero-run length
	b.Label("zz_loop")
	b.La(isa.T6, "zigzag")
	b.Slli(isa.T0, isa.S3, 3)
	b.Add(isa.T0, isa.T0, isa.T6)
	b.Ld(isa.T1, isa.T0, 0) // idx
	b.La(isa.T6, "outmat")
	b.Slli(isa.T0, isa.T1, 3)
	b.Add(isa.T2, isa.T0, isa.T6)
	b.Ld(isa.T2, isa.T2, 0) // coefficient
	b.La(isa.T6, "quant")
	b.Add(isa.T0, isa.T0, isa.T6)
	b.Ld(isa.T3, isa.T0, 0) // quant divisor
	b.Div(isa.T2, isa.T2, isa.T3)
	b.Bnez(isa.T2, "zz_nonzero")
	b.Addi(isa.S6, isa.S6, 1)
	b.J("zz_next")
	b.Label("zz_nonzero")
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.S6)
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.T2)
	b.Li(isa.S6, 0)
	b.Label("zz_next")
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 64)
	b.Bnez(isa.T0, "zz_loop")
	// trailing zero run
	b.Mul(isa.S7, isa.S7, isa.S11)
	b.Add(isa.S7, isa.S7, isa.S6)

	b.Addi(isa.S2, isa.S2, 1)
	b.Slti(isa.T0, isa.S2, jpgImageW/8)
	b.Bnez(isa.T0, "bx_loop")
	b.Addi(isa.S1, isa.S1, 1)
	b.Slti(isa.T0, isa.S1, jpgImageH/8)
	b.Bnez(isa.T0, "by_loop")

	b.La(isa.T0, "checksum")
	b.Sd(isa.S7, isa.T0, 0)
	b.Li(isa.T1, 1)
	b.Bne(isa.S9, isa.T1, "perturb")
	b.La(isa.T0, "golden")
	b.Sd(isa.S7, isa.T0, 0)

	// Perturb 64 random pixels.
	b.Label("perturb")
	b.Li(isa.S3, 0)
	b.Label("perturb_loop")
	b.Call("rng_next")
	b.Andi(isa.T0, isa.A7, jpgImageW*jpgImageH-1)
	b.Add(isa.T0, isa.T0, isa.S0)
	b.Lb(isa.T1, isa.T0, 0)
	b.Srli(isa.T2, isa.A7, 17)
	b.Andi(isa.T2, isa.T2, 0x1f)
	b.Add(isa.T1, isa.T1, isa.T2)
	b.Andi(isa.T1, isa.T1, 0xff)
	b.Sb(isa.T1, isa.T0, 0)
	b.Addi(isa.S3, isa.S3, 1)
	b.Slti(isa.T0, isa.S3, 64)
	b.Bnez(isa.T0, "perturb_loop")
	b.Addi(isa.S9, isa.S9, 1)
	b.J("pass_loop")

	emitRNG(b, "rng_state", uint64(seed)^0x19e61)
	b.Bytes("image", ijpegImage(seed))
	b.Quads("cosmat", jpgCosMatrix()...)
	b.Quads("quant", jpgQuantTable()...)
	b.Quads("zigzag", jpgZigzag()...)
	b.Space("blk", 64*8)
	b.Space("tmpmat", 64*8)
	b.Space("outmat", 64*8)
	b.Quads("checksum", 0)
	b.Quads("golden", 0)
	return b.Assemble()
}

// goldenIjpeg encodes the unperturbed image in pure Go with identical
// integer arithmetic (arithmetic shifts and truncating division).
func goldenIjpeg(seed int64) uint64 {
	img := ijpegImage(seed)
	cos := jpgCosMatrix()
	quant := jpgQuantTable()
	zig := jpgZigzag()
	var checksum uint64
	var blk, tmp, out [64]int64
	for by := 0; by < jpgImageH/8; by++ {
		for bx := 0; bx < jpgImageW/8; bx++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = int64(img[(by*8+y)*jpgImageW+bx*8+x]) - 128
				}
			}
			for u := 0; u < 8; u++ {
				for x := 0; x < 8; x++ {
					var acc int64
					for k := 0; k < 8; k++ {
						acc += cos[u*8+k] * blk[k*8+x]
					}
					tmp[u*8+x] = acc
				}
			}
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					var acc int64
					for k := 0; k < 8; k++ {
						acc += tmp[u*8+k] * cos[v*8+k]
					}
					out[u*8+v] = acc >> jpgShift
				}
			}
			var run uint64
			for i := 0; i < 64; i++ {
				q := out[zig[i]] / quant[zig[i]]
				if q == 0 {
					run++
					continue
				}
				checksum = checksum*31 + run
				checksum = checksum*31 + uint64(q)
				run = 0
			}
			checksum = checksum*31 + run
		}
	}
	return checksum
}
