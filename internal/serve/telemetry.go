package serve

// This file is the serve side of the live-telemetry layer (DESIGN.md §10):
// the Prometheus exposition endpoint, the live progress endpoint, and the
// opt-in pprof mount. The write side — span minting in the middleware and
// the event-log lines — lives next to the code it narrates in serve.go.

import (
	"net/http"
	"net/http/pprof"
	"sort"

	"valuepred/internal/jobs"
	"valuepred/internal/obs"
)

// handlePrometheus serves the registry snapshot in Prometheus text
// exposition format (version 0.0.4) at GET /metrics — the conventional
// scrape path, kept separate from the versioned JSON API. The same
// counters, gauges and histograms as /v1/metrics, rendered for scrapers
// instead of humans.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
		return // client went away mid-scrape; nothing useful left to do
	}
}

// flightProgress is one running job in the /v1/progress reply. The field
// name predates the job store: a "flight" is simply a job whose
// simulation is currently executing.
type flightProgress struct {
	// Key is the coalescing key: the experiment id plus canonical
	// parameters.
	Key string `json:"key"`
	// Experiment is the experiment id, matching an entry of
	// progress.experiments while the job's cells run.
	Experiment string `json:"experiment"`
	// Followers counts coalesced requests currently waiting on this job
	// (the submitter is not counted).
	Followers int64 `json:"followers"`
}

// progressReply is the GET /v1/progress body: the cell-grid aggregator's
// snapshot plus the running jobs, so a follower polling the endpoint can
// see both its job and the per-experiment cell counts behind it.
type progressReply struct {
	Progress obs.ProgressSnapshot `json:"progress"`
	Flights  []flightProgress     `json:"flights"`
}

// handleProgress serves the live progress snapshot. Cheap by design — two
// mutex-guarded copies, no simulation state touched — so it is safe to
// poll at any rate while grids run.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var flights []flightProgress
	for _, st := range s.jobs.List() {
		if st.State != jobs.StateRunning {
			continue
		}
		flights = append(flights, flightProgress{
			Key:        st.Key,
			Experiment: st.Experiment,
			Followers:  st.Followers,
		})
	}
	if flights == nil {
		flights = []flightProgress{}
	}
	sort.Slice(flights, func(i, j int) bool { return flights[i].Key < flights[j].Key })
	writeJSON(w, http.StatusOK, progressReply{
		Progress: s.progress.Snapshot(),
		Flights:  flights,
	})
}

// mountPprof exposes net/http/pprof on the server's own mux (the package's
// init only registers on http.DefaultServeMux, which this service never
// serves). Gated behind Config.EnablePprof: profiling is a diagnostic
// surface, not part of the public API.
func (s *Server) mountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
