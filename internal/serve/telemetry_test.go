package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"valuepred/internal/obs"
	"valuepred/internal/stats"
)

// syncBuffer is a goroutine-safe event-log destination for tests: the
// EventLog serializes writes, but the test goroutine reads concurrently.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestPrometheusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One real request first, so the counters are non-zero and the
	// per-status family exists.
	if status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery); status != http.StatusOK {
		t.Fatalf("warmup status = %d, body: %s", status, body)
	}
	status, hdr, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	for _, want := range []string{
		"# TYPE vp_serve_requests_total counter",
		"vp_serve_requests_total ",
		`vp_serve_status_total{code="200"} `,
		"# TYPE vp_serve_latency_ms histogram",
		`vp_serve_latency_ms_bucket{le="+Inf"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// Simulation metrics flow through the same registry.
	if !strings.Contains(body, "vp_sim_cycles_total") {
		t.Errorf("exposition missing the simulation counters:\n%s", body)
	}
}

func TestProgressEndpoint(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		close(started)
		<-release
		return &stats.Table{Title: "stub"}, nil
	}

	// Idle server: the endpoint answers with an empty snapshot.
	status, _, body := get(t, ts, "/v1/progress")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/progress = %d", status)
	}
	var idle struct {
		Progress obs.ProgressSnapshot `json:"progress"`
		Flights  []struct {
			Key        string `json:"key"`
			Experiment string `json:"experiment"`
			Followers  int64  `json:"followers"`
		} `json:"flights"`
	}
	if err := json.Unmarshal([]byte(body), &idle); err != nil {
		t.Fatalf("progress body is not JSON: %v\n%s", err, body)
	}
	if len(idle.Flights) != 0 || idle.Progress.Total != 0 {
		t.Fatalf("idle progress should be empty, got %s", body)
	}

	// One leader plus one coalesced follower in flight.
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
		}()
	}
	<-started
	// The follower registers after the leader; poll until it shows up.
	deadline := time.Now().Add(5 * time.Second)
	var live struct {
		Flights []struct {
			Key        string `json:"key"`
			Experiment string `json:"experiment"`
			Followers  int64  `json:"followers"`
		} `json:"flights"`
	}
	for {
		_, _, body = get(t, ts, "/v1/progress")
		if err := json.Unmarshal([]byte(body), &live); err != nil {
			t.Fatalf("progress body is not JSON: %v\n%s", err, body)
		}
		if len(live.Flights) == 1 && live.Flights[0].Followers == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw 1 flight with 1 follower, last body: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if live.Flights[0].Experiment != "fig5.1" {
		t.Errorf("flight experiment = %q, want fig5.1", live.Flights[0].Experiment)
	}
	if !strings.HasPrefix(live.Flights[0].Key, "fig5.1|") {
		t.Errorf("flight key = %q, want the coalescing key", live.Flights[0].Key)
	}

	close(release)
	wg.Wait()

	// Settled: the flight list drains.
	_, _, body = get(t, ts, "/v1/progress")
	if err := json.Unmarshal([]byte(body), &live); err != nil {
		t.Fatal(err)
	}
	if len(live.Flights) != 0 {
		t.Errorf("flights should drain after completion, got %s", body)
	}
}

// TestProgressCountsRealCells runs a real (tiny) simulation and checks the
// plan runner's cell lifecycle lands in the server's aggregator.
func TestProgressCountsRealCells(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery); status != http.StatusOK {
		t.Fatalf("status = %d, body: %s", status, body)
	}
	snap := s.progress.Snapshot()
	if snap.Total == 0 || snap.Done != snap.Total {
		t.Fatalf("after a completed run: done/total = %d/%d, want equal and non-zero",
			snap.Done, snap.Total)
	}
	if snap.Running != 0 || snap.Queued != 0 {
		t.Fatalf("after a completed run: running=%d queued=%d", snap.Running, snap.Queued)
	}
}

func TestEventLogAndSpans(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{EventLog: obs.NewEventLog(&buf)})

	status, hdr, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body: %s", status, body)
	}
	span := hdr.Get("X-Span")
	if !strings.HasPrefix(span, "req-") {
		t.Fatalf("X-Span = %q, want a req-<n> id", span)
	}

	// request.done is written in the middleware's defer; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), `"event":"request.done"`) {
		if time.Now().After(deadline) {
			t.Fatalf("request.done never appeared in the event log:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	type event struct {
		Span      string         `json:"span"`
		Component string         `json:"component"`
		Event     string         `json:"event"`
		Fields    map[string]any `json:"fields"`
	}
	var events []event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line is not JSON: %v\n%s", err, line)
		}
		events = append(events, e)
	}

	// Every stage of the request — middleware, flight, plan cells — must be
	// present and stamped with the same span id.
	want := map[string]bool{
		"serve/request.start":    false,
		"serve/simulation.start": false,
		"plan/cell.start":        false,
		"plan/cell.done":         false,
		"serve/simulation.done":  false,
		"serve/request.done":     false,
	}
	for _, e := range events {
		k := e.Component + "/" + e.Event
		if _, tracked := want[k]; !tracked {
			continue
		}
		want[k] = true
		if e.Span != span {
			t.Errorf("%s has span %q, want %q (end-to-end correlation)", k, e.Span, span)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("event log missing %s:\n%s", k, buf.String())
		}
	}
}

func TestPprofGating(t *testing.T) {
	_, tsOff := newTestServer(t, Config{})
	if status, _, _ := get(t, tsOff, "/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("pprof should be absent by default, got %d", status)
	}

	_, tsOn := newTestServer(t, Config{EnablePprof: true})
	status, _, body := get(t, tsOn, "/debug/pprof/")
	if status != http.StatusOK {
		t.Errorf("pprof index with EnablePprof = %d", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index does not look like pprof output:\n%.200s", body)
	}
}
