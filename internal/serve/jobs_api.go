package serve

// This file is the asynchronous half of the serving path (DESIGN.md §14):
// submit a run as a job, poll its status, fetch its result — all keyed by
// the deterministic job id derived from the canonical request parameters,
// so resubmitting the same request is idempotent and two clients asking
// for the same table share one job. Jobs run on the server's context, so
// a submitted run survives its client disconnecting; the result stays
// fetchable until job retention evicts it. POST /v1/merge is the serving
// side of the shard pipeline: it recombines a complete set of shard
// artifacts into the byte-identical unsharded tables without simulating
// anything.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"valuepred/internal/experiment"
	"valuepred/internal/jobs"
	"valuepred/internal/obs"
	"valuepred/internal/stats"
)

// maxMergeBody bounds the POST /v1/merge request body; shard artifacts
// are tables plus note collectors, far below this.
const maxMergeBody = 64 << 20

// jobProgress is the live cell tally attached to a running job's status,
// cut from the server-wide progress snapshot.
type jobProgress struct {
	Total   int64   `json:"total"`
	Done    int64   `json:"done"`
	Running int64   `json:"running"`
	Queued  int64   `json:"queued"`
	ETAMS   float64 `json:"eta_ms"`
}

// jobReply is the wire form of one job's status.
type jobReply struct {
	ID         string       `json:"id"`
	Experiment string       `json:"experiment"`
	State      jobs.State   `json:"state"`
	Created    string       `json:"created"`
	Settled    string       `json:"settled,omitempty"`
	Followers  int64        `json:"followers"`
	Error      string       `json:"error,omitempty"`
	Progress   *jobProgress `json:"progress,omitempty"`
	Result     string       `json:"result,omitempty"` // URL path, once done
}

// jobReply renders one job status, attaching live progress to running
// jobs and the result path to done ones.
func (s *Server) jobReply(st jobs.Status) jobReply {
	rep := jobReply{
		ID:         st.ID,
		Experiment: st.Experiment,
		State:      st.State,
		Created:    st.Created.UTC().Format(time.RFC3339Nano),
		Followers:  st.Followers,
		Error:      st.Err,
	}
	if !st.Settled.IsZero() {
		rep.Settled = st.Settled.UTC().Format(time.RFC3339Nano)
	}
	switch st.State {
	case jobs.StateDone:
		rep.Result = "/v1/jobs/" + st.ID + "/result"
	case jobs.StateRunning:
		snap := s.progress.Snapshot()
		for _, e := range snap.Experiments {
			if e.Experiment != st.Experiment {
				continue
			}
			rep.Progress = &jobProgress{
				Total:   e.Total,
				Done:    e.Done,
				Running: e.Running,
				Queued:  e.Queued,
				ETAMS:   e.ETAMS,
			}
			break
		}
	}
	return rep
}

// handleJobSubmit is POST /v1/jobs: create (or find) the job for the
// canonical parameters. Replies 202 with the job id when a run was
// admitted, 200 when an equivalent job already exists or the table is
// already cached, 429 when the queue is full, 503 while draining.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("experiment")
	if id == "" {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: "the experiment query parameter is required",
		})
		return
	}
	if _, ok := experiment.Describe(id); !ok {
		writeError(w, &apiError{
			status:  http.StatusNotFound,
			Code:    "unknown_experiment",
			Message: fmt.Sprintf("unknown experiment %q; list them at /v1/experiments", id),
		})
		return
	}
	rr, apiErr := parseRunRequest(r, s.cfg)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	spec := jobSpec{id: id, rr: rr, shard: rr.Format == "shard"}
	if spec.shard && !s.cfg.Shard.Enabled() {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: "format=shard requires a sharded server (vpserve -shard n/m)",
		})
		return
	}
	key := s.key(id, rr)
	if spec.shard {
		key += "|artifact"
	}
	if span, ok := obs.SpanID(r.Context()); ok {
		spec.span = span
	}

	// A table already in a cache settles the job immediately: the client
	// gets an id whose result is ready on the first poll.
	if !spec.shard {
		s.mu.Lock()
		t, cached := s.cache.get(key)
		s.mu.Unlock()
		if !cached {
			if _, busy := s.jobs.ByKey(key); !busy {
				t, cached = s.diskGet(key)
			}
		}
		if cached {
			j, created := s.jobs.Create(key, id, spec)
			if created {
				s.m.jobsCreated.Inc()
				s.jobs.MarkRunning(j)
				if n := s.jobs.Settle(j, t, nil); n > 0 {
					s.m.jobsEvicted.Add(uint64(n))
				}
				s.syncJobGauges()
			}
			writeJSON(w, http.StatusOK, s.jobReply(j.Status()))
			return
		}
	}

	for {
		if j, ok := s.jobs.ByKey(key); ok {
			if j.State() == jobs.StateFailed {
				// Resubmitting a failed job retries it with a fresh run.
				s.jobs.Drop(j)
				s.syncJobGauges()
				continue
			}
			writeJSON(w, http.StatusOK, s.jobReply(j.Status()))
			return
		}
		j, created, err := s.startJob(key, spec, true)
		if err != nil {
			writeError(w, s.classify(err))
			return
		}
		if !created {
			continue // lost the creation race; report the winner
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		writeJSON(w, http.StatusAccepted, s.jobReply(j.Status()))
		return
	}
}

// handleJobList is GET /v1/jobs: every tracked job in creation order.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.List()
	reps := make([]jobReply, 0, len(list))
	for _, st := range list {
		reps = append(reps, s.jobReply(st))
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobReply `json:"jobs"`
	}{reps})
}

// handleJobStatus is GET /v1/jobs/{id}: one job's status, with live
// progress while it runs.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, jobNotFound(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobReply(j.Status()))
}

// handleJobResult is GET /v1/jobs/{id}/result?format=...: the settled
// result, rendered like the synchronous endpoint. An unsettled job
// replies 409 so pollers can tell "not yet" from "gone" (404).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, jobNotFound(r.PathValue("id")))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	if !formats[format] || format == "shard" {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: fmt.Sprintf("unknown format %q (have text, csv, md, chart, json)", format),
		})
		return
	}
	switch j.State() {
	case jobs.StateQueued, jobs.StateRunning:
		writeError(w, &apiError{
			status:     http.StatusConflict,
			Code:       "not_ready",
			Message:    fmt.Sprintf("job %s is %s; poll /v1/jobs/%s", j.ID(), j.State(), j.ID()),
			retryAfter: 1,
		})
		return
	}
	res, err := j.Result()
	if err != nil {
		writeError(w, s.classify(err))
		return
	}
	switch v := res.(type) {
	case *experiment.ShardFile:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if err := v.WriteJSON(w); err != nil {
			return // client went away mid-write
		}
	case *stats.Table:
		renderTable(w, v, format)
	default:
		writeError(w, &apiError{
			status:  http.StatusInternalServerError,
			Code:    "internal",
			Message: "job settled without a renderable result",
		})
	}
}

// jobNotFound is the shared 404 for an unknown or evicted job id.
func jobNotFound(id string) *apiError {
	return &apiError{
		status:  http.StatusNotFound,
		Code:    "unknown_job",
		Message: fmt.Sprintf("no job %q: the id is unknown, or the job was evicted by retention", id),
	}
}

// handleMerge is POST /v1/merge: recombine a complete set of shard
// artifacts (a JSON array of shard files, as served by format=shard) into
// the unsharded tables. Pure table arithmetic — no simulation, no cache
// interaction — rendered in the requested format, tables separated by a
// blank line exactly like vpsim -merge.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMergeBody))
	if err != nil {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: fmt.Sprintf("reading request body: %v", err),
		})
		return
	}
	var files []*experiment.ShardFile
	if err := json.Unmarshal(body, &files); err != nil {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: fmt.Sprintf("request body is not a JSON array of shard files: %v", err),
		})
		return
	}
	merged, err := experiment.MergeShardFiles(files)
	if err != nil {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_merge",
			Message: err.Error(),
		})
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	if !formats[format] || format == "shard" {
		writeError(w, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: fmt.Sprintf("unknown format %q (have text, csv, md, chart, json)", format),
		})
		return
	}
	if format == "json" {
		writeJSON(w, http.StatusOK, merged)
		return
	}
	contentType := "text/plain; charset=utf-8"
	switch format {
	case "csv":
		contentType = "text/csv; charset=utf-8"
	case "md":
		contentType = "text/markdown; charset=utf-8"
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	for i, m := range merged {
		if i > 0 {
			fmt.Fprintln(w)
		}
		var renderErr error
		switch format {
		case "csv":
			renderErr = m.Table.RenderCSV(w)
		case "md":
			renderErr = m.Table.RenderMarkdown(w)
		case "chart":
			renderErr = m.Table.RenderChart(w)
		default:
			renderErr = m.Table.Render(w)
		}
		if renderErr != nil {
			return // client went away mid-write
		}
	}
}
