package serve

import (
	"container/list"

	"valuepred/internal/stats"
)

// tableCache is a bounded LRU of completed experiment tables, keyed by the
// canonicalized run parameters (runRequest.key). Tables are immutable once
// a runner returns them, so entries are shared by reference and rendered
// per request in whatever format the client asked for.
//
// The cache is not internally synchronized: the Server guards it with its
// own mutex, which it already holds to consult the flight map (cache
// lookup and coalescing are one atomic decision).
type tableCache struct {
	limit int
	m     map[string]*list.Element
	lru   *list.List // front = most recently used; values are cacheEntry
}

type cacheEntry struct {
	key string
	tab *stats.Table
}

// newTableCache returns a cache bounded to limit entries (limit < 1 keeps
// exactly one entry, so the bound is always positive).
func newTableCache(limit int) *tableCache {
	if limit < 1 {
		limit = 1
	}
	return &tableCache{
		limit: limit,
		m:     make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// get returns the cached table for key, refreshing its recency.
func (c *tableCache) get(key string) (*stats.Table, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(cacheEntry).tab, true
}

// add inserts (or refreshes) key and evicts the least-recently-used
// entries beyond the bound.
func (c *tableCache) add(key string, tab *stats.Table) {
	if e, ok := c.m[key]; ok {
		e.Value = cacheEntry{key: key, tab: tab}
		c.lru.MoveToFront(e)
		return
	}
	c.m[key] = c.lru.PushFront(cacheEntry{key: key, tab: tab})
	for c.lru.Len() > c.limit {
		back := c.lru.Back()
		delete(c.m, back.Value.(cacheEntry).key)
		c.lru.Remove(back)
	}
}

// len reports the current entry count.
func (c *tableCache) len() int { return c.lru.Len() }
