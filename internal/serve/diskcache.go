package serve

// This file is the persistent second level of the serving path's cache
// hierarchy (DESIGN.md §14). Completed tables are written as JSON entries
// under an operator-supplied directory (vpserve -cache-dir), keyed by the
// same canonical request key as the in-memory LRU, so results survive a
// restart and can be shared between replicas pointed at a common
// directory. Lookup order is memory, then disk, then simulation.
//
// Every entry is stamped with the identity of the environment that
// produced it — the same tool/toolchain/platform fields obs.Manifest
// records for a run. The determinism contract (DESIGN.md §9) guarantees
// byte-identical tables only within one toolchain and architecture, so an
// entry whose stamp does not match the reading process is stale: ignored
// and eventually overwritten, never served.
//
// Writes are atomic (temp file in the same directory, then rename), which
// is also what makes a shared directory safe: a concurrent reader sees
// either the old entry or the new one, never a partial write. Two
// replicas racing to write the same key both write the same bytes-worth
// of table, so the loser of the rename race loses nothing.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"valuepred/internal/stats"
)

// DefaultDiskCacheEntries bounds the on-disk table cache when
// Config.DiskCacheEntries is not set.
const DefaultDiskCacheEntries = 512

// diskFormatVersion is bumped whenever diskEntry's encoding changes;
// entries written under another version are stale.
const diskFormatVersion = 1

// diskIdentity stamps an entry with the environment that produced it,
// mirroring the fields obs.Manifest records. Comparable, so staleness is
// one struct equality.
type diskIdentity struct {
	Format    int    `json:"format"`
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

// currentIdentity is the stamp for entries written by this process.
func currentIdentity() diskIdentity {
	return diskIdentity{
		Format:    diskFormatVersion,
		Tool:      "valuepred-serve",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
}

// diskEntry is the wire form of one cached table. Key is stored verbatim
// so a hash collision (or a stray file) can never serve the wrong table.
type diskEntry struct {
	Identity   diskIdentity `json:"identity"`
	Key        string       `json:"key"`
	Experiment string       `json:"experiment"`
	Table      *stats.Table `json:"table"`
}

// diskCache is the content-addressed on-disk store. The mutex serializes
// this process's writes and eviction scans; cross-process safety rests on
// the rename protocol alone.
type diskCache struct {
	dir     string
	entries int

	mu sync.Mutex
}

// newDiskCache creates dir if needed and probes it for writability, so a
// misconfigured cache directory fails at construction instead of on the
// first completed simulation.
func newDiskCache(dir string, entries int) (*diskCache, error) {
	if entries <= 0 {
		entries = DefaultDiskCacheEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("serve: cache dir %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	os.Remove(name)
	return &diskCache{dir: dir, entries: entries}, nil
}

// path maps a canonical request key to its entry file. Hashing keeps the
// name filesystem-safe whatever the key contains; the stored Key field
// disambiguates collisions.
func (d *diskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16])+".json")
}

// get loads the entry for key. hit reports a servable table; stale
// reports an entry that exists but is unreadable or stamped by a
// different environment, and is therefore skipped.
func (d *diskCache) get(key string) (t *stats.Table, hit, stale bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false, true
	}
	if e.Identity != currentIdentity() || e.Key != key || e.Table == nil {
		return nil, false, true
	}
	return e.Table, true, false
}

// put writes the entry atomically and then evicts the oldest entries
// beyond the cache's bound, returning how many were removed.
func (d *diskCache) put(key, experiment string, t *stats.Table) (evicted int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := json.MarshalIndent(diskEntry{
		Identity:   currentIdentity(),
		Key:        key,
		Experiment: experiment,
		Table:      t,
	}, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("serve: disk cache encode: %w", err)
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("serve: disk cache write: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("serve: disk cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("serve: disk cache write: %w", err)
	}
	dst := d.path(key)
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("serve: disk cache write: %w", err)
	}
	return d.evictLocked(dst), nil
}

// evictLocked removes the oldest entries (by modification time, then
// name) beyond the cache bound, sparing keep — the file just written.
func (d *diskCache) evictLocked(keep string) (evicted int) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	type candidate struct {
		path string
		mod  int64
	}
	var files []candidate
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, candidate{filepath.Join(d.dir, e.Name()), info.ModTime().UnixNano()})
	}
	if len(files) <= d.entries {
		return 0
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].path < files[j].path
	})
	for _, f := range files[:len(files)-d.entries] {
		if f.path == keep {
			continue
		}
		if os.Remove(f.path) == nil {
			evicted++
		}
	}
	return evicted
}
