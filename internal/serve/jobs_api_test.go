package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"valuepred/internal/stats"
)

// post sends a POST and returns the status, headers and body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// decodeJob unmarshals a job status reply.
func decodeJob(t *testing.T, body string) jobReply {
	t.Helper()
	var rep jobReply
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("job reply is not JSON: %v\n%s", err, body)
	}
	return rep
}

// waitState polls a job until it reaches want or the deadline passes.
func waitState(t *testing.T, ts *httptest.Server, id, want string) jobReply {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _, body := get(t, ts, "/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %s", id, status, body)
		}
		rep := decodeJob(t, body)
		if string(rep.State) == want {
			return rep
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last body: %s", id, want, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobsAPILifecycle drives the async surface end to end: submit (202),
// idempotent resubmit (200, same id), premature result fetch (409), poll
// to done, fetch the result byte-identically to the synchronous endpoint.
func TestJobsAPILifecycle(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	inner := s.run
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		close(started)
		<-release
		return inner(ctx, id, rr)
	}

	const submit = "/v1/jobs?experiment=fig5.1&tracelen=3000&workloads=gcc"
	status, hdr, body := post(t, ts, submit, "")
	if status != http.StatusAccepted {
		t.Fatalf("submit: status = %d, want 202; body: %s", status, body)
	}
	job := decodeJob(t, body)
	if job.ID == "" || job.Experiment != "fig5.1" {
		t.Fatalf("submit reply: %+v", job)
	}
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, job.ID)
	}
	<-started

	// Resubmitting the identical request finds the same job: 200, same id.
	status, _, body = post(t, ts, submit, "")
	if status != http.StatusOK || decodeJob(t, body).ID != job.ID {
		t.Errorf("resubmit: status = %d, body = %s (want 200 with id %s)", status, body, job.ID)
	}
	// Equivalent-but-spelled-differently parameters map to the same job id.
	status, _, body = post(t, ts, submit+"&seed=1&seeds=1&format=csv", "")
	if status != http.StatusOK || decodeJob(t, body).ID != job.ID {
		t.Errorf("equivalent resubmit: status = %d, body = %s", status, body)
	}

	// The result is not ready while the job runs: 409, not 404 or 500.
	status, _, body = get(t, ts, "/v1/jobs/"+job.ID+"/result")
	if status != http.StatusConflict || errorCode(t, body) != "not_ready" {
		t.Errorf("premature fetch: status = %d, body = %s", status, body)
	}
	// The job shows up in the listing.
	status, _, body = get(t, ts, "/v1/jobs")
	if status != http.StatusOK || !strings.Contains(body, job.ID) {
		t.Errorf("job list: status = %d, body = %s", status, body)
	}

	close(release)
	done := waitState(t, ts, job.ID, "done")
	if done.Result != "/v1/jobs/"+job.ID+"/result" {
		t.Errorf("done reply result = %q", done.Result)
	}

	status, _, asyncBody := get(t, ts, done.Result)
	if status != http.StatusOK {
		t.Fatalf("result fetch: status = %d, body: %s", status, asyncBody)
	}
	// The synchronous endpoint serves the same bytes (now a cache hit).
	status, hdr, syncBody := get(t, ts, "/v1/experiments/fig5.1?tracelen=3000&workloads=gcc")
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("sync fetch after job: status = %d, X-Cache = %q", status, hdr.Get("X-Cache"))
	}
	if asyncBody != syncBody {
		t.Errorf("async result differs from the synchronous rendering:\nasync:\n%s\nsync:\n%s", asyncBody, syncBody)
	}
	if got := counter(s, "serve.simulations"); got != 1 {
		t.Errorf("simulations = %d, want 1 (the job; the sync fetch must hit the cache)", got)
	}
	if got := counter(s, "serve.jobs.completed"); got != 1 {
		t.Errorf("jobs.completed = %d, want 1", got)
	}
}

// TestJobsAPIErrors covers the error surface of the async endpoints.
func TestJobsAPIErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		method, path string
		status       int
		code         string
	}{
		{"POST", "/v1/jobs", http.StatusBadRequest, "bad_params"},
		{"POST", "/v1/jobs?experiment=nonesuch", http.StatusNotFound, "unknown_experiment"},
		{"POST", "/v1/jobs?experiment=fig5.1&tracelen=0", http.StatusBadRequest, "bad_params"},
		{"POST", "/v1/jobs?experiment=fig5.1&format=shard", http.StatusBadRequest, "bad_params"},
		{"GET", "/v1/jobs/jnope", http.StatusNotFound, "unknown_job"},
		{"GET", "/v1/jobs/jnope/result", http.StatusNotFound, "unknown_job"},
	}
	for _, c := range cases {
		var status int
		var body string
		if c.method == "POST" {
			status, _, body = post(t, ts, c.path, "")
		} else {
			status, _, body = get(t, ts, c.path)
		}
		if status != c.status || errorCode(t, body) != c.code {
			t.Errorf("%s %s: status = %d, body = %s (want %d %s)",
				c.method, c.path, status, body, c.status, c.code)
		}
	}
}

// TestJobSurvivesClientDisconnect is the acceptance check for the async
// architecture: the client that started a simulation disconnects mid-run,
// the job finishes on the server's context anyway, and the result is
// fetchable afterwards — by job id and as a cache hit — without any
// re-simulation.
func TestJobSurvivesClientDisconnect(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	inner := s.run
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		close(started)
		<-release
		return inner(ctx, id, rr)
	}

	// A synchronous client starts the run, then hangs up mid-simulation.
	reqCtx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, "GET", ts.URL+"/v1/experiments/table3.1"+tinyQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	clientGone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientGone <- err
	}()
	<-started
	cancel()
	if err := <-clientGone; err == nil {
		t.Fatal("the disconnecting client's request unexpectedly succeeded")
	}

	// The simulation must still be running (not canceled with the client).
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for counter(s, "serve.jobs.completed") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("job never completed after its client disconnected (failed = %d)",
				counter(s, "serve.jobs.failed"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The orphaned result is fetchable by job id...
	list := s.jobs.List()
	if len(list) != 1 {
		t.Fatalf("tracked jobs = %d, want 1", len(list))
	}
	status, _, body := get(t, ts, "/v1/jobs/"+list[0].ID+"/result")
	if status != http.StatusOK || !strings.Contains(body, "Table 3.1") {
		t.Errorf("orphaned result fetch: status = %d, body = %s", status, body)
	}
	// ...and the synchronous endpoint serves it from cache, no re-run.
	status, hdr, _ := get(t, ts, "/v1/experiments/table3.1"+tinyQuery)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("post-disconnect fetch: status = %d, X-Cache = %q", status, hdr.Get("X-Cache"))
	}
	if got := counter(s, "serve.simulations"); got != 1 {
		t.Errorf("simulations = %d, want 1", got)
	}
}

// TestJobQueueAndShedding pins the async admission ladder with one slot
// and a one-deep queue: first job runs, second queues (202, FIFO), third
// is shed with 429 queue_full; releasing the slot drains the queue.
func TestJobQueueAndShedding(t *testing.T) {
	release := make(chan struct{})
	var entered atomic.Int32
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, JobQueue: 1})
	inner := s.run
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		entered.Add(1)
		<-release
		return inner(ctx, id, rr)
	}

	submit := func(id string) (int, jobReply, string) {
		status, _, body := post(t, ts, "/v1/jobs?experiment="+id+"&tracelen=3000&workloads=gcc", "")
		if status == http.StatusAccepted || status == http.StatusOK {
			return status, decodeJob(t, body), body
		}
		return status, jobReply{}, body
	}

	status, a, body := submit("fig5.1")
	if status != http.StatusAccepted || a.State != "running" {
		t.Fatalf("first submit: status = %d, body = %s", status, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for entered.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}

	status, b, body := submit("fig3.3")
	if status != http.StatusAccepted || b.State != "queued" {
		t.Fatalf("second submit: status = %d, body = %s (want 202 queued)", status, body)
	}
	status, _, body = post(t, ts, "/v1/jobs?experiment=table3.1&tracelen=3000&workloads=gcc", "")
	if status != http.StatusTooManyRequests || errorCode(t, body) != "queue_full" {
		t.Errorf("third submit: status = %d, body = %s (want 429 queue_full)", status, body)
	}
	// The synchronous path never queues: it sheds immediately at saturation.
	status, _, body = get(t, ts, "/v1/experiments/table3.1"+tinyQuery)
	if status != http.StatusTooManyRequests || errorCode(t, body) != "saturated" {
		t.Errorf("sync at saturation: status = %d, body = %s (want 429 saturated)", status, body)
	}

	close(release)
	waitState(t, ts, a.ID, "done")
	waitState(t, ts, b.ID, "done")
	if got := counter(s, "serve.jobs.queued"); got != 1 {
		t.Errorf("jobs.queued = %d, want 1", got)
	}
	if got := counter(s, "serve.jobs.completed"); got != 2 {
		t.Errorf("jobs.completed = %d, want 2", got)
	}
	if got := counter(s, "serve.rejected"); got != 2 {
		t.Errorf("rejected = %d, want 2 (one queue_full, one saturated)", got)
	}
}

// TestFailedJobRetriesOnResubmit pins the retry semantics: a job that
// settles failed is reported once, and resubmitting the same parameters
// drops the corpse and runs fresh.
func TestFailedJobRetriesOnResubmit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inner := s.run
	var calls atomic.Int32
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		if calls.Add(1) == 1 {
			panic("first run dies")
		}
		return inner(ctx, id, rr)
	}

	status, _, body := post(t, ts, "/v1/jobs?experiment=fig5.1&tracelen=3000&workloads=gcc", "")
	if status != http.StatusAccepted {
		t.Fatalf("submit: status = %d, body = %s", status, body)
	}
	id := decodeJob(t, body).ID
	failed := waitState(t, ts, id, "failed")
	if failed.Error == "" {
		t.Errorf("failed job reply carries no error: %+v", failed)
	}
	// Fetching a failed job's result returns its structured error.
	status, _, body = get(t, ts, "/v1/jobs/"+id+"/result")
	if status != http.StatusInternalServerError || errorCode(t, body) != "panic" {
		t.Errorf("failed result fetch: status = %d, body = %s", status, body)
	}

	// Resubmission retries; the job id is the same (same key), fresh run.
	status, _, body = post(t, ts, "/v1/jobs?experiment=fig5.1&tracelen=3000&workloads=gcc", "")
	if status != http.StatusAccepted || decodeJob(t, body).ID != id {
		t.Fatalf("resubmit after failure: status = %d, body = %s", status, body)
	}
	waitState(t, ts, id, "done")
	if got := counter(s, "serve.jobs.failed"); got != 1 {
		t.Errorf("jobs.failed = %d, want 1", got)
	}
}
