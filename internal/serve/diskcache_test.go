package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"valuepred/internal/plan"
	"valuepred/internal/tracestore"
)

// cacheFiles lists the entry files in a cache directory.
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") && !strings.HasPrefix(e.Name(), ".") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	return files
}

// TestDiskCacheWarmRestart is the acceptance check for the persistent
// cache: a freshly started server pointed at a warm cache directory
// serves the byte-identical table from disk — cache-hit counter up, zero
// simulations — exactly as if it had computed it.
func TestDiskCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	const path = "/v1/experiments/table3.1" + tinyQuery

	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	status, hdr, coldBody := get(t, ts1, path)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("cold request: status = %d, X-Cache = %q", status, hdr.Get("X-Cache"))
	}
	if got := counter(s1, "serve.disk_cache_write"); got != 1 {
		t.Fatalf("disk_cache_write = %d, want 1", got)
	}
	if files := cacheFiles(t, dir); len(files) != 1 {
		t.Fatalf("cache dir has %d entries, want 1", len(files))
	}

	// "Restart": a brand-new server (fresh LRU, fresh trace store, fresh
	// registry) sharing only the cache directory.
	s2, ts2 := newTestServer(t, Config{CacheDir: dir, Store: tracestore.New(0)})
	status, hdr, warmBody := get(t, ts2, path)
	if status != http.StatusOK || hdr.Get("X-Cache") != "disk" {
		t.Fatalf("warm request: status = %d, X-Cache = %q", status, hdr.Get("X-Cache"))
	}
	if warmBody != coldBody {
		t.Errorf("disk-served table differs from the original:\nwarm:\n%s\ncold:\n%s", warmBody, coldBody)
	}
	if sims := counter(s2, "serve.simulations"); sims != 0 {
		t.Errorf("restarted server simulated %d times, want 0", sims)
	}
	if hits := counter(s2, "serve.disk_cache_hit"); hits != 1 {
		t.Errorf("disk_cache_hit = %d, want 1", hits)
	}
	// The disk hit promoted the table into the LRU: the repeat is "hit".
	if _, hdr, _ := get(t, ts2, path); hdr.Get("X-Cache") != "hit" {
		t.Errorf("repeat after disk hit: X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
}

// TestDiskCacheStaleEntryIgnored pins the identity stamp: an entry
// written by a different toolchain (here: a doctored go_version) is never
// served — the server counts it stale, re-simulates, and overwrites it.
func TestDiskCacheStaleEntryIgnored(t *testing.T) {
	dir := t.TempDir()
	const path = "/v1/experiments/table3.1" + tinyQuery

	_, ts1 := newTestServer(t, Config{CacheDir: dir})
	_, _, coldBody := get(t, ts1, path)

	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("cache dir has %d entries, want 1", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var entry map[string]json.RawMessage
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	var ident map[string]any
	if err := json.Unmarshal(entry["identity"], &ident); err != nil {
		t.Fatal(err)
	}
	ident["go_version"] = "go0.0-other-toolchain"
	doctored, err := json.Marshal(ident)
	if err != nil {
		t.Fatal(err)
	}
	entry["identity"] = doctored
	rewritten, err := json.Marshal(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], rewritten, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{CacheDir: dir, Store: tracestore.New(0)})
	status, hdr, body := get(t, ts2, path)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("stale-entry request: status = %d, X-Cache = %q", status, hdr.Get("X-Cache"))
	}
	if body != coldBody {
		t.Errorf("re-simulated table differs from the original")
	}
	if got := counter(s2, "serve.disk_cache_stale"); got != 1 {
		t.Errorf("disk_cache_stale = %d, want 1", got)
	}
	if got := counter(s2, "serve.simulations"); got != 1 {
		t.Errorf("simulations = %d, want 1 (the stale entry must not be served)", got)
	}
	// The fresh run overwrote the stale entry: a third server hits it.
	s3, ts3 := newTestServer(t, Config{CacheDir: dir, Store: tracestore.New(0)})
	if _, hdr, _ := get(t, ts3, path); hdr.Get("X-Cache") != "disk" {
		t.Errorf("after overwrite: X-Cache = %q, want disk", hdr.Get("X-Cache"))
	}
	if got := counter(s3, "serve.simulations"); got != 0 {
		t.Errorf("third server simulated %d times, want 0", got)
	}
}

// TestDiskCacheEviction bounds the store: with a two-entry cache, the
// third distinct table evicts the oldest file.
func TestDiskCacheEviction(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CacheDir: dir, DiskCacheEntries: 2})
	for _, id := range []string{"table3.1", "fig3.3", "fig5.1"} {
		if status, _, body := get(t, ts, "/v1/experiments/"+id+tinyQuery); status != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", id, status, body)
		}
	}
	if files := cacheFiles(t, dir); len(files) > 2 {
		t.Errorf("cache dir has %d entries, want <= 2", len(files))
	}
	if got := counter(s, "serve.disk_cache_evict"); got < 1 {
		t.Errorf("disk_cache_evict = %d, want >= 1", got)
	}
}

// TestNewRejectsBadConfig covers the constructor's validation: a
// malformed shard and an unusable cache directory both fail loudly at
// startup (vpserve turns these into exit 2).
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Shard: plan.Shard{Index: 3, Of: 2}}); err == nil {
		t.Error("New accepted shard 3/2")
	}
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CacheDir: filepath.Join(blocker, "sub")}); err == nil {
		t.Error("New accepted a cache dir under a regular file")
	}
}
