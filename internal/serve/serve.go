// Package serve is the HTTP experiment service behind cmd/vpserve: it
// exposes the experiment registry over a small versioned API and turns the
// one-shot CLI pipeline into a long-lived process that can serve many
// clients from one warm trace store.
//
// The paper's lesson — exploit redundancy instead of recomputing — is
// applied at the request level:
//
//   - identical concurrent requests coalesce onto a single simulation
//     (the singleflight pattern of internal/tracestore, one layer up);
//   - completed tables land in a bounded LRU keyed by the canonicalized
//     run parameters, so repeated requests are O(render);
//   - load beyond a configurable number of concurrent simulations is shed
//     with 429 + Retry-After instead of queueing without bound;
//   - every simulation runs under a context with a configurable timeout
//     and is aborted cooperatively through experiment.RunCtx's checkpoints.
//
// Parallelism is bounded at two independent levels: MaxConcurrent admits
// requests, and every admitted experiment then executes its cells on the
// process-global internal/plan worker pool (sized by valuepred.SetWorkers
// / vpserve's -workers flag), so total simulation concurrency is capped by
// the pool width rather than requests × workloads.
//
// Served tables are byte-identical to cmd/vpsim's output for the same
// parameters (pinned by TestServedTableMatchesVpsimRendering): the service
// renders through the same stats.Table methods, and the determinism
// contract (DESIGN.md §9) guarantees the table itself.
//
// Observability rides on internal/obs: every request increments
// serve.requests, coalesced followers serve.coalesced, cache outcomes
// serve.cache_hit / serve.cache_miss, and request latency lands in the
// serve.latency_ms histogram; GET /v1/metrics renders the registry
// snapshot. The serve package sits outside the simulation packages, so —
// unlike them — it may read the wall clock and the recorded metrics back.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"valuepred/internal/experiment"
	"valuepred/internal/obs"
	"valuepred/internal/stats"
	"valuepred/internal/tracestore"
	"valuepred/internal/workload"
)

// Defaults for the zero Config.
const (
	// DefaultMaxConcurrent bounds simultaneous simulations (not requests:
	// cache hits and coalesced followers never take a slot).
	DefaultMaxConcurrent = 4
	// DefaultTimeout caps one simulation, including trace generation.
	DefaultTimeout = 2 * time.Minute
	// DefaultCacheEntries bounds the rendered-table LRU.
	DefaultCacheEntries = 64
	// DefaultMaxTraceLen rejects absurd per-request trace lengths before
	// they reach an emulator.
	DefaultMaxTraceLen = 2_000_000
	// DefaultMaxSeeds bounds the multi-seed averaging a single request may
	// ask for.
	DefaultMaxSeeds = 16
)

// Config parameterises a Server. The zero value serves with the defaults
// above, the process-wide trace store, and a fresh metrics registry.
type Config struct {
	// MaxConcurrent is the simulation semaphore width; <= 0 means
	// DefaultMaxConcurrent. Requests that would exceed it receive
	// 429 Too Many Requests with a Retry-After header.
	MaxConcurrent int
	// Timeout caps one simulation run; <= 0 means DefaultTimeout. An
	// expired run returns 504 Gateway Timeout.
	Timeout time.Duration
	// CacheEntries bounds the completed-table LRU; <= 0 means
	// DefaultCacheEntries.
	CacheEntries int
	// MaxTraceLen rejects requests asking for longer traces; <= 0 means
	// DefaultMaxTraceLen.
	MaxTraceLen int
	// MaxSeeds rejects requests averaging over more seeds; <= 0 means
	// DefaultMaxSeeds.
	MaxSeeds int
	// Store overrides the trace cache consulted by the simulations
	// (nil = tracestore.Shared()). Mainly for tests needing fresh counters.
	Store *tracestore.Store
	// Registry receives the serve.* metrics and the simulators'
	// instrumentation (nil = a fresh registry). Exposed at /v1/metrics.
	Registry *obs.Registry
	// EventLog, when non-nil, receives the structured event stream:
	// request.start/done from the middleware, simulation.start/done per
	// flight, and cell.start/done from the plan runner — every line
	// span-stamped so one request's work is grep-able end to end.
	EventLog *obs.EventLog
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are a diagnostic surface, not part of
	// the public API (vpserve's -pprof flag turns them on).
	EnablePprof bool
}

// apiError is a structured error reply; the wire form is
//
//	{"error": {"code": "bad_params", "message": "..."}}
type apiError struct {
	status     int
	Code       string `json:"code"`
	Message    string `json:"message"`
	retryAfter int    // seconds; > 0 adds a Retry-After header
}

// Error makes apiError usable as an error inside the handler plumbing.
func (e *apiError) Error() string { return e.Code + ": " + e.Message }

// errSaturated is returned by acquire when every simulation slot is busy.
var errSaturated = errors.New("serve: all simulation slots are busy")

// flight is one in-progress simulation that coalesced requests join.
type flight struct {
	done       chan struct{}
	experiment string       // experiment id, for /v1/progress
	followers  atomic.Int64 // coalesced requests currently waiting
	table      *stats.Table
	err        error
}

// serveMetrics are the pre-resolved registry handles for the serve.* names.
type serveMetrics struct {
	requests    *obs.Counter
	coalesced   *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	simulations *obs.Counter
	rejected    *obs.Counter
	timeouts    *obs.Counter
	panics      *obs.Counter
	inflight    *obs.Gauge
	cacheSize   *obs.Gauge
	latency     *obs.Histogram
}

// latencyBounds bucket request latency in milliseconds: sub-millisecond
// cache hits up to multi-minute cold simulations.
var latencyBounds = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}

// Server is the HTTP experiment service. Create it with New; it implements
// none of http.Server's lifecycle itself — mount Handler on any server and
// call BeginDrain/Close around that server's Shutdown for a graceful exit.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	sink     *obs.Sink
	progress *obs.Progress
	events   *obs.EventLog
	mux      *http.ServeMux
	sem      chan struct{}

	mu      sync.Mutex
	flights map[string]*flight
	cache   *tableCache

	// baseCtx parents every simulation context, so the simulations outlive
	// any single coalesced client but die together on Close.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	// run is the simulation entry point; tests substitute it to make
	// coalescing and saturation deterministic.
	run func(ctx context.Context, id string, rr runRequest) (*stats.Table, error)

	m serveMetrics
}

// New returns a Server for cfg. The trace store in use is instrumented
// into the server's registry (tracestore.* counters appear in /v1/metrics).
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.MaxTraceLen <= 0 {
		cfg.MaxTraceLen = DefaultMaxTraceLen
	}
	if cfg.MaxSeeds <= 0 {
		cfg.MaxSeeds = DefaultMaxSeeds
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	//lint:ignore ctxlint server construction is the process root; this context has no caller to inherit from
	ctx, cancel := context.WithCancel(context.Background())
	progress := obs.NewProgress()
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		progress: progress,
		events:   cfg.EventLog,
		// The sink the simulations write through feeds the registry, the
		// live Progress aggregator and (when configured) the event log; the
		// plan runner inherits all three through Params.Obs.
		sink:       obs.New(reg, nil).WithProgress(progress).WithEventLog(cfg.EventLog),
		mux:        http.NewServeMux(),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		flights:    make(map[string]*flight),
		cache:      newTableCache(cfg.CacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		m: serveMetrics{
			requests:    reg.Counter("serve.requests"),
			coalesced:   reg.Counter("serve.coalesced"),
			cacheHits:   reg.Counter("serve.cache_hit"),
			cacheMisses: reg.Counter("serve.cache_miss"),
			simulations: reg.Counter("serve.simulations"),
			rejected:    reg.Counter("serve.rejected"),
			timeouts:    reg.Counter("serve.timeouts"),
			panics:      reg.Counter("serve.panics"),
			inflight:    reg.Gauge("serve.inflight"),
			cacheSize:   reg.Gauge("serve.cache_entries"),
			latency:     reg.Histogram("serve.latency_ms", latencyBounds),
		},
	}
	s.run = s.simulate
	s.store().Instrument(reg)
	if cfg.EventLog != nil {
		s.store().InstrumentEvents(cfg.EventLog)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/progress", s.handleProgress)
	s.mux.HandleFunc("GET /metrics", s.handlePrometheus)
	if cfg.EnablePprof {
		s.mountPprof()
	}
	return s
}

func (s *Server) store() *tracestore.Store {
	if s.cfg.Store != nil {
		return s.cfg.Store
	}
	return tracestore.Shared()
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the service's root handler: the API mux wrapped in the
// panic-recovery and request-metrics middleware.
func (s *Server) Handler() http.Handler { return s.instrumented(s.mux) }

// BeginDrain flips the server into draining mode: /healthz starts failing
// (so load balancers stop routing here) and new simulations are refused
// with 503, while requests already in flight — including their coalesced
// followers — run to completion. Call it right before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close aborts every in-flight simulation by canceling their shared parent
// context. Use it after a drain deadline expires; a graceful exit never
// needs it.
func (s *Server) Close() { s.baseCancel() }

// --- middleware ---

// statusRecorder captures the response code for the per-status counters.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrumented wraps next with panic recovery, the request counter, the
// latency histogram and per-status-code counters. It also mints the
// request's span id: every request gets a fresh "req-<n>" span attached
// to its context (and echoed in the X-Span response header), which the
// event log and the plan tracer use to correlate a request with the
// simulation cells it scheduled.
func (s *Server) instrumented(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		ctx := obs.WithSpan(r.Context(), obs.NextSpan())
		r = r.WithContext(ctx)
		w.Header().Set("X-Span", obs.SpanName(ctx))
		s.events.Log(ctx, "serve", "request.start",
			obs.F("method", r.Method), obs.F("path", r.URL.Path))
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Inc()
				if !rec.wrote {
					writeError(rec, &apiError{
						status:  http.StatusInternalServerError,
						Code:    "panic",
						Message: fmt.Sprint(p),
					})
				}
			}
			s.m.latency.Observe(float64(time.Since(start).Milliseconds()))
			s.reg.Counter(fmt.Sprintf("serve.status.%d", rec.code)).Inc()
			s.events.Log(ctx, "serve", "request.done",
				obs.F("method", r.Method), obs.F("path", r.URL.Path),
				obs.F("status", rec.code),
				obs.F("wall_ms", float64(time.Since(start))/float64(time.Millisecond)))
		}()
		next.ServeHTTP(rec, r)
	})
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// experimentInfo is one entry of the /v1/experiments listing.
type experimentInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var list []experimentInfo
	for _, id := range experiment.IDs() {
		desc, _ := experiment.Describe(id)
		list = append(list, experimentInfo{ID: id, Description: desc})
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := snap.WriteText(w); err != nil {
		return // client went away mid-write; nothing useful left to do
	}
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := experiment.Describe(id); !ok {
		writeError(w, &apiError{
			status:  http.StatusNotFound,
			Code:    "unknown_experiment",
			Message: fmt.Sprintf("unknown experiment %q; list them at /v1/experiments", id),
		})
		return
	}
	rr, apiErr := parseRunRequest(r, s.cfg)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	tab, source, err := s.table(r.Context(), id, rr)
	if err != nil {
		writeError(w, s.classify(err))
		return
	}
	w.Header().Set("X-Cache", source)
	renderTable(w, tab, rr.Format)
}

// classify maps a simulation error onto the API error space.
func (s *Server) classify(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, errSaturated):
		s.m.rejected.Inc()
		return &apiError{
			status:     http.StatusTooManyRequests,
			Code:       "saturated",
			Message:    fmt.Sprintf("all %d simulation slots are busy; retry shortly", s.cfg.MaxConcurrent),
			retryAfter: 1,
		}
	case errors.Is(err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		return &apiError{
			status:  http.StatusGatewayTimeout,
			Code:    "timeout",
			Message: fmt.Sprintf("simulation exceeded the %s server timeout; request a shorter tracelen or fewer workloads", s.cfg.Timeout),
		}
	case errors.Is(err, context.Canceled):
		return &apiError{
			status:  http.StatusServiceUnavailable,
			Code:    "canceled",
			Message: "simulation was canceled (server shutting down or client gone)",
		}
	default:
		return &apiError{
			status:  http.StatusInternalServerError,
			Code:    "internal",
			Message: err.Error(),
		}
	}
}

// table returns the experiment table for (id, rr), serving it — in order of
// preference — from the completed-table LRU, by coalescing onto an
// identical in-flight simulation, or by running the simulation under the
// server's semaphore and timeout.
func (s *Server) table(reqCtx context.Context, id string, rr runRequest) (*stats.Table, string, error) {
	key := rr.key(id)
	s.mu.Lock()
	if t, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.m.cacheHits.Inc()
		return t, "hit", nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.m.coalesced.Inc()
		f.followers.Add(1)
		defer f.followers.Add(-1)
		select {
		case <-f.done:
			return f.table, "coalesced", f.err
		case <-reqCtx.Done():
			// This client gave up; the leader keeps simulating for the rest.
			return nil, "", reqCtx.Err()
		}
	}
	if s.Draining() {
		s.mu.Unlock()
		return nil, "", &apiError{
			status:  http.StatusServiceUnavailable,
			Code:    "draining",
			Message: "server is draining; no new simulations are accepted",
		}
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.mu.Unlock()
		return nil, "", errSaturated
	}
	f := &flight{done: make(chan struct{}), experiment: id}
	s.flights[key] = f
	s.mu.Unlock()
	s.m.cacheMisses.Inc()
	s.m.simulations.Inc()
	s.m.inflight.Add(1)

	// The simulation context descends from the server, not this request:
	// coalesced followers must not die with the leader's connection, and
	// BeginDrain lets it finish while Close aborts it.
	//
	// The run is wrapped so a panicking simulation settles the flight as a
	// structured error instead of unwinding past the cleanup below. The
	// middleware's recover writes the leader's 500 but cannot restore server
	// state: without this recover, one panic would leak a semaphore slot
	// forever, keep serve.inflight inflated, and park every coalesced
	// follower on a flight whose done channel never closes.
	func() {
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
		defer cancel()
		// Span propagation is value-only: the simulation context descends
		// from baseCtx for cancellation, but re-attaching the leader's span
		// links every cell event this flight schedules back to its request.
		if span, ok := obs.SpanID(reqCtx); ok {
			ctx = obs.WithSpan(ctx, span)
		}
		simDone := s.events.Start(ctx, "serve", "simulation",
			obs.F("experiment", id), obs.F("key", key))
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Inc()
				f.table, f.err = nil, &apiError{
					status:  http.StatusInternalServerError,
					Code:    "panic",
					Message: fmt.Sprint(p),
				}
			}
			simDone(f.err == nil)
		}()
		f.table, f.err = s.run(ctx, id, rr)
	}()

	s.mu.Lock()
	delete(s.flights, key)
	if f.err == nil {
		s.cache.add(key, f.table)
	}
	s.m.cacheSize.Set(int64(s.cache.len()))
	s.mu.Unlock()
	s.m.inflight.Add(-1)
	<-s.sem
	close(f.done)
	return f.table, "miss", f.err
}

// simulate is the production run function: the experiment runners with the
// request's parameters, the server's trace store and its metrics sink.
func (s *Server) simulate(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
	p := experiment.Params{
		Seed:      rr.Seed,
		TraceLen:  rr.TraceLen,
		Workloads: rr.Workloads,
		Store:     s.cfg.Store,
		Obs:       s.sink,
	}
	if rr.Seeds > 1 {
		seeds := make([]int64, rr.Seeds)
		for i := range seeds {
			seeds[i] = rr.Seed + int64(i)
		}
		return experiment.RunSeedsCtx(ctx, id, p, seeds)
	}
	return experiment.RunCtx(ctx, id, p)
}

// --- request parsing and canonicalization ---

// runRequest is the canonicalized form of one experiment request: defaults
// are filled in, workload names are trimmed, and the empty workload set is
// expanded to all eight benchmarks, so that every equivalent query string
// maps to the same coalescing/cache key.
type runRequest struct {
	Seed      int64
	TraceLen  int
	Seeds     int
	Workloads []string
	Format    string
}

// key is the coalescing and cache key: the canonical parameters, excluding
// the output format (all formats render from the same table).
func (rr runRequest) key(id string) string {
	return fmt.Sprintf("%s|seed=%d|len=%d|seeds=%d|wl=%s",
		id, rr.Seed, rr.TraceLen, rr.Seeds, strings.Join(rr.Workloads, ","))
}

// formats are the supported render formats, matching vpsim's output flags.
var formats = map[string]bool{"text": true, "csv": true, "md": true, "chart": true, "json": true}

// parseRunRequest validates and canonicalizes the query parameters.
func parseRunRequest(r *http.Request, cfg Config) (runRequest, *apiError) {
	q := r.URL.Query()
	bad := func(format string, args ...any) (runRequest, *apiError) {
		return runRequest{}, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: fmt.Sprintf(format, args...),
		}
	}
	rr := runRequest{Seed: 1, TraceLen: 200_000, Seeds: 1, Format: "text"}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return bad("seed %q is not an integer", v)
		}
		rr.Seed = n
	}
	if v := q.Get("tracelen"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return bad("tracelen %q is not an integer", v)
		}
		rr.TraceLen = n
	}
	if rr.TraceLen <= 0 || rr.TraceLen > cfg.MaxTraceLen {
		return bad("tracelen must be in [1, %d], have %d", cfg.MaxTraceLen, rr.TraceLen)
	}
	if v := q.Get("seeds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return bad("seeds %q is not an integer", v)
		}
		rr.Seeds = n
	}
	if rr.Seeds < 1 || rr.Seeds > cfg.MaxSeeds {
		return bad("seeds must be in [1, %d], have %d", cfg.MaxSeeds, rr.Seeds)
	}
	if v := q.Get("workloads"); v != "" {
		for _, name := range strings.Split(v, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := workload.Get(name); !ok {
				return bad("unknown workload %q (have %s)", name, strings.Join(workload.Names(), ", "))
			}
			rr.Workloads = append(rr.Workloads, name)
		}
	}
	if len(rr.Workloads) == 0 {
		rr.Workloads = workload.Names()
	}
	if v := q.Get("format"); v != "" {
		if !formats[v] {
			return bad("unknown format %q (have text, csv, md, chart, json)", v)
		}
		rr.Format = v
	}
	return rr, nil
}

// --- rendering ---

// renderTable writes tab in the requested format. The text, csv, md and
// chart formats are byte-identical to vpsim's -o output for the same
// parameters; json marshals the stats.Table struct.
func renderTable(w http.ResponseWriter, tab *stats.Table, format string) {
	var err error
	switch format {
	case "json":
		writeJSON(w, http.StatusOK, tab)
		return
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = tab.RenderCSV(w)
	case "md":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		err = tab.RenderMarkdown(w)
	case "chart":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = tab.RenderChart(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = tab.Render(w)
	}
	if err != nil {
		return // headers are out; a render error here means the client left
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return // client went away mid-write
	}
}

func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, map[string]*apiError{"error": e})
}
