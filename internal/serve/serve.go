// Package serve is the HTTP experiment service behind cmd/vpserve: it
// exposes the experiment registry over a small versioned API and turns the
// one-shot CLI pipeline into a long-lived process that can serve many
// clients from one warm trace store.
//
// The paper's lesson — exploit redundancy instead of recomputing — is
// applied at the request level:
//
//   - every distinct simulation is one job in an internal/jobs store,
//     keyed by the canonicalized run parameters; identical concurrent
//     requests coalesce onto the same job, and the asynchronous API
//     (POST /v1/jobs, GET /v1/jobs/{id}) exposes the same jobs to clients
//     that would rather poll than hold a connection open;
//   - completed tables land in a bounded in-memory LRU, and — when a
//     cache directory is configured — in a persistent content-addressed
//     store that survives restarts and can be shared between replicas
//     (lookup order: memory, disk, simulate);
//   - load beyond a configurable number of concurrent simulations is
//     shed with 429 + Retry-After on the synchronous path, while async
//     submissions may wait in a bounded FIFO;
//   - every simulation runs under a context with a configurable timeout
//     and is aborted cooperatively through experiment.RunCtx's checkpoints.
//
// A replica started with a shard assignment (vpserve -shard n/m) serves
// its deterministic partition of the workload axis: normal formats render
// the partial table, and format=shard returns the mergeable artifact that
// vpsim -merge or POST /v1/merge recombines byte-identically to the
// unsharded run (DESIGN.md §14).
//
// Parallelism is bounded at two independent levels: MaxConcurrent admits
// jobs, and every admitted experiment then executes its cells on the
// process-global internal/plan worker pool (sized by valuepred.SetWorkers
// / vpserve's -workers flag), so total simulation concurrency is capped by
// the pool width rather than requests × workloads.
//
// Served tables are byte-identical to cmd/vpsim's output for the same
// parameters (pinned by TestServedTableMatchesVpsimRendering): the service
// renders through the same stats.Table methods, and the determinism
// contract (DESIGN.md §9) guarantees the table itself.
//
// Observability rides on internal/obs: every request increments
// serve.requests, coalesced followers serve.coalesced, cache outcomes
// serve.cache_hit / serve.cache_miss / serve.disk_cache_*, the job
// lifecycle serve.jobs.*, and request latency lands in the
// serve.latency_ms histogram; GET /v1/metrics renders the registry
// snapshot. The serve package sits outside the simulation packages, so —
// unlike them — it may read the wall clock and the recorded metrics back.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"valuepred/internal/experiment"
	"valuepred/internal/jobs"
	"valuepred/internal/obs"
	"valuepred/internal/plan"
	"valuepred/internal/stats"
	"valuepred/internal/tracestore"
	"valuepred/internal/workload"
)

// Defaults for the zero Config.
const (
	// DefaultMaxConcurrent bounds simultaneous simulations (not requests:
	// cache hits and coalesced followers never take a slot).
	DefaultMaxConcurrent = 4
	// DefaultTimeout caps one simulation, including trace generation.
	DefaultTimeout = 2 * time.Minute
	// DefaultCacheEntries bounds the rendered-table LRU.
	DefaultCacheEntries = 64
	// DefaultMaxTraceLen rejects absurd per-request trace lengths before
	// they reach an emulator.
	DefaultMaxTraceLen = 2_000_000
	// DefaultMaxSeeds bounds the multi-seed averaging a single request may
	// ask for.
	DefaultMaxSeeds = 16
)

// Config parameterises a Server. The zero value serves with the defaults
// above, the process-wide trace store, and a fresh metrics registry.
type Config struct {
	// MaxConcurrent is the simulation semaphore width; <= 0 means
	// DefaultMaxConcurrent. Synchronous requests that would exceed it
	// receive 429 Too Many Requests with a Retry-After header; async
	// submissions queue up to JobQueue deep.
	MaxConcurrent int
	// Timeout caps one simulation run; <= 0 means DefaultTimeout. An
	// expired run returns 504 Gateway Timeout.
	Timeout time.Duration
	// CacheEntries bounds the completed-table LRU; <= 0 means
	// DefaultCacheEntries.
	CacheEntries int
	// MaxTraceLen rejects requests asking for longer traces; <= 0 means
	// DefaultMaxTraceLen.
	MaxTraceLen int
	// MaxSeeds rejects requests averaging over more seeds; <= 0 means
	// DefaultMaxSeeds.
	MaxSeeds int
	// CacheDir, when non-empty, enables the persistent second-level table
	// cache: completed tables are written there as identity-stamped JSON
	// entries and served back — across restarts, and between replicas
	// sharing the directory — without re-simulation. The directory is
	// created if needed; an unwritable directory fails New.
	CacheDir string
	// DiskCacheEntries bounds the on-disk cache; <= 0 means
	// DefaultDiskCacheEntries. Eviction is oldest-written-first.
	DiskCacheEntries int
	// JobRetention bounds how many settled jobs are kept for result
	// fetches by id; <= 0 means jobs.DefaultRetention.
	JobRetention int
	// JobQueue bounds async submissions waiting for a simulation slot;
	// <= 0 means jobs.DefaultQueueLimit. Beyond it POST /v1/jobs sheds
	// with 429.
	JobQueue int
	// Shard, when enabled, restricts this replica to its deterministic
	// partition of the workload axis (DESIGN.md §14): normal formats
	// render the partial table, format=shard the mergeable artifact. The
	// zero value serves unsharded.
	Shard plan.Shard
	// Store overrides the trace cache consulted by the simulations
	// (nil = tracestore.Shared()). Mainly for tests needing fresh counters.
	Store *tracestore.Store
	// Registry receives the serve.* metrics and the simulators'
	// instrumentation (nil = a fresh registry). Exposed at /v1/metrics.
	Registry *obs.Registry
	// EventLog, when non-nil, receives the structured event stream:
	// request.start/done from the middleware, simulation.start/done per
	// job, and cell.start/done from the plan runner — every line
	// span-stamped so one request's work is grep-able end to end.
	EventLog *obs.EventLog
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are a diagnostic surface, not part of
	// the public API (vpserve's -pprof flag turns them on).
	EnablePprof bool
}

// apiError is a structured error reply; the wire form is
//
//	{"error": {"code": "bad_params", "message": "..."}}
type apiError struct {
	status     int
	Code       string `json:"code"`
	Message    string `json:"message"`
	retryAfter int    // seconds; > 0 adds a Retry-After header
}

// Error makes apiError usable as an error inside the handler plumbing.
func (e *apiError) Error() string { return e.Code + ": " + e.Message }

// errSaturated is returned when a synchronous request finds every
// simulation slot busy.
var errSaturated = errors.New("serve: all simulation slots are busy")

// errQueueFull is returned when an async submission finds the job queue
// at its limit.
var errQueueFull = errors.New("serve: the job queue is full")

// jobSpec is the payload a job carries: everything execute needs to run
// the simulation without the submitting request's connection or context.
type jobSpec struct {
	id    string // experiment id
	rr    runRequest
	span  uint64 // submitter's span, re-attached for event correlation (0 = none)
	shard bool   // produce the shard artifact instead of a table
}

// serveMetrics are the pre-resolved registry handles for the serve.* names.
type serveMetrics struct {
	requests      *obs.Counter
	coalesced     *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	simulations   *obs.Counter
	rejected      *obs.Counter
	timeouts      *obs.Counter
	panics        *obs.Counter
	inflight      *obs.Gauge
	cacheSize     *obs.Gauge
	latency       *obs.Histogram
	jobsCreated   *obs.Counter // serve.jobs.created
	jobsQueued    *obs.Counter // serve.jobs.queued
	jobsCompleted *obs.Counter // serve.jobs.completed
	jobsFailed    *obs.Counter // serve.jobs.failed
	jobsEvicted   *obs.Counter // serve.jobs.evicted
	jobsTracked   *obs.Gauge   // serve.jobs.tracked
	jobsQueue     *obs.Gauge   // serve.jobs.queue_depth
	diskHits      *obs.Counter // serve.disk_cache_hit
	diskMisses    *obs.Counter // serve.disk_cache_miss
	diskStale     *obs.Counter // serve.disk_cache_stale
	diskWrites    *obs.Counter // serve.disk_cache_write
	diskEvicts    *obs.Counter // serve.disk_cache_evict
	diskErrors    *obs.Counter // serve.disk_cache_error
}

// latencyBounds bucket request latency in milliseconds: sub-millisecond
// cache hits up to multi-minute cold simulations.
var latencyBounds = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}

// Server is the HTTP experiment service. Create it with New; it implements
// none of http.Server's lifecycle itself — mount Handler on any server and
// call BeginDrain/Close around that server's Shutdown for a graceful exit.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	sink     *obs.Sink
	progress *obs.Progress
	events   *obs.EventLog
	mux      *http.ServeMux
	sem      chan struct{}
	jobs     *jobs.Store
	disk     *diskCache // nil when no CacheDir is configured

	mu    sync.Mutex
	cache *tableCache

	// baseCtx parents every simulation context, so jobs outlive any single
	// client but die together on Close.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	// run and runShard are the simulation entry points; tests substitute
	// them to make coalescing and saturation deterministic.
	run      func(ctx context.Context, id string, rr runRequest) (*stats.Table, error)
	runShard func(ctx context.Context, id string, rr runRequest) (*experiment.ShardFile, error)

	m serveMetrics
}

// New returns a Server for cfg. The trace store in use is instrumented
// into the server's registry (tracestore.* counters appear in /v1/metrics).
// It fails when cfg.Shard is malformed or cfg.CacheDir cannot be created
// or written.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.MaxTraceLen <= 0 {
		cfg.MaxTraceLen = DefaultMaxTraceLen
	}
	if cfg.MaxSeeds <= 0 {
		cfg.MaxSeeds = DefaultMaxSeeds
	}
	if cfg.Shard != (plan.Shard{}) {
		if err := cfg.Shard.Validate(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	var disk *diskCache
	if cfg.CacheDir != "" {
		d, err := newDiskCache(cfg.CacheDir, cfg.DiskCacheEntries)
		if err != nil {
			return nil, err
		}
		disk = d
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	//lint:ignore ctxlint server construction is the process root; this context has no caller to inherit from
	ctx, cancel := context.WithCancel(context.Background())
	progress := obs.NewProgress()
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		progress: progress,
		events:   cfg.EventLog,
		// The sink the simulations write through feeds the registry, the
		// live Progress aggregator and (when configured) the event log; the
		// plan runner inherits all three through Params.Obs.
		sink:       obs.New(reg, nil).WithProgress(progress).WithEventLog(cfg.EventLog),
		mux:        http.NewServeMux(),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		jobs:       jobs.NewStore(cfg.JobRetention, cfg.JobQueue),
		disk:       disk,
		cache:      newTableCache(cfg.CacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		m: serveMetrics{
			requests:      reg.Counter("serve.requests"),
			coalesced:     reg.Counter("serve.coalesced"),
			cacheHits:     reg.Counter("serve.cache_hit"),
			cacheMisses:   reg.Counter("serve.cache_miss"),
			simulations:   reg.Counter("serve.simulations"),
			rejected:      reg.Counter("serve.rejected"),
			timeouts:      reg.Counter("serve.timeouts"),
			panics:        reg.Counter("serve.panics"),
			inflight:      reg.Gauge("serve.inflight"),
			cacheSize:     reg.Gauge("serve.cache_entries"),
			latency:       reg.Histogram("serve.latency_ms", latencyBounds),
			jobsCreated:   reg.Counter("serve.jobs.created"),
			jobsQueued:    reg.Counter("serve.jobs.queued"),
			jobsCompleted: reg.Counter("serve.jobs.completed"),
			jobsFailed:    reg.Counter("serve.jobs.failed"),
			jobsEvicted:   reg.Counter("serve.jobs.evicted"),
			jobsTracked:   reg.Gauge("serve.jobs.tracked"),
			jobsQueue:     reg.Gauge("serve.jobs.queue_depth"),
			diskHits:      reg.Counter("serve.disk_cache_hit"),
			diskMisses:    reg.Counter("serve.disk_cache_miss"),
			diskStale:     reg.Counter("serve.disk_cache_stale"),
			diskWrites:    reg.Counter("serve.disk_cache_write"),
			diskEvicts:    reg.Counter("serve.disk_cache_evict"),
			diskErrors:    reg.Counter("serve.disk_cache_error"),
		},
	}
	s.run = s.simulate
	s.runShard = s.shardFile
	s.store().Instrument(reg)
	if cfg.EventLog != nil {
		s.store().InstrumentEvents(cfg.EventLog)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/experiments", s.handleList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/progress", s.handleProgress)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /v1/merge", s.handleMerge)
	s.mux.HandleFunc("GET /metrics", s.handlePrometheus)
	if cfg.EnablePprof {
		s.mountPprof()
	}
	return s, nil
}

func (s *Server) store() *tracestore.Store {
	if s.cfg.Store != nil {
		return s.cfg.Store
	}
	return tracestore.Shared()
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the service's root handler: the API mux wrapped in the
// panic-recovery and request-metrics middleware.
func (s *Server) Handler() http.Handler { return s.instrumented(s.mux) }

// BeginDrain flips the server into draining mode: /healthz starts failing
// (so load balancers stop routing here) and new simulations are refused
// with 503, while jobs already admitted — including their coalesced
// followers and queued successors — run to completion. Call it right
// before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close aborts every in-flight simulation by canceling their shared parent
// context. Use it after a drain deadline expires; a graceful exit never
// needs it.
func (s *Server) Close() { s.baseCancel() }

// --- middleware ---

// statusRecorder captures the response code for the per-status counters.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrumented wraps next with panic recovery, the request counter, the
// latency histogram and per-status-code counters. It also mints the
// request's span id: every request gets a fresh "req-<n>" span attached
// to its context (and echoed in the X-Span response header), which the
// event log and the plan tracer use to correlate a request with the
// simulation cells it scheduled.
func (s *Server) instrumented(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		ctx := obs.WithSpan(r.Context(), obs.NextSpan())
		r = r.WithContext(ctx)
		w.Header().Set("X-Span", obs.SpanName(ctx))
		s.events.Log(ctx, "serve", "request.start",
			obs.F("method", r.Method), obs.F("path", r.URL.Path))
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Inc()
				if !rec.wrote {
					writeError(rec, &apiError{
						status:  http.StatusInternalServerError,
						Code:    "panic",
						Message: fmt.Sprint(p),
					})
				}
			}
			s.m.latency.Observe(float64(time.Since(start).Milliseconds()))
			s.reg.Counter(fmt.Sprintf("serve.status.%d", rec.code)).Inc()
			s.events.Log(ctx, "serve", "request.done",
				obs.F("method", r.Method), obs.F("path", r.URL.Path),
				obs.F("status", rec.code),
				obs.F("wall_ms", float64(time.Since(start))/float64(time.Millisecond)))
		}()
		next.ServeHTTP(rec, r)
	})
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// experimentInfo is one entry of the /v1/experiments listing.
type experimentInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var list []experimentInfo
	for _, id := range experiment.IDs() {
		desc, _ := experiment.Describe(id)
		list = append(list, experimentInfo{ID: id, Description: desc})
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := snap.WriteText(w); err != nil {
		return // client went away mid-write; nothing useful left to do
	}
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := experiment.Describe(id); !ok {
		writeError(w, &apiError{
			status:  http.StatusNotFound,
			Code:    "unknown_experiment",
			Message: fmt.Sprintf("unknown experiment %q; list them at /v1/experiments", id),
		})
		return
	}
	rr, apiErr := parseRunRequest(r, s.cfg)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if rr.Format == "shard" {
		if !s.cfg.Shard.Enabled() {
			writeError(w, &apiError{
				status:  http.StatusBadRequest,
				Code:    "bad_params",
				Message: "format=shard requires a sharded server (vpserve -shard n/m)",
			})
			return
		}
		f, source, err := s.shardArtifact(r.Context(), id, rr)
		if err != nil {
			writeError(w, s.classify(err))
			return
		}
		w.Header().Set("X-Cache", source)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if err := f.WriteJSON(w); err != nil {
			return // client went away mid-write
		}
		return
	}
	tab, source, err := s.table(r.Context(), id, rr)
	if err != nil {
		writeError(w, s.classify(err))
		return
	}
	w.Header().Set("X-Cache", source)
	renderTable(w, tab, rr.Format)
}

// classify maps a simulation error onto the API error space.
func (s *Server) classify(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, errSaturated):
		s.m.rejected.Inc()
		return &apiError{
			status:     http.StatusTooManyRequests,
			Code:       "saturated",
			Message:    fmt.Sprintf("all %d simulation slots are busy; retry shortly", s.cfg.MaxConcurrent),
			retryAfter: 1,
		}
	case errors.Is(err, errQueueFull):
		s.m.rejected.Inc()
		return &apiError{
			status:     http.StatusTooManyRequests,
			Code:       "queue_full",
			Message:    "the job queue is full; retry shortly",
			retryAfter: 1,
		}
	case errors.Is(err, context.DeadlineExceeded):
		s.m.timeouts.Inc()
		return &apiError{
			status:  http.StatusGatewayTimeout,
			Code:    "timeout",
			Message: fmt.Sprintf("simulation exceeded the %s server timeout; request a shorter tracelen or fewer workloads", s.cfg.Timeout),
		}
	case errors.Is(err, context.Canceled):
		return &apiError{
			status:  http.StatusServiceUnavailable,
			Code:    "canceled",
			Message: "simulation was canceled (server shutting down or client gone)",
		}
	default:
		return &apiError{
			status:  http.StatusInternalServerError,
			Code:    "internal",
			Message: err.Error(),
		}
	}
}

// --- the job core ---

// key is the canonical cache/coalescing key for (id, rr) on this server.
// A sharded replica suffixes its shard so that replicas sharing a cache
// directory can never serve each other's partial tables.
func (s *Server) key(id string, rr runRequest) string {
	k := rr.key(id)
	if s.cfg.Shard.Of > 1 {
		k += "|shard=" + s.cfg.Shard.String()
	}
	return k
}

// table returns the experiment table for (id, rr), serving it — in order
// of preference — from the completed-table LRU, from the persistent disk
// cache, by coalescing onto an identical in-flight job, or by running a
// fresh job under the server's semaphore and timeout.
func (s *Server) table(reqCtx context.Context, id string, rr runRequest) (*stats.Table, string, error) {
	key := s.key(id, rr)
	s.mu.Lock()
	if t, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.m.cacheHits.Inc()
		return t, "hit", nil
	}
	s.mu.Unlock()
	// Disk is only worth probing when no identical job is in flight —
	// otherwise coalescing is both cheaper and fresher.
	if _, busy := s.jobs.ByKey(key); !busy {
		if t, ok := s.diskGet(key); ok {
			s.mu.Lock()
			s.cache.add(key, t)
			s.m.cacheSize.Set(int64(s.cache.len()))
			s.mu.Unlock()
			return t, "disk", nil
		}
	}
	spec := jobSpec{id: id, rr: rr}
	if span, ok := obs.SpanID(reqCtx); ok {
		spec.span = span
	}
	res, source, err := s.obtain(reqCtx, key, spec, false, false)
	if err != nil {
		return nil, "", err
	}
	tab, ok := res.(*stats.Table)
	if !ok || tab == nil {
		return nil, "", &apiError{
			status:  http.StatusInternalServerError,
			Code:    "internal",
			Message: "job settled without a table",
		}
	}
	return tab, source, nil
}

// shardArtifact returns the mergeable shard file for (id, rr) through the
// same job core as table. Artifacts bypass the table caches (they are a
// different result type) but settled artifact jobs are reused, so
// repeated fetches of the same shard do not re-simulate within the job
// retention window.
func (s *Server) shardArtifact(reqCtx context.Context, id string, rr runRequest) (*experiment.ShardFile, string, error) {
	key := s.key(id, rr) + "|artifact"
	spec := jobSpec{id: id, rr: rr, shard: true}
	if span, ok := obs.SpanID(reqCtx); ok {
		spec.span = span
	}
	res, source, err := s.obtain(reqCtx, key, spec, false, true)
	if err != nil {
		return nil, "", err
	}
	f, ok := res.(*experiment.ShardFile)
	if !ok || f == nil {
		return nil, "", &apiError{
			status:  http.StatusInternalServerError,
			Code:    "internal",
			Message: "job settled without a shard artifact",
		}
	}
	if source == "job" {
		source = "hit"
	}
	return f, source, nil
}

// obtain resolves key to a settled result by joining the job behind it:
// coalescing onto a queued or running job, starting a fresh one, or —
// when reuseSettled is set — returning a retained done job's result
// (source "job"). A done job found with reuseSettled unset is dropped and
// re-run, which keeps the synchronous path's cache semantics with the
// in-memory LRU and the disk store, not job retention (retention serves
// the async fetch-by-id API). A failed job never poisons its key: it is
// dropped and the run retried.
func (s *Server) obtain(reqCtx context.Context, key string, spec jobSpec, canQueue, reuseSettled bool) (any, string, error) {
	for {
		if j, ok := s.jobs.ByKey(key); ok {
			switch j.State() {
			case jobs.StateDone:
				if reuseSettled {
					res, err := j.Result()
					return res, "job", err
				}
				s.jobs.Drop(j)
				s.syncJobGauges()
				continue
			case jobs.StateFailed:
				s.jobs.Drop(j)
				s.syncJobGauges()
				continue
			default:
				s.m.coalesced.Inc()
				j.Followers.Add(1)
				res, err := s.wait(reqCtx, j)
				j.Followers.Add(-1)
				return res, "coalesced", err
			}
		}
		j, created, err := s.startJob(key, spec, canQueue)
		if err != nil {
			return nil, "", err
		}
		if !created {
			// Lost the creation race; loop to join the winner.
			continue
		}
		res, err := s.wait(reqCtx, j)
		return res, "miss", err
	}
}

// wait blocks until the job settles or the caller's request context ends.
func (s *Server) wait(reqCtx context.Context, j *jobs.Job) (any, error) {
	select {
	case <-j.Done():
		return j.Result()
	case <-reqCtx.Done():
		// This client gave up; the job keeps running for everyone else.
		return nil, reqCtx.Err()
	}
}

// startJob creates and admits the job for key: it starts executing
// immediately when a simulation slot is free, waits in the bounded FIFO
// when canQueue is set, and is shed otherwise. The boolean reports
// whether this call created the job; false with a nil error means another
// submitter won the creation race.
func (s *Server) startJob(key string, spec jobSpec, canQueue bool) (*jobs.Job, bool, error) {
	if s.Draining() {
		return nil, false, &apiError{
			status:  http.StatusServiceUnavailable,
			Code:    "draining",
			Message: "server is draining; no new simulations are accepted",
		}
	}
	j, created := s.jobs.Create(key, spec.id, spec)
	if !created {
		return j, false, nil
	}
	select {
	case s.sem <- struct{}{}:
		s.m.jobsCreated.Inc()
		s.syncJobGauges()
		s.begin(j)
	default:
		if canQueue && s.jobs.Enqueue(j) {
			s.m.jobsCreated.Inc()
			s.m.jobsQueued.Inc()
			s.syncJobGauges()
			return j, true, nil
		}
		s.jobs.Drop(j)
		if canQueue {
			return nil, false, errQueueFull
		}
		return nil, false, errSaturated
	}
	return j, true, nil
}

// begin marks the job running and launches its executor. The caller must
// hold a semaphore slot, which execute passes on or releases.
func (s *Server) begin(j *jobs.Job) {
	spec := j.Spec().(jobSpec)
	s.jobs.MarkRunning(j)
	if !spec.shard {
		s.m.cacheMisses.Inc()
	}
	s.m.simulations.Inc()
	s.m.inflight.Add(1)
	go s.execute(j)
}

// execute runs one admitted job to completion and settles it. The
// simulation context descends from the server, not the submitting
// request: the job outlives any client that asked for it (BeginDrain lets
// it finish, Close aborts it). On success the table lands in the LRU and
// the disk cache before the job settles, so waiters and cache readers
// agree.
func (s *Server) execute(j *jobs.Job) {
	spec := j.Spec().(jobSpec)
	key := j.Key()
	var result any
	var err error
	func() {
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
		defer cancel()
		// Span propagation is value-only: the context descends from baseCtx
		// for cancellation, but re-attaching the submitter's span links every
		// cell event this job schedules back to its request.
		if spec.span != 0 {
			ctx = obs.WithSpan(ctx, spec.span)
		}
		simDone := s.events.Start(ctx, "serve", "simulation",
			obs.F("experiment", spec.id), obs.F("key", key))
		// A panicking simulation settles the job as a structured error
		// instead of unwinding the goroutine: without this recover, one
		// panic would leak a semaphore slot forever, keep serve.inflight
		// inflated, and park every waiter on a job that never settles.
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Inc()
				result, err = nil, &apiError{
					status:  http.StatusInternalServerError,
					Code:    "panic",
					Message: fmt.Sprint(p),
				}
			}
			simDone(err == nil)
		}()
		if spec.shard {
			result, err = s.runShard(ctx, spec.id, spec.rr)
		} else {
			result, err = s.run(ctx, spec.id, spec.rr)
		}
	}()

	if tab, ok := result.(*stats.Table); ok && tab != nil && err == nil && !spec.shard {
		s.mu.Lock()
		s.cache.add(key, tab)
		s.m.cacheSize.Set(int64(s.cache.len()))
		s.mu.Unlock()
		s.diskPut(key, spec.id, tab)
	}
	if n := s.jobs.Settle(j, result, err); n > 0 {
		s.m.jobsEvicted.Add(uint64(n))
	}
	if err != nil {
		s.m.jobsFailed.Inc()
	} else {
		s.m.jobsCompleted.Inc()
	}
	s.syncJobGauges()
	s.m.inflight.Add(-1)
	// Hand the slot straight to the next queued job, if any, so the queue
	// drains FIFO without releasing and re-acquiring the semaphore.
	if next, ok := s.jobs.Dequeue(); ok {
		s.syncJobGauges()
		s.begin(next)
	} else {
		<-s.sem
	}
}

// syncJobGauges refreshes the job store gauges after a mutation.
func (s *Server) syncJobGauges() {
	s.m.jobsTracked.Set(int64(s.jobs.Len()))
	s.m.jobsQueue.Set(int64(s.jobs.QueueLen()))
}

// diskGet probes the persistent cache, counting the outcome.
func (s *Server) diskGet(key string) (*stats.Table, bool) {
	if s.disk == nil {
		return nil, false
	}
	t, hit, stale := s.disk.get(key)
	switch {
	case hit:
		s.m.diskHits.Inc()
	case stale:
		s.m.diskStale.Inc()
	default:
		s.m.diskMisses.Inc()
	}
	return t, hit
}

// diskPut writes a completed table to the persistent cache, counting the
// write and any evictions. Write failures are counted, not fatal: the
// table was already served from memory.
func (s *Server) diskPut(key, id string, t *stats.Table) {
	if s.disk == nil {
		return
	}
	evicted, err := s.disk.put(key, id, t)
	if err != nil {
		s.m.diskErrors.Inc()
		return
	}
	s.m.diskWrites.Inc()
	if evicted > 0 {
		s.m.diskEvicts.Add(uint64(evicted))
	}
}

// simulate is the production run function: the experiment runners with the
// request's parameters, the server's trace store and its metrics sink. On
// a sharded replica the requested workloads are first restricted to this
// shard's partition, so the replica simulates only the rows it owns.
func (s *Server) simulate(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
	workloads := rr.Workloads
	if s.cfg.Shard.Of > 1 {
		workloads = s.cfg.Shard.Partition(workloads)
		if len(workloads) == 0 {
			return nil, &apiError{
				status: http.StatusBadRequest,
				Code:   "empty_shard",
				Message: fmt.Sprintf("shard %s owns none of the requested workloads; request more workloads or fetch format=shard artifacts and merge",
					s.cfg.Shard),
			}
		}
	}
	p := experiment.Params{
		Seed:      rr.Seed,
		TraceLen:  rr.TraceLen,
		Workloads: workloads,
		Store:     s.cfg.Store,
		Obs:       s.sink,
	}
	if rr.Seeds > 1 {
		seeds := make([]int64, rr.Seeds)
		for i := range seeds {
			seeds[i] = rr.Seed + int64(i)
		}
		return experiment.RunSeedsCtx(ctx, id, p, seeds)
	}
	return experiment.RunCtx(ctx, id, p)
}

// shardFile is the production artifact runner behind format=shard: the
// same parameters as simulate, run through experiment.RunShardFileCtx
// with the server's shard assignment.
func (s *Server) shardFile(ctx context.Context, id string, rr runRequest) (*experiment.ShardFile, error) {
	p := experiment.Params{
		Seed:      rr.Seed,
		TraceLen:  rr.TraceLen,
		Workloads: rr.Workloads,
		Store:     s.cfg.Store,
		Obs:       s.sink,
	}
	var seeds []int64
	if rr.Seeds > 1 {
		seeds = make([]int64, rr.Seeds)
		for i := range seeds {
			seeds[i] = rr.Seed + int64(i)
		}
	}
	return experiment.RunShardFileCtx(ctx, []string{id}, p, seeds, s.cfg.Shard)
}

// --- request parsing and canonicalization ---

// runRequest is the canonicalized form of one experiment request: defaults
// are filled in, workload names are trimmed, and the empty workload set is
// expanded to all eight benchmarks, so that every equivalent query string
// maps to the same coalescing/cache key.
type runRequest struct {
	Seed      int64
	TraceLen  int
	Seeds     int
	Workloads []string
	Format    string
}

// key is the coalescing and cache key: the canonical parameters, excluding
// the output format (all formats render from the same table).
func (rr runRequest) key(id string) string {
	return fmt.Sprintf("%s|seed=%d|len=%d|seeds=%d|wl=%s",
		id, rr.Seed, rr.TraceLen, rr.Seeds, strings.Join(rr.Workloads, ","))
}

// formats are the supported render formats: vpsim's output flags, plus
// "shard" for the mergeable artifact a sharded replica serves.
var formats = map[string]bool{"text": true, "csv": true, "md": true, "chart": true, "json": true, "shard": true}

// parseRunRequest validates and canonicalizes the query parameters.
func parseRunRequest(r *http.Request, cfg Config) (runRequest, *apiError) {
	q := r.URL.Query()
	bad := func(format string, args ...any) (runRequest, *apiError) {
		return runRequest{}, &apiError{
			status:  http.StatusBadRequest,
			Code:    "bad_params",
			Message: fmt.Sprintf(format, args...),
		}
	}
	rr := runRequest{Seed: 1, TraceLen: 200_000, Seeds: 1, Format: "text"}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return bad("seed %q is not an integer", v)
		}
		rr.Seed = n
	}
	if v := q.Get("tracelen"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return bad("tracelen %q is not an integer", v)
		}
		rr.TraceLen = n
	}
	if rr.TraceLen <= 0 || rr.TraceLen > cfg.MaxTraceLen {
		return bad("tracelen must be in [1, %d], have %d", cfg.MaxTraceLen, rr.TraceLen)
	}
	if v := q.Get("seeds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return bad("seeds %q is not an integer", v)
		}
		rr.Seeds = n
	}
	if rr.Seeds < 1 || rr.Seeds > cfg.MaxSeeds {
		return bad("seeds must be in [1, %d], have %d", cfg.MaxSeeds, rr.Seeds)
	}
	if v := q.Get("workloads"); v != "" {
		for _, name := range strings.Split(v, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := workload.Get(name); !ok {
				return bad("unknown workload %q (have %s)", name, strings.Join(workload.Names(), ", "))
			}
			rr.Workloads = append(rr.Workloads, name)
		}
	}
	if len(rr.Workloads) == 0 {
		rr.Workloads = workload.Names()
	}
	if v := q.Get("format"); v != "" {
		if !formats[v] {
			return bad("unknown format %q (have text, csv, md, chart, json, shard)", v)
		}
		rr.Format = v
	}
	return rr, nil
}

// --- rendering ---

// renderTable writes tab in the requested format. The text, csv, md and
// chart formats are byte-identical to vpsim's -o output for the same
// parameters; json marshals the stats.Table struct.
func renderTable(w http.ResponseWriter, tab *stats.Table, format string) {
	var err error
	switch format {
	case "json":
		writeJSON(w, http.StatusOK, tab)
		return
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = tab.RenderCSV(w)
	case "md":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		err = tab.RenderMarkdown(w)
	case "chart":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = tab.RenderChart(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = tab.Render(w)
	}
	if err != nil {
		return // headers are out; a render error here means the client left
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return // client went away mid-write
	}
}

func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, map[string]*apiError{"error": e})
}
