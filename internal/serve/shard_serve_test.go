package serve

import (
	"net/http"
	"strings"
	"testing"

	"valuepred/internal/plan"
	"valuepred/internal/tracestore"
)

// TestShardedRepliesMergeByteIdentically is the serving half of the
// DESIGN.md §14 contract: two replicas running -shard 1/2 and -shard 2/2
// serve format=shard artifacts whose merge (here via POST /v1/merge on an
// unsharded replica) renders byte-identically to the unsharded table.
func TestShardedRepliesMergeByteIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates fig5.1 over three workloads three times")
	}
	// One trace store for all three replicas, like replicas sharing a host.
	store := tracestore.New(0)
	_, ts0 := newTestServer(t, Config{Store: store})
	_, ts1 := newTestServer(t, Config{Store: store, Shard: plan.Shard{Index: 1, Of: 2}})
	_, ts2 := newTestServer(t, Config{Store: store, Shard: plan.Shard{Index: 2, Of: 2}})

	const query = "?tracelen=3000&workloads=compress95,li,go"
	status, _, want := get(t, ts0, "/v1/experiments/fig5.1"+query)
	if status != http.StatusOK {
		t.Fatalf("unsharded: status %d, body %s", status, want)
	}

	status1, hdr1, art1 := get(t, ts1, "/v1/experiments/fig5.1"+query+"&format=shard")
	if status1 != http.StatusOK || hdr1.Get("X-Cache") != "miss" {
		t.Fatalf("shard 1 artifact: status %d, X-Cache %q, body %s", status1, hdr1.Get("X-Cache"), art1)
	}
	status2, _, art2 := get(t, ts2, "/v1/experiments/fig5.1"+query+"&format=shard")
	if status2 != http.StatusOK {
		t.Fatalf("shard 2 artifact: status %d, body %s", status2, art2)
	}

	// Settled artifact jobs are reused: a repeat fetch is a hit, no re-run.
	if _, hdr, _ := get(t, ts1, "/v1/experiments/fig5.1"+query+"&format=shard"); hdr.Get("X-Cache") != "hit" {
		t.Errorf("repeat artifact fetch: X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}

	body := "[" + strings.TrimSpace(art1) + "," + strings.TrimSpace(art2) + "]"
	status, _, merged := post(t, ts0, "/v1/merge", body)
	if status != http.StatusOK {
		t.Fatalf("merge: status %d, body %s", status, merged)
	}
	if merged != want {
		t.Errorf("merged render differs from the unsharded table:\nmerged:\n%s\nunsharded:\n%s", merged, want)
	}
}

// TestShardedReplicaServesPartialTable checks a sharded replica's normal
// formats: the table is restricted to the workloads the shard owns, and a
// shard owning none of the requested workloads says so instead of serving
// an empty table.
func TestShardedReplicaServesPartialTable(t *testing.T) {
	_, ts := newTestServer(t, Config{Shard: plan.Shard{Index: 2, Of: 2}})
	// Of compress95,li,go the 2/2 shard owns only li (row index 1).
	status, _, body := get(t, ts, "/v1/experiments/table3.1?tracelen=3000&workloads=compress95,li,go")
	if status != http.StatusOK {
		t.Fatalf("partial table: status %d, body %s", status, body)
	}
	if !strings.Contains(body, "li") || strings.Contains(body, "compress95") {
		t.Errorf("partial table should contain li and not compress95:\n%s", body)
	}
	// A single-workload request this shard does not own fails loudly.
	status, _, body = get(t, ts, "/v1/experiments/table3.1?tracelen=3000&workloads=compress95")
	if status != http.StatusBadRequest || errorCode(t, body) != "empty_shard" {
		t.Errorf("unowned request: status = %d, body = %s (want 400 empty_shard)", status, body)
	}
}

// TestShardFormatRequiresShardedServer pins the gate: an unsharded server
// rejects format=shard with a pointer at the -shard flag.
func TestShardFormatRequiresShardedServer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery+"&format=shard")
	if status != http.StatusBadRequest || errorCode(t, body) != "bad_params" {
		t.Errorf("format=shard unsharded: status = %d, body = %s", status, body)
	}
}

// TestMergeEndpointRejectsBadSets covers the merge endpoint's error
// surface: a non-JSON body and an incomplete shard set.
func TestMergeEndpointRejectsBadSets(t *testing.T) {
	_, ts := newTestServer(t, Config{Shard: plan.Shard{Index: 1, Of: 2}})
	_, ts0 := newTestServer(t, Config{})

	status, _, body := post(t, ts0, "/v1/merge", "not json")
	if status != http.StatusBadRequest || errorCode(t, body) != "bad_params" {
		t.Errorf("garbage body: status = %d, body = %s", status, body)
	}

	status, _, artifact := get(t, ts, "/v1/experiments/table3.2"+tinyQuery+"&format=shard")
	if status != http.StatusOK {
		t.Fatalf("artifact: status %d, body %s", status, artifact)
	}
	status, _, body = post(t, ts0, "/v1/merge", "["+strings.TrimSpace(artifact)+"]")
	if status != http.StatusBadRequest || errorCode(t, body) != "bad_merge" {
		t.Errorf("incomplete set: status = %d, body = %s", status, body)
	}
}
