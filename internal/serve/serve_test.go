package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"valuepred/internal/experiment"
	"valuepred/internal/stats"
	"valuepred/internal/tracestore"
)

// newTestServer returns a Server with an isolated trace store and fast
// limits, plus its httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = tracestore.New(0)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = time.Minute
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// get fetches path and returns the status, headers and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// errorCode decodes the structured error body and returns error.code.
func errorCode(t *testing.T, body string) string {
	t.Helper()
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body is not structured JSON: %v\nbody: %s", err, body)
	}
	if e.Error.Message == "" {
		t.Errorf("error body has no message: %s", body)
	}
	return e.Error.Code
}

// counter reads a serve counter from the server's registry snapshot.
func counter(s *Server, name string) uint64 {
	v, _ := s.reg.Snapshot().Counter(name)
	return v
}

const tinyQuery = "?tracelen=3000&workloads=gcc"

// TestServedTableMatchesVpsimRendering pins byte-identity between the
// service and the CLI: the text body served for fig5.1 must equal the
// rendering vpsim produces for the same Params (vpsim is a thin wrapper
// over experiment.Run + Table.Render, the exact calls made here).
func TestServedTableMatchesVpsimRendering(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body: %s", status, body)
	}
	tab, err := experiment.Run("fig5.1", experiment.Params{
		Seed: 1, TraceLen: 3000, Workloads: []string{"gcc"},
		Store: tracestore.New(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := tab.Render(&want); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Errorf("served table differs from vpsim rendering:\nserved:\n%s\nwant:\n%s", body, want.String())
	}

	// CSV format renders the same table the CSV way.
	_, hdr, csvBody := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery+"&format=csv")
	var wantCSV strings.Builder
	if err := tab.RenderCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if csvBody != wantCSV.String() {
		t.Errorf("served CSV differs:\n%s\nwant:\n%s", csvBody, wantCSV.String())
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("csv Content-Type = %q", ct)
	}
}

// TestCoalescing is the acceptance check: 8 concurrent identical fig5.1
// requests trigger exactly one simulation, the other seven coalesce onto
// it, and every client receives the identical body. The run hook holds the
// single leader inside the (real) simulation until all followers have
// registered, making the coalescing window deterministic.
func TestCoalescing(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	inner := s.run
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		close(started) // exactly one leader may enter, or this panics
		<-release
		return inner(ctx, id, rr)
	}

	const clients = 8
	var wg sync.WaitGroup
	bodies := make([]string, clients)
	statuses := make([]int, clients)
	sources := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, hdr, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
			statuses[i], bodies[i], sources[i] = status, body, hdr.Get("X-Cache")
		}(i)
	}

	<-started
	// Wait until the seven followers have joined the flight before letting
	// the leader finish.
	deadline := time.Now().Add(10 * time.Second)
	for counter(s, "serve.coalesced") < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never joined: coalesced = %d", counter(s, "serve.coalesced"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := counter(s, "serve.simulations"); got != 1 {
		t.Errorf("simulations = %d, want 1", got)
	}
	if got := counter(s, "serve.coalesced"); got != clients-1 {
		t.Errorf("coalesced = %d, want %d", got, clients-1)
	}
	var misses, coalesced int
	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("client %d body differs from client 0", i)
		}
		switch sources[i] {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("client %d: unexpected X-Cache %q", i, sources[i])
		}
	}
	if misses != 1 || coalesced != clients-1 {
		t.Errorf("X-Cache split = %d miss / %d coalesced, want 1/%d", misses, coalesced, clients-1)
	}
}

// TestCacheHitAndEviction covers the completed-table LRU: a repeat request
// is a hit (in any format — the table is cached, not the rendering), and a
// one-entry cache evicts least-recently-used tables.
func TestCacheHitAndEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 1})

	if _, hdr, _ := get(t, ts, "/v1/experiments/table3.1"+tinyQuery); hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	if _, hdr, _ := get(t, ts, "/v1/experiments/table3.1"+tinyQuery+"&format=md"); hdr.Get("X-Cache") != "hit" {
		t.Errorf("repeat request X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	if hits, sims := counter(s, "serve.cache_hit"), counter(s, "serve.simulations"); hits != 1 || sims != 1 {
		t.Errorf("cache_hit = %d, simulations = %d, want 1, 1", hits, sims)
	}

	// A second id evicts the first from the one-entry cache.
	get(t, ts, "/v1/experiments/fig3.3"+tinyQuery)
	if _, hdr, _ := get(t, ts, "/v1/experiments/table3.1"+tinyQuery); hdr.Get("X-Cache") != "miss" {
		t.Errorf("evicted request X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	if sims := counter(s, "serve.simulations"); sims != 3 {
		t.Errorf("simulations = %d, want 3", sims)
	}
}

// TestTimeout drives the real cancellation path: a 1ns server timeout
// expires before the first experiment checkpoint, so the run aborts with
// context.DeadlineExceeded and the client sees 504.
func TestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body: %s", status, body)
	}
	if code := errorCode(t, body); code != "timeout" {
		t.Errorf("error code = %q, want timeout", code)
	}
	if got := counter(s, "serve.timeouts"); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

// TestSaturation fills the one simulation slot and checks that a request
// for different parameters is shed with 429 + Retry-After, while a request
// for the same parameters still coalesces.
func TestSaturation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	inner := s.run
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		close(started)
		<-release
		return inner(ctx, id, rr)
	}

	firstDone := make(chan string, 1)
	go func() {
		status, _, _ := get(t, ts, "/v1/experiments/table3.1"+tinyQuery)
		firstDone <- fmt.Sprintf("%d", status)
	}()
	<-started

	status, hdr, body := get(t, ts, "/v1/experiments/fig3.3"+tinyQuery)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body: %s", status, body)
	}
	if code := errorCode(t, body); code != "saturated" {
		t.Errorf("error code = %q, want saturated", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 reply has no Retry-After header")
	}
	if got := counter(s, "serve.rejected"); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	close(release)
	if got := <-firstDone; got != "200" {
		t.Errorf("in-flight request finished with status %s", got)
	}
}

// TestBadParams checks the structured error body for every rejected input.
func TestBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/experiments/nonesuch", http.StatusNotFound, "unknown_experiment"},
		{"/v1/experiments/fig5.1?tracelen=0", http.StatusBadRequest, "bad_params"},
		{"/v1/experiments/fig5.1?tracelen=999999999", http.StatusBadRequest, "bad_params"},
		{"/v1/experiments/fig5.1?tracelen=abc", http.StatusBadRequest, "bad_params"},
		{"/v1/experiments/fig5.1?seed=abc", http.StatusBadRequest, "bad_params"},
		{"/v1/experiments/fig5.1?seeds=0", http.StatusBadRequest, "bad_params"},
		{"/v1/experiments/fig5.1?seeds=9999", http.StatusBadRequest, "bad_params"},
		{"/v1/experiments/fig5.1?workloads=bogus", http.StatusBadRequest, "bad_params"},
		{"/v1/experiments/fig5.1?format=banana", http.StatusBadRequest, "bad_params"},
	}
	for _, c := range cases {
		status, _, body := get(t, ts, c.path)
		if status != c.status {
			t.Errorf("%s: status = %d, want %d (body: %s)", c.path, status, c.status, body)
			continue
		}
		if code := errorCode(t, body); code != c.code {
			t.Errorf("%s: error code = %q, want %q", c.path, code, c.code)
		}
	}
}

// TestGracefulDrain checks the shutdown sequence: after BeginDrain the
// health check fails and new simulations are refused, but a request already
// in flight completes with its full body before http.Server.Shutdown
// returns — the library half of vpserve's SIGTERM handling.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	inner := s.run
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		close(started)
		<-release
		return inner(ctx, id, rr)
	}

	type result struct {
		status int
		body   string
	}
	inFlight := make(chan result, 1)
	go func() {
		status, _, body := get(t, ts, "/v1/experiments/table3.1"+tinyQuery)
		inFlight <- result{status, body}
	}()
	<-started

	s.BeginDrain()
	if status, _, _ := get(t, ts, "/healthz"); status != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", status)
	}
	status, _, body := get(t, ts, "/v1/experiments/fig3.3"+tinyQuery)
	if status != http.StatusServiceUnavailable || errorCode(t, body) != "draining" {
		t.Errorf("new simulation during drain: status = %d, body = %s", status, body)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- ts.Config.Shutdown(context.Background()) }()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	res := <-inFlight
	if res.status != http.StatusOK || !strings.Contains(res.body, "Table 3.1") {
		t.Errorf("in-flight request during drain: status = %d, body = %s", res.status, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestPanicRecovery checks the middleware converts a handler panic into a
// structured 500 and counts it.
func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		panic("simulated handler bug")
	}
	status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body: %s", status, body)
	}
	if code := errorCode(t, body); code != "panic" {
		t.Errorf("error code = %q, want panic", code)
	}
	if got := counter(s, "serve.panics"); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
}

// TestPanicReleasesSlot is the regression test for panic cleanup: a
// panicking simulation must settle its flight and release its semaphore
// slot, so that with MaxConcurrent=1 a later request for a different key
// is not shed with 429 and a retry of the panicked key re-simulates
// instead of parking on a dead flight.
func TestPanicReleasesSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	inner := s.run
	var calls atomic.Int32
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		if calls.Add(1) == 1 {
			panic("simulated simulation bug")
		}
		return inner(ctx, id, rr)
	}

	status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
	if status != http.StatusInternalServerError || errorCode(t, body) != "panic" {
		t.Fatalf("panicked request: status = %d, body = %s", status, body)
	}
	if got := counter(s, "serve.panics"); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}

	// The single slot must be free again: a different key simulates (200),
	// not 429.
	if status, _, body := get(t, ts, "/v1/experiments/table3.1"+tinyQuery); status != http.StatusOK {
		t.Errorf("request after panic: status = %d, want 200; body: %s", status, body)
	}
	// The panicked flight must be gone and its table uncached: a retry of
	// the same key re-runs the simulation rather than coalescing or hanging.
	status, hdr, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Errorf("retry of panicked key: status = %d, X-Cache = %q, body: %s",
			status, hdr.Get("X-Cache"), body)
	}
}

// TestPanicSettlesCoalescedFollowers pins that a follower coalesced onto a
// flight whose leader panics is woken with the structured panic error
// rather than blocking until its client gives up.
func TestPanicSettlesCoalescedFollowers(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	s.run = func(ctx context.Context, id string, rr runRequest) (*stats.Table, error) {
		close(started)
		<-release
		panic("leader died mid-simulation")
	}

	type result struct {
		status int
		body   string
	}
	follower := make(chan result, 1)
	leader := make(chan result, 1)
	go func() {
		status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
		leader <- result{status, body}
	}()
	<-started
	go func() {
		status, _, body := get(t, ts, "/v1/experiments/fig5.1"+tinyQuery)
		follower <- result{status, body}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for counter(s, "serve.coalesced") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	for name, ch := range map[string]chan result{"leader": leader, "follower": follower} {
		select {
		case res := <-ch:
			if res.status != http.StatusInternalServerError || errorCode(t, res.body) != "panic" {
				t.Errorf("%s: status = %d, body = %s", name, res.status, res.body)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s still blocked 10s after the leader panicked", name)
		}
	}
}

// TestListAndMetricsEndpoints covers the two read-only endpoints.
func TestListAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, hdr, body := get(t, ts, "/v1/experiments")
	if status != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("list: status %d, Content-Type %q", status, hdr.Get("Content-Type"))
	}
	var list []struct{ ID, Description string }
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != len(experiment.IDs()) {
		t.Errorf("list has %d entries, want %d", len(list), len(experiment.IDs()))
	}
	found := false
	for _, e := range list {
		if e.ID == "fig5.1" && strings.Contains(e.Description, "5.1") {
			found = true
		}
	}
	if !found {
		t.Errorf("fig5.1 missing from listing: %s", body)
	}

	status, _, body = get(t, ts, "/v1/metrics")
	if status != http.StatusOK || !strings.Contains(body, "counter serve.requests") {
		t.Errorf("metrics text: status %d, body: %s", status, body)
	}
	status, _, body = get(t, ts, "/v1/metrics?format=json")
	var snap struct {
		Counters []struct{ Name string } `json:"counters"`
	}
	if status != http.StatusOK {
		t.Fatalf("metrics json status = %d", status)
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	// The trace store is instrumented into the same registry.
	var hasStore bool
	for _, c := range snap.Counters {
		if c.Name == "tracestore.misses" {
			hasStore = true
		}
	}
	if !hasStore {
		t.Errorf("tracestore counters missing from /v1/metrics: %s", body)
	}
}

// TestCanonicalization checks that equivalent query strings map to one
// coalescing/cache key and that format stays out of the key.
func TestCanonicalization(t *testing.T) {
	cfg := Config{MaxTraceLen: DefaultMaxTraceLen, MaxSeeds: DefaultMaxSeeds}
	parse := func(query string) runRequest {
		t.Helper()
		r := httptest.NewRequest("GET", "/v1/experiments/fig5.1"+query, nil)
		rr, apiErr := parseRunRequest(r, cfg)
		if apiErr != nil {
			t.Fatalf("parse %q: %v", query, apiErr)
		}
		return rr
	}
	base := parse("")
	if got := parse("?seed=1&tracelen=200000&seeds=1"); got.key("fig5.1") != base.key("fig5.1") {
		t.Errorf("explicit defaults produce a different key:\n%s\n%s", got.key("fig5.1"), base.key("fig5.1"))
	}
	if got := parse("?workloads=go,m88ksim,gcc,compress95,li,ijpeg,perl,vortex"); got.key("fig5.1") != base.key("fig5.1") {
		t.Errorf("full workload list differs from the empty default:\n%s", got.key("fig5.1"))
	}
	if got := parse("?workloads=go,%20gcc"); got.key("f") != parse("?workloads=go,gcc").key("f") {
		t.Errorf("whitespace changes the key: %s", got.key("f"))
	}
	if a, b := parse("?format=csv"), parse("?format=md"); a.key("f") != b.key("f") {
		t.Errorf("format leaked into the key: %s vs %s", a.key("f"), b.key("f"))
	}
	if a, b := parse("?workloads=go,gcc"), parse("?workloads=gcc,go"); a.key("f") == b.key("f") {
		t.Errorf("workload order must stay in the key (row order differs): %s", a.key("f"))
	}
}
