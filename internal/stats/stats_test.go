package stats

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:     "Demo",
		RowHeader: "benchmark",
		Columns:   []string{"a", "b"},
		Unit:      "%",
	}
	t.AddRow("go", 1, 2)
	t.AddRow("gcc", 3, 4)
	return t
}

func TestAppendAverage(t *testing.T) {
	tab := sample()
	tab.AppendAverage()
	r, ok := tab.Row("average")
	if !ok {
		t.Fatal("no average row")
	}
	if r.Cells[0] != 2 || r.Cells[1] != 3 {
		t.Errorf("average = %v", r.Cells)
	}
	// Average of an empty table is a no-op.
	empty := &Table{Columns: []string{"a"}}
	empty.AppendAverage()
	if len(empty.Rows) != 0 {
		t.Error("average row added to empty table")
	}
}

func TestCellLookup(t *testing.T) {
	tab := sample()
	if v, ok := tab.Cell("gcc", "b"); !ok || v != 4 {
		t.Errorf("Cell = %v, %v", v, ok)
	}
	if _, ok := tab.Cell("gcc", "z"); ok {
		t.Error("missing column found")
	}
	if _, ok := tab.Cell("perl", "a"); ok {
		t.Error("missing row found")
	}
}

func TestRenderText(t *testing.T) {
	tab := sample()
	tab.AddNote("hello %d", 7)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "benchmark", "go", "1.0%", "4.0%", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMissingCells(t *testing.T) {
	tab := &Table{RowHeader: "r", Columns: []string{"a", "b"}}
	tab.AddRow("short", 1) // only one cell
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-") {
		t.Error("missing cell not rendered as dash")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := sample()
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "benchmark,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "go,1,2" || lines[2] != "gcc,3,4" {
		t.Errorf("rows = %q", lines[1:])
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{RowHeader: "r", Columns: []string{`weird "col", yes`}}
	tab.AddRow("a,b", 1)
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"weird ""col"", yes"`) || !strings.Contains(out, `"a,b"`) {
		t.Errorf("escaping wrong: %q", out)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty must be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := sample()
	tab.AddNote("a note")
	var sb strings.Builder
	if err := tab.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**Demo**", "| benchmark | a | b |", "|---|---|---|", "| go | 1.0% | 2.0% |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	short := &Table{RowHeader: "r", Columns: []string{"a", "b"}}
	short.AddRow("x", 1)
	sb.Reset()
	if err := short.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| - |") {
		t.Error("missing cell not dashed")
	}
}

func TestAverageTables(t *testing.T) {
	a, b := sample(), sample()
	for i := range b.Rows {
		for j := range b.Rows[i].Cells {
			b.Rows[i].Cells[j] += 2
		}
	}
	avg, err := AverageTables([]*Table{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := avg.Cell("go", "a"); v != 2 {
		t.Errorf("averaged cell = %v, want 2", v)
	}
	if len(avg.Notes) == 0 {
		t.Error("multi-table average should note the seed count")
	}
	// Shape mismatches are rejected.
	c := sample()
	c.Rows[0].Label = "other"
	if _, err := AverageTables([]*Table{a, c}); err == nil {
		t.Error("mismatched tables averaged")
	}
	if _, err := AverageTables(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRenderChart(t *testing.T) {
	tab := sample()
	tab.AddRow("neg", -4, 0)
	var sb strings.Builder
	if err := tab.RenderChart(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "go", "####", "-4.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The largest cell uses the full bar; nothing exceeds it.
	if strings.Contains(out, strings.Repeat("#", 41)) {
		t.Error("bar exceeds the chart width")
	}
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Error("largest cell should use the full bar width")
	}
	// All-zero tables still render.
	zero := &Table{RowHeader: "r", Columns: []string{"a"}}
	zero.AddRow("x", 0)
	sb.Reset()
	if err := zero.RenderChart(&sb); err != nil {
		t.Fatal(err)
	}
}
