package stats

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:     "Demo",
		RowHeader: "benchmark",
		Columns:   []string{"a", "b"},
		Unit:      "%",
	}
	t.AddRow("go", 1, 2)
	t.AddRow("gcc", 3, 4)
	return t
}

func TestAppendAverage(t *testing.T) {
	tab := sample()
	tab.AppendAverage()
	r, ok := tab.Row("average")
	if !ok {
		t.Fatal("no average row")
	}
	if r.Cells[0] != 2 || r.Cells[1] != 3 {
		t.Errorf("average = %v", r.Cells)
	}
	// Average of an empty table is a no-op.
	empty := &Table{Columns: []string{"a"}}
	empty.AppendAverage()
	if len(empty.Rows) != 0 {
		t.Error("average row added to empty table")
	}
}

func TestAppendAverageRaggedRows(t *testing.T) {
	tab := &Table{RowHeader: "r", Columns: []string{"a", "b", "c"}}
	tab.AddRow("x", 2, 4)
	tab.AddRow("y", 4) // contributes to column a only
	tab.AppendAverage()
	r, ok := tab.Row("average")
	if !ok {
		t.Fatal("no average row")
	}
	// Column a: (2+4)/2; column b: 4/1, not 4/2; column c: no contributions,
	// so the average row stops before it.
	if len(r.Cells) != 2 || r.Cells[0] != 3 || r.Cells[1] != 4 {
		t.Errorf("ragged average = %v, want [3 4]", r.Cells)
	}
}

func TestAppendAverageIdempotent(t *testing.T) {
	tab := sample()
	tab.AppendAverage()
	tab.AppendAverage() // must not fold the first average row into the mean
	var n int
	for _, r := range tab.Rows {
		if r.Label == "average" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d average rows after two calls, want 1", n)
	}
	r, _ := tab.Row("average")
	if r.Cells[0] != 2 || r.Cells[1] != 3 {
		t.Errorf("second AppendAverage skewed the mean: %v, want [2 3]", r.Cells)
	}
	// A table holding only an average row gains nothing.
	only := &Table{Columns: []string{"a"}}
	only.AddRow("average", 7)
	only.AppendAverage()
	if len(only.Rows) != 1 || only.Rows[0].Cells[0] != 7 {
		t.Errorf("average-only table changed: %+v", only.Rows)
	}
}

func TestCellLookup(t *testing.T) {
	tab := sample()
	if v, ok := tab.Cell("gcc", "b"); !ok || v != 4 {
		t.Errorf("Cell = %v, %v", v, ok)
	}
	if _, ok := tab.Cell("gcc", "z"); ok {
		t.Error("missing column found")
	}
	if _, ok := tab.Cell("perl", "a"); ok {
		t.Error("missing row found")
	}
}

func TestRenderText(t *testing.T) {
	tab := sample()
	tab.AddNote("hello %d", 7)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "benchmark", "go", "1.0%", "4.0%", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMissingCells(t *testing.T) {
	tab := &Table{RowHeader: "r", Columns: []string{"a", "b"}}
	tab.AddRow("short", 1) // only one cell
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-") {
		t.Error("missing cell not rendered as dash")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := sample()
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "benchmark,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "go,1,2" || lines[2] != "gcc,3,4" {
		t.Errorf("rows = %q", lines[1:])
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{RowHeader: "r", Columns: []string{`weird "col", yes`}}
	tab.AddRow("a,b", 1)
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"weird ""col"", yes"`) || !strings.Contains(out, `"a,b"`) {
		t.Errorf("escaping wrong: %q", out)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty must be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := sample()
	tab.AddNote("a note")
	var sb strings.Builder
	if err := tab.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**Demo**", "| benchmark | a | b |", "|---|---|---|", "| go | 1.0% | 2.0% |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	short := &Table{RowHeader: "r", Columns: []string{"a", "b"}}
	short.AddRow("x", 1)
	sb.Reset()
	if err := short.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| - |") {
		t.Error("missing cell not dashed")
	}
}

func TestAverageTables(t *testing.T) {
	a, b := sample(), sample()
	for i := range b.Rows {
		for j := range b.Rows[i].Cells {
			b.Rows[i].Cells[j] += 2
		}
	}
	avg, err := AverageTables([]*Table{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := avg.Cell("go", "a"); v != 2 {
		t.Errorf("averaged cell = %v, want 2", v)
	}
	if len(avg.Notes) == 0 {
		t.Error("multi-table average should note the seed count")
	}
	if _, err := AverageTables(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAverageTablesRejectsShapeMismatch(t *testing.T) {
	damage := []struct {
		name   string
		mutate func(*Table)
		want   string
	}{
		{"row label", func(c *Table) { c.Rows[0].Label = "other" }, "labels differ"},
		{"row count", func(c *Table) { c.Rows = c.Rows[:1] }, "row counts differ"},
		{"column count", func(c *Table) { c.Columns = append(c.Columns, "z") }, "column counts differ"},
		{"column header", func(c *Table) { c.Columns[1] = "z" }, "column 1 differs"},
		{"cell count", func(c *Table) { c.Rows[1].Cells = c.Rows[1].Cells[:1] }, "cell counts differ"},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			a, c := sample(), sample()
			d.mutate(c)
			_, err := AverageTables([]*Table{a, c})
			if err == nil {
				t.Fatalf("%s mismatch silently averaged", d.name)
			}
			if !strings.Contains(err.Error(), d.want) {
				t.Errorf("error %q does not describe the mismatch (want %q)", err, d.want)
			}
		})
	}
}

func TestRenderChart(t *testing.T) {
	tab := sample()
	tab.AddRow("neg", -4, 0)
	var sb strings.Builder
	if err := tab.RenderChart(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "go", "####", "-4.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The largest cell uses the full bar; nothing exceeds it.
	if strings.Contains(out, strings.Repeat("#", 41)) {
		t.Error("bar exceeds the chart width")
	}
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Error("largest cell should use the full bar width")
	}
	// All-zero tables still render.
	zero := &Table{RowHeader: "r", Columns: []string{"a"}}
	zero.AddRow("x", 0)
	sb.Reset()
	if err := zero.RenderChart(&sb); err != nil {
		t.Fatal(err)
	}
}
