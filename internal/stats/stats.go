// Package stats provides the result-table type shared by the experiment
// runners: labelled rows of numeric cells with fixed-width text and CSV
// rendering, plus small aggregation helpers.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a labelled grid of numeric results, one row per benchmark and
// one column per configuration.
type Table struct {
	// Title names the experiment ("Figure 5.1 — ...").
	Title string
	// RowHeader labels the row-label column (usually "benchmark").
	RowHeader string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows in presentation order.
	Rows []Row
	// Unit is appended to rendered cells ("%", "", ...).
	Unit string
	// Notes are free-form annotations rendered under the table.
	Notes []string
}

// Row is one labelled row of cells.
type Row struct {
	Label string
	Cells []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, cells ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// AddNote appends a rendering note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// averageLabel names the summary row produced by AppendAverage.
const averageLabel = "average"

// AppendAverage adds an arithmetic-mean row labelled "average" over the
// current data rows. Each column is averaged over the rows that actually
// contributed a cell to it, so ragged rows do not drag a column's mean
// toward zero; columns with no contributions are omitted (rendered "-").
// Any existing "average" row is excluded from the mean and replaced, making
// repeated calls idempotent.
func (t *Table) AppendAverage() {
	if len(t.Columns) == 0 {
		return
	}
	sum := make([]float64, len(t.Columns))
	count := make([]int, len(t.Columns))
	rows := t.Rows[:0:0]
	for _, r := range t.Rows {
		if r.Label == averageLabel {
			continue // a previous summary row is not data
		}
		rows = append(rows, r)
		for i, c := range r.Cells {
			if i < len(sum) {
				sum[i] += c
				count[i]++
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	width := 0
	for i, n := range count {
		if n > 0 {
			width = i + 1
		}
	}
	avg := make([]float64, width)
	for i := range avg {
		if count[i] > 0 {
			avg[i] = sum[i] / float64(count[i])
		}
	}
	t.Rows = append(rows, Row{Label: averageLabel, Cells: avg})
}

// Row returns the row with the given label and whether it exists.
func (t *Table) Row(label string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// Cell returns the value at (rowLabel, column) and whether it exists.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	r, ok := t.Row(rowLabel)
	if !ok {
		return 0, false
	}
	for i, c := range t.Columns {
		if c == column && i < len(r.Cells) {
			return r.Cells[i], true
		}
	}
	return 0, false
}

// Render writes the table as fixed-width text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	labelW := len(t.RowHeader)
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		if colW[i] < 8 {
			colW[i] = 8
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s", labelW, t.RowHeader)
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "  %*s", colW[i], c)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", len(sb.String())-1))
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", labelW, r.Label)
		for i := range t.Columns {
			cell := "-"
			if i < len(r.Cells) {
				cell = fmt.Sprintf("%.1f%s", r.Cells[i], t.Unit)
			}
			fmt.Fprintf(&sb, "  %*s", colW[i], cell)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as CSV (label, then one column per header).
func (t *Table) RenderCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(csvEscape(t.RowHeader))
	for _, c := range t.Columns {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(c))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString(csvEscape(r.Label))
		for i := range t.Columns {
			sb.WriteByte(',')
			if i < len(r.Cells) {
				fmt.Fprintf(&sb, "%g", r.Cells[i])
			}
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RenderMarkdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + t.RowHeader)
	for _, c := range t.Columns {
		sb.WriteString(" | " + c)
	}
	sb.WriteString(" |\n|")
	for i := 0; i <= len(t.Columns); i++ {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString("| " + r.Label)
		for i := range t.Columns {
			if i < len(r.Cells) {
				fmt.Fprintf(&sb, " | %.1f%s", r.Cells[i], t.Unit)
			} else {
				sb.WriteString(" | -")
			}
		}
		sb.WriteString(" |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// AverageTables element-wise averages tables with identical structure
// (same columns and row labels), for multi-seed experiment runs. Tables
// whose shapes differ — column count or headers, row count, row labels, or
// per-row cell counts — are rejected with an error naming the first
// mismatch, so an inconsistent per-seed run fails loudly instead of
// silently aggregating unrelated cells.
func AverageTables(tables []*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("stats: no tables to average")
	}
	first := tables[0]
	for ti, t := range tables[1:] {
		if err := sameShape(first, t); err != nil {
			return nil, fmt.Errorf("stats: cannot average: table %d vs table 0: %w", ti+1, err)
		}
	}
	out := &Table{
		Title:     first.Title,
		RowHeader: first.RowHeader,
		Columns:   append([]string(nil), first.Columns...),
		Unit:      first.Unit,
	}
	for ri, r := range first.Rows {
		cells := make([]float64, len(r.Cells))
		for _, t := range tables {
			for ci, c := range t.Rows[ri].Cells {
				cells[ci] += c
			}
		}
		for ci := range cells {
			cells[ci] /= float64(len(tables))
		}
		out.AddRow(r.Label, cells...)
	}
	if len(tables) > 1 {
		out.AddNote("averaged over %d seeds", len(tables))
	}
	return out, nil
}

// sameShape reports the first structural difference between two tables, or
// nil if they are element-wise compatible.
func sameShape(a, b *Table) error {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Errorf("column counts differ (%d vs %d)", len(b.Columns), len(a.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Errorf("column %d differs (%q vs %q)", i, b.Columns[i], a.Columns[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts differ (%d vs %d)", len(b.Rows), len(a.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].Label != b.Rows[i].Label {
			return fmt.Errorf("row %d labels differ (%q vs %q)", i, b.Rows[i].Label, a.Rows[i].Label)
		}
		if len(a.Rows[i].Cells) != len(b.Rows[i].Cells) {
			return fmt.Errorf("row %q cell counts differ (%d vs %d)",
				a.Rows[i].Label, len(b.Rows[i].Cells), len(a.Rows[i].Cells))
		}
	}
	return nil
}

// RenderChart writes the table as a grouped horizontal ASCII bar chart, the
// closest terminal analogue of the paper's figures. Bars are scaled to the
// largest absolute cell value; negative cells render to the same scale with
// a minus marker.
func (t *Table) RenderChart(w io.Writer) error {
	const barWidth = 40
	var max float64
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if a := abs(c); a > max {
				max = a
			}
		}
	}
	if max == 0 {
		max = 1
	}
	colW := 0
	for _, c := range t.Columns {
		if len(c) > colW {
			colW = len(c)
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%s\n", r.Label)
		for i, col := range t.Columns {
			if i >= len(r.Cells) {
				continue
			}
			v := r.Cells[i]
			n := int(abs(v)/max*barWidth + 0.5)
			if n > barWidth {
				n = barWidth
			}
			mark := strings.Repeat("#", n)
			sign := ""
			if v < 0 {
				sign = "-"
			}
			fmt.Fprintf(&sb, "  %-*s |%-*s| %s%.1f%s\n",
				colW, col, barWidth, mark, sign, abs(v), t.Unit)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
