package ideal

import "sync"

// This file is the ideal machine's memory discipline (DESIGN.md §12,
// "Memory discipline"): every per-run allocation the simulation loop used
// to make — one windowEntry and one producerInfo per dynamic instruction,
// plus the dependence-list growth behind them — comes out of a reusable
// scratch instead. A scratch is acquired per Run from a process-wide
// sync.Pool, which caches per-P (i.e. effectively per plan worker), so a
// worker that simulates cell after cell re-walks the same warmed arenas
// instead of paying the allocator and the GC for every instruction. That
// allocator fight is exactly what made the plan engine's parallel runs
// *slower* than serial before this existed (BENCH_pr5.json's 0.92×
// workers_speedup).
//
// Reset invariants (guarded by TestPooledScratchReuseIsDeterministic and
// the alloc-budget tests):
//
//   - a scratch is fully reset at acquisition: arenas rewind to their
//     first slot, the window is truncated, the memory-producer map is
//     cleared — no value computed by one cell can reach the next;
//   - entry fields are re-initialised at every alloc, keeping only slice
//     *capacity* (the dependence lists are truncated to length zero);
//   - producerInfo slots are zeroed at every alloc;
//   - arena chunks are never reallocated, so a *producerInfo handed out
//     earlier in the run stays valid while the run retains it (entries,
//     regProd, memProd all hold such pointers);
//   - nothing in a scratch is shared between two concurrent runs: Get
//     hands each Run exclusive ownership until the matching Put.
type scratch struct {
	producers producerArena
	entries   entryArena
	window    []*windowEntry
	memProd   map[uint64]*producerInfo
}

// Chunk sizes: producers live for the whole run (one per instruction), so
// their chunks are large; entries recycle through the free list as soon as
// they execute, so the entry arena's high-water mark tracks the window
// size and a small chunk suffices.
const (
	producerChunk = 8192
	entryChunk    = 256
)

// producerArena bump-allocates producerInfo values in fixed-size chunks.
// Chunks are never reallocated or moved, so pointers into them remain
// valid until the arena is reset; reset rewinds the bump cursor and the
// chunks are overwritten (and re-zeroed at alloc) by the next run.
type producerArena struct {
	chunks [][]producerInfo
	ci     int // chunk the cursor is in
	used   int // slots used in chunks[ci]
}

func (a *producerArena) alloc() *producerInfo {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]producerInfo, producerChunk))
	}
	p := &a.chunks[a.ci][a.used]
	*p = producerInfo{}
	a.used++
	if a.used == producerChunk {
		a.ci++
		a.used = 0
	}
	return p
}

func (a *producerArena) reset() { a.ci, a.used = 0, 0 }

// entryArena is a producer-style chunk allocator with a free list: an
// entry goes back on the list the moment it leaves the window (it
// executed; nothing references it any more — consumers reference its
// producerInfo, which lives in the producer arena), and the next fetch
// reuses it, dependence-list capacity included.
type entryArena struct {
	chunks [][]windowEntry
	ci     int
	used   int
	free   []*windowEntry
}

func (a *entryArena) alloc() *windowEntry {
	var w *windowEntry
	if n := len(a.free); n > 0 {
		w = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		if a.ci == len(a.chunks) {
			a.chunks = append(a.chunks, make([]windowEntry, entryChunk))
		}
		w = &a.chunks[a.ci][a.used]
		a.used++
		if a.used == entryChunk {
			a.ci++
			a.used = 0
		}
	}
	w.seq, w.fetchedAt, w.earliest, w.availAt = 0, 0, 0, 0
	w.prod = nil
	w.waitOn = w.waitOn[:0]
	w.mispredOn = w.mispredOn[:0]
	w.specOn = w.specOn[:0]
	return w
}

func (a *entryArena) release(w *windowEntry) { a.free = append(a.free, w) }

func (a *entryArena) reset() {
	a.ci, a.used = 0, 0
	a.free = a.free[:0]
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{memProd: make(map[uint64]*producerInfo)}
}}

// getScratch returns a fully reset scratch with exclusive ownership.
func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	s.producers.reset()
	s.entries.reset()
	s.window = s.window[:0]
	clear(s.memProd)
	return s
}

// putScratch returns s to the pool. The caller must not touch s afterwards.
func putScratch(s *scratch) { scratchPool.Put(s) }
