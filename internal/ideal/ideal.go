// Package ideal implements the paper's Section 3 machine model: an ideal
// execution environment limited only by true-data dependencies, the
// instruction window size and an artificial fetch/issue width. Control
// dependencies, name dependencies and structural conflicts do not exist;
// every instruction has unit latency; the machine has a four-stage pipeline
// (Fetch, Decode/Issue, Execute, Commit) so the earliest execute cycle of
// an instruction is its fetch cycle plus two (Table 3.2).
//
// Value prediction follows the paper's protocol: the predictor is looked up
// at fetch and updated speculatively; a consumer whose producer's output
// was correctly predicted (and endorsed by the classifier) may execute
// before that producer does. A correct prediction is only *useful* when the
// consumer would otherwise have waited — the paper's central measurement.
package ideal

import (
	"fmt"

	"valuepred/internal/obs"
	"valuepred/internal/predictor"
	"valuepred/internal/trace"
)

// Config parameterises the ideal machine.
type Config struct {
	// FetchWidth is the fetch/issue limit in instructions per cycle
	// (the paper sweeps 4, 8, 16, 32, 40).
	FetchWidth int
	// WindowSize is the instruction window (paper: 40). An instruction
	// occupies a window slot from fetch until it executes.
	WindowSize int
	// Predictor enables value prediction when non-nil.
	Predictor predictor.Predictor
	// IncludeMemoryDeps makes a load depend on the most recent store to
	// the same address (the value can still be predicted away).
	IncludeMemoryDeps bool
	// MispredictPenalty is the extra delay, beyond normal producer-to-
	// consumer forwarding, suffered by a consumer that speculated on a
	// wrong value (Section 3: 0, instant reschedule).
	MispredictPenalty int
	// OracleVP models the perfect value predictor of the Table 3.2
	// walk-through: every value-producing instruction is predicted
	// correctly. It overrides Predictor.
	OracleVP bool
	// Observer, when non-nil, is called as each instruction executes with
	// its sequence number, fetch cycle and execute cycle (commit follows
	// one cycle after execute).
	Observer func(seq, fetchCycle, execCycle uint64)
	// Obs, when non-nil, receives per-cycle stage occupancy and
	// value-prediction outcomes. Strictly write-only: results are
	// bit-identical with Obs set or nil, and a nil Obs costs the loop only
	// a nil-check.
	Obs *obs.Sink
}

// DefaultConfig returns the paper's Section 3 configuration at the given
// fetch width, without a predictor.
func DefaultConfig(width int) Config {
	return Config{FetchWidth: width, WindowSize: 40, IncludeMemoryDeps: true}
}

// Result reports the simulation outcome.
type Result struct {
	// Insts and Cycles give the committed instruction count and the total
	// cycles; IPC is their ratio.
	Insts  uint64
	Cycles uint64
	// Attempted counts confident predictions made at fetch; Correct those
	// matching the committed value. Used counts correct predictions that
	// decoupled at least one consumer from an unexecuted producer; Useless
	// is Correct - Used (correct but the consumers' operands were ready
	// anyway — the phenomenon of Section 3). Wrong = Attempted - Correct.
	Attempted uint64
	Correct   uint64
	Used      uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Useless returns the number of correct-but-unneeded predictions.
func (r Result) Useless() uint64 { return r.Correct - r.Used }

// Wrong returns the number of consumed-or-not mispredictions.
func (r Result) Wrong() uint64 { return r.Attempted - r.Correct }

// Speedup returns the relative IPC gain of r over base in percent.
func Speedup(base, r Result) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return (r.IPC()/base.IPC() - 1) * 100
}

// producerInfo is the bookkeeping for one in-flight (or executed) dynamic
// instruction viewed as a producer.
type producerInfo struct {
	execCycle  uint64
	done       bool
	predicted  bool // confident prediction existed at fetch
	correct    bool // ... and matched the actual value
	usefulSeen bool // a consumer was decoupled by it (counted once)
}

// windowEntry is one instruction in flight.
type windowEntry struct {
	seq       uint64
	fetchedAt uint64
	earliest  uint64 // fetch cycle + 2 (pipeline depth)
	availAt   uint64 // max availability over resolved operand constraints
	prod      *producerInfo
	waitOn    []*producerInfo // unpredicted in-flight producers
	mispredOn []*producerInfo // consumed mispredictions, still in flight
	specOn    []*producerInfo // correct predictions being speculated on
}

// ready reports whether the entry can execute at cycle.
func (w *windowEntry) ready(cycle uint64) bool {
	return len(w.waitOn) == 0 && len(w.mispredOn) == 0 &&
		w.earliest <= cycle && w.availAt <= cycle
}

// addDep records one operand dependence on producer p, classifying it the
// way the paper's protocol does: an already executed producer just bounds
// availAt; a correctly predicted in-flight producer is speculated past; a
// consumed misprediction delays until the real value arrives; everything
// else is a plain wait. A method rather than a closure so the hot fetch
// loop allocates nothing per instruction.
func (w *windowEntry) addDep(p *producerInfo) {
	switch {
	case p == nil:
		return
	case p.done:
		if at := p.execCycle + 1; at > w.availAt {
			w.availAt = at
		}
	case p.predicted && p.correct:
		w.specOn = append(w.specOn, p)
	case p.predicted: // consumed misprediction
		w.mispredOn = append(w.mispredOn, p)
	default:
		w.waitOn = append(w.waitOn, p)
	}
}

// resolve folds newly executed producers into availAt.
func (w *windowEntry) resolve(penalty uint64) {
	n := 0
	for _, p := range w.waitOn {
		if p.done {
			if at := p.execCycle + 1; at > w.availAt {
				w.availAt = at
			}
		} else {
			w.waitOn[n] = p
			n++
		}
	}
	w.waitOn = w.waitOn[:n]
	n = 0
	for _, p := range w.mispredOn {
		if p.done {
			if at := p.execCycle + 1 + penalty; at > w.availAt {
				w.availAt = at
			}
		} else {
			w.mispredOn[n] = p
			n++
		}
	}
	w.mispredOn = w.mispredOn[:n]
}

// Run simulates the trace under cfg and returns the result.
func Run(src trace.Source, cfg Config) (Result, error) {
	if cfg.FetchWidth <= 0 || cfg.WindowSize <= 0 {
		return Result{}, fmt.Errorf("ideal: invalid config %+v", cfg)
	}
	var res Result
	// All per-run state comes out of a pooled scratch (scratch.go): the
	// window entries, the producer bookkeeping and the memory-producer map
	// are reused across runs instead of reallocated per instruction.
	s := getScratch()
	defer putScratch(s)
	var regProd [32]*producerInfo
	memProd := s.memProd
	window := s.window[:0]
	penalty := uint64(cfg.MispredictPenalty)

	o := cfg.Obs // nil when instrumentation is disabled

	var cycle uint64 = 1
	eof := false
	for {
		// Execute phase: every ready entry executes this cycle (unlimited
		// functional units). Entries are in fetch order, so a producer
		// executing this cycle is marked done before later consumers in
		// the same sweep — a same-cycle consumer counts as decoupled.
		executed := 0
		n := 0
		for _, w := range window {
			w.resolve(penalty)
			if w.ready(cycle) {
				w.prod.execCycle = cycle
				w.prod.done = true
				res.Insts++
				executed++
				if cfg.Observer != nil {
					cfg.Observer(w.seq, w.fetchedAt, cycle)
				}
				for _, p := range w.specOn {
					// Useful iff the producer had not finished strictly
					// before this consumer executed.
					if (!p.done || p.execCycle >= cycle) && !p.usefulSeen {
						p.usefulSeen = true
						res.Used++
						if o != nil {
							o.VPUseful()
						}
					}
				}
				// The entry leaves the window at execute; only its
				// producerInfo (arena-owned) remains referenced.
				s.entries.release(w)
			} else {
				window[n] = w
				n++
			}
		}
		window = window[:n]

		// Fetch phase: up to FetchWidth instructions while the window has
		// room; they may execute two cycles later.
		fetched := 0
		for f := 0; f < cfg.FetchWidth && len(window) < cfg.WindowSize && !eof; f++ {
			rec, ok := src.Next()
			if !ok {
				eof = true
				break
			}
			w := s.entries.alloc()
			w.seq, w.fetchedAt, w.earliest = rec.Seq, cycle, cycle+2
			w.prod = s.producers.alloc()

			fetched++

			if cfg.OracleVP && rec.WritesValue() {
				w.prod.predicted = true
				w.prod.correct = true
				res.Attempted++
				res.Correct++
				if o != nil {
					o.VPAttempt(true)
				}
			} else if cfg.Predictor != nil && rec.WritesValue() {
				pr := cfg.Predictor.Lookup(rec.PC)
				if pr.Confident {
					w.prod.predicted = true
					w.prod.correct = pr.Value == rec.Val
					res.Attempted++
					if w.prod.correct {
						res.Correct++
					}
					if o != nil {
						o.VPAttempt(w.prod.correct)
					}
				}
				cfg.Predictor.Update(rec.PC, rec.Val)
			}

			if rec.Op.ReadsRs1() && rec.Rs1 != 0 {
				w.addDep(regProd[rec.Rs1])
			}
			if rec.Op.ReadsRs2() && rec.Rs2 != 0 {
				w.addDep(regProd[rec.Rs2])
			}
			if cfg.IncludeMemoryDeps && rec.Op.IsLoad() {
				w.addDep(memProd[rec.Addr])
			}

			if rec.WritesValue() {
				regProd[rec.Rd] = w.prod
			}
			if cfg.IncludeMemoryDeps && rec.Op.IsStore() {
				memProd[rec.Addr] = w.prod
			}
			window = append(window, w)
		}

		if o != nil {
			// The ideal machine commits one cycle after execute; the commit
			// count is reported as the execute count for display purposes.
			o.Cycle(cycle, fetched, executed, executed, len(window))
		}

		if eof && len(window) == 0 {
			break
		}
		cycle++
	}
	res.Cycles = cycle
	// Hand the (possibly grown) window backing store back to the scratch
	// so the next run reuses its capacity.
	s.window = window[:0]
	if o != nil {
		o.RunDone(res.Insts, res.Cycles, res.Correct, res.Used)
	}
	return res, nil
}
