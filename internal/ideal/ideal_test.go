package ideal

import (
	"testing"

	"valuepred/internal/isa"
	"valuepred/internal/predictor"
	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

// fig32 builds the Figure 3.2 example: eight instructions with arcs
// 1→2(1), 2→4(2), 1→5(4), 3→7(4), 5→6(1), 7→8(1).
func fig32() []trace.Rec {
	mk := func(seq uint64, rd, rs1 isa.Reg) trace.Rec {
		op := isa.ADDI
		if rs1 == 0 {
			op = isa.LI
		}
		return trace.Rec{Seq: seq, PC: isa.PCOf(int(seq)), Op: op, Rd: rd, Rs1: rs1, Val: seq + 1}
	}
	return []trace.Rec{
		mk(0, isa.T0, 0),
		mk(1, isa.T1, isa.T0),
		mk(2, isa.T2, 0),
		mk(3, isa.T3, isa.T1),
		mk(4, isa.T4, isa.T0),
		mk(5, isa.T5, isa.T4),
		mk(6, isa.T6, isa.T2),
		mk(7, isa.S0, isa.T6),
	}
}

// TestTable32Example verifies the paper's pipeline walk-through: on a
// 4-wide machine with a perfect value predictor, instructions 1-4 execute
// in cycle 3 and instructions 5-8 in cycle 4.
func TestTable32Example(t *testing.T) {
	exec := make(map[uint64]uint64)
	cfg := DefaultConfig(4)
	cfg.OracleVP = true
	cfg.Observer = func(seq, fetch, ex uint64) { exec[seq] = ex }
	res, err := Run(trace.NewSliceSource(fig32()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 8 {
		t.Fatalf("insts = %d", res.Insts)
	}
	for seq := uint64(0); seq < 4; seq++ {
		if exec[seq] != 3 {
			t.Errorf("inst %d executed at cycle %d, want 3", seq+1, exec[seq])
		}
	}
	for seq := uint64(4); seq < 8; seq++ {
		if exec[seq] != 4 {
			t.Errorf("inst %d executed at cycle %d, want 4", seq+1, exec[seq])
		}
	}
}

// TestTable32WithoutVP: without value prediction, instructions 6 and 8
// must wait one extra cycle for 5 and 7.
func TestTable32WithoutVP(t *testing.T) {
	exec := make(map[uint64]uint64)
	cfg := DefaultConfig(4)
	cfg.Observer = func(seq, fetch, ex uint64) { exec[seq] = ex }
	if _, err := Run(trace.NewSliceSource(fig32()), cfg); err != nil {
		t.Fatal(err)
	}
	// 2 depends on 1 (same fetch group): executes at 4; 4 depends on 2: 5.
	want := map[uint64]uint64{0: 3, 1: 4, 2: 3, 3: 5, 4: 4, 5: 5, 6: 4, 7: 5}
	for seq, w := range want {
		if exec[seq] != w {
			t.Errorf("inst %d executed at %d, want %d", seq+1, exec[seq], w)
		}
	}
}

// TestUselessPredictionAccounting: with fetch width 1, a DID-4 dependence
// is resolved by fetch delay, so a correct prediction must be counted
// useless; with width 8 the same prediction becomes useful.
func TestUselessPredictionAccounting(t *testing.T) {
	// Producer at seq 0, consumer at seq 4 (DID 4); filler in between.
	var recs []trace.Rec
	recs = append(recs, trace.Rec{Seq: 0, PC: 0x1000, Op: isa.LI, Rd: isa.T0, Val: 7})
	for i := 1; i <= 3; i++ {
		recs = append(recs, trace.Rec{Seq: uint64(i), PC: isa.PCOf(i), Op: isa.LI, Rd: isa.T1, Val: 1})
	}
	recs = append(recs, trace.Rec{Seq: 4, PC: 0x2000, Op: isa.ADDI, Rd: isa.T2, Rs1: isa.T0, Val: 8})

	run := func(width int) Result {
		cfg := DefaultConfig(width)
		cfg.OracleVP = true
		res, err := Run(trace.NewSliceSource(recs), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	narrow := run(1)
	if narrow.Used != 0 {
		t.Errorf("width 1: %d used predictions, want 0 (operand ready anyway)", narrow.Used)
	}
	if narrow.Useless() != narrow.Correct {
		t.Errorf("width 1: useless = %d, correct = %d", narrow.Useless(), narrow.Correct)
	}
	wide := run(8)
	if wide.Used == 0 {
		t.Error("width 8: prediction of t0 should have been useful")
	}
}

func TestWindowLimitsFetch(t *testing.T) {
	// A long serial chain: with window W the machine can hold at most W
	// unexecuted instructions, and the chain executes one per cycle, so
	// IPC ~= 1 regardless of fetch width.
	recs := make([]trace.Rec, 2000)
	for i := range recs {
		recs[i] = trace.Rec{Seq: uint64(i), PC: isa.PCOf(i % 8), Op: isa.ADDI,
			Rd: isa.T0, Rs1: isa.T0, Val: uint64(i)}
	}
	cfg := DefaultConfig(40)
	res, err := Run(trace.NewSliceSource(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ipc := res.IPC(); ipc > 1.1 {
		t.Errorf("serial chain IPC = %.2f, want ~1", ipc)
	}
	// With value prediction the chain is fully parallel: IPC ~= width
	// (window permitting).
	cfg.Predictor = predictor.NewClassifiedStride()
	vp, err := Run(trace.NewSliceSource(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vp.IPC() < 10 {
		t.Errorf("predicted chain IPC = %.2f, want >> 1", vp.IPC())
	}
}

func TestSpeedupMonotoneInWidth(t *testing.T) {
	recs := workload.MustTrace("vortex", 1, 40_000)
	var prev float64 = -1
	for _, w := range []int{4, 8, 16, 32} {
		base, err := Run(trace.NewSliceSource(recs), DefaultConfig(w))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(w)
		cfg.Predictor = predictor.NewClassifiedStride()
		vp, err := Run(trace.NewSliceSource(recs), cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := Speedup(base, vp)
		if s < prev-2 { // allow small noise
			t.Errorf("speedup at width %d = %.1f%% dropped below %.1f%%", w, s, prev)
		}
		if s > prev {
			prev = s
		}
	}
	if prev < 20 {
		t.Errorf("vortex speedup at width 32 = %.1f%%, expected substantial", prev)
	}
}

func TestMemoryDependencyEnforced(t *testing.T) {
	// store (value from a slow chain) -> load -> consumer; without VP the
	// load waits for the store.
	var recs []trace.Rec
	// Build a 10-deep chain to delay the store value.
	for i := 0; i < 10; i++ {
		recs = append(recs, trace.Rec{Seq: uint64(i), PC: isa.PCOf(i), Op: isa.ADDI,
			Rd: isa.T0, Rs1: isa.T0, Val: uint64(i)})
	}
	recs = append(recs,
		trace.Rec{Seq: 10, PC: isa.PCOf(10), Op: isa.SD, Rs1: isa.SP, Rs2: isa.T0, Addr: 8, Val: 9},
		trace.Rec{Seq: 11, PC: isa.PCOf(11), Op: isa.LD, Rd: isa.T1, Rs1: isa.SP, Addr: 8, Val: 9},
	)
	cfg := DefaultConfig(40)
	withMem, err := Run(trace.NewSliceSource(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.IncludeMemoryDeps = false
	noMem, err := Run(trace.NewSliceSource(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withMem.Cycles <= noMem.Cycles {
		t.Errorf("memory dependence had no timing effect: %d vs %d cycles",
			withMem.Cycles, noMem.Cycles)
	}
}

func TestMispredictPenalty(t *testing.T) {
	// A consumer of a hard-to-predict chain: penalties should increase
	// cycles when the classifier consumes wrong values. Use a predictor
	// without classification so mispredictions are consumed.
	recs := make([]trace.Rec, 0, 400)
	noise := uint64(12345)
	for i := 0; i < 200; i++ {
		noise = noise*6364136223846793005 + 1442695040888963407
		recs = append(recs,
			trace.Rec{Seq: uint64(2 * i), PC: 0x1000, Op: isa.XOR, Rd: isa.T0, Rs1: isa.T0, Val: noise},
			trace.Rec{Seq: uint64(2*i + 1), PC: 0x1004, Op: isa.ADDI, Rd: isa.T1, Rs1: isa.T0, Val: noise + 1},
		)
	}
	run := func(penalty int) uint64 {
		cfg := DefaultConfig(8)
		cfg.Predictor = predictor.NewStride() // always confident, mostly wrong
		cfg.MispredictPenalty = penalty
		res, err := Run(trace.NewSliceSource(recs), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if run(3) <= run(0) {
		t.Error("misprediction penalty had no effect")
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Run(trace.NewSliceSource(nil), Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Run(trace.NewSliceSource(nil), Config{FetchWidth: 4}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Run(trace.NewSliceSource(nil), DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 0 {
		t.Errorf("insts = %d", res.Insts)
	}
	if res.IPC() != 0 {
		t.Error("IPC of empty run must be 0")
	}
}
