package asm

import (
	"strings"
	"testing"

	"valuepred/internal/isa"
)

func TestBranchAndJumpResolution(t *testing.T) {
	b := NewBuilder()
	b.Label("start")             // inst 0
	b.Addi(isa.T0, isa.T0, 1)    // 0
	b.Beq(isa.T0, isa.T1, "fwd") // 1
	b.J("start")                 // 2
	b.Label("fwd")
	b.Halt() // 3
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Insts[1].Imm; got != 2*isa.InstBytes {
		t.Errorf("forward branch offset = %d, want %d", got, 2*isa.InstBytes)
	}
	if got := p.Insts[2].Imm; got != -2*isa.InstBytes {
		t.Errorf("backward jump offset = %d, want %d", got, -2*isa.InstBytes)
	}
	if p.Symbols["fwd"] != isa.PCOf(3) {
		t.Errorf("fwd symbol = %#x", p.Symbols["fwd"])
	}
}

func TestDataLayoutAndLa(t *testing.T) {
	b := NewBuilder()
	b.La(isa.T0, "table")
	b.La(isa.T1, "blob")
	b.La(isa.T2, "zeroes")
	b.Halt()
	b.Quads("table", 1, 2, 3)
	b.Bytes("blob", []byte("hello"))
	b.Space("zeroes", 100)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	tableAddr := p.Symbols["table"]
	if tableAddr != isa.DataBase {
		t.Errorf("first symbol at %#x, want DataBase", tableAddr)
	}
	// 3 quads = 24 bytes, 8-aligned.
	if got := p.Symbols["blob"]; got != tableAddr+24 {
		t.Errorf("blob at %#x, want %#x", got, tableAddr+24)
	}
	// "hello" is 5 bytes, padded to 8.
	if got := p.Symbols["zeroes"]; got != p.Symbols["blob"]+8 {
		t.Errorf("zeroes at %#x", got)
	}
	if p.Insts[0].Imm != int64(tableAddr) {
		t.Errorf("la imm = %#x", p.Insts[0].Imm)
	}
	// Zero-filled symbols produce no segment; initialised ones do.
	if len(p.Segments) != 2 {
		t.Errorf("expected 2 segments, have %d", len(p.Segments))
	}
}

func TestQuadAddrs(t *testing.T) {
	b := NewBuilder()
	b.Label("h0")
	b.Nop()
	b.Label("h1")
	b.Halt()
	b.QuadAddrs("dispatch", "h1", "h0")
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	var seg *isa.Segment
	for i := range p.Segments {
		if p.Segments[i].Addr == p.Symbols["dispatch"] {
			seg = &p.Segments[i]
		}
	}
	if seg == nil {
		t.Fatal("dispatch segment missing")
	}
	read := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(seg.Data[off+i]) << (8 * i)
		}
		return v
	}
	if read(0) != p.Symbols["h1"] || read(8) != p.Symbols["h0"] {
		t.Errorf("dispatch = %#x, %#x; want %#x, %#x",
			read(0), read(8), p.Symbols["h1"], p.Symbols["h0"])
	}
}

func TestPseudoOps(t *testing.T) {
	b := NewBuilder()
	b.Mv(isa.T0, isa.T1)
	b.Beqz(isa.T0, "end")
	b.Bnez(isa.T0, "end")
	b.Call("end")
	b.Ret()
	b.Label("end")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.ADDI || p.Insts[0].Imm != 0 {
		t.Error("Mv must be addi rd, rs, 0")
	}
	if p.Insts[1].Op != isa.BEQ || p.Insts[1].Rs2 != isa.Zero {
		t.Error("Beqz must compare against zero")
	}
	if p.Insts[3].Op != isa.JAL || p.Insts[3].Rd != isa.RA {
		t.Error("Call must be jal ra")
	}
	if p.Insts[4].Op != isa.JALR || p.Insts[4].Rd != isa.Zero || p.Insts[4].Rs1 != isa.RA {
		t.Error("Ret must be jalr zero, 0(ra)")
	}
}

func TestErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder()
		b.J("nowhere")
		if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "nowhere") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder()
		b.Label("x")
		b.Nop()
		b.Label("x")
		b.Halt()
		if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("duplicate data", func(t *testing.T) {
		b := NewBuilder()
		b.Halt()
		b.Quads("d", 1)
		b.Space("d", 8)
		if _, err := b.Assemble(); err == nil || !strings.Contains(err.Error(), "duplicate data") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("label data clash", func(t *testing.T) {
		b := NewBuilder()
		b.Label("x")
		b.Halt()
		b.Quads("x", 1)
		if _, err := b.Assemble(); err == nil {
			t.Error("label/data clash not reported")
		}
	})
	t.Run("empty program", func(t *testing.T) {
		if _, err := NewBuilder().Assemble(); err == nil {
			t.Error("empty program accepted")
		}
	})
	t.Run("negative space", func(t *testing.T) {
		b := NewBuilder()
		b.Halt()
		b.Space("neg", -1)
		if _, err := b.Assemble(); err == nil {
			t.Error("negative data size accepted")
		}
	})
	t.Run("undefined quadaddr target", func(t *testing.T) {
		b := NewBuilder()
		b.Halt()
		b.QuadAddrs("tbl", "missing")
		if _, err := b.Assemble(); err == nil {
			t.Error("undefined QuadAddrs target accepted")
		}
	})
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on error")
		}
	}()
	b := NewBuilder()
	b.J("nowhere")
	MustAssemble(b)
}

func TestNumInsts(t *testing.T) {
	b := NewBuilder()
	if b.NumInsts() != 0 {
		t.Error("fresh builder has instructions")
	}
	b.Nop()
	b.Nop()
	if b.NumInsts() != 2 {
		t.Errorf("NumInsts = %d", b.NumInsts())
	}
}
