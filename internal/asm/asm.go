// Package asm provides a programmatic assembler for the valuepred ISA. The
// eight SPEC95-analogue workloads are written against this builder: code is
// emitted through typed methods, control flow uses string labels, and data
// is declared as named, zero-filled or initialised symbols that the builder
// lays out in the data segment. Assemble resolves all references and
// returns an executable isa.Program.
package asm

import (
	"errors"
	"fmt"

	"valuepred/internal/isa"
)

type fixupKind uint8

const (
	fixRel fixupKind = iota // imm = target - pc (branches, jal)
	fixAbs                  // imm = absolute address of symbol (li)
)

type fixup struct {
	inst int // instruction index to patch
	sym  string
	kind fixupKind
}

type dataSym struct {
	name string
	data []byte
	size int // for zero-filled symbols data is nil and size holds the length
}

// dataFixup patches a 64-bit word inside data symbol sym with the address
// of target.
type dataFixup struct {
	sym    string
	offset int
	target string
}

// Builder accumulates instructions, labels and data symbols.
type Builder struct {
	insts      []isa.Inst
	labels     map[string]int // label -> instruction index
	fixups     []fixup
	data       []dataSym
	dataSet    map[string]bool
	dataFixups []dataFixup
	errs       []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int), dataSet: make(map[string]bool)}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

func (b *Builder) emit(in isa.Inst) {
	b.insts = append(b.insts, in)
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("asm: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.insts)
}

// --- register-register ALU ---

func (b *Builder) rrr(op isa.Opcode, rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) { b.rrr(isa.ADD, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) { b.rrr(isa.SUB, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) { b.rrr(isa.MUL, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2 (signed).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) { b.rrr(isa.DIV, rd, rs1, rs2) }

// Rem emits rd = rs1 % rs2 (signed).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) { b.rrr(isa.REM, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) { b.rrr(isa.AND, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OR, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) { b.rrr(isa.XOR, rd, rs1, rs2) }

// Sll emits rd = rs1 << (rs2 & 63).
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) { b.rrr(isa.SLL, rd, rs1, rs2) }

// Srl emits rd = rs1 >> (rs2 & 63), logical.
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) { b.rrr(isa.SRL, rd, rs1, rs2) }

// Sra emits rd = rs1 >> (rs2 & 63), arithmetic.
func (b *Builder) Sra(rd, rs1, rs2 isa.Reg) { b.rrr(isa.SRA, rd, rs1, rs2) }

// Slt emits rd = (rs1 < rs2) signed.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) { b.rrr(isa.SLT, rd, rs1, rs2) }

// Sltu emits rd = (rs1 < rs2) unsigned.
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) { b.rrr(isa.SLTU, rd, rs1, rs2) }

// --- register-immediate ALU ---

func (b *Builder) rri(op isa.Opcode, rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.ADDI, rd, rs1, imm) }

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.ANDI, rd, rs1, imm) }

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) { b.rri(isa.ORI, rd, rs1, imm) }

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) { b.rri(isa.XORI, rd, rs1, imm) }

// Slli emits rd = rs1 << imm.
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) { b.rri(isa.SLLI, rd, rs1, imm) }

// Srli emits rd = rs1 >> imm, logical.
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) { b.rri(isa.SRLI, rd, rs1, imm) }

// Srai emits rd = rs1 >> imm, arithmetic.
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int64) { b.rri(isa.SRAI, rd, rs1, imm) }

// Slti emits rd = (rs1 < imm) signed.
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) { b.rri(isa.SLTI, rd, rs1, imm) }

// Li emits rd = imm (full 64-bit immediate).
func (b *Builder) Li(rd isa.Reg, imm int64) { b.emit(isa.Inst{Op: isa.LI, Rd: rd, Imm: imm}) }

// Mv emits rd = rs.
func (b *Builder) Mv(rd, rs isa.Reg) { b.Addi(rd, rs, 0) }

// La emits rd = address-of(sym), resolved at assembly time. sym may be a
// code label or a data symbol.
func (b *Builder) La(rd isa.Reg, sym string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), sym: sym, kind: fixAbs})
	b.emit(isa.Inst{Op: isa.LI, Rd: rd})
}

// --- memory ---

// Ld emits rd = mem64[rs1 + off].
func (b *Builder) Ld(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: rs1, Imm: off})
}

// Lb emits rd = zext(mem8[rs1 + off]).
func (b *Builder) Lb(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.LB, Rd: rd, Rs1: rs1, Imm: off})
}

// Sd emits mem64[rs1 + off] = rs2.
func (b *Builder) Sd(rs2, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.SD, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Sb emits mem8[rs1 + off] = low byte of rs2.
func (b *Builder) Sb(rs2, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.SB, Rs1: rs1, Rs2: rs2, Imm: off})
}

// --- control flow ---

func (b *Builder) branch(op isa.Opcode, rs1, rs2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), sym: label, kind: fixRel})
	b.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) { b.branch(isa.BEQ, rs1, rs2, label) }

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) { b.branch(isa.BNE, rs1, rs2, label) }

// Blt branches to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) { b.branch(isa.BLT, rs1, rs2, label) }

// Bge branches to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) { b.branch(isa.BGE, rs1, rs2, label) }

// Bltu branches to label when rs1 < rs2 (unsigned).
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) { b.branch(isa.BLTU, rs1, rs2, label) }

// Bgeu branches to label when rs1 >= rs2 (unsigned).
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) { b.branch(isa.BGEU, rs1, rs2, label) }

// Beqz branches to label when rs == 0.
func (b *Builder) Beqz(rs isa.Reg, label string) { b.Beq(rs, isa.Zero, label) }

// Bnez branches to label when rs != 0.
func (b *Builder) Bnez(rs isa.Reg, label string) { b.Bne(rs, isa.Zero, label) }

// Jal emits a direct jump to label, writing the return address to rd.
func (b *Builder) Jal(rd isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), sym: label, kind: fixRel})
	b.emit(isa.Inst{Op: isa.JAL, Rd: rd})
}

// J emits an unconditional jump to label with no link.
func (b *Builder) J(label string) { b.Jal(isa.Zero, label) }

// Call emits a call to label, linking through ra.
func (b *Builder) Call(label string) { b.Jal(isa.RA, label) }

// Jalr emits an indirect jump to rs1+off, writing the return address to rd.
func (b *Builder) Jalr(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs1, Imm: off})
}

// Ret emits a return through ra.
func (b *Builder) Ret() { b.Jalr(isa.Zero, isa.RA, 0) }

// Halt stops the machine.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.HALT}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.NOP}) }

// --- data ---

func (b *Builder) defineData(name string, data []byte, size int) {
	if b.dataSet[name] {
		b.errf("asm: duplicate data symbol %q", name)
		return
	}
	b.dataSet[name] = true
	b.data = append(b.data, dataSym{name: name, data: data, size: size})
}

// Quads defines a data symbol holding the given 64-bit little-endian words.
func (b *Builder) Quads(name string, vals ...int64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		putU64(buf[8*i:], uint64(v))
	}
	b.defineData(name, buf, len(buf))
}

// Bytes defines a data symbol initialised with data.
func (b *Builder) Bytes(name string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.defineData(name, cp, len(cp))
}

// QuadAddrs defines a data symbol holding one 64-bit word per named symbol,
// each resolved to that symbol's address at assembly time. It is the
// mechanism for building jump tables (dispatch via JALR) and pointer-valued
// initialised data.
func (b *Builder) QuadAddrs(name string, syms ...string) {
	buf := make([]byte, 8*len(syms))
	b.defineData(name, buf, len(buf))
	for i, s := range syms {
		b.dataFixups = append(b.dataFixups, dataFixup{sym: name, offset: 8 * i, target: s})
	}
}

// Space defines a zero-filled data symbol of n bytes.
func (b *Builder) Space(name string, n int) {
	if n < 0 {
		b.errf("asm: negative size for data symbol %q", name)
		return
	}
	b.defineData(name, nil, n)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// NumInsts returns the number of instructions emitted so far.
func (b *Builder) NumInsts() int { return len(b.insts) }

// Assemble lays out data, resolves labels and fixups, and returns the
// finished program. It fails if any label or data symbol is undefined or
// duplicated.
func (b *Builder) Assemble() (*isa.Program, error) {
	syms := make(map[string]uint64, len(b.labels)+len(b.data))
	for name, idx := range b.labels {
		syms[name] = isa.PCOf(idx)
	}
	// Lay out data symbols in declaration order, each 8-byte aligned.
	addr := isa.DataBase
	var segments []isa.Segment
	for _, d := range b.data {
		if _, clash := syms[d.name]; clash {
			b.errf("asm: symbol %q defined as both label and data", d.name)
			continue
		}
		syms[d.name] = addr
		if len(d.data) > 0 {
			segments = append(segments, isa.Segment{Addr: addr, Data: d.data})
		}
		addr += uint64((d.size + 7) &^ 7)
	}
	// Resolve data-word fixups (jump tables, pointer data). Segments index
	// parallels b.data only for initialised symbols, so locate by address.
	segByAddr := make(map[uint64][]byte, len(segments))
	for _, s := range segments {
		segByAddr[s.Addr] = s.Data
	}
	for _, f := range b.dataFixups {
		target, ok := syms[f.target]
		if !ok {
			b.errf("asm: undefined symbol %q in data fixup", f.target)
			continue
		}
		base, ok := syms[f.sym]
		if !ok {
			b.errf("asm: undefined data symbol %q in data fixup", f.sym)
			continue
		}
		buf := segByAddr[base]
		if buf == nil || f.offset+8 > len(buf) {
			b.errf("asm: data fixup out of range in %q", f.sym)
			continue
		}
		putU64(buf[f.offset:], target)
	}
	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	for _, f := range b.fixups {
		target, ok := syms[f.sym]
		if !ok {
			b.errf("asm: undefined symbol %q", f.sym)
			continue
		}
		switch f.kind {
		case fixRel:
			insts[f.inst].Imm = int64(target) - int64(isa.PCOf(f.inst))
		case fixAbs:
			insts[f.inst].Imm = int64(target)
		}
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if len(insts) == 0 {
		return nil, errors.New("asm: empty program")
	}
	return &isa.Program{
		Insts:    insts,
		Entry:    isa.TextBase,
		Segments: segments,
		Symbols:  syms,
	}, nil
}

// MustAssemble is Assemble that panics on error; intended for workload
// definitions whose correctness is established by the test suite.
func MustAssemble(b *Builder) *isa.Program {
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}
