package asm

import (
	"testing"

	"valuepred/internal/isa"
)

// TestEveryEmitter assembles a program that uses every instruction-emitting
// method of the Builder exactly as the workloads do, and checks that the
// emitted opcodes are what the methods promise.
func TestEveryEmitter(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	// register-register ALU
	b.Add(isa.T0, isa.T1, isa.T2)
	b.Sub(isa.T0, isa.T1, isa.T2)
	b.Mul(isa.T0, isa.T1, isa.T2)
	b.Div(isa.T0, isa.T1, isa.T2)
	b.Rem(isa.T0, isa.T1, isa.T2)
	b.And(isa.T0, isa.T1, isa.T2)
	b.Or(isa.T0, isa.T1, isa.T2)
	b.Xor(isa.T0, isa.T1, isa.T2)
	b.Sll(isa.T0, isa.T1, isa.T2)
	b.Srl(isa.T0, isa.T1, isa.T2)
	b.Sra(isa.T0, isa.T1, isa.T2)
	b.Slt(isa.T0, isa.T1, isa.T2)
	b.Sltu(isa.T0, isa.T1, isa.T2)
	// register-immediate ALU
	b.Addi(isa.T0, isa.T1, 1)
	b.Andi(isa.T0, isa.T1, 1)
	b.Ori(isa.T0, isa.T1, 1)
	b.Xori(isa.T0, isa.T1, 1)
	b.Slli(isa.T0, isa.T1, 1)
	b.Srli(isa.T0, isa.T1, 1)
	b.Srai(isa.T0, isa.T1, 1)
	b.Slti(isa.T0, isa.T1, 1)
	b.Li(isa.T0, 42)
	b.Mv(isa.T0, isa.T1)
	b.La(isa.T0, "data")
	// memory
	b.Ld(isa.T0, isa.SP, 0)
	b.Lb(isa.T0, isa.SP, 0)
	b.Sd(isa.T0, isa.SP, 0)
	b.Sb(isa.T0, isa.SP, 0)
	// control
	b.Beq(isa.T0, isa.T1, "start")
	b.Bne(isa.T0, isa.T1, "start")
	b.Blt(isa.T0, isa.T1, "start")
	b.Bge(isa.T0, isa.T1, "start")
	b.Bltu(isa.T0, isa.T1, "start")
	b.Bgeu(isa.T0, isa.T1, "start")
	b.Beqz(isa.T0, "start")
	b.Bnez(isa.T0, "start")
	b.Jal(isa.RA, "start")
	b.J("start")
	b.Call("start")
	b.Jalr(isa.RA, isa.T0, 0)
	b.Ret()
	b.Nop()
	b.Halt()
	b.Quads("data", 1, 2)
	b.Bytes("blob", []byte{1})
	b.Space("zero", 8)
	b.QuadAddrs("tbl", "start")

	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Opcode{
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
		isa.XOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU,
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI,
		isa.SRAI, isa.SLTI, isa.LI, isa.ADDI /* Mv */, isa.LI, /* La */
		isa.LD, isa.LB, isa.SD, isa.SB,
		isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU,
		isa.BEQ /* Beqz */, isa.BNE, /* Bnez */
		isa.JAL, isa.JAL, isa.JAL, isa.JALR, isa.JALR, /* Ret */
		isa.NOP, isa.HALT,
	}
	if len(p.Insts) != len(wantOps) {
		t.Fatalf("emitted %d instructions, want %d", len(p.Insts), len(wantOps))
	}
	for i, want := range wantOps {
		if p.Insts[i].Op != want {
			t.Errorf("inst %d = %v, want %v", i, p.Insts[i].Op, want)
		}
	}
	// Every backward control-flow reference resolved to the same target.
	for i, in := range p.Insts {
		if in.Op.IsBranch() || in.Op == isa.JAL {
			if target := int64(isa.PCOf(i)) + in.Imm; target != int64(isa.TextBase) {
				t.Errorf("inst %d target %#x, want start", i, target)
			}
		}
	}
}
