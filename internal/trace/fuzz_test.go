package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the binary trace decoder: it must
// never panic or loop, only return records or a clean error.
func FuzzReader(f *testing.F) {
	// Seed with a valid stream and a few corruptions of it.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sampleRecs() {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("VPT1"))
	corrupted := append([]byte{}, valid...)
	if len(corrupted) > 10 {
		corrupted[8] ^= 0xFF
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if rec.Seq != uint64(n) {
				t.Fatalf("non-consecutive Seq %d at record %d", rec.Seq, n)
			}
			n++
			if n > len(data)+1 {
				t.Fatalf("decoded more records (%d) than input bytes (%d)", n, len(data))
			}
		}
		// Err may or may not be set; it must just not panic.
		_ = r.Err()
	})
}
