package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"valuepred/internal/isa"
)

// The binary trace format is a sequence of varint-delta-encoded records
// preceded by a small header. It exists so that cmd/vptrace can persist
// traces and other tools can re-read them without re-running the emulator.

var magic = [4]byte{'V', 'P', 'T', '1'}

// Writer encodes trace records to an underlying stream.
type Writer struct {
	w       *bufio.Writer
	started bool
	lastPC  uint64
	buf     []byte
	n       uint64
}

// NewWriter returns a Writer emitting the binary trace format to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, binary.MaxVarintLen64)}
}

func (tw *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(tw.buf, v)
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

func (tw *Writer) putVarint(v int64) error {
	n := binary.PutVarint(tw.buf, v)
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

// Write appends one record. Records must be written in Seq order.
func (tw *Writer) Write(r Rec) error {
	if !tw.started {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return err
		}
		tw.started = true
	}
	// PC is delta-encoded against the previous record's PC: sequential code
	// compresses to one byte per field.
	if err := tw.putVarint(int64(r.PC) - int64(tw.lastPC)); err != nil {
		return err
	}
	tw.lastPC = r.PC
	flags := uint64(0)
	if r.Taken {
		flags = 1
	}
	head := uint64(r.Op) | uint64(r.Rd)<<8 | uint64(r.Rs1)<<16 | uint64(r.Rs2)<<24 | flags<<32
	if err := tw.putUvarint(head); err != nil {
		return err
	}
	if err := tw.putVarint(r.Imm); err != nil {
		return err
	}
	if err := tw.putUvarint(r.Val); err != nil {
		return err
	}
	if err := tw.putUvarint(r.Addr); err != nil {
		return err
	}
	if r.Op.IsControl() {
		if err := tw.putUvarint(r.Target); err != nil {
			return err
		}
	}
	tw.n++
	return nil
}

// Flush writes any buffered data to the underlying stream.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.n }

// Reset redirects the Writer at w and restores the initial encoder state
// (magic not yet emitted, PC delta base zero, record count zero), so one
// Writer — and its internal buffers — can encode many independent streams.
// internal/chunk uses this to encode each chunk as a self-contained trace
// without allocating a fresh Writer per chunk.
func (tw *Writer) Reset(w io.Writer) {
	tw.w.Reset(w)
	tw.started = false
	tw.lastPC = 0
	tw.n = 0
}

// ByteSource is the input a Reader decodes from: varint decoding needs
// byte-at-a-time reads, and the magic check needs bulk reads. *bufio.Reader
// and *bytes.Reader both qualify, which lets callers decoding from memory
// (internal/chunk) avoid interposing a buffered reader per block.
type ByteSource interface {
	io.Reader
	io.ByteReader
}

// Reader decodes the binary trace format and implements Source.
type Reader struct {
	r      ByteSource
	seq    uint64
	lastPC uint64
	header bool
	err    error
}

// NewReader returns a Reader over the binary trace format in r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// NewReaderAt is NewReader for a stream that is a suffix of a larger
// logical trace: decoded records are numbered from firstSeq instead of 0.
// internal/chunk stores each chunk as an independent stream and restores
// global Seq numbering with this.
func NewReaderAt(r ByteSource, firstSeq uint64) *Reader {
	return &Reader{r: r, seq: firstSeq}
}

// Reset repoints the Reader at a fresh stream, numbering its records from
// firstSeq, without allocating. The stream must carry its own magic header
// (every chunk written via Writer.Reset does).
func (tr *Reader) Reset(r ByteSource, firstSeq uint64) {
	tr.r = r
	tr.seq = firstSeq
	tr.lastPC = 0
	tr.header = false
	tr.err = nil
}

// Err returns the first decoding error other than a clean end of trace.
func (tr *Reader) Err() error { return tr.err }

// Next implements Source.
func (tr *Reader) Next() (Rec, bool) {
	if tr.err != nil {
		return Rec{}, false
	}
	if !tr.header {
		var m [4]byte
		if _, err := io.ReadFull(tr.r, m[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				tr.err = err
			}
			return Rec{}, false
		}
		if m != magic {
			tr.err = fmt.Errorf("trace: bad magic %q", m[:])
			return Rec{}, false
		}
		tr.header = true
	}
	dpc, err := binary.ReadVarint(tr.r)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			tr.err = err
		}
		return Rec{}, false
	}
	var r Rec
	r.Seq = tr.seq
	r.PC = uint64(int64(tr.lastPC) + dpc)
	tr.lastPC = r.PC
	head, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = fmt.Errorf("trace: truncated record %d: %w", tr.seq, err)
		return Rec{}, false
	}
	r.Op = isa.Opcode(head & 0xff)
	r.Rd = isa.Reg(head >> 8 & 0xff)
	r.Rs1 = isa.Reg(head >> 16 & 0xff)
	r.Rs2 = isa.Reg(head >> 24 & 0xff)
	r.Taken = head>>32&1 != 0
	if r.Imm, err = binary.ReadVarint(tr.r); err != nil {
		tr.err = fmt.Errorf("trace: truncated record %d: %w", tr.seq, err)
		return Rec{}, false
	}
	if r.Val, err = binary.ReadUvarint(tr.r); err != nil {
		tr.err = fmt.Errorf("trace: truncated record %d: %w", tr.seq, err)
		return Rec{}, false
	}
	if r.Addr, err = binary.ReadUvarint(tr.r); err != nil {
		tr.err = fmt.Errorf("trace: truncated record %d: %w", tr.seq, err)
		return Rec{}, false
	}
	if r.Op.IsControl() {
		if r.Target, err = binary.ReadUvarint(tr.r); err != nil {
			tr.err = fmt.Errorf("trace: truncated record %d: %w", tr.seq, err)
			return Rec{}, false
		}
	} else {
		r.Target = r.PC + isa.InstBytes
	}
	tr.seq++
	return r, true
}
