// Package trace defines the dynamic instruction trace records produced by
// the functional emulator and consumed by every analysis and machine model
// in this repository. A trace plays the role of the paper's Shade traces:
// the committed, architecturally correct instruction stream of a workload,
// annotated with the produced values, branch outcomes and memory addresses.
package trace

import (
	"fmt"

	"valuepred/internal/isa"
)

// Rec is one dynamic (committed) instruction.
type Rec struct {
	// Seq is the dynamic appearance order, starting at 0. The paper's
	// Dynamic Instruction Distance between a producer p and consumer c is
	// c.Seq - p.Seq.
	Seq uint64
	// PC is the instruction's address.
	PC uint64
	// Op, Rd, Rs1, Rs2 and Imm mirror the static instruction.
	Op  isa.Opcode
	Rd  isa.Reg
	Rs1 isa.Reg
	Rs2 isa.Reg
	Imm int64
	// Val is the value written to Rd, valid only when Op.WritesRd() and
	// Rd != 0. For stores Val holds the stored value (useful for
	// store-to-load forwarding checks).
	Val uint64
	// Addr is the effective address of a load or store.
	Addr uint64
	// Taken reports whether a control instruction redirected the PC.
	// Unconditional jumps are always taken.
	Taken bool
	// Target is the address of the next dynamic instruction (fall-through
	// or branch/jump target).
	Target uint64
}

// WritesValue reports whether the record produced an observable register
// value, i.e. whether it is a candidate for value prediction. Writes to x0
// are architectural no-ops and are excluded.
func (r Rec) WritesValue() bool { return r.Op.WritesRd() && r.Rd != 0 }

// String renders the record for debugging.
func (r Rec) String() string {
	in := isa.Inst{Op: r.Op, Rd: r.Rd, Rs1: r.Rs1, Rs2: r.Rs2, Imm: r.Imm}
	s := fmt.Sprintf("#%d %#x: %s", r.Seq, r.PC, in)
	if r.WritesValue() {
		s += fmt.Sprintf(" ; %s=%d", r.Rd, int64(r.Val))
	}
	if r.Op.IsControl() {
		s += fmt.Sprintf(" ; taken=%v -> %#x", r.Taken, r.Target)
	}
	return s
}

// Source is a pull-style stream of trace records. Implementations must
// return records in dynamic program order with consecutive Seq numbers
// starting at 0.
type Source interface {
	// Next returns the next record, or ok=false at end of trace.
	Next() (rec Rec, ok bool)
}

// SliceSource streams an in-memory trace. It is the replayable form used by
// experiments that must run the same trace through several machine
// configurations.
type SliceSource struct {
	recs []Rec
	pos  int
}

// NewSliceSource returns a Source over recs.
func NewSliceSource(recs []Rec) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Rec, bool) {
	if s.pos >= len(s.recs) {
		return Rec{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning of the trace.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of records in the trace.
func (s *SliceSource) Len() int { return len(s.recs) }

// Recs returns the remaining (not yet consumed) records as a read-only
// view of the source's backing slice. The view aliases memory owned by
// whoever built the SliceSource — typically the tracestore's shared
// immutable cache — so callers must not mutate, append to or retain it
// beyond the source's lifetime. internal/fetch uses this to recover the
// zero-copy flat path when a Source is known to be slice-backed.
func (s *SliceSource) Recs() []Rec { return s.recs[s.pos:len(s.recs):len(s.recs)] }

// Collect drains a Source into a slice, stopping after max records
// (max <= 0 means no limit). The output is sized up front — to max, or to
// the source's known length when it exposes one (e.g. SliceSource) —
// instead of growing a nil slice by repeated doubling through
// multi-megabyte traces.
func Collect(src Source, max int) []Rec {
	capHint := max
	if l, ok := src.(interface{ Len() int }); ok {
		if n := l.Len(); capHint <= 0 || n < capHint {
			capHint = n
		}
	}
	var out []Rec
	if capHint > 0 {
		out = make([]Rec, 0, capHint)
	}
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Summary holds aggregate statistics of a trace.
type Summary struct {
	Insts         uint64 // total dynamic instructions
	ValueWriters  uint64 // records with WritesValue()
	Loads         uint64
	Stores        uint64
	CondBranches  uint64
	TakenCond     uint64
	Jumps         uint64
	StaticPCs     int // distinct instruction addresses touched
	TakenControls uint64
}

// Summarize scans recs and returns aggregate statistics.
func Summarize(recs []Rec) Summary {
	z := NewSummarizer()
	for _, r := range recs {
		z.Add(r)
	}
	return z.Summary()
}

// SummarizeSource drains src and returns aggregate statistics. Unlike
// Summarize it never materializes the trace: memory stays proportional to
// the number of distinct static PCs, so cmd/vptrace can inspect
// 100M-record traces.
func SummarizeSource(src Source) Summary {
	z := NewSummarizer()
	for {
		r, ok := src.Next()
		if !ok {
			return z.Summary()
		}
		z.Add(r)
	}
}

// Summarizer accumulates Summary statistics one record at a time. It owns
// all of its state (a set of static PCs); records passed to Add are copied
// by value and never retained.
type Summarizer struct {
	s   Summary
	pcs map[uint64]struct{}
}

// NewSummarizer returns an empty Summarizer.
func NewSummarizer() *Summarizer {
	return &Summarizer{pcs: make(map[uint64]struct{})}
}

// Add folds one record into the running summary. The zero Summarizer is
// ready to use.
func (z *Summarizer) Add(r Rec) {
	if z.pcs == nil {
		z.pcs = make(map[uint64]struct{})
	}
	z.s.Insts++
	z.pcs[r.PC] = struct{}{}
	if r.WritesValue() {
		z.s.ValueWriters++
	}
	switch {
	case r.Op.IsLoad():
		z.s.Loads++
	case r.Op.IsStore():
		z.s.Stores++
	case r.Op.IsBranch():
		z.s.CondBranches++
		if r.Taken {
			z.s.TakenCond++
		}
	case r.Op.IsJump():
		z.s.Jumps++
	}
	if r.Op.IsControl() && r.Taken {
		z.s.TakenControls++
	}
}

// Summary returns the statistics accumulated so far.
func (z *Summarizer) Summary() Summary {
	s := z.s
	s.StaticPCs = len(z.pcs)
	return s
}

// String renders the summary as a short report.
func (s Summary) String() string {
	return fmt.Sprintf(
		"insts=%d writers=%d loads=%d stores=%d condbr=%d (taken %.1f%%) jumps=%d staticPCs=%d",
		s.Insts, s.ValueWriters, s.Loads, s.Stores, s.CondBranches,
		100*float64(s.TakenCond)/float64(max64(s.CondBranches, 1)), s.Jumps, s.StaticPCs)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
