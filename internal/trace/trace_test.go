package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"valuepred/internal/isa"
)

func sampleRecs() []Rec {
	return []Rec{
		{Seq: 0, PC: isa.PCOf(0), Op: isa.LI, Rd: isa.T0, Imm: 5, Val: 5, Target: isa.PCOf(1)},
		{Seq: 1, PC: isa.PCOf(1), Op: isa.ADD, Rd: isa.T1, Rs1: isa.T0, Rs2: isa.T0, Val: 10, Target: isa.PCOf(2)},
		{Seq: 2, PC: isa.PCOf(2), Op: isa.SD, Rs1: isa.SP, Rs2: isa.T1, Addr: 0x4000, Val: 10, Target: isa.PCOf(3)},
		{Seq: 3, PC: isa.PCOf(3), Op: isa.LD, Rd: isa.T2, Rs1: isa.SP, Addr: 0x4000, Val: 10, Target: isa.PCOf(4)},
		{Seq: 4, PC: isa.PCOf(4), Op: isa.BNE, Rs1: isa.T2, Rs2: isa.T0, Taken: true, Target: isa.PCOf(0)},
		{Seq: 5, PC: isa.PCOf(0), Op: isa.JAL, Rd: isa.RA, Taken: true, Target: isa.PCOf(2)},
	}
}

func TestWritesValue(t *testing.T) {
	r := Rec{Op: isa.ADD, Rd: isa.T0}
	if !r.WritesValue() {
		t.Error("add to t0 must produce a value")
	}
	r.Rd = 0
	if r.WritesValue() {
		t.Error("add to x0 must not produce a value")
	}
	if (Rec{Op: isa.SD}).WritesValue() || (Rec{Op: isa.BEQ}).WritesValue() {
		t.Error("stores/branches must not produce values")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRecs())
	if s.Insts != 6 || s.Loads != 1 || s.Stores != 1 ||
		s.CondBranches != 1 || s.TakenCond != 1 || s.Jumps != 1 {
		t.Errorf("summary wrong: %+v", s)
	}
	if s.ValueWriters != 4 { // li, add, ld, jal
		t.Errorf("ValueWriters = %d, want 4", s.ValueWriters)
	}
	if s.StaticPCs != 5 {
		t.Errorf("StaticPCs = %d, want 5", s.StaticPCs)
	}
	if !strings.Contains(s.String(), "insts=6") {
		t.Errorf("summary string: %s", s)
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource(sampleRecs())
	if src.Len() != 6 {
		t.Fatalf("Len = %d", src.Len())
	}
	var n int
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 6 {
		t.Fatalf("drained %d records", n)
	}
	src.Reset()
	if r, ok := src.Next(); !ok || r.Seq != 0 {
		t.Error("Reset did not rewind")
	}
}

func TestCollectLimit(t *testing.T) {
	if got := Collect(NewSliceSource(sampleRecs()), 3); len(got) != 3 {
		t.Errorf("Collect(3) returned %d", len(got))
	}
	if got := Collect(NewSliceSource(sampleRecs()), 0); len(got) != 6 {
		t.Errorf("Collect(0) returned %d", len(got))
	}
}

func TestRecString(t *testing.T) {
	s := sampleRecs()[1].String()
	if !strings.Contains(s, "add") || !strings.Contains(s, "t1=10") {
		t.Errorf("Rec.String() = %q", s)
	}
	b := sampleRecs()[4].String()
	if !strings.Contains(b, "taken=true") {
		t.Errorf("branch Rec.String() = %q", b)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := sampleRecs()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Errorf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	got := Collect(r, 0)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("roundtrip mismatch:\n got %v\nwant %v", got, recs)
	}
}

// randomRec builds a structurally valid record for the property test.
func randomRec(rng *rand.Rand, seq uint64, lastPC uint64) Rec {
	ops := []isa.Opcode{isa.ADD, isa.ADDI, isa.LI, isa.LD, isa.SD, isa.BEQ, isa.JAL, isa.MUL, isa.XOR}
	op := ops[rng.Intn(len(ops))]
	r := Rec{
		Seq: seq,
		PC:  lastPC + uint64(rng.Intn(16))*4,
		Op:  op,
		Rd:  isa.Reg(rng.Intn(32)),
		Rs1: isa.Reg(rng.Intn(32)),
		Rs2: isa.Reg(rng.Intn(32)),
		Imm: int64(rng.Uint64()),
		Val: rng.Uint64(),
	}
	if op.IsLoad() || op.IsStore() {
		r.Addr = rng.Uint64()
	}
	if op.IsControl() {
		r.Taken = rng.Intn(2) == 0 || op.IsJump()
		r.Target = rng.Uint64() &^ 3
	} else {
		r.Target = r.PC + isa.InstBytes
	}
	return r
}

func TestCodecRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		recs := make([]Rec, n)
		pc := isa.TextBase
		for i := range recs {
			recs[i] = randomRec(rng, uint64(i), pc)
			pc = recs[i].PC
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd := NewReader(&buf)
		got := Collect(rd, 0)
		return rd.Err() == nil && reflect.DeepEqual(got, recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE....")))
	if _, ok := r.Next(); ok {
		t.Error("bad magic accepted")
	}
	if r.Err() == nil {
		t.Error("bad magic produced no error")
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sampleRecs() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: the reader must flag an error, not loop or panic.
	cut := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(cut))
	Collect(r, 0)
	if r.Err() == nil {
		t.Error("truncated stream produced no error")
	}
}

func TestCodecEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, ok := r.Next(); ok {
		t.Error("empty stream yielded a record")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF reported error: %v", r.Err())
	}
}
