package btb

// GShare combines a global-history XOR-indexed pattern table for branch
// directions (McFarling's gshare) with a BTB for targets. It postdates the
// paper's PAp configuration slightly and is included to quantify the
// paper's Section 5 claim that better branch prediction directly buys more
// value-prediction gain (see ablation.btb).
type GShare struct {
	pht     []uint8 // 2-bit counters
	mask    uint64
	history uint64
	// target store: direct-mapped, tagged
	targets []targetEntry
	tmask   uint64
}

type targetEntry struct {
	valid  bool
	tag    uint64
	target uint64
}

// GShareConfig parameterises the predictor.
type GShareConfig struct {
	// PHTEntries is the pattern-history-table size (power of two).
	PHTEntries int
	// TargetEntries is the target-buffer size (power of two).
	TargetEntries int
}

// DefaultGShareConfig returns a 16K-entry PHT with a 2K-entry target
// buffer — a hardware budget comparable to the paper's 2K-entry PAp BTB.
func DefaultGShareConfig() GShareConfig {
	return GShareConfig{PHTEntries: 16384, TargetEntries: 2048}
}

// NewGShare builds a gshare predictor.
func NewGShare(cfg GShareConfig) *GShare {
	if cfg.PHTEntries <= 0 || cfg.PHTEntries&(cfg.PHTEntries-1) != 0 {
		panic("btb: gshare PHT size must be a positive power of two")
	}
	if cfg.TargetEntries <= 0 || cfg.TargetEntries&(cfg.TargetEntries-1) != 0 {
		panic("btb: gshare target buffer size must be a positive power of two")
	}
	pht := make([]uint8, cfg.PHTEntries)
	for i := range pht {
		pht[i] = 1 // weakly not-taken
	}
	return &GShare{
		pht:     pht,
		mask:    uint64(cfg.PHTEntries - 1),
		targets: make([]targetEntry, cfg.TargetEntries),
		tmask:   uint64(cfg.TargetEntries - 1),
	}
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) phtIndex(pc uint64) uint64 { return (pc>>2 ^ g.history) & g.mask }

func (g *GShare) targetSlot(pc uint64) *targetEntry { return &g.targets[(pc>>2)&g.tmask] }

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64, _ bool, _ uint64) Prediction {
	taken := g.pht[g.phtIndex(pc)] >= 2
	t := g.targetSlot(pc)
	if t.valid && t.tag == pc {
		return Prediction{Taken: taken, Target: t.target, TargetValid: true}
	}
	return Prediction{Taken: taken}
}

// Update implements Predictor: it trains the counter under the current
// history, shifts the global history, and records taken targets.
func (g *GShare) Update(pc uint64, taken bool, target uint64) {
	c := &g.pht[g.phtIndex(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	g.history = g.history<<1 | uint64(boolBit(taken))
	if taken {
		t := g.targetSlot(pc)
		t.valid = true
		t.tag = pc
		t.target = target
	}
}

var _ Predictor = (*GShare)(nil)
