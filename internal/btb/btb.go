// Package btb implements the branch predictors of Section 5: an ideal
// (perfect) predictor and a 2-level branch target buffer in PAp
// configuration (Yeh & Patt) — a 2K-entry, 2-way set-associative first
// level where each entry keeps a 4-bit per-branch history register indexing
// a per-branch pattern table of 2-bit counters, plus the branch target. The
// BTB is assumed capable of predicting multiple branches per cycle, as the
// paper assumes.
package btb

// Prediction is a direction/target prediction for one control instruction.
type Prediction struct {
	// Taken is the predicted direction (always true for predicted jumps).
	Taken bool
	// Target is the predicted target, meaningful when TargetValid.
	Target      uint64
	TargetValid bool
}

// Predictor predicts control instructions. Predict must not change
// predictor state; the fetch engine calls Update exactly once per fetched
// control instruction. The actual outcome is passed to Predict so that the
// perfect predictor can be expressed under the same interface; real
// predictors ignore it.
type Predictor interface {
	Predict(pc uint64, actualTaken bool, actualTarget uint64) Prediction
	Update(pc uint64, taken bool, target uint64)
	Name() string
}

// Perfect is the ideal branch predictor: always right.
type Perfect struct{}

// NewPerfect returns the ideal predictor.
func NewPerfect() Perfect { return Perfect{} }

// Name implements Predictor.
func (Perfect) Name() string { return "ideal-btb" }

// Predict implements Predictor by echoing the actual outcome.
func (Perfect) Predict(_ uint64, actualTaken bool, actualTarget uint64) Prediction {
	return Prediction{Taken: actualTaken, Target: actualTarget, TargetValid: true}
}

// Update implements Predictor (no state).
func (Perfect) Update(uint64, bool, uint64) {}

// TwoLevelConfig parameterises the PAp BTB.
type TwoLevelConfig struct {
	// Entries is the first-level size (paper: 2048). Must be a positive
	// power of two and a multiple of Ways.
	Entries int
	// Ways is the set associativity (paper: 2).
	Ways int
	// HistoryBits is the per-branch history length (paper: 4).
	HistoryBits int
}

// DefaultTwoLevelConfig returns the paper's configuration: 2K entries,
// 2-way, 4-bit histories.
func DefaultTwoLevelConfig() TwoLevelConfig {
	return TwoLevelConfig{Entries: 2048, Ways: 2, HistoryBits: 4}
}

type btbEntry struct {
	valid   bool
	tag     uint64
	history uint8
	pattern []uint8 // 2-bit counters, indexed by history
	target  uint64
	lru     uint64
}

// TwoLevel is the 2-level PAp BTB.
type TwoLevel struct {
	cfg     TwoLevelConfig
	sets    [][]btbEntry
	setMask uint64
	histMax uint8
	tick    uint64
}

// NewTwoLevel returns a PAp BTB with the given configuration.
func NewTwoLevel(cfg TwoLevelConfig) *TwoLevel {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("btb: Entries must be a positive power of two")
	}
	if cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("btb: Ways must divide Entries")
	}
	if cfg.HistoryBits < 1 || cfg.HistoryBits > 8 {
		panic("btb: HistoryBits out of range")
	}
	numSets := cfg.Entries / cfg.Ways
	sets := make([][]btbEntry, numSets)
	for i := range sets {
		sets[i] = make([]btbEntry, cfg.Ways)
	}
	return &TwoLevel{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(numSets - 1),
		histMax: uint8(1<<cfg.HistoryBits - 1),
	}
}

// Name implements Predictor.
func (t *TwoLevel) Name() string { return "2level-btb" }

func (t *TwoLevel) find(pc uint64) *btbEntry {
	set := t.sets[(pc>>2)&t.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			return &set[i]
		}
	}
	return nil
}

// Predict implements Predictor. A BTB miss predicts not-taken with no
// target.
func (t *TwoLevel) Predict(pc uint64, _ bool, _ uint64) Prediction {
	e := t.find(pc)
	if e == nil {
		return Prediction{}
	}
	taken := e.pattern[e.history] >= 2
	return Prediction{Taken: taken, Target: e.target, TargetValid: true}
}

// Update implements Predictor: it trains the pattern counter selected by
// the branch's history, shifts the history, and records the taken target.
// A miss allocates an entry, evicting the LRU way.
func (t *TwoLevel) Update(pc uint64, taken bool, target uint64) {
	t.tick++
	e := t.find(pc)
	if e == nil {
		set := t.sets[(pc>>2)&t.setMask]
		victim := &set[0]
		for i := range set {
			if !set[i].valid {
				victim = &set[i]
				break
			}
			if set[i].lru < victim.lru {
				victim = &set[i]
			}
		}
		pattern := make([]uint8, int(t.histMax)+1)
		for i := range pattern {
			pattern[i] = 1 // weakly not-taken
		}
		*victim = btbEntry{valid: true, tag: pc, pattern: pattern}
		e = victim
	}
	c := &e.pattern[e.history]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	e.history = (e.history<<1 | boolBit(taken)) & t.histMax
	if taken {
		e.target = target
	}
	e.lru = t.tick
}

func boolBit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

var (
	_ Predictor = Perfect{}
	_ Predictor = (*TwoLevel)(nil)
)
