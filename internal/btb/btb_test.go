package btb

import (
	"testing"
	"testing/quick"
)

func TestPerfect(t *testing.T) {
	p := NewPerfect()
	if p.Name() == "" {
		t.Error("no name")
	}
	f := func(pc, target uint64, taken bool) bool {
		pred := p.Predict(pc, taken, target)
		return pred.Taken == taken && pred.TargetValid && pred.Target == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	p.Update(1, true, 2) // must not panic
}

func TestTwoLevelColdMiss(t *testing.T) {
	b := NewTwoLevel(DefaultTwoLevelConfig())
	pred := b.Predict(0x1000, true, 0x2000)
	if pred.Taken || pred.TargetValid {
		t.Errorf("cold predict = %+v, want not-taken, no target", pred)
	}
}

func TestTwoLevelLearnsLoop(t *testing.T) {
	b := NewTwoLevel(DefaultTwoLevelConfig())
	pc, target := uint64(0x1000), uint64(0x800)
	// An always-taken loop branch: after a few iterations the predictor
	// must say taken with the right target.
	for i := 0; i < 8; i++ {
		b.Update(pc, true, target)
	}
	pred := b.Predict(pc, true, target)
	if !pred.Taken || !pred.TargetValid || pred.Target != target {
		t.Errorf("loop branch not learned: %+v", pred)
	}
}

func TestTwoLevelLearnsAlternating(t *testing.T) {
	b := NewTwoLevel(DefaultTwoLevelConfig())
	pc, target := uint64(0x2000), uint64(0x100)
	// Strictly alternating T,N,T,N...: with 4 bits of history the pattern
	// table must learn it perfectly after warmup.
	taken := true
	for i := 0; i < 64; i++ {
		b.Update(pc, taken, target)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 32; i++ {
		pred := b.Predict(pc, taken, target)
		if pred.Taken == taken {
			correct++
		}
		b.Update(pc, taken, target)
		taken = !taken
	}
	if correct < 31 {
		t.Errorf("alternating pattern: %d/32 correct", correct)
	}
}

func TestTwoLevelLearnsPeriodicPattern(t *testing.T) {
	b := NewTwoLevel(DefaultTwoLevelConfig())
	pc, target := uint64(0x3000), uint64(0x200)
	// Pattern TTTN repeating (an inner loop of 4 iterations): 4-bit
	// history suffices.
	pattern := []bool{true, true, true, false}
	for i := 0; i < 200; i++ {
		b.Update(pc, pattern[i%4], target)
	}
	correct := 0
	for i := 0; i < 40; i++ {
		taken := pattern[i%4]
		if b.Predict(pc, taken, target).Taken == taken {
			correct++
		}
		b.Update(pc, taken, target)
	}
	if correct < 39 {
		t.Errorf("TTTN pattern: %d/40 correct", correct)
	}
}

func TestTwoLevelTargetFollowsLastTaken(t *testing.T) {
	b := NewTwoLevel(DefaultTwoLevelConfig())
	pc := uint64(0x4000)
	b.Update(pc, true, 0x111<<2)
	b.Update(pc, true, 0x222<<2)
	if pred := b.Predict(pc, true, 0); pred.Target != 0x222<<2 {
		t.Errorf("target = %#x, want latest taken target", pred.Target)
	}
	// Not-taken updates must not clobber the stored target.
	b.Update(pc, false, 0)
	if pred := b.Predict(pc, true, 0); pred.Target != 0x222<<2 {
		t.Error("not-taken update clobbered target")
	}
}

func TestTwoLevelEviction(t *testing.T) {
	cfg := TwoLevelConfig{Entries: 4, Ways: 2, HistoryBits: 2} // 2 sets
	b := NewTwoLevel(cfg)
	// Three PCs mapping to the same set (pc>>2 even -> set 0).
	pcs := []uint64{0x1000, 0x1010, 0x1020}
	for _, pc := range pcs {
		for i := 0; i < 4; i++ {
			b.Update(pc, true, pc+0x100)
		}
	}
	// The LRU victim (0x1000) must be gone; the most recent two present.
	if pred := b.Predict(0x1000, true, 0); pred.TargetValid {
		t.Error("LRU entry survived eviction")
	}
	for _, pc := range pcs[1:] {
		if pred := b.Predict(pc, true, 0); !pred.TargetValid || pred.Target != pc+0x100 {
			t.Errorf("recent entry %#x evicted: %+v", pc, pred)
		}
	}
}

func TestTwoLevelConfigPanics(t *testing.T) {
	bad := []TwoLevelConfig{
		{Entries: 0, Ways: 2, HistoryBits: 4},
		{Entries: 3, Ways: 1, HistoryBits: 4},
		{Entries: 8, Ways: 3, HistoryBits: 4},
		{Entries: 8, Ways: 2, HistoryBits: 0},
		{Entries: 8, Ways: 2, HistoryBits: 9},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewTwoLevel(cfg)
		}()
	}
}

func TestGShareLearnsLoop(t *testing.T) {
	g := NewGShare(DefaultGShareConfig())
	pc, target := uint64(0x1000), uint64(0x800)
	for i := 0; i < 16; i++ {
		g.Update(pc, true, target)
	}
	pred := g.Predict(pc, true, target)
	if !pred.Taken || !pred.TargetValid || pred.Target != target {
		t.Errorf("loop branch not learned: %+v", pred)
	}
}

func TestGShareUsesGlobalHistory(t *testing.T) {
	// A branch whose direction equals the previous branch's direction is
	// perfectly correlated through global history even though its own
	// local pattern alternates.
	g := NewGShare(DefaultGShareConfig())
	a, b := uint64(0x1000), uint64(0x2000)
	dir := true
	for i := 0; i < 400; i++ {
		g.Update(a, dir, 0x10)
		g.Update(b, dir, 0x20) // b copies a
		dir = !dir
	}
	correct := 0
	for i := 0; i < 40; i++ {
		g.Update(a, dir, 0x10)
		if g.Predict(b, dir, 0x20).Taken == dir {
			correct++
		}
		g.Update(b, dir, 0x20)
		dir = !dir
	}
	if correct < 38 {
		t.Errorf("correlated branch: %d/40 correct", correct)
	}
}

func TestGShareConfigPanics(t *testing.T) {
	for _, cfg := range []GShareConfig{
		{PHTEntries: 0, TargetEntries: 64},
		{PHTEntries: 100, TargetEntries: 64},
		{PHTEntries: 64, TargetEntries: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewGShare(cfg)
		}()
	}
}
