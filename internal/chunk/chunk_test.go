package chunk

import (
	"reflect"
	"testing"

	"valuepred/internal/isa"
	"valuepred/internal/trace"
)

// synth builds a deterministic synthetic trace that exercises every record
// shape the codec distinguishes: ALU ops, loads/stores with addresses, and
// taken/untaken control transfers. Non-control records must have
// Target = PC + InstBytes (the codec reconstructs it), which matches what
// the emulator emits.
func synth(n int) []trace.Rec {
	recs := make([]trace.Rec, n)
	pc := isa.TextBase
	state := uint64(0x9e3779b97f4a7c15)
	for i := range recs {
		state = state*6364136223846793005 + 1442695040888963407
		r := trace.Rec{Seq: uint64(i), PC: pc}
		switch i % 7 {
		case 0:
			r.Op, r.Rd, r.Rs1, r.Imm = isa.ADDI, 5, 5, int64(state%97) - 48
			r.Val = state
		case 3:
			r.Op, r.Rd, r.Rs1, r.Imm = isa.LD, 6, 7, 8
			r.Addr, r.Val = 0x8000+state%4096*8, state>>3
		case 5:
			r.Op, r.Rs1, r.Rs2, r.Imm = isa.SD, 7, 6, 16
			r.Addr, r.Val = 0x8000+state%4096*8, state>>5
		case 6:
			r.Op, r.Rs1, r.Rs2 = isa.BNE, 5, 0
			r.Taken = state%3 != 0
			if r.Taken {
				r.Imm = -int64(isa.InstBytes * (state%13 + 1))
				r.Target = uint64(int64(pc) + r.Imm)
			} else {
				r.Imm = isa.InstBytes * 4
				r.Target = pc + isa.InstBytes
			}
		default:
			r.Op, r.Rd, r.Rs1, r.Rs2 = isa.ADD, 8, 5, 6
			r.Val = state ^ uint64(i)
		}
		if !r.Op.IsControl() {
			r.Target = pc + isa.InstBytes
		}
		recs[i] = r
		pc = r.Target
	}
	return recs
}

func TestBuildCursorRoundtrip(t *testing.T) {
	recs := synth(20_500)
	q, err := Build(trace.NewSliceSource(recs), len(recs), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != len(recs) {
		t.Fatalf("Seq.Len() = %d, want %d", q.Len(), len(recs))
	}
	if want := 21; q.NumChunks() != want {
		t.Fatalf("NumChunks() = %d, want %d", q.NumChunks(), want)
	}
	if q.Bytes() <= 0 || q.Bytes() >= len(recs)*64 {
		t.Fatalf("Bytes() = %d, want in (0, %d): compression should beat raw", q.Bytes(), len(recs)*64)
	}
	got := trace.Collect(NewCursor(q, q.Len()), 0)
	if !reflect.DeepEqual(got, recs) {
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
			}
		}
		t.Fatal("length mismatch")
	}
}

func TestCursorPrefix(t *testing.T) {
	recs := synth(5000)
	q, err := Build(trace.NewSliceSource(recs), len(recs), 512)
	if err != nil {
		t.Fatal(err)
	}
	// A prefix that cuts mid-block.
	for _, n := range []int{0, 1, 511, 512, 513, 2345, 5000} {
		cur := NewCursor(q, n)
		if cur.Len() != n {
			t.Fatalf("Cursor.Len() = %d, want %d", cur.Len(), n)
		}
		got := trace.Collect(cur, 0)
		if len(got) != n {
			t.Fatalf("prefix %d: got %d records", n, len(got))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("prefix %d: record %d mismatch", n, i)
			}
		}
		if cur.Err() != nil {
			t.Fatalf("prefix %d: err = %v", n, cur.Err())
		}
	}
	// Oversized and negative requests clamp.
	if got := NewCursor(q, 99999).Len(); got != 5000 {
		t.Fatalf("clamped Len() = %d, want 5000", got)
	}
	if got := NewCursor(q, -1).Len(); got != 0 {
		t.Fatalf("negative Len() = %d, want 0", got)
	}
}

func TestBuildShortSource(t *testing.T) {
	recs := synth(700)
	// Source ends before max: Build keeps what it got.
	q, err := Build(trace.NewSliceSource(recs), 10_000, 256)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 700 {
		t.Fatalf("Len() = %d, want 700", q.Len())
	}
	// max <= 0 drains the source.
	q2, err := Build(trace.NewSliceSource(recs), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 700 || q2.ChunkSize() != DefaultSize {
		t.Fatalf("Len()=%d ChunkSize()=%d, want 700, %d", q2.Len(), q2.ChunkSize(), DefaultSize)
	}
}

// TestWindowMatchesSlice drives a Window with the mark/peek/advance/view
// pattern the fetch engines use and checks every view against the flat
// slice, including peeks that cross chunk boundaries and one group that
// outgrows the initial window capacity.
func TestWindowMatchesSlice(t *testing.T) {
	recs := synth(10_000)
	q, err := Build(trace.NewSliceSource(recs), len(recs), 512)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindow(NewCursor(q, len(recs)))
	pos := 0
	group := 0
	for !w.EOF() {
		w.Mark()
		// Group sizes cycle 1..40, with one giant group (> windowCap) to
		// force the growth path.
		want := group%40 + 1
		if group == 50 {
			want = windowCap + 77
		}
		took := 0
		for took < want {
			r, ok := w.Peek(0)
			if !ok {
				break
			}
			if r != recs[pos+took] {
				t.Fatalf("group %d: peek(0) at %d = %+v, want %+v", group, pos+took, r, recs[pos+took])
			}
			// Occasionally peek ahead like the trace cache does.
			if k := took % 5; pos+took+k < len(recs) {
				if rk, ok := w.Peek(k); !ok || rk != recs[pos+took+k] {
					t.Fatalf("group %d: peek(%d) mismatch at %d", group, k, pos+took)
				}
			}
			w.Advance(1)
			took++
		}
		view := w.View()
		if len(view) != took {
			t.Fatalf("group %d: view len %d, want %d", group, len(view), took)
		}
		for i, r := range view {
			if r != recs[pos+i] {
				t.Fatalf("group %d: view[%d] mismatch", group, i)
			}
		}
		if cap(view) != len(view) {
			t.Fatalf("group %d: view not capacity-capped: cap %d len %d", group, cap(view), len(view))
		}
		pos += took
		group++
	}
	if pos != len(recs) {
		t.Fatalf("consumed %d records, want %d", pos, len(recs))
	}
}

// TestCursorAllocBudget pins the streaming invariant: draining a cursor
// over an N-record sequence allocates O(1) — the cursor itself plus pool
// slack — not O(N). This is the package-level half of the paper-scale
// memory gate (the end-to-end half lives in the root stream tests).
func TestCursorAllocBudget(t *testing.T) {
	recs := synth(100_000)
	q, err := Build(trace.NewSliceSource(recs), len(recs), 0)
	if err != nil {
		t.Fatal(err)
	}
	drain := func() {
		c := NewCursor(q, q.Len())
		n := 0
		for {
			if _, ok := c.Next(); !ok {
				break
			}
			n++
		}
		if n != q.Len() {
			t.Fatalf("drained %d, want %d", n, q.Len())
		}
	}
	drain() // warm the chunk pool
	if allocs := testing.AllocsPerRun(5, drain); allocs > 20 {
		t.Fatalf("drain of %d records allocated %.0f times, budget 20: decode buffers are not being pooled", len(recs), allocs)
	}
}
