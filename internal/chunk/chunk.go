// Package chunk implements the streaming trace pipeline (DESIGN.md §13):
// fixed-size reusable chunks of decoded trace records, immutable compressed
// chunk sequences for the tracestore, and bounded sliding windows for the
// fetch engines. It replaces "materialize the whole trace as one flat
// []trace.Rec" with "hold at most a few chunks in flight", which bounds a
// simulation's peak memory by the chunk-pool size instead of the trace
// length and makes paper-scale (100M-instruction) runs practical.
//
// Ownership contract (the full lifecycle is drawn in DESIGN.md §13):
//
//   - A Chunk is owned by exactly one goroutine between acquire (getChunk)
//     and release (putChunk). Its Recs buffer is reset at every acquire
//     (poollint-complete), so no record from one use can leak into the
//     next.
//   - A Seq is immutable once Build returns. Any number of concurrent
//     Cursors may read it; nobody may mutate it. This is what lets many
//     experiment cells share one cached trace at chunk granularity.
//   - A Cursor owns one pooled Chunk at a time as its decode buffer and
//     returns it to the pool at end of stream. Records handed out by Next
//     are copies; callers may keep them forever.
//   - A Window owns its buffer and lends callers read-only views of it
//     (View); a view is valid only until the next call that advances the
//     window, mirroring the fetch.Group.Recs contract.
package chunk

import (
	"bytes"
	"sync"

	"valuepred/internal/trace"
)

// DefaultSize is the default number of records per chunk. At 64 bytes per
// decoded record a chunk is ~512 KiB — big enough to amortize codec and
// pool overhead to noise, small enough that a worker's resident set stays
// a few megabytes regardless of trace length.
const DefaultSize = 8192

// Chunk is a reusable buffer of decoded trace records — the unit of
// transfer between the emulator, the codec and the consumers. A Chunk is
// exclusively owned by its holder from getChunk to putChunk; Recs must
// never be retained across putChunk (records are copied out by consumers
// before release).
type Chunk struct {
	// Recs holds the decoded records. The slice (including its capacity)
	// belongs to the Chunk; holders append to it while they own the Chunk
	// and must not publish it elsewhere.
	Recs []trace.Rec
}

var chunkPool = sync.Pool{New: func() any { return &Chunk{} }}

// getChunk returns a Chunk with exclusive ownership, its record buffer
// reset to length zero (capacity is retained across reuses).
func getChunk() *Chunk {
	c := chunkPool.Get().(*Chunk)
	c.Recs = c.Recs[:0]
	return c
}

// putChunk returns c to the pool. The caller must not touch c afterwards.
func putChunk(c *Chunk) { chunkPool.Put(c) }

// block is one compressed chunk: a self-contained VPT1 stream (its own
// magic header, PC deltas restarting at zero) holding n records.
type block struct {
	data []byte
	n    int
}

// Seq is an immutable sequence of compressed chunks representing the first
// Len records of a workload's dynamic trace. Once built it is never
// mutated, so it may be shared freely: the tracestore caches one Seq per
// (workload, seed) and every cell that needs any prefix of it reads the
// same blocks through its own Cursor.
type Seq struct {
	blocks []block
	n      int // total records across blocks
	size   int // records per chunk (the last block may be short)
	nbytes int // total compressed bytes
}

// Len returns the number of records in the sequence.
func (q *Seq) Len() int { return q.n }

// Bytes returns the total compressed size of the sequence in bytes — the
// number the tracestore charges against its memory limit.
func (q *Seq) Bytes() int { return q.nbytes }

// ChunkSize returns the number of records per chunk the sequence was built
// with.
func (q *Seq) ChunkSize() int { return q.size }

// NumChunks returns the number of compressed chunks in the sequence.
func (q *Seq) NumChunks() int { return len(q.blocks) }

// Build drains up to max records from src (max <= 0 means until the
// source ends) into a compressed chunk sequence with size records per
// chunk (size <= 0 means DefaultSize). Peak memory during the build is one
// pooled Chunk plus one compressed block: the producer fills a chunk, the
// codec flattens it, and the chunk is reused for the next round — the
// uncompressed trace never exists in full.
func Build(src trace.Source, max, size int) (*Seq, error) {
	if size <= 0 {
		size = DefaultSize
	}
	q := &Seq{size: size}
	c := getChunk()
	defer putChunk(c)
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for max <= 0 || q.n < max {
		want := size
		if max > 0 && max-q.n < want {
			want = max - q.n
		}
		c.Recs = c.Recs[:0]
		for len(c.Recs) < want {
			r, ok := src.Next()
			if !ok {
				break
			}
			c.Recs = append(c.Recs, r)
		}
		if len(c.Recs) == 0 {
			break
		}
		buf.Reset()
		w.Reset(&buf)
		for _, r := range c.Recs {
			if err := w.Write(r); err != nil {
				return nil, err
			}
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		data := append([]byte(nil), buf.Bytes()...)
		q.blocks = append(q.blocks, block{data: data, n: len(c.Recs)})
		q.n += len(c.Recs)
		q.nbytes += len(data)
		if len(c.Recs) < want {
			break // source ended mid-chunk
		}
	}
	return q, nil
}
