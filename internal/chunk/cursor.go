package chunk

import (
	"bytes"

	"valuepred/internal/trace"
)

// Cursor streams a prefix of a Seq as a trace.Source. Each Cursor is
// single-goroutine: it owns one pooled Chunk as its decode buffer, decodes
// blocks into it on demand, and returns the Chunk to the pool when the
// stream ends — so N concurrent cursors over the same Seq cost N chunks of
// decoded records, not N trace copies. Records returned by Next are copies
// and may be retained by the caller indefinitely.
//
// A Cursor abandoned before end of stream simply drops its buffer to the
// garbage collector; Put-back is an optimization, not a correctness
// requirement.
type Cursor struct {
	seq    *Seq
	limit  int // records to serve (prefix length)
	served int // records handed out so far
	base   int // records in blocks[:block], i.e. Seq number of the next block's first record
	block  int // next block to decode
	br     bytes.Reader
	dec    trace.Reader
	buf    *Chunk // pooled decode buffer; nil before first fill and after release
	// cur is the served view of the current decoded chunk. It aliases
	// buf.Recs, which this Cursor owns until release; it is never exposed.
	cur []trace.Rec
	pos int // next index in cur
	err error
}

// NewCursor returns a Source over the first n records of q (n > q.Len() is
// clamped; n <= 0 yields an empty source). Cursors are cheap: many cells
// holding cursors into one shared Seq is the intended sharing model.
func NewCursor(q *Seq, n int) *Cursor {
	if n > q.Len() {
		n = q.Len()
	}
	if n < 0 {
		n = 0
	}
	return &Cursor{seq: q, limit: n}
}

// Len returns the total number of records the cursor will serve, so
// trace.Collect can size its output up front.
func (c *Cursor) Len() int { return c.limit }

// Err returns the first decode error, if any. A Seq built by Build cannot
// produce one; Err exists so corruption is loud rather than a silent
// truncation.
func (c *Cursor) Err() error { return c.err }

// Next implements trace.Source. The returned record is a copy.
func (c *Cursor) Next() (trace.Rec, bool) {
	if c.pos >= len(c.cur) && !c.fill() {
		return trace.Rec{}, false
	}
	r := c.cur[c.pos]
	c.pos++
	c.served++
	return r, true
}

// fill decodes the next block into the pooled buffer and points cur at the
// prefix of it that is still within the cursor's limit.
func (c *Cursor) fill() bool {
	if c.served >= c.limit || c.block >= len(c.seq.blocks) || c.err != nil {
		c.release()
		return false
	}
	if c.buf == nil {
		c.buf = getChunk()
	}
	b := c.seq.blocks[c.block]
	c.br.Reset(b.data)
	c.dec.Reset(&c.br, uint64(c.base))
	c.buf.Recs = c.buf.Recs[:0]
	for {
		r, ok := c.dec.Next()
		if !ok {
			break
		}
		c.buf.Recs = append(c.buf.Recs, r)
	}
	if err := c.dec.Err(); err != nil {
		c.err = err
		c.release()
		return false
	}
	c.base += b.n
	c.block++
	need := c.limit - c.served
	if need < len(c.buf.Recs) {
		c.cur = c.buf.Recs[:need]
	} else {
		c.cur = c.buf.Recs
	}
	c.pos = 0
	return len(c.cur) > 0
}

// release returns the decode buffer to the pool and drops every alias into
// it, so a drained cursor holds no chunk memory.
func (c *Cursor) release() {
	c.cur = nil
	c.pos = 0
	if c.buf != nil {
		putChunk(c.buf)
		c.buf = nil
	}
}
