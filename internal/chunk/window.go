package chunk

import "valuepred/internal/trace"

// windowCap is the initial window capacity in records. Fetch groups are at
// most a few dozen instructions (the trace cache peeks ≤ 32 ahead), so 256
// leaves ample slack; the buffer grows only if a single group ever
// outgrows it, and then stays at the high-water mark.
const windowCap = 256

// Window adapts a trace.Source to the bounded lookahead pattern the fetch
// engines need: peek a few records ahead, advance past the ones consumed,
// and take a contiguous read-only view of the records between a mark and
// the current position. It is the streaming replacement for indexing into
// a flat []trace.Rec.
//
// Ownership: the Window owns its buffer outright and refills it from the
// source as peeks demand. Views returned by View alias that buffer and are
// valid only until the next Mark — compaction may then reuse their
// storage — which is exactly the fetch.Group.Recs lifetime ("until the
// next NextGroup call"). Records before the mark are unreachable and may
// be overwritten; records in [mark, pos+lookahead) are pinned.
type Window struct {
	src  trace.Source
	buf  []trace.Rec // full-capacity backing buffer
	mark int         // start of the pinned region (current group start)
	pos  int         // consumption cursor; mark <= pos <= n
	n    int         // records filled: buf[:n] hold decoded records
	done bool        // source exhausted
}

// NewWindow returns a Window over src.
func NewWindow(src trace.Source) *Window {
	return &Window{src: src, buf: make([]trace.Rec, windowCap)}
}

// Peek returns the record k positions ahead of the cursor without
// consuming it, filling from the source as needed. ok=false means the
// trace ends before that position.
func (w *Window) Peek(k int) (trace.Rec, bool) {
	for w.pos+k >= w.n {
		if !w.fillOne() {
			return trace.Rec{}, false
		}
	}
	return w.buf[w.pos+k], true
}

// Advance consumes n records. Callers must have peeked at least n ahead —
// the fetch engines always inspect a record before consuming it.
func (w *Window) Advance(n int) { w.pos += n }

// Mark pins the current position as the start of the next view and
// releases everything before it for reuse. Taking a new mark invalidates
// all previously returned views.
func (w *Window) Mark() { w.mark = w.pos }

// View returns the records between the last Mark and the cursor as a
// read-only, capacity-capped view of the window's buffer. The view is
// valid only until the next Mark; callers that need the records longer
// must copy them (pipeline.Run copies each record into its scratch window
// in the same cycle, so the fetch path never does).
func (w *Window) View() []trace.Rec { return w.buf[w.mark:w.pos:w.pos] }

// EOF reports whether the trace is exhausted (no record at the cursor).
func (w *Window) EOF() bool {
	_, ok := w.Peek(0)
	return !ok
}

// fillOne pulls one record from the source into the buffer, compacting
// away the region before the mark first and growing only if the pinned
// region fills the whole buffer.
func (w *Window) fillOne() bool {
	if w.done {
		return false
	}
	if w.n == len(w.buf) {
		if w.mark > 0 {
			copy(w.buf, w.buf[w.mark:w.n])
			w.n -= w.mark
			w.pos -= w.mark
			w.mark = 0
		}
		if w.n == len(w.buf) {
			grown := make([]trace.Rec, 2*len(w.buf))
			copy(grown, w.buf[:w.n])
			w.buf = grown
		}
	}
	r, ok := w.src.Next()
	if !ok {
		w.done = true
		return false
	}
	w.buf[w.n] = r
	w.n++
	return true
}
