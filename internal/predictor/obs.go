package predictor

import "valuepred/internal/obs"

// observed wraps a Predictor with write-only metrics counters. The wrapped
// predictor's decisions are passed through untouched, so instrumented and
// bare predictors produce bit-identical simulations.
type observed struct {
	p         Predictor
	lookups   *obs.Counter
	hasValue  *obs.Counter
	confident *obs.Counter
	updates   *obs.Counter
}

// Instrument returns p wrapped to count its lookups and updates in reg
// under the "predictor." prefix. A StrideSource predictor stays a
// StrideSource (the banked network's distributor still sees it). With a nil
// predictor or registry, p is returned unwrapped.
func Instrument(p Predictor, reg *obs.Registry) Predictor {
	if p == nil || reg == nil {
		return p
	}
	o := observed{
		p:         p,
		lookups:   reg.Counter("predictor.lookups"),
		hasValue:  reg.Counter("predictor.lookup.has_value"),
		confident: reg.Counter("predictor.lookup.confident"),
		updates:   reg.Counter("predictor.updates"),
	}
	if ss, ok := p.(StrideSource); ok {
		return &observedStride{observed: o, ss: ss}
	}
	return &o
}

// Name implements Predictor.
func (o *observed) Name() string { return o.p.Name() }

// Lookup implements Predictor.
func (o *observed) Lookup(pc uint64) Prediction {
	pr := o.p.Lookup(pc)
	o.lookups.Inc()
	if pr.HasValue {
		o.hasValue.Inc()
	}
	if pr.Confident {
		o.confident.Inc()
	}
	return pr
}

// Update implements Predictor.
func (o *observed) Update(pc uint64, actual uint64) {
	o.updates.Inc()
	o.p.Update(pc, actual)
}

// observedStride is the StrideSource-preserving variant of observed.
type observedStride struct {
	observed
	ss StrideSource
}

// LastAndStride implements StrideSource by delegating to the wrapped
// predictor (distributor reads are not counted as lookups).
func (o *observedStride) LastAndStride(pc uint64) (uint64, int64, bool) {
	return o.ss.LastAndStride(pc)
}
