package predictor

import "valuepred/internal/trace"

// Hint classifies a static instruction for the hybrid predictor, standing in
// for the compiler-inserted opcode hints of Section 4.2 (originating in the
// profiling study [9]).
type Hint uint8

// Hint kinds.
const (
	// HintNone marks an instruction that should not be predicted at all;
	// the address router skips it, reducing bank conflicts.
	HintNone Hint = iota
	// HintLastValue routes the instruction to the last-value table.
	HintLastValue
	// HintStride routes the instruction to the (small) stride table.
	HintStride
)

// Hints supplies a hint per static instruction.
type Hints interface {
	// HintFor returns the hint for the instruction at pc.
	HintFor(pc uint64) Hint
}

// allStride routes everything to the stride table; used when a Hybrid is
// built without profile information.
type allStride struct{}

func (allStride) HintFor(uint64) Hint { return HintStride }

// Hybrid is the Section 4.2 hybrid predictor: a large last-value table plus
// a relatively small stride table, with opcode hints steering each static
// instruction to one of the tables (or to neither).
type Hybrid struct {
	last   *LastValue
	stride *StrideTable
	hints  Hints
	class  *Classifier
}

// NewHybrid returns a hybrid predictor with an infinite last-value table, a
// strideEntries-entry direct-mapped stride table and 2-bit classification.
// hints may be nil, in which case every instruction is treated as a stride
// candidate.
func NewHybrid(strideEntries int, hints Hints) *Hybrid {
	if hints == nil {
		hints = allStride{}
	}
	return &Hybrid{
		last:   NewLastValue(),
		stride: NewStrideTable(strideEntries),
		hints:  hints,
		class:  NewClassifier(2, 2),
	}
}

// Name implements Predictor.
func (p *Hybrid) Name() string { return "hybrid" }

func (p *Hybrid) tableFor(pc uint64) (Predictor, Hint) {
	h := p.hints.HintFor(pc)
	switch h {
	case HintLastValue:
		return p.last, h
	case HintStride:
		return p.stride, h
	default:
		return nil, h
	}
}

// Lookup implements Predictor.
func (p *Hybrid) Lookup(pc uint64) Prediction {
	t, _ := p.tableFor(pc)
	if t == nil {
		return Prediction{}
	}
	pr := t.Lookup(pc)
	pr.Confident = pr.HasValue && p.class.Confident(pc)
	return pr
}

// Update implements Predictor.
func (p *Hybrid) Update(pc uint64, actual uint64) {
	t, _ := p.tableFor(pc)
	if t == nil {
		return
	}
	pr := t.Lookup(pc)
	if pr.HasValue {
		p.class.Record(pc, pr.Value == actual)
	}
	t.Update(pc, actual)
}

// HintFor exposes the hint steering, used by the address router to drop
// no-predict instructions before bank arbitration.
func (p *Hybrid) HintFor(pc uint64) Hint { return p.hints.HintFor(pc) }

// LastAndStride implements StrideSource: last-value-steered instructions
// report a zero stride (the distributor then replicates the value), and
// stride-steered instructions report the stride-table state.
func (p *Hybrid) LastAndStride(pc uint64) (uint64, int64, bool) {
	t, h := p.tableFor(pc)
	if t == nil {
		return 0, 0, false
	}
	if h == HintLastValue {
		return p.last.LastAndStride(pc)
	}
	return p.stride.LastAndStride(pc)
}

var _ StrideSource = (*Hybrid)(nil)

// ProfileHints derives opcode hints from a profiling run over a trace
// prefix, mirroring the profiling-based classification of [9]: for every
// value-producing static instruction it measures last-value and stride
// accuracy and assigns the hint of the more accurate method, or HintNone
// when neither reaches minAccuracy.
type ProfileHints struct {
	hints map[uint64]Hint
}

// HintFor implements Hints. Unprofiled instructions default to HintStride
// so that cold code is still predictable.
func (p *ProfileHints) HintFor(pc uint64) Hint {
	if h, ok := p.hints[pc]; ok {
		return h
	}
	return HintStride
}

// Kind returns the recorded hint and whether pc was profiled.
func (p *ProfileHints) Kind(pc uint64) (Hint, bool) {
	h, ok := p.hints[pc]
	return h, ok
}

// Profile runs last-value and stride predictors over recs and builds hints.
// minAccuracy is the fraction (0..1) below which an instruction is marked
// HintNone.
func Profile(recs []trace.Rec, minAccuracy float64) *ProfileHints {
	return ProfileSource(trace.NewSliceSource(recs), minAccuracy)
}

// ProfileSource is Profile over a streaming record source: profiling state
// is per static PC, so the dynamic trace is consumed record-at-a-time and
// never materialized.
func ProfileSource(src trace.Source, minAccuracy float64) *ProfileHints {
	type counts struct {
		total, lastOK, strideOK uint64
	}
	lv := NewLastValue()
	st := NewStride()
	per := make(map[uint64]*counts)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if !r.WritesValue() {
			continue
		}
		c := per[r.PC]
		if c == nil {
			c = &counts{}
			per[r.PC] = c
		}
		c.total++
		if pr := lv.Lookup(r.PC); pr.HasValue && pr.Value == r.Val {
			c.lastOK++
		}
		if pr := st.Lookup(r.PC); pr.HasValue && pr.Value == r.Val {
			c.strideOK++
		}
		lv.Update(r.PC, r.Val)
		st.Update(r.PC, r.Val)
	}
	hints := make(map[uint64]Hint, len(per))
	for pc, c := range per {
		best := c.strideOK
		hint := HintStride
		if c.lastOK >= c.strideOK {
			best = c.lastOK
			hint = HintLastValue
		}
		if float64(best) < minAccuracy*float64(c.total) {
			hint = HintNone
		}
		hints[pc] = hint
	}
	return &ProfileHints{hints: hints}
}
