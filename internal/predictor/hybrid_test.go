package predictor

import (
	"testing"

	"valuepred/internal/isa"
	"valuepred/internal/trace"
)

// mapHints is a test Hints implementation.
type mapHints map[uint64]Hint

func (m mapHints) HintFor(pc uint64) Hint { return m[pc] }

func TestHybridSteering(t *testing.T) {
	hints := mapHints{
		0x1000: HintLastValue,
		0x1004: HintStride,
		0x1008: HintNone,
	}
	p := NewHybrid(64, hints)

	// Last-value-steered PC: repeating value predicted, stride ignored.
	p.Update(0x1000, 5)
	p.Update(0x1000, 5)
	p.Update(0x1000, 5)
	if pr := p.Lookup(0x1000); !pr.HasValue || pr.Value != 5 || !pr.Confident {
		t.Errorf("last-value steering: %+v", pr)
	}
	if _, stride, ok := p.LastAndStride(0x1000); !ok || stride != 0 {
		t.Error("last-value table must report zero stride")
	}

	// Stride-steered PC.
	for i := uint64(1); i <= 4; i++ {
		p.Update(0x1004, i*10)
	}
	if pr := p.Lookup(0x1004); !pr.HasValue || pr.Value != 50 {
		t.Errorf("stride steering: %+v", pr)
	}

	// No-predict PC never produces anything and never trains.
	p.Update(0x1008, 1)
	p.Update(0x1008, 1)
	if pr := p.Lookup(0x1008); pr.HasValue {
		t.Errorf("no-predict PC produced %+v", pr)
	}
	if _, _, ok := p.LastAndStride(0x1008); ok {
		t.Error("no-predict PC exposed stride state")
	}
	if p.HintFor(0x1008) != HintNone {
		t.Error("HintFor not exposed")
	}
}

func TestHybridDefaultsToStride(t *testing.T) {
	p := NewHybrid(64, nil)
	p.Update(0x2000, 3)
	p.Update(0x2000, 6)
	if pr := p.Lookup(0x2000); !pr.HasValue || pr.Value != 9 {
		t.Errorf("default steering: %+v", pr)
	}
}

// mkTrace builds a synthetic trace with one PC producing a repeating value,
// one producing a stride, and one producing noise.
func mkHintTrace(n int) []trace.Rec {
	var recs []trace.Rec
	noise := uint64(0x123456789)
	for i := 0; i < n; i++ {
		recs = append(recs,
			trace.Rec{Seq: uint64(3 * i), PC: 0x1000, Op: isa.LI, Rd: isa.T0, Val: 7},
			trace.Rec{Seq: uint64(3*i + 1), PC: 0x1004, Op: isa.ADDI, Rd: isa.T1, Val: uint64(10 * i)},
		)
		noise = noise*6364136223846793005 + 1442695040888963407
		recs = append(recs, trace.Rec{Seq: uint64(3*i + 2), PC: 0x1008, Op: isa.XOR, Rd: isa.T2, Val: noise})
	}
	return recs
}

func TestProfileHints(t *testing.T) {
	h := Profile(mkHintTrace(200), 0.5)
	if k, ok := h.Kind(0x1000); !ok || k != HintLastValue {
		t.Errorf("repeating PC hint = %v, %v", k, ok)
	}
	if k, ok := h.Kind(0x1004); !ok || k != HintStride {
		t.Errorf("striding PC hint = %v, %v", k, ok)
	}
	if k, ok := h.Kind(0x1008); !ok || k != HintNone {
		t.Errorf("noisy PC hint = %v, %v", k, ok)
	}
	// Unprofiled PCs default to stride.
	if h.HintFor(0x9999) != HintStride {
		t.Error("unprofiled PC must default to HintStride")
	}
}

func TestEvaluate(t *testing.T) {
	recs := mkHintTrace(100)
	lv := Evaluate(NewLastValue(), recs)
	if lv.Eligible != 300 {
		t.Fatalf("eligible = %d", lv.Eligible)
	}
	// The repeating PC should be near-perfect for last-value: 99/100 at
	// least; the stride PC contributes 0; noise ~0.
	if lv.HitRate() < 0.30 || lv.HitRate() > 0.40 {
		t.Errorf("last-value hit rate = %.2f", lv.HitRate())
	}
	st := Evaluate(NewStride(), recs)
	// Stride gets both the repeating and the striding PC.
	if st.HitRate() < 0.60 {
		t.Errorf("stride hit rate = %.2f", st.HitRate())
	}
	cs := Evaluate(NewClassifiedStride(), recs)
	if cs.ConfidentHitRate() < st.HitRate() {
		t.Errorf("classifier did not filter: confident %.2f < raw %.2f",
			cs.ConfidentHitRate(), st.HitRate())
	}
	if cs.ConfidentAttempted >= cs.Attempted {
		t.Error("classifier endorsed everything")
	}
	// Accuracy's stringer is informative.
	if got := lv.String(); got == "" {
		t.Error("empty accuracy string")
	}
	if lv.Coverage() > lv.HitRate() {
		t.Error("coverage cannot exceed hit rate")
	}
	if cs.ConfidentCoverage() > cs.Coverage() {
		t.Error("confident coverage cannot exceed coverage")
	}
}

func TestEvaluateEmptyTrace(t *testing.T) {
	a := Evaluate(NewStride(), nil)
	if a.Eligible != 0 || a.HitRate() != 0 || a.Coverage() != 0 || a.ConfidentHitRate() != 0 {
		t.Errorf("empty trace accuracy: %+v", a)
	}
}
