package predictor

import (
	"testing"
	"testing/quick"
)

func TestLastValue(t *testing.T) {
	p := NewLastValue()
	if pr := p.Lookup(100); pr.HasValue {
		t.Error("cold table produced a value")
	}
	p.Update(100, 42)
	if pr := p.Lookup(100); !pr.HasValue || pr.Value != 42 || !pr.Confident {
		t.Errorf("lookup = %+v", pr)
	}
	p.Update(100, 43)
	if pr := p.Lookup(100); pr.Value != 43 {
		t.Errorf("last value not updated: %+v", pr)
	}
	// Other PCs are independent.
	if pr := p.Lookup(200); pr.HasValue {
		t.Error("unrelated PC hit")
	}
	if last, stride, ok := p.LastAndStride(100); !ok || last != 43 || stride != 0 {
		t.Errorf("LastAndStride = %d, %d, %v", last, stride, ok)
	}
}

func TestStrideWarmupAndPrediction(t *testing.T) {
	p := NewStride()
	if pr := p.Lookup(8); pr.HasValue {
		t.Error("cold stride table produced a value")
	}
	p.Update(8, 10)
	// After one occurrence the stride is 0: degenerate last-value.
	if pr := p.Lookup(8); !pr.HasValue || pr.Value != 10 {
		t.Errorf("after 1 update: %+v", pr)
	}
	p.Update(8, 13)
	if pr := p.Lookup(8); pr.Value != 16 {
		t.Errorf("stride prediction = %d, want 16", pr.Value)
	}
	p.Update(8, 16)
	if pr := p.Lookup(8); pr.Value != 19 {
		t.Errorf("stride prediction = %d, want 19", pr.Value)
	}
	// Stride change retrains.
	p.Update(8, 100)
	if pr := p.Lookup(8); pr.Value != 184 {
		t.Errorf("after stride change: %d, want 184", pr.Value)
	}
	if last, stride, ok := p.LastAndStride(8); !ok || last != 100 || stride != 84 {
		t.Errorf("LastAndStride = %d, %d, %v", last, stride, ok)
	}
}

// TestStridePerfectOnArithmetic is the core property: a stride predictor is
// exact on any arithmetic sequence after two observations.
func TestStridePerfectOnArithmetic(t *testing.T) {
	f := func(start uint64, delta int64, n uint8) bool {
		p := NewStride()
		v := start
		p.Update(4096, v)
		v += uint64(delta)
		p.Update(4096, v)
		for i := 0; i < int(n%64)+3; i++ {
			v += uint64(delta)
			pr := p.Lookup(4096)
			if !pr.HasValue || pr.Value != v {
				return false
			}
			p.Update(4096, v)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrideNegativeStride(t *testing.T) {
	p := NewStride()
	p.Update(4, 100)
	p.Update(4, 90)
	if pr := p.Lookup(4); pr.Value != 80 {
		t.Errorf("negative stride prediction = %d, want 80", pr.Value)
	}
}

func TestStrideTableEviction(t *testing.T) {
	p := NewStrideTable(4)
	// PCs 0x1000 and 0x1040 collide in a 4-entry table indexed by pc>>2
	// (indices (0x1000>>2)&3 = 0 and (0x1040>>2)&3 = 0).
	p.Update(0x1000, 5)
	p.Update(0x1000, 10)
	if pr := p.Lookup(0x1000); !pr.HasValue || pr.Value != 15 {
		t.Fatalf("warm entry: %+v", pr)
	}
	p.Update(0x1040, 7) // evicts
	if pr := p.Lookup(0x1000); pr.HasValue {
		t.Error("evicted entry still hits")
	}
	if pr := p.Lookup(0x1040); !pr.HasValue || pr.Value != 7 {
		t.Errorf("new occupant: %+v", pr)
	}
	// Non-colliding PC lives in a different set.
	p.Update(0x1004, 1)
	if pr := p.Lookup(0x1040); !pr.HasValue {
		t.Error("non-colliding update evicted the entry")
	}
	if _, _, ok := p.LastAndStride(0x1000); ok {
		t.Error("LastAndStride hit for evicted PC")
	}
}

func TestStrideTableBadSizePanics(t *testing.T) {
	for _, size := range []int{0, -8, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d did not panic", size)
				}
			}()
			NewStrideTable(size)
		}()
	}
}

func TestClassifier(t *testing.T) {
	c := NewClassifier(2, 2)
	if c.Confident(4) {
		t.Error("cold counter confident")
	}
	c.Record(4, true)
	if c.Confident(4) {
		t.Error("confident after one correct")
	}
	c.Record(4, true)
	if !c.Confident(4) {
		t.Error("not confident after two corrects")
	}
	c.Record(4, true)
	c.Record(4, true) // saturate at 3
	c.Record(4, false)
	if !c.Confident(4) {
		t.Error("single miss dropped saturated counter below threshold")
	}
	c.Record(4, false)
	if c.Confident(4) {
		t.Error("still confident after two misses")
	}
	// Decrement saturates at zero.
	c.Record(4, false)
	c.Record(4, false)
	c.Record(4, true)
	c.Record(4, true)
	if !c.Confident(4) {
		t.Error("counter did not recover")
	}
}

func TestClassifierConfigPanics(t *testing.T) {
	for _, cfg := range [][2]int{{0, 0}, {7, 1}, {2, 4}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %v did not panic", cfg)
				}
			}()
			NewClassifier(cfg[0], cfg[1])
		}()
	}
}

func TestClassifiedStride(t *testing.T) {
	p := NewClassifiedStride()
	if p.Name() != "stride+2bc" {
		t.Errorf("name = %q", p.Name())
	}
	// Feed a stride sequence: the first prediction is unconfident even when
	// the table can produce a value.
	p.Update(16, 10)
	p.Update(16, 20)
	pr := p.Lookup(16)
	if !pr.HasValue || pr.Confident {
		t.Errorf("confidence too eager: %+v", pr)
	}
	// Two correct predictions later the classifier endorses.
	p.Update(16, 30)
	p.Update(16, 40)
	pr = p.Lookup(16)
	if !pr.Confident || pr.Value != 50 {
		t.Errorf("classifier did not warm up: %+v", pr)
	}
	// A burst of erratic values withdraws confidence.
	p.Update(16, 7)
	p.Update(16, 1000)
	p.Update(16, 3)
	if pr := p.Lookup(16); pr.Confident {
		t.Errorf("still confident on noise: %+v", pr)
	}
	if _, _, ok := p.LastAndStride(16); !ok {
		t.Error("classified stride must expose LastAndStride")
	}
}

func TestPredictorNames(t *testing.T) {
	if NewLastValue().Name() != "last-value" || NewStride().Name() != "stride" {
		t.Error("names wrong")
	}
	if NewStrideTable(64).Name() != "stride[64]" {
		t.Errorf("table name = %q", NewStrideTable(64).Name())
	}
	if NewHybrid(64, nil).Name() != "hybrid" {
		t.Error("hybrid name wrong")
	}
}
