package predictor

import (
	"fmt"

	"valuepred/internal/trace"
)

// Accuracy summarises a predictor evaluation over a trace.
type Accuracy struct {
	// Eligible counts value-producing dynamic instructions.
	Eligible uint64
	// Attempted counts lookups that produced a value.
	Attempted uint64
	// Correct counts attempted predictions matching the committed value.
	Correct uint64
	// ConfidentAttempted and ConfidentCorrect restrict the two counts above
	// to predictions the classifier endorsed.
	ConfidentAttempted uint64
	ConfidentCorrect   uint64
}

// HitRate returns Correct/Attempted (0 when nothing was attempted).
func (a Accuracy) HitRate() float64 { return ratio(a.Correct, a.Attempted) }

// Coverage returns Correct/Eligible: the fraction of all value-producing
// instructions predicted correctly.
func (a Accuracy) Coverage() float64 { return ratio(a.Correct, a.Eligible) }

// ConfidentHitRate returns ConfidentCorrect/ConfidentAttempted.
func (a Accuracy) ConfidentHitRate() float64 {
	return ratio(a.ConfidentCorrect, a.ConfidentAttempted)
}

// ConfidentCoverage returns ConfidentCorrect/Eligible.
func (a Accuracy) ConfidentCoverage() float64 { return ratio(a.ConfidentCorrect, a.Eligible) }

func ratio(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// String renders the accuracy as a short report.
func (a Accuracy) String() string {
	return fmt.Sprintf("eligible=%d attempted=%d hit=%.1f%% coverage=%.1f%% confident-hit=%.1f%%",
		a.Eligible, a.Attempted, 100*a.HitRate(), 100*a.Coverage(), 100*a.ConfidentHitRate())
}

// Evaluate runs p over every value-producing record of recs using the
// lookup-then-update protocol and returns accuracy statistics.
func Evaluate(p Predictor, recs []trace.Rec) Accuracy {
	return EvaluateSource(p, trace.NewSliceSource(recs))
}

// EvaluateSource is Evaluate over a streaming record source: records are
// consumed one at a time and never retained, so the trace need not be
// materialized.
func EvaluateSource(p Predictor, src trace.Source) Accuracy {
	var a Accuracy
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if !r.WritesValue() {
			continue
		}
		a.Eligible++
		pr := p.Lookup(r.PC)
		if pr.HasValue {
			a.Attempted++
			if pr.Value == r.Val {
				a.Correct++
			}
			if pr.Confident {
				a.ConfidentAttempted++
				if pr.Value == r.Val {
					a.ConfidentCorrect++
				}
			}
		}
		p.Update(r.PC, r.Val)
	}
	return a
}

// ClassAccuracy breaks predictor accuracy down by instruction class,
// distinguishing loads (the only targets of the original load-value
// prediction [13]) from ALU instructions and jumps (link values).
type ClassAccuracy struct {
	ALU  Accuracy
	Load Accuracy
	Jump Accuracy
}

// EvaluateByClass runs p over recs like Evaluate but accumulates accuracy
// separately per instruction class.
func EvaluateByClass(p Predictor, recs []trace.Rec) ClassAccuracy {
	return EvaluateByClassSource(p, trace.NewSliceSource(recs))
}

// EvaluateByClassSource is EvaluateByClass over a streaming record source.
func EvaluateByClassSource(p Predictor, src trace.Source) ClassAccuracy {
	var ca ClassAccuracy
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if !r.WritesValue() {
			continue
		}
		a := &ca.ALU
		switch {
		case r.Op.IsLoad():
			a = &ca.Load
		case r.Op.IsJump():
			a = &ca.Jump
		}
		a.Eligible++
		pr := p.Lookup(r.PC)
		if pr.HasValue {
			a.Attempted++
			if pr.Value == r.Val {
				a.Correct++
			}
			if pr.Confident {
				a.ConfidentAttempted++
				if pr.Value == r.Val {
					a.ConfidentCorrect++
				}
			}
		}
		p.Update(r.PC, r.Val)
	}
	return ca
}
