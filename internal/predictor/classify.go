package predictor

import "fmt"

// Classifier is the paper's classification unit: a set of per-instruction
// saturating counters that accumulate confidence in the predictor's output
// for that instruction. A prediction is endorsed only when the counter is at
// or above the confidence threshold.
type Classifier struct {
	counters  map[uint64]uint8
	maxCount  uint8
	threshold uint8
}

// NewClassifier returns a classifier with bits-wide saturating counters
// (bits in 1..6) endorsing predictions when the counter >= threshold. The
// paper's configuration is NewClassifier(2, 2): 2-bit counters, predict in
// the upper half.
func NewClassifier(bits, threshold int) *Classifier {
	if bits < 1 || bits > 6 {
		panic(fmt.Sprintf("predictor: classifier counter width %d out of range", bits))
	}
	maxCount := uint8(1<<bits - 1)
	if threshold < 0 || uint8(threshold) > maxCount {
		panic(fmt.Sprintf("predictor: classifier threshold %d out of range for %d bits", threshold, bits))
	}
	return &Classifier{
		counters:  make(map[uint64]uint8),
		maxCount:  maxCount,
		threshold: uint8(threshold),
	}
}

// Confident reports whether the counter for pc endorses speculation.
func (c *Classifier) Confident(pc uint64) bool {
	return c.counters[pc] >= c.threshold
}

// Record trains the counter for pc with the correctness of the last
// prediction: saturating increment when correct, saturating decrement when
// wrong.
func (c *Classifier) Record(pc uint64, correct bool) {
	n := c.counters[pc]
	if correct {
		if n < c.maxCount {
			c.counters[pc] = n + 1
		}
		return
	}
	if n > 0 {
		c.counters[pc] = n - 1
	}
}

// Classified combines an inner value predictor with a classification unit:
// the paper's "stride predictor with a set of saturated counters". The
// inner table is always consulted and trained; the classifier gates the
// Confident bit.
type Classified struct {
	Inner Predictor
	Class *Classifier
}

// NewClassifiedStride returns the paper's Section 3/5 configuration: an
// infinite stride predictor gated by 2-bit saturating counters.
func NewClassifiedStride() *Classified {
	return &Classified{Inner: NewStride(), Class: NewClassifier(2, 2)}
}

// Name implements Predictor.
func (p *Classified) Name() string { return p.Inner.Name() + "+2bc" }

// Lookup implements Predictor.
func (p *Classified) Lookup(pc uint64) Prediction {
	pr := p.Inner.Lookup(pc)
	pr.Confident = pr.HasValue && p.Class.Confident(pc)
	return pr
}

// Update implements Predictor: it trains the classifier with whether the
// inner predictor would have been correct, then updates the inner table.
func (p *Classified) Update(pc uint64, actual uint64) {
	pr := p.Inner.Lookup(pc)
	if pr.HasValue {
		p.Class.Record(pc, pr.Value == actual)
	}
	p.Inner.Update(pc, actual)
}

// LastAndStride implements StrideSource when the inner predictor does.
func (p *Classified) LastAndStride(pc uint64) (uint64, int64, bool) {
	if s, ok := p.Inner.(StrideSource); ok {
		return s.LastAndStride(pc)
	}
	return 0, 0, false
}
