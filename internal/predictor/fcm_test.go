package predictor

import (
	"testing"
	"testing/quick"
)

func TestFCMLearnsPeriodicSequence(t *testing.T) {
	// The sequence 1,5,2,1,5,2,... is unpredictable by last-value and
	// stride but trivial for an order-2 FCM after one period.
	seq := []uint64{1, 5, 2}
	p := NewFCM(2)
	pc := uint64(0x1000)
	// Warm one and a half periods.
	for i := 0; i < 6; i++ {
		p.Update(pc, seq[i%3])
	}
	correct := 0
	for i := 6; i < 30; i++ {
		want := seq[i%3]
		pr := p.Lookup(pc)
		if pr.HasValue && pr.Value == want {
			correct++
		}
		p.Update(pc, want)
	}
	if correct != 24 {
		t.Errorf("FCM got %d/24 on a period-3 sequence", correct)
	}
	// Stride fails on the same sequence.
	st := NewStride()
	for i := 0; i < 6; i++ {
		st.Update(pc, seq[i%3])
	}
	strideCorrect := 0
	for i := 6; i < 30; i++ {
		want := seq[i%3]
		if pr := st.Lookup(pc); pr.HasValue && pr.Value == want {
			strideCorrect++
		}
		st.Update(pc, want)
	}
	if strideCorrect >= correct {
		t.Errorf("stride (%d) should lose to FCM (%d) on periodic values", strideCorrect, correct)
	}
}

func TestFCMColdAndWarmup(t *testing.T) {
	p := NewFCM(3)
	pc := uint64(0x2000)
	if pr := p.Lookup(pc); pr.HasValue {
		t.Error("cold FCM produced a value")
	}
	p.Update(pc, 1)
	p.Update(pc, 2)
	if pr := p.Lookup(pc); pr.HasValue {
		t.Error("FCM predicted with incomplete history")
	}
	p.Update(pc, 3)
	// Full history now, but the context is new.
	if pr := p.Lookup(pc); pr.HasValue {
		t.Error("FCM predicted an unseen context")
	}
}

func TestFCMPerPCIsolation(t *testing.T) {
	p := NewFCM(1)
	p.Update(0x1000, 7)
	p.Update(0x1000, 9)
	// Same single-value history at a different PC must not alias.
	p.Update(0x2000, 7)
	if pr := p.Lookup(0x2000); pr.HasValue {
		t.Errorf("cross-PC context aliasing: %+v", pr)
	}
}

// TestFCMPerfectOnAnyPeriodicSequence is the FCM property: any sequence of
// period <= order+? (period p with distinct contexts) is predicted exactly
// once each context has been observed.
func TestFCMPerfectOnAnyPeriodicSequence(t *testing.T) {
	f := func(a, b, c, d uint64, n uint8) bool {
		seq := []uint64{a, b, c, d}
		// Make contexts unambiguous for order 3 unless values collide,
		// which is fine — collisions only make prediction easier.
		p := NewFCM(3)
		pc := uint64(0x3000)
		for i := 0; i < 8; i++ {
			p.Update(pc, seq[i%4])
		}
		for i := 8; i < 8+int(n%40)+4; i++ {
			want := seq[i%4]
			pr := p.Lookup(pc)
			if !pr.HasValue || pr.Value != want {
				return false
			}
			p.Update(pc, want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFCMOrderPanics(t *testing.T) {
	for _, order := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %d did not panic", order)
				}
			}()
			NewFCM(order)
		}()
	}
}

func TestClassifiedFCM(t *testing.T) {
	p := NewClassifiedFCM(2)
	if p.Name() != "fcm+2bc" {
		t.Errorf("name = %q", p.Name())
	}
	pc := uint64(0x4000)
	seq := []uint64{3, 1, 4}
	for i := 0; i < 12; i++ {
		p.Update(pc, seq[i%3])
	}
	pr := p.Lookup(pc)
	if !pr.HasValue || !pr.Confident || pr.Value != seq[12%3] {
		t.Errorf("classified FCM after warmup: %+v", pr)
	}
}
