package predictor

import "valuepred/internal/trace"

// TwoDeltaStride is the two-delta stride predictor from Gabbay &
// Mendelson's technical reports ([7], [8]): the stride used for prediction
// is only replaced when the same new delta has been observed twice in a
// row. This filters the one-off delta glitches that occur when a loop
// restarts, which cost the plain stride predictor two mispredictions per
// discontinuity instead of one.
type TwoDeltaStride struct {
	table map[uint64]*twoDeltaEntry
}

type twoDeltaEntry struct {
	last    uint64
	stride1 int64 // committed stride (used for prediction)
	stride2 int64 // candidate stride (most recent delta)
	warm    bool
}

// NewTwoDeltaStride returns an infinite two-delta stride predictor.
func NewTwoDeltaStride() *TwoDeltaStride {
	return &TwoDeltaStride{table: make(map[uint64]*twoDeltaEntry)}
}

// Name implements Predictor.
func (p *TwoDeltaStride) Name() string { return "stride2d" }

// Lookup implements Predictor.
func (p *TwoDeltaStride) Lookup(pc uint64) Prediction {
	e, ok := p.table[pc]
	if !ok || !e.warm {
		return Prediction{}
	}
	return Prediction{Value: e.last + uint64(e.stride1), HasValue: true, Confident: true}
}

// Update implements Predictor.
func (p *TwoDeltaStride) Update(pc uint64, actual uint64) {
	e, ok := p.table[pc]
	if !ok {
		p.table[pc] = &twoDeltaEntry{last: actual, warm: true}
		return
	}
	delta := int64(actual - e.last)
	if delta == e.stride2 {
		// The candidate repeated: commit it.
		e.stride1 = delta
	}
	e.stride2 = delta
	e.last = actual
}

// LastAndStride implements StrideSource with the committed stride.
func (p *TwoDeltaStride) LastAndStride(pc uint64) (uint64, int64, bool) {
	e, ok := p.table[pc]
	if !ok || !e.warm {
		return 0, 0, false
	}
	return e.last, e.stride1, true
}

// NewClassifiedTwoDelta returns a two-delta stride predictor gated by
// 2-bit confidence counters.
func NewClassifiedTwoDelta() *Classified {
	return &Classified{Inner: NewTwoDeltaStride(), Class: NewClassifier(2, 2)}
}

// LoadsOnly restricts an inner predictor to load instructions, modelling
// the original load-value prediction of Lipasti, Wilkerson & Shen (the
// paper's reference [13]). The machine models pass every value-producing
// instruction through the predictor; this wrapper ignores the non-loads.
type LoadsOnly struct {
	Inner Predictor
	// IsLoad reports whether the instruction at pc is a load; the wrapper
	// learns this from the trace itself: Update marks PCs.
	loads map[uint64]bool
}

// NewLoadsOnly wraps inner so that only PCs registered as loads predict.
func NewLoadsOnly(inner Predictor) *LoadsOnly {
	return &LoadsOnly{Inner: inner, loads: make(map[uint64]bool)}
}

// Name implements Predictor.
func (p *LoadsOnly) Name() string { return p.Inner.Name() + "/loads" }

// MarkLoad registers pc as a load instruction.
func (p *LoadsOnly) MarkLoad(pc uint64) { p.loads[pc] = true }

// Lookup implements Predictor: non-loads never predict.
func (p *LoadsOnly) Lookup(pc uint64) Prediction {
	if !p.loads[pc] {
		return Prediction{}
	}
	return p.Inner.Lookup(pc)
}

// Update implements Predictor: only loads train the inner table.
func (p *LoadsOnly) Update(pc uint64, actual uint64) {
	if p.loads[pc] {
		p.Inner.Update(pc, actual)
	}
}

// LastAndStride implements StrideSource for registered loads.
func (p *LoadsOnly) LastAndStride(pc uint64) (uint64, int64, bool) {
	if !p.loads[pc] {
		return 0, 0, false
	}
	if s, ok := p.Inner.(StrideSource); ok {
		return s.LastAndStride(pc)
	}
	return 0, 0, false
}

var (
	_ StrideSource = (*TwoDeltaStride)(nil)
	_ StrideSource = (*LoadsOnly)(nil)
)

// NewLoadsOnlyFromTrace wraps inner with every load PC of recs registered.
func NewLoadsOnlyFromTrace(inner Predictor, recs []trace.Rec) *LoadsOnly {
	return NewLoadsOnlyFromSource(inner, trace.NewSliceSource(recs))
}

// NewLoadsOnlyFromSource is NewLoadsOnlyFromTrace over a streaming record
// source; only the static load PCs are retained.
func NewLoadsOnlyFromSource(inner Predictor, src trace.Source) *LoadsOnly {
	p := NewLoadsOnly(inner)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Op.IsLoad() {
			p.MarkLoad(r.PC)
		}
	}
	return p
}
