package predictor

import (
	"testing"

	"valuepred/internal/isa"
	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

func TestTwoDeltaFiltersGlitches(t *testing.T) {
	// A loop index 0,1,2,3 that restarts at 0: the restart delta (-3)
	// appears once per period. The plain stride predictor mispredicts
	// twice per period (at the glitch and right after it); two-delta
	// mispredicts only once.
	seq := []uint64{0, 1, 2, 3}
	count := func(p Predictor) int {
		pc := uint64(0x1000)
		wrong := 0
		for i := 0; i < 80; i++ {
			v := seq[i%4]
			pr := p.Lookup(pc)
			if pr.HasValue && pr.Value != v {
				wrong++
			}
			p.Update(pc, v)
		}
		return wrong
	}
	plain := count(NewStride())
	twoDelta := count(NewTwoDeltaStride())
	if twoDelta >= plain {
		t.Errorf("two-delta (%d wrong) not better than plain stride (%d wrong)", twoDelta, plain)
	}
}

func TestTwoDeltaPerfectOnArithmetic(t *testing.T) {
	p := NewTwoDeltaStride()
	pc := uint64(0x2000)
	p.Update(pc, 10)
	p.Update(pc, 17)
	p.Update(pc, 24) // delta 7 seen twice: committed
	for v := uint64(31); v < 101; v += 7 {
		pr := p.Lookup(pc)
		if !pr.HasValue || pr.Value != v {
			t.Fatalf("predicted %d, want %d", pr.Value, v)
		}
		p.Update(pc, v)
	}
	if last, stride, ok := p.LastAndStride(pc); !ok || stride != 7 || last != 94 {
		t.Errorf("LastAndStride = %d, %d, %v", last, stride, ok)
	}
}

func TestTwoDeltaCold(t *testing.T) {
	p := NewTwoDeltaStride()
	if pr := p.Lookup(1); pr.HasValue {
		t.Error("cold table predicted")
	}
	p.Update(4, 5)
	// One observation: degenerate last-value (stride 0).
	if pr := p.Lookup(4); !pr.HasValue || pr.Value != 5 {
		t.Errorf("after one update: %+v", pr)
	}
	if NewClassifiedTwoDelta().Name() != "stride2d+2bc" {
		t.Error("classified two-delta name wrong")
	}
}

func TestLoadsOnly(t *testing.T) {
	recs := []trace.Rec{
		{Seq: 0, PC: 0x1000, Op: isa.LD, Rd: isa.T0, Val: 5},
		{Seq: 1, PC: 0x1004, Op: isa.ADDI, Rd: isa.T1, Val: 6},
	}
	p := NewLoadsOnlyFromTrace(NewLastValue(), recs)
	if p.Name() != "last-value/loads" {
		t.Errorf("name = %q", p.Name())
	}
	// Train both PCs; only the load learns.
	p.Update(0x1000, 5)
	p.Update(0x1004, 6)
	if pr := p.Lookup(0x1000); !pr.HasValue || pr.Value != 5 {
		t.Errorf("load not predicted: %+v", pr)
	}
	if pr := p.Lookup(0x1004); pr.HasValue {
		t.Errorf("non-load predicted: %+v", pr)
	}
	if _, _, ok := p.LastAndStride(0x1004); ok {
		t.Error("non-load exposed stride state")
	}
	if _, _, ok := p.LastAndStride(0x1000); !ok {
		t.Error("load missing stride state")
	}
}

func TestLoadsOnlyCoversFewer(t *testing.T) {
	recs := workload.MustTrace("vortex", 1, 80_000)
	all := Evaluate(NewClassifiedStride(), recs)
	loads := Evaluate(NewLoadsOnlyFromTrace(NewClassifiedStride(), recs), recs)
	if loads.Attempted >= all.Attempted {
		t.Errorf("loads-only attempted %d >= all-inst %d", loads.Attempted, all.Attempted)
	}
	if loads.Attempted == 0 {
		t.Error("loads-only predicted nothing")
	}
}

func TestEvaluateByClass(t *testing.T) {
	recs := workload.MustTrace("li", 1, 40_000)
	ca := EvaluateByClass(NewStride(), recs)
	total := ca.ALU.Eligible + ca.Load.Eligible + ca.Jump.Eligible
	plain := Evaluate(NewStride(), recs)
	if total != plain.Eligible {
		t.Errorf("class eligibles %d != total %d", total, plain.Eligible)
	}
	if ca.ALU.Correct+ca.Load.Correct+ca.Jump.Correct != plain.Correct {
		t.Error("class corrects do not sum to the total")
	}
	if ca.Load.Eligible == 0 {
		t.Error("li workload has no loads")
	}
	if ca.Jump.Eligible == 0 {
		t.Error("no link values recorded (li is call-heavy)")
	}
}
