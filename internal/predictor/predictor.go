// Package predictor implements the value predictors studied in the paper:
// last-value prediction (Lipasti et al.), stride value prediction (Gabbay &
// Mendelson), a 2-bit saturating-counter classification unit, and the
// hybrid last-value + stride predictor with opcode hints discussed in
// Section 4.2. Tables come in infinite (map-backed) and finite
// (direct-mapped, tagged) variants.
//
// The simulation protocol mirrors the paper: the table is looked up at
// fetch and updated speculatively; because the trace carries the committed
// value, Update is called with the actual outcome immediately after Lookup,
// which is equivalent to a speculative update that is corrected as soon as
// the value is known.
package predictor

import "fmt"

// Prediction is the outcome of a table lookup.
type Prediction struct {
	// Value is the predicted destination value, meaningful when HasValue.
	Value uint64
	// HasValue reports whether the table could produce a value (entry
	// present and warm).
	HasValue bool
	// Confident reports whether the classification unit endorses using the
	// value for speculative execution. Predictors without a classifier set
	// Confident whenever HasValue.
	Confident bool
}

// Predictor is a PC-indexed value predictor.
type Predictor interface {
	// Lookup returns the prediction for the instruction at pc.
	Lookup(pc uint64) Prediction
	// Update records the actual outcome value of the instruction at pc.
	Update(pc uint64, actual uint64)
	// Name identifies the predictor in reports.
	Name() string
}

// StrideSource is implemented by predictors that can expose their (last,
// stride) pair for a PC. The value distributor of the banked prediction
// network (internal/core) uses it to expand one merged reply into the value
// sequence X, X+Δ, X+2Δ, … for multiple copies of the same instruction.
type StrideSource interface {
	// LastAndStride returns the last committed value and current stride for
	// pc, with ok=false when the table has no warm entry.
	LastAndStride(pc uint64) (last uint64, stride int64, ok bool)
}

// --- last-value predictor ---

// LastValue predicts that an instruction produces the same value as its
// previous dynamic instance.
type LastValue struct {
	table map[uint64]uint64
}

// NewLastValue returns an infinite last-value predictor.
func NewLastValue() *LastValue { return &LastValue{table: make(map[uint64]uint64)} }

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

// Lookup implements Predictor.
func (p *LastValue) Lookup(pc uint64) Prediction {
	v, ok := p.table[pc]
	return Prediction{Value: v, HasValue: ok, Confident: ok}
}

// Update implements Predictor.
func (p *LastValue) Update(pc uint64, actual uint64) { p.table[pc] = actual }

// LastAndStride implements StrideSource with a zero stride, so a merged
// last-value reply distributes the same value to every copy.
func (p *LastValue) LastAndStride(pc uint64) (uint64, int64, bool) {
	v, ok := p.table[pc]
	return v, 0, ok
}

// --- stride predictor ---

type strideEntry struct {
	last   uint64
	stride int64
	warm   bool // true after the first update (a value exists)
}

// Stride predicts last + stride, where stride is the delta between the two
// most recent values. A single occurrence degenerates to last-value
// prediction (stride 0), matching the predictor of [7], [8].
type Stride struct {
	table map[uint64]*strideEntry
}

// NewStride returns an infinite stride predictor.
func NewStride() *Stride { return &Stride{table: make(map[uint64]*strideEntry)} }

// Name implements Predictor.
func (p *Stride) Name() string { return "stride" }

// Lookup implements Predictor.
func (p *Stride) Lookup(pc uint64) Prediction {
	e, ok := p.table[pc]
	if !ok || !e.warm {
		return Prediction{}
	}
	v := e.last + uint64(e.stride)
	return Prediction{Value: v, HasValue: true, Confident: true}
}

// Update implements Predictor.
func (p *Stride) Update(pc uint64, actual uint64) {
	e, ok := p.table[pc]
	if !ok {
		p.table[pc] = &strideEntry{last: actual, warm: true}
		return
	}
	e.stride = int64(actual - e.last)
	e.last = actual
}

// LastAndStride implements StrideSource.
func (p *Stride) LastAndStride(pc uint64) (uint64, int64, bool) {
	e, ok := p.table[pc]
	if !ok || !e.warm {
		return 0, 0, false
	}
	return e.last, e.stride, true
}

// --- finite, direct-mapped, tagged stride table ---

// StrideTable is a finite direct-mapped stride predictor with full tags:
// the realistic counterpart of Stride for hardware-budget ablations.
type StrideTable struct {
	entries []strideEntry
	tags    []uint64
	valid   []bool
	mask    uint64
}

// NewStrideTable returns a direct-mapped stride predictor with size entries;
// size must be a power of two.
func NewStrideTable(size int) *StrideTable {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("predictor: table size %d is not a positive power of two", size))
	}
	return &StrideTable{
		entries: make([]strideEntry, size),
		tags:    make([]uint64, size),
		valid:   make([]bool, size),
		mask:    uint64(size - 1),
	}
}

// Name implements Predictor.
func (p *StrideTable) Name() string { return fmt.Sprintf("stride[%d]", len(p.entries)) }

func (p *StrideTable) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Lookup implements Predictor.
func (p *StrideTable) Lookup(pc uint64) Prediction {
	i := p.index(pc)
	if !p.valid[i] || p.tags[i] != pc || !p.entries[i].warm {
		return Prediction{}
	}
	e := &p.entries[i]
	return Prediction{Value: e.last + uint64(e.stride), HasValue: true, Confident: true}
}

// Update implements Predictor. A tag mismatch evicts the previous occupant.
func (p *StrideTable) Update(pc uint64, actual uint64) {
	i := p.index(pc)
	if !p.valid[i] || p.tags[i] != pc {
		p.valid[i] = true
		p.tags[i] = pc
		p.entries[i] = strideEntry{last: actual, warm: true}
		return
	}
	e := &p.entries[i]
	e.stride = int64(actual - e.last)
	e.last = actual
}

// LastAndStride implements StrideSource.
func (p *StrideTable) LastAndStride(pc uint64) (uint64, int64, bool) {
	i := p.index(pc)
	if !p.valid[i] || p.tags[i] != pc || !p.entries[i].warm {
		return 0, 0, false
	}
	return p.entries[i].last, p.entries[i].stride, true
}

var (
	_ StrideSource = (*LastValue)(nil)
	_ StrideSource = (*Stride)(nil)
	_ StrideSource = (*StrideTable)(nil)
)
