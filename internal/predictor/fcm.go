package predictor

// FCM is a finite-context-method (two-level, context-based) value
// predictor in the style of Sazeides & Smith, "The Predictability of Data
// Values" (the paper's reference [22]): the first level keeps the last
// `order` values produced by each static instruction; the second level maps
// a hash of that value history to the next value. FCM captures repeating
// non-arithmetic sequences (e.g. pointers walked in a cycle) that last-value
// and stride predictors cannot.
type FCM struct {
	order int
	l1    map[uint64]*fcmHistory
	l2    map[uint64]uint64
}

type fcmHistory struct {
	vals []uint64 // ring of the last `order` values, oldest first
}

// NewFCM returns an infinite FCM predictor of the given order (1..8).
func NewFCM(order int) *FCM {
	if order < 1 || order > 8 {
		panic("predictor: FCM order out of range")
	}
	return &FCM{
		order: order,
		l1:    make(map[uint64]*fcmHistory),
		l2:    make(map[uint64]uint64),
	}
}

// Name implements Predictor.
func (p *FCM) Name() string { return "fcm" }

// hash folds the PC and the value history into a second-level index. The
// PC participates so distinct instructions with equal histories do not
// alias (an infinite-table idealisation, as in Section 3's methodology).
func (p *FCM) hash(pc uint64, h *fcmHistory) uint64 {
	x := pc * 0x9E3779B97F4A7C15
	for _, v := range h.vals {
		x ^= v
		x *= 0x100000001B3
	}
	return x
}

// Lookup implements Predictor: a prediction exists once the instruction
// has a full history and that context has been seen before.
func (p *FCM) Lookup(pc uint64) Prediction {
	h, ok := p.l1[pc]
	if !ok || len(h.vals) < p.order {
		return Prediction{}
	}
	v, ok := p.l2[p.hash(pc, h)]
	if !ok {
		return Prediction{}
	}
	return Prediction{Value: v, HasValue: true, Confident: true}
}

// Update implements Predictor: it trains the context table with the actual
// value and shifts the history.
func (p *FCM) Update(pc uint64, actual uint64) {
	h, ok := p.l1[pc]
	if !ok {
		h = &fcmHistory{vals: make([]uint64, 0, p.order)}
		p.l1[pc] = h
	}
	if len(h.vals) == p.order {
		p.l2[p.hash(pc, h)] = actual
		copy(h.vals, h.vals[1:])
		h.vals[len(h.vals)-1] = actual
		return
	}
	h.vals = append(h.vals, actual)
}

// NewClassifiedFCM returns an order-`order` FCM gated by 2-bit saturating
// confidence counters, matching the classification scheme used for the
// stride predictor.
func NewClassifiedFCM(order int) *Classified {
	return &Classified{Inner: NewFCM(order), Class: NewClassifier(2, 2)}
}

var _ Predictor = (*FCM)(nil)
