// Package pipeline implements the paper's Section 5 realistic machine: a
// 40-wide decode/issue processor with a 40-entry instruction window, 40
// execution units, register renaming (no name dependencies), branch
// prediction with a 3-cycle misprediction penalty, and value prediction
// with a 1-cycle misprediction penalty where only the dependent
// instructions are invalidated and rescheduled.
//
// The machine is trace-driven: a fetch engine (internal/fetch) delivers
// correct-path fetch groups and flags mispredicted control transfers, whose
// redirect bubble stalls fetch until the branch resolves plus the penalty.
// Value predictions are obtained either directly from a predictor table or
// through the banked prediction network of internal/core, which may deny
// predictions on bank conflicts and expands merged duplicate-PC requests.
package pipeline

import (
	"fmt"

	"valuepred/internal/core"
	"valuepred/internal/fetch"
	"valuepred/internal/isa"
	"valuepred/internal/obs"
	"valuepred/internal/predictor"
	"valuepred/internal/trace"
)

// Config parameterises the machine.
type Config struct {
	// Width is the decode/issue/commit width (paper: 40).
	Width int
	// WindowSize is the instruction window; an instruction occupies a slot
	// from fetch to commit (paper: 40).
	WindowSize int
	// NumFUs bounds instructions executed per cycle (paper: 40).
	NumFUs int
	// BranchPenalty is the misprediction redirect bubble in cycles
	// (paper: 3): fetch resumes at the branch's execute cycle + penalty.
	BranchPenalty int
	// ValuePenalty is the extra reschedule delay, beyond the normal
	// one-cycle forwarding, for a consumer that speculated on a wrong
	// value. The paper's "1 cycle value misprediction penalty" is the
	// reschedule happening one cycle after the correct value is produced,
	// i.e. normal forwarding latency, so the default is 0; set 1+ to model
	// a costlier recovery (see the ablation benchmarks).
	ValuePenalty int
	// HoldUntilCommit makes an instruction occupy its window slot until
	// in-order commit (ROB semantics) instead of freeing it at execute
	// (scheduling-window semantics, the paper's Section 3/5 model and the
	// default). Kept as an ablation knob.
	HoldUntilCommit bool
	// Predictor enables direct value prediction when non-nil.
	Predictor predictor.Predictor
	// Network, when non-nil, routes value predictions through the banked
	// delivery network instead of Predictor (Section 4). Exactly one of
	// Predictor/Network may be set.
	Network *core.Network
	// IncludeMemoryDeps makes loads depend on the latest store to the
	// same address.
	IncludeMemoryDeps bool
	// LoadLatency, MulLatency and DivLatency are execution latencies in
	// cycles for loads, multiplies and divides/remainders (default 1, the
	// paper's unit-latency model). Functional units are pipelined: latency
	// delays the result, not unit reuse. Value prediction hides these
	// latencies for correctly predicted producers (see ablation.latency).
	LoadLatency int
	MulLatency  int
	DivLatency  int
	// Obs, when non-nil, receives per-cycle stage occupancy, stall causes
	// and value-prediction outcomes. Observability is strictly write-only:
	// nothing recorded here feeds back into the simulation, so results are
	// bit-identical with Obs set or nil, and a nil Obs costs the hot loop
	// only a nil-check.
	Obs *obs.Sink
}

// latencyOf returns the execution latency of an opcode under cfg.
func (cfg Config) latencyOf(op isa.Opcode) uint64 {
	lat := 1
	switch {
	case op.IsLoad():
		lat = cfg.LoadLatency
	case op == isa.MUL:
		lat = cfg.MulLatency
	case op == isa.DIV || op == isa.REM:
		lat = cfg.DivLatency
	}
	if lat < 1 {
		lat = 1
	}
	return uint64(lat)
}

// DefaultConfig returns the paper's Section 5 machine without value
// prediction.
func DefaultConfig() Config {
	return Config{
		Width: 40, WindowSize: 40, NumFUs: 40,
		BranchPenalty: 3, ValuePenalty: 0,
		IncludeMemoryDeps: true,
		LoadLatency:       1, MulLatency: 1, DivLatency: 1,
	}
}

// Result reports one simulation run.
type Result struct {
	Insts  uint64
	Cycles uint64
	// Value-prediction accounting, as in internal/ideal.
	Attempted uint64
	Correct   uint64
	Used      uint64
	// DeniedSlots counts value-producing instructions whose prediction was
	// withheld by the network's router (bank conflict, hint drop, or a
	// merged copy of a denied primary).
	DeniedSlots uint64
	// Fetch carries the engine's statistics (branch accuracy, trace-cache
	// hit rate).
	Fetch fetch.Stats
	// BranchStallCycles counts cycles fetch was blocked waiting for a
	// mispredicted control transfer to resolve (plus the redirect bubble).
	BranchStallCycles uint64
	// WindowFullCycles counts cycles fetch was blocked by a full window.
	WindowFullCycles uint64
	// OccupancySum accumulates the window occupancy each cycle; divide by
	// Cycles for the average (see AvgOccupancy).
	OccupancySum uint64
}

// AvgOccupancy returns the mean instruction-window occupancy.
func (r Result) AvgOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.OccupancySum) / float64(r.Cycles)
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Useless returns correct predictions that decoupled no consumer.
func (r Result) Useless() uint64 { return r.Correct - r.Used }

// Speedup returns the relative IPC gain of r over base in percent.
func Speedup(base, r Result) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return (r.IPC()/base.IPC() - 1) * 100
}

type producerInfo struct {
	execCycle  uint64
	resultAt   uint64 // cycle the value becomes forwardable (exec + latency)
	done       bool
	predicted  bool
	correct    bool
	usefulSeen bool
}

type entry struct {
	rec       trace.Rec
	earliest  uint64
	availAt   uint64
	executed  bool
	left      bool // removed from the window (recycling gate, see scratch.go)
	execCycle uint64
	prod      *producerInfo
	waitOn    []*producerInfo
	mispredOn []*producerInfo
	specOn    []*producerInfo
}

// addDep records one operand dependence on producer p (a method rather
// than a closure so ingest allocates nothing per instruction).
func (w *entry) addDep(p *producerInfo) {
	switch {
	case p == nil:
		return
	case p.done:
		if at := p.execCycle + 1; at > w.availAt {
			w.availAt = at
		}
	case p.predicted && p.correct:
		w.specOn = append(w.specOn, p)
	case p.predicted:
		w.mispredOn = append(w.mispredOn, p)
	default:
		w.waitOn = append(w.waitOn, p)
	}
}

func (w *entry) ready(cycle uint64) bool {
	return !w.executed && len(w.waitOn) == 0 && len(w.mispredOn) == 0 &&
		w.earliest <= cycle && w.availAt <= cycle
}

func (w *entry) resolve(valuePenalty uint64) {
	n := 0
	for _, p := range w.waitOn {
		if p.done {
			if p.resultAt > w.availAt {
				w.availAt = p.resultAt
			}
		} else {
			w.waitOn[n] = p
			n++
		}
	}
	w.waitOn = w.waitOn[:n]
	n = 0
	for _, p := range w.mispredOn {
		if p.done {
			if at := p.resultAt + valuePenalty; at > w.availAt {
				w.availAt = at
			}
		} else {
			w.mispredOn[n] = p
			n++
		}
	}
	w.mispredOn = w.mispredOn[:n]
}

// Run simulates the trace delivered by eng under cfg.
func Run(eng fetch.Engine, cfg Config) (Result, error) {
	if cfg.Width <= 0 || cfg.WindowSize <= 0 || cfg.NumFUs <= 0 {
		return Result{}, fmt.Errorf("pipeline: invalid config %+v", cfg)
	}
	if cfg.Predictor != nil && cfg.Network != nil {
		return Result{}, fmt.Errorf("pipeline: set either Predictor or Network, not both")
	}
	var res Result
	// All per-run state comes out of a pooled scratch (scratch.go): window
	// entries, producer bookkeeping, the memory-producer map and the
	// network lookup buffers are reused across runs instead of being
	// reallocated per instruction.
	s := getScratch()
	defer putScratch(s)
	var regProd [32]*producerInfo
	// window holds entries from fetch to commit, in program order.
	window := s.window[:0]
	valuePenalty := uint64(cfg.ValuePenalty)

	o := cfg.Obs // nil when instrumentation is disabled
	if o != nil {
		fetch.Instrument(eng, o)
	}

	var stallOn *entry // mispredicted control transfer gating fetch
	var cycle uint64 = 1
	eof := false

	for {
		// Commit: with ROB semantics, retire in order, up to Width per
		// cycle, one cycle after execute.
		committed := 0
		if cfg.HoldUntilCommit {
			for committed < len(window) && committed < cfg.Width {
				head := window[committed]
				if !head.executed || head.execCycle >= cycle {
					break
				}
				committed++
			}
			if committed > 0 {
				// Retire by compacting toward the front so the window's
				// backing array (scratch-owned) never drifts; committed
				// entries recycle unless the fetch stage still consults
				// one as the stall gate.
				for _, w := range window[:committed] {
					w.left = true
					if w != stallOn {
						s.entries.release(w)
					}
				}
				n := copy(window, window[committed:])
				window = window[:n]
			}
		}

		// Execute: oldest-first, bounded by NumFUs. With scheduling-window
		// semantics an instruction leaves its slot when it executes.
		fus := 0
		n := 0
		for _, w := range window {
			if !w.executed {
				w.resolve(valuePenalty)
				if fus < cfg.NumFUs && w.ready(cycle) {
					w.executed = true
					w.execCycle = cycle
					w.prod.execCycle = cycle
					w.prod.resultAt = cycle + cfg.latencyOf(w.rec.Op)
					w.prod.done = true
					res.Insts++
					fus++
					for _, p := range w.specOn {
						// Useful iff the producer's value was not yet
						// forwardable when this consumer executed.
						if (!p.done || p.resultAt > cycle) && !p.usefulSeen {
							p.usefulSeen = true
							res.Used++
							if o != nil {
								o.VPUseful()
							}
						}
					}
					if !cfg.HoldUntilCommit {
						// Slot freed at execute; recycle unless the fetch
						// stage still consults this entry as the stall gate.
						w.left = true
						if w != stallOn {
							s.entries.release(w)
						}
						continue
					}
				}
			}
			window[n] = w
			n++
		}
		window = window[:n]

		res.OccupancySum += uint64(len(window))

		// Fetch: blocked while a mispredicted branch is unresolved.
		fetched := 0
		canFetch := !eof
		if stallOn != nil {
			if stallOn.executed && cycle >= stallOn.execCycle+uint64(cfg.BranchPenalty) {
				if stallOn.left {
					// The entry left the window while it was the stall
					// gate; it is finally unreferenced — recycle it.
					s.entries.release(stallOn)
				}
				stallOn = nil
			} else {
				canFetch = false
				if !eof {
					res.BranchStallCycles++
					if o != nil {
						o.StallBranch()
					}
				}
			}
		}
		if canFetch {
			space := cfg.WindowSize - len(window)
			if space > cfg.Width {
				space = cfg.Width
			}
			if space <= 0 {
				res.WindowFullCycles++
				if o != nil {
					o.StallWindow()
				}
			}
			if space > 0 {
				g, ok := eng.NextGroup(space)
				if !ok {
					eof = true
				} else {
					before := len(window)
					window = ingest(g.Recs, cycle, cfg, &res, regProd[:], s, window)
					fetched = len(window) - before
					if g.Mispredict && fetched > 0 {
						stallOn = window[len(window)-1]
					}
				}
			}
		}

		if o != nil {
			// With scheduling-window semantics an instruction leaves its slot
			// (and architecturally commits) at execute, so the commit-stage
			// count mirrors the execute count.
			if !cfg.HoldUntilCommit {
				committed = fus
			}
			o.Cycle(cycle, fetched, fus, committed, len(window))
		}

		if eof && len(window) == 0 {
			break
		}
		cycle++
		if cycle > 1<<40 {
			return Result{}, fmt.Errorf("pipeline: runaway simulation (deadlock?)")
		}
	}
	res.Cycles = cycle
	res.Fetch = eng.Stats()
	// Hand the (possibly grown) window backing store back to the scratch
	// so the next run reuses its capacity.
	s.window = window[:0]
	if o != nil {
		o.RunDone(res.Insts, res.Cycles, res.Correct, res.Used)
	}
	return res, nil
}

// ingest turns a fetch group into window entries appended to window: it
// performs the group's value-prediction lookups (directly or through the
// network), wires dependence edges and publishes producers. Entries and
// producer records come out of the run's scratch, so ingest allocates
// nothing per instruction on the steady-state path.
func ingest(recs []trace.Rec, cycle uint64, cfg Config, res *Result,
	regProd []*producerInfo, s *scratch, window []*entry) []*entry {

	memProd := s.memProd

	// Network mode performs all lookups for the group first (the banked
	// table is read once per cycle), then updates after wiring.
	var slots []core.Slot
	var slotIdx []int // entry index -> slot index, -1 for non-writers
	if cfg.Network != nil {
		pcs := s.pcs[:0]
		slotIdx = s.slotIdx[:0]
		for _, rec := range recs {
			si := -1
			if rec.WritesValue() {
				si = len(pcs)
				pcs = append(pcs, rec.PC)
			}
			slotIdx = append(slotIdx, si)
		}
		s.pcs, s.slotIdx = pcs, slotIdx
		slots = cfg.Network.ProcessGroup(pcs)
	}

	for i, rec := range recs {
		w := s.entries.alloc()
		w.rec, w.earliest = rec, cycle+2
		w.prod = s.producers.alloc()

		if rec.WritesValue() {
			switch {
			case cfg.Network != nil:
				slot := slots[slotIdx[i]]
				if slot.Denied {
					res.DeniedSlots++
					if cfg.Obs != nil {
						cfg.Obs.VPDenied()
					}
				}
				if slot.Valid {
					w.prod.predicted = true
					w.prod.correct = slot.Pred.Value == rec.Val
					res.Attempted++
					if w.prod.correct {
						res.Correct++
					}
					if cfg.Obs != nil {
						cfg.Obs.VPAttempt(w.prod.correct)
					}
				}
			case cfg.Predictor != nil:
				pr := cfg.Predictor.Lookup(rec.PC)
				if pr.Confident {
					w.prod.predicted = true
					w.prod.correct = pr.Value == rec.Val
					res.Attempted++
					if w.prod.correct {
						res.Correct++
					}
					if cfg.Obs != nil {
						cfg.Obs.VPAttempt(w.prod.correct)
					}
				}
				cfg.Predictor.Update(rec.PC, rec.Val)
			}
		}

		if rec.Op.ReadsRs1() && rec.Rs1 != 0 {
			w.addDep(regProd[rec.Rs1])
		}
		if rec.Op.ReadsRs2() && rec.Rs2 != 0 {
			w.addDep(regProd[rec.Rs2])
		}
		if cfg.IncludeMemoryDeps && rec.Op.IsLoad() {
			w.addDep(memProd[rec.Addr])
		}

		if rec.WritesValue() {
			regProd[rec.Rd] = w.prod
		}
		if cfg.IncludeMemoryDeps && rec.Op.IsStore() {
			memProd[rec.Addr] = w.prod
		}
		window = append(window, w)
	}

	// Network mode: speculative updates corrected with committed values.
	if cfg.Network != nil {
		for _, rec := range recs {
			if rec.WritesValue() {
				cfg.Network.Update(rec.PC, rec.Val)
			}
		}
	}
	return window
}
