package pipeline

import (
	"testing"

	"valuepred/internal/btb"
	"valuepred/internal/core"
	"valuepred/internal/fetch"
	"valuepred/internal/ideal"
	"valuepred/internal/predictor"
	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

func TestInvalidConfigs(t *testing.T) {
	recs := workload.MustTrace("compress95", 1, 1000)
	if _, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig()
	cfg.Predictor = predictor.NewStride()
	cfg.Network = core.MustNew(core.DefaultConfig())
	if _, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), cfg); err == nil {
		t.Error("both Predictor and Network accepted")
	}
}

func TestAllInstructionsRetire(t *testing.T) {
	recs := workload.MustTrace("gcc", 1, 20_000)
	for _, n := range []int{1, 4, -1} {
		res, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), n), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Insts != uint64(len(recs)) {
			t.Errorf("n=%d: retired %d of %d", n, res.Insts, len(recs))
		}
		if res.IPC() <= 0 || res.IPC() > 40 {
			t.Errorf("n=%d: IPC = %f out of range", n, res.IPC())
		}
	}
}

// TestVPNeverHurtsWithDefaultPenalty: with the default reschedule model a
// consumed misprediction costs exactly the normal dependence wait, so value
// prediction can only reduce cycles.
func TestVPNeverHurtsWithDefaultPenalty(t *testing.T) {
	for _, name := range workload.Names() {
		recs := workload.MustTrace(name, 1, 25_000)
		base, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), 4), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Predictor = predictor.NewClassifiedStride()
		vp, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if vp.Cycles > base.Cycles {
			t.Errorf("%s: VP increased cycles %d -> %d", name, base.Cycles, vp.Cycles)
		}
	}
}

// TestFetchBandwidthMonotone: raising the taken-branch limit can only help
// the baseline machine.
func TestFetchBandwidthMonotone(t *testing.T) {
	recs := workload.MustTrace("vortex", 1, 30_000)
	var prev float64
	for _, n := range []int{1, 2, 4, -1} {
		res, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), n), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.IPC() < prev-0.01 {
			t.Errorf("IPC at n=%d (%.3f) below previous (%.3f)", n, res.IPC(), prev)
		}
		if res.IPC() > prev {
			prev = res.IPC()
		}
	}
}

// TestBranchPenaltyCosts: a larger redirect bubble must not speed the
// machine up.
func TestBranchPenaltyCosts(t *testing.T) {
	recs := workload.MustTrace("go", 1, 30_000)
	run := func(pen int) uint64 {
		cfg := DefaultConfig()
		cfg.BranchPenalty = pen
		res, err := Run(fetch.NewSequential(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c0, c3, c10 := run(0), run(3), run(10)
	if !(c0 <= c3 && c3 <= c10) {
		t.Errorf("cycles not monotone in branch penalty: %d, %d, %d", c0, c3, c10)
	}
	if c10 == c0 {
		t.Error("branch penalty has no effect on a mispredicting workload")
	}
}

// TestValuePenaltyCosts: charging more for consumed mispredictions cannot
// reduce cycles.
func TestValuePenaltyCosts(t *testing.T) {
	recs := workload.MustTrace("go", 1, 30_000)
	run := func(pen int) uint64 {
		cfg := DefaultConfig()
		cfg.ValuePenalty = pen
		cfg.Predictor = predictor.NewStride() // unclassified: consumes wrong values
		res, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if run(4) < run(0) {
		t.Error("value penalty reduced cycles")
	}
}

// TestBTBQualityMatters: the perfect branch predictor must beat the cold
// 2-level BTB on a branchy workload.
func TestBTBQualityMatters(t *testing.T) {
	recs := workload.MustTrace("li", 1, 30_000)
	perfect, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), 4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	real, err := Run(fetch.NewSequential(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), 4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if real.IPC() >= perfect.IPC() {
		t.Errorf("2-level BTB (%.2f IPC) not worse than perfect (%.2f IPC)",
			real.IPC(), perfect.IPC())
	}
	if real.Fetch.BranchAccuracy() >= 1 {
		t.Error("2-level BTB reported perfect accuracy")
	}
}

// TestWindowSemantics: ROB-style windows (held to commit) cannot beat
// scheduling windows of the same size.
func TestWindowSemantics(t *testing.T) {
	recs := workload.MustTrace("m88ksim", 1, 30_000)
	sched, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HoldUntilCommit = true
	rob, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rob.IPC() > sched.IPC()+0.01 {
		t.Errorf("ROB window IPC %.2f exceeds scheduling window %.2f", rob.IPC(), sched.IPC())
	}
	if rob.Insts != sched.Insts {
		t.Errorf("instruction counts differ: %d vs %d", rob.Insts, sched.Insts)
	}
}

// TestNetworkMatchesDirectWhenUnconstrained: with many banks and ports the
// network's speedup must be close to the direct predictor's (the remaining
// difference is the group-at-once lookup semantics).
func TestNetworkMatchesDirectWhenUnconstrained(t *testing.T) {
	recs := workload.MustTrace("vortex", 1, 40_000)
	mk := func() fetch.Engine {
		return fetch.NewTraceCache(recs, btb.NewPerfect(), fetch.DefaultTCConfig())
	}
	base, err := Run(mk(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	direct := DefaultConfig()
	direct.Predictor = predictor.NewClassifiedStride()
	dres, err := Run(mk(), direct)
	if err != nil {
		t.Fatal(err)
	}
	netCfg := core.DefaultConfig()
	netCfg.Banks = 1024
	netCfg.PortsPerBank = 64
	netted := DefaultConfig()
	netted.Network = core.MustNew(netCfg)
	nres, err := Run(mk(), netted)
	if err != nil {
		t.Fatal(err)
	}
	ds, ns := Speedup(base, dres), Speedup(base, nres)
	if diff := ds - ns; diff > 15 || diff < -15 {
		t.Errorf("network speedup %.1f%% far from direct %.1f%%", ns, ds)
	}
	if nres.Insts != dres.Insts {
		t.Error("retired instruction counts differ")
	}
}

// TestNetworkDenialsReduceSpeedup: a single-banked network must not beat a
// plentiful one.
func TestNetworkDenialsReduceSpeedup(t *testing.T) {
	recs := workload.MustTrace("compress95", 1, 40_000)
	mk := func() fetch.Engine {
		return fetch.NewTraceCache(recs, btb.NewPerfect(), fetch.DefaultTCConfig())
	}
	base, err := Run(mk(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	speedupWith := func(banks int) (float64, core.Stats) {
		netCfg := core.DefaultConfig()
		netCfg.Banks = banks
		net := core.MustNew(netCfg)
		cfg := DefaultConfig()
		cfg.Network = net
		res, err := Run(mk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Speedup(base, res), net.Stats()
	}
	s1, st1 := speedupWith(1)
	s16, st16 := speedupWith(16)
	if s1 > s16+1 {
		t.Errorf("1 bank (%.1f%%) beats 16 banks (%.1f%%)", s1, s16)
	}
	if st1.DenyRate() <= st16.DenyRate() {
		t.Errorf("deny rate did not fall with banks: %.2f vs %.2f",
			st1.DenyRate(), st16.DenyRate())
	}
}

// TestUsefulnessAccounting sanity-checks the Attempted/Correct/Used
// invariants.
func TestUsefulnessAccounting(t *testing.T) {
	recs := workload.MustTrace("m88ksim", 1, 30_000)
	cfg := DefaultConfig()
	cfg.Predictor = predictor.NewClassifiedStride()
	res, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct > res.Attempted {
		t.Error("Correct > Attempted")
	}
	if res.Used > res.Correct {
		t.Error("Used > Correct")
	}
	if res.Used == 0 {
		t.Error("no useful predictions on m88ksim at unlimited fetch")
	}
	if res.Useless() != res.Correct-res.Used {
		t.Error("Useless identity broken")
	}
}

// TestStallAccounting checks the front-end stall statistics.
func TestStallAccounting(t *testing.T) {
	recs := workload.MustTrace("gcc", 1, 30_000)
	res, err := Run(fetch.NewSequential(recs, btb.NewTwoLevel(btb.DefaultTwoLevelConfig()), 4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BranchStallCycles == 0 {
		t.Error("mispredicting run reported zero branch-stall cycles")
	}
	if res.BranchStallCycles+res.WindowFullCycles > res.Cycles {
		t.Error("stall cycles exceed total cycles")
	}
	if occ := res.AvgOccupancy(); occ <= 0 || occ > 40 {
		t.Errorf("average occupancy = %.1f out of range", occ)
	}
	// A perfect-BTB run must have no branch stalls.
	clean, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), 4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if clean.BranchStallCycles != 0 {
		t.Errorf("perfect BTB run has %d branch-stall cycles", clean.BranchStallCycles)
	}
}

// TestConvergesToIdealModel is a cross-model validation: with a perfect
// BTB, unlimited taken branches and the same predictor, the Section 5
// machine reduces to the Section 3 ideal machine at width 40 (same window,
// same dependence rules; 40 FUs never bind because the window holds only
// 40 instructions). IPCs must agree tightly.
func TestConvergesToIdealModel(t *testing.T) {
	for _, name := range []string{"compress95", "m88ksim", "li"} {
		recs := workload.MustTrace(name, 1, 40_000)
		pres, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ires, err := ideal.Run(trace.NewSliceSource(recs), ideal.DefaultConfig(40))
		if err != nil {
			t.Fatal(err)
		}
		ratio := pres.IPC() / ires.IPC()
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s: pipeline IPC %.3f vs ideal IPC %.3f (ratio %.3f)",
				name, pres.IPC(), ires.IPC(), ratio)
		}
		// And with value prediction.
		cfgP := DefaultConfig()
		cfgP.Predictor = predictor.NewClassifiedStride()
		pvp, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), -1), cfgP)
		if err != nil {
			t.Fatal(err)
		}
		cfgI := ideal.DefaultConfig(40)
		cfgI.Predictor = predictor.NewClassifiedStride()
		ivp, err := ideal.Run(trace.NewSliceSource(recs), cfgI)
		if err != nil {
			t.Fatal(err)
		}
		ratio = pvp.IPC() / ivp.IPC()
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s (VP): pipeline IPC %.3f vs ideal IPC %.3f (ratio %.3f)",
				name, pvp.IPC(), ivp.IPC(), ratio)
		}
	}
}

// TestLoadLatency: non-unit load latency must reduce baseline IPC; value
// prediction must still deliver a substantial gain (consumers of correctly
// predicted loads decouple from the memory pipeline).
func TestLoadLatency(t *testing.T) {
	recs := workload.MustTrace("vortex", 1, 60_000)
	run := func(lat int, vp bool) Result {
		cfg := DefaultConfig()
		cfg.LoadLatency = lat
		if vp {
			cfg.Predictor = predictor.NewClassifiedStride()
		}
		res, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base1, base4 := run(1, false), run(4, false)
	if base4.IPC() >= base1.IPC() {
		t.Errorf("4-cycle loads did not slow the baseline: %.2f vs %.2f",
			base4.IPC(), base1.IPC())
	}
	s4 := Speedup(base4, run(4, true))
	if s4 < 20 {
		t.Errorf("VP speedup at lat=4 = %.1f%%; prediction should still decouple load consumers", s4)
	}
	// Absolute cycle savings stay in the same ballpark across latencies:
	// with a 40-entry window the savings are bounded by fetch/window
	// pressure, not by the dependence latency — the paper's bandwidth
	// lesson resurfacing. Guard against either collapse or runaway.
	vp1, vp4 := run(1, true), run(4, true)
	saved1 := float64(base1.Cycles - vp1.Cycles)
	saved4 := float64(base4.Cycles - vp4.Cycles)
	if saved4 < 0.5*saved1 || saved4 > 2*saved1 {
		t.Errorf("cycle savings moved implausibly with latency: %.0f vs %.0f", saved4, saved1)
	}
}

// TestDivLatency: divide-heavy code (ijpeg quantisation) slows with a
// non-unit divide latency.
func TestDivLatency(t *testing.T) {
	recs := workload.MustTrace("ijpeg", 1, 60_000)
	run := func(lat int) float64 {
		cfg := DefaultConfig()
		cfg.DivLatency = lat
		res, err := Run(fetch.NewSequential(recs, btb.NewPerfect(), 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC()
	}
	if run(8) >= run(1) {
		t.Error("divide latency had no effect on ijpeg")
	}
}
