package pipeline

import "sync"

// This file is the Section 5 machine's memory discipline (DESIGN.md §12,
// "Memory discipline"), mirroring internal/ideal's scratch: all per-run
// state that used to be allocated per dynamic instruction — window
// entries, producer bookkeeping, dependence lists, the memory-producer
// map, and the network lookup buffers — comes out of a pooled scratch
// acquired per Run and fully reset at acquisition. sync.Pool caches
// per-P, so each plan worker effectively re-walks its own warmed arenas
// cell after cell instead of serializing on the allocator and GC.
//
// Reset invariants match ideal/scratch.go; the one pipeline-specific
// subtlety is the fetch-stall pointer: a mispredicted control transfer
// (stallOn) can be consulted by the fetch stage after its entry has left
// the window, so an entry is recycled only once it is both out of the
// window and no longer the stall gate (the entry.left flag tracks the
// former).
type scratch struct {
	producers producerArena
	entries   entryArena
	window    []*entry
	memProd   map[uint64]*producerInfo
	// pcs and slotIdx are ingest's per-group network lookup buffers.
	pcs     []uint64
	slotIdx []int
}

const (
	producerChunk = 8192
	entryChunk    = 256
)

// producerArena bump-allocates producerInfo values in fixed-size chunks
// that are never reallocated, so handed-out pointers stay valid until the
// arena rewinds at the next run's reset.
type producerArena struct {
	chunks [][]producerInfo
	ci     int
	used   int
}

func (a *producerArena) alloc() *producerInfo {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]producerInfo, producerChunk))
	}
	p := &a.chunks[a.ci][a.used]
	*p = producerInfo{}
	a.used++
	if a.used == producerChunk {
		a.ci++
		a.used = 0
	}
	return p
}

func (a *producerArena) reset() { a.ci, a.used = 0, 0 }

// entryArena recycles window entries through a free list, preserving the
// dependence lists' capacity; fields are re-initialised at alloc.
type entryArena struct {
	chunks [][]entry
	ci     int
	used   int
	free   []*entry
}

func (a *entryArena) alloc() *entry {
	var w *entry
	if n := len(a.free); n > 0 {
		w = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		if a.ci == len(a.chunks) {
			a.chunks = append(a.chunks, make([]entry, entryChunk))
		}
		w = &a.chunks[a.ci][a.used]
		a.used++
		if a.used == entryChunk {
			a.ci++
			a.used = 0
		}
	}
	w.earliest, w.availAt, w.execCycle = 0, 0, 0
	w.executed, w.left = false, false
	w.prod = nil
	w.waitOn = w.waitOn[:0]
	w.mispredOn = w.mispredOn[:0]
	w.specOn = w.specOn[:0]
	return w
}

func (a *entryArena) release(w *entry) { a.free = append(a.free, w) }

func (a *entryArena) reset() {
	a.ci, a.used = 0, 0
	a.free = a.free[:0]
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{memProd: make(map[uint64]*producerInfo)}
}}

// getScratch returns a fully reset scratch with exclusive ownership.
func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	s.producers.reset()
	s.entries.reset()
	s.window = s.window[:0]
	clear(s.memProd)
	s.pcs = s.pcs[:0]
	s.slotIdx = s.slotIdx[:0]
	return s
}

// putScratch returns s to the pool. The caller must not touch s afterwards.
func putScratch(s *scratch) { scratchPool.Put(s) }
