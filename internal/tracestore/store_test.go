package tracestore

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

// newStubbed returns a store whose generator fabricates records locally
// (Val = seed, Seq = index) and counts invocations, so cache behaviour can
// be tested without running the emulator.
func newStubbed(limit int) (*Store, *atomic.Int64) {
	s := New(limit)
	var calls atomic.Int64
	s.gen = func(name string, seed int64, n int) ([]trace.Rec, error) {
		calls.Add(1)
		recs := make([]trace.Rec, n)
		for i := range recs {
			recs[i] = trace.Rec{Seq: uint64(i), Val: uint64(seed)}
		}
		return recs, nil
	}
	return s, &calls
}

func mustGet(t *testing.T, s *Store, name string, seed int64, n int) []trace.Rec {
	t.Helper()
	recs, err := s.Get(name, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("Get(%s,%d,%d) returned %d records", name, seed, n, len(recs))
	}
	return recs
}

func TestKeying(t *testing.T) {
	s, calls := newStubbed(0)
	mustGet(t, s, "go", 1, 100)
	mustGet(t, s, "go", 1, 100)   // same key: hit
	mustGet(t, s, "gcc", 1, 100)  // different workload: miss
	mustGet(t, s, "go", 2, 100)   // different seed: miss
	if got := calls.Load(); got != 3 {
		t.Errorf("generator ran %d times, want 3", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 3 || st.Records != 300 {
		t.Errorf("stats = %+v", st)
	}
	// Traces from different seeds must not alias.
	if a, b := mustGet(t, s, "go", 1, 1), mustGet(t, s, "go", 2, 1); a[0].Val == b[0].Val {
		t.Error("seeds share a cache entry")
	}
}

func TestInvalidRequests(t *testing.T) {
	s := New(0)
	if _, err := s.Get("go", 1, 0); err == nil {
		t.Error("zero-length request accepted")
	}
	if _, err := s.Get("nonesuch", 1, 10); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestGenerationErrorNotCached(t *testing.T) {
	s := New(0)
	boom := errors.New("boom")
	fail := true
	s.gen = func(name string, seed int64, n int) ([]trace.Rec, error) {
		if fail {
			return nil, boom
		}
		return make([]trace.Rec, n), nil
	}
	if _, err := s.Get("go", 1, 10); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fail = false
	if _, err := s.Get("go", 1, 10); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
}

func TestPrefixReuse(t *testing.T) {
	s, calls := newStubbed(0)
	long := mustGet(t, s, "go", 1, 500)
	short := mustGet(t, s, "go", 1, 200)
	if calls.Load() != 1 {
		t.Fatalf("generator ran %d times, want 1 (prefix reuse)", calls.Load())
	}
	if !reflect.DeepEqual(short, long[:200]) {
		t.Error("short trace is not a prefix of the long one")
	}
	st := s.Stats()
	if st.PrefixHits != 1 {
		t.Errorf("PrefixHits = %d, want 1", st.PrefixHits)
	}
	// The sub-slice must have a clipped capacity so callers cannot append
	// into the cached backing array.
	if cap(short) != 200 {
		t.Errorf("prefix capacity = %d, want 200", cap(short))
	}
	// Growing the request regenerates and replaces the entry.
	mustGet(t, s, "go", 1, 800)
	if calls.Load() != 2 {
		t.Errorf("generator ran %d times after growth, want 2", calls.Load())
	}
	if st := s.Stats(); st.Records != 800 || st.Entries != 1 {
		t.Errorf("after growth stats = %+v, want one 800-record entry", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s, _ := newStubbed(250) // room for two 100-record traces, not three
	mustGet(t, s, "go", 1, 100)
	mustGet(t, s, "gcc", 1, 100)
	mustGet(t, s, "go", 1, 100) // touch go: gcc becomes least recent
	mustGet(t, s, "li", 1, 100) // evicts gcc
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Records != 200 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	before := st.Misses
	mustGet(t, s, "go", 1, 100) // still cached
	mustGet(t, s, "li", 1, 100) // still cached
	mustGet(t, s, "gcc", 1, 100)
	if st := s.Stats(); st.Misses != before+1 {
		t.Errorf("misses went %d -> %d, want exactly one (the evicted gcc)", before, st.Misses)
	}
	// A trace larger than the whole bound is returned but not cached.
	mustGet(t, s, "perl", 1, 300)
	if st := s.Stats(); st.Records > 250 {
		t.Errorf("oversized trace was cached: %+v", st)
	}
}

func TestSingleflightDedup(t *testing.T) {
	s := New(0)
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	s.gen = func(name string, seed int64, n int) ([]trace.Rec, error) {
		calls.Add(1)
		close(entered)
		<-release // hold the generation until every other caller has joined it
		recs := make([]trace.Rec, n)
		for i := range recs {
			recs[i] = trace.Rec{Seq: uint64(i)}
		}
		return recs, nil
	}
	const callers = 16
	var wg sync.WaitGroup
	results := make([][]trace.Rec, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	// The longest request registers the flight first, so every follower can
	// be served from it (a shorter concurrent request joins and sub-slices).
	go func() {
		defer wg.Done()
		results[0], errs[0] = s.Get("go", 1, 1000)
	}()
	<-entered
	for i := 1; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			n := 1000
			if i%2 == 1 {
				n = 600
			}
			results[i], errs[i] = s.Get("go", 1, n)
		}(i)
	}
	// Every follower increments Dedups before blocking on the flight; wait
	// for all of them to have joined, then let the generation finish.
	for s.Stats().Dedups != callers-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("generator ran %d times under %d concurrent callers, want 1", calls.Load(), callers)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Dedups != callers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d dedups", st, callers-1)
	}
	for i, recs := range results {
		want := 1000
		if i%2 == 1 {
			want = 600
		}
		if len(recs) != want {
			t.Errorf("caller %d got %d records, want %d", i, len(recs), want)
		}
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	// Exercised under -race: many goroutines over few keys with growing
	// lengths, mixing hits, prefix hits, dedups and regenerations.
	s, _ := newStubbed(10_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"go", "gcc", "li"}
			for i := 0; i < 50; i++ {
				name := names[(g+i)%len(names)]
				n := 50 + 10*(i%7)
				recs, err := s.Get(name, int64(i%3), n)
				if err != nil {
					panic(err)
				}
				if len(recs) != n {
					panic(fmt.Sprintf("got %d records, want %d", len(recs), n))
				}
				_ = s.Stats()
			}
		}(g)
	}
	wg.Wait()
}

func TestDeterminism(t *testing.T) {
	// Cached traces must be bit-identical to freshly generated ones, and a
	// prefix of a longer run must equal a run of exactly that length.
	const n = 2_000
	s := New(0)
	cached, err := s.Get("compress95", 1, n)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := workload.Trace("compress95", 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, fresh) {
		t.Error("cached trace differs from a fresh emulator run")
	}
	longer, err := s.Get("compress95", 1, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(longer[:n], fresh) {
		t.Error("prefix of a longer trace differs from a run of that length")
	}
}

func TestPreloadAndReset(t *testing.T) {
	s, calls := newStubbed(0)
	names := []string{"go", "gcc", "li", "perl"}
	if err := s.Preload(names, 1, 100); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != int64(len(names)) {
		t.Errorf("preload ran the generator %d times, want %d", calls.Load(), len(names))
	}
	for _, name := range names {
		mustGet(t, s, name, 1, 100)
	}
	if st := s.Stats(); st.Hits != uint64(len(names)) || st.Misses != uint64(len(names)) {
		t.Errorf("stats after preload+get = %+v", st)
	}
	if err := s.Preload([]string{"go", "nonesuch"}, 1, 10); err == nil {
		t.Error("preload of an unknown workload succeeded")
	}
	s.Reset()
	if st := s.Stats(); st.Entries != 0 || st.Records != 0 || st.Hits != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}
