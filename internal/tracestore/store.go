// Package tracestore provides a process-wide, concurrency-safe cache of
// workload traces. The paper's evaluation sweeps many machine
// configurations over the same eight benchmark traces; without a cache
// every experiment.Run call rebuilds all of them from scratch, and
// multi-seed averaging multiplies that again. The store makes trace
// generation happen at most once per (workload, seed, length) per process:
//
//   - entries are keyed by (workload, seed) and hold the longest trace
//     generated so far for that pair; because the emulator is deterministic,
//     a request for any shorter length is served by sub-slicing the cached
//     prefix (a logical (workload, seed, traceLen) key with prefix
//     subsumption);
//   - total size is bounded by record count with least-recently-used
//     eviction;
//   - concurrent requests for the same key are deduplicated ("singleflight"):
//     exactly one goroutine runs the emulator, the rest wait and share the
//     result;
//   - hit/miss/evict/dedup counters are exposed through Stats.
//
// Traces returned by the store are shared between callers and MUST be
// treated as read-only; the simulation engines only ever read them.
package tracestore

import (
	"container/list"
	"fmt"
	"sync"

	"valuepred/internal/obs"
	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

// DefaultLimit is the record-count bound of the Shared store: roughly 40
// full-length (200k-instruction) traces, comfortably holding several seeds
// of the eight benchmarks (~0.5 GB at 64 bytes per record).
const DefaultLimit = 8 << 20

// Stats is a snapshot of the store's behaviour counters.
type Stats struct {
	// Hits counts Get calls served from a cached trace. PrefixHits is the
	// subset served by sub-slicing an entry longer than the request.
	Hits       uint64
	PrefixHits uint64
	// Misses counts Get calls that ran the emulator.
	Misses uint64
	// Dedups counts Get calls that piggybacked on another goroutine's
	// in-flight generation instead of starting their own.
	Dedups uint64
	// Evictions counts entries discarded to respect the record bound.
	Evictions uint64
	// Records and Entries describe current occupancy.
	Records int
	Entries int
}

// key identifies a cached trace. Length is not part of the key: the entry
// for (workload, seed) always holds the longest trace generated so far, and
// shorter requests reuse its prefix.
type key struct {
	workload string
	seed     int64
}

type entry struct {
	recs []trace.Rec
	elem *list.Element // position in the LRU list; value is the key
}

// flight is one in-progress generation that concurrent callers can join.
type flight struct {
	done chan struct{}
	n    int // length being generated
	recs []trace.Rec
	err  error
}

// storeMetrics are optional obs handles mirroring the Stats counters.
// Every obs method is a no-op through a nil handle, so an uninstrumented
// store pays only the nil-receiver checks.
type storeMetrics struct {
	hits       *obs.Counter
	prefixHits *obs.Counter
	misses     *obs.Counter
	dedups     *obs.Counter
	evictions  *obs.Counter
	records    *obs.Gauge
	entries    *obs.Gauge
}

// Store is a size-bounded, concurrency-safe trace cache.
type Store struct {
	mu       sync.Mutex
	limit    int // max total records; <= 0 means unbounded
	entries  map[key]*entry
	lru      *list.List // front = most recently used
	total    int
	inflight map[key]*flight
	stats    Stats
	obs      storeMetrics
	events   *obs.EventLog
	gen      func(name string, seed int64, n int) ([]trace.Rec, error)
}

// New returns a store bounded to at most limit cached records across all
// entries (limit <= 0 means unbounded).
func New(limit int) *Store {
	return &Store{
		limit:    limit,
		entries:  make(map[key]*entry),
		lru:      list.New(),
		inflight: make(map[key]*flight),
		gen:      workload.Trace,
	}
}

var shared = New(DefaultLimit)

// Shared returns the process-wide store used by the experiment runners and
// the valuepred facade.
func Shared() *Store { return shared }

// Instrument mirrors the store's Stats counters into reg under the
// "tracestore." prefix. Mirroring starts at the call; counters already
// accumulated in Stats are not replayed. A nil registry detaches.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.obs = storeMetrics{}
		return
	}
	s.obs = storeMetrics{
		hits:       reg.Counter("tracestore.hits"),
		prefixHits: reg.Counter("tracestore.prefix_hits"),
		misses:     reg.Counter("tracestore.misses"),
		dedups:     reg.Counter("tracestore.dedups"),
		evictions:  reg.Counter("tracestore.evictions"),
		records:    reg.Gauge("tracestore.records"),
		entries:    reg.Gauge("tracestore.entries"),
	}
	s.obs.records.Set(int64(s.total))
	s.obs.entries.Set(int64(len(s.entries)))
}

// InstrumentEvents attaches a structured event log: every cache miss that
// runs an emulator emits generate.start/generate.done events with the
// workload, seed, requested length and (on done) the wall milliseconds —
// the store's slowest operation, narrated. The wall-clock read stays
// inside obs (EventLog.Start), keeping this package clean under detlint.
// A nil log detaches.
func (s *Store) InstrumentEvents(l *obs.EventLog) {
	s.mu.Lock()
	s.events = l
	s.mu.Unlock()
}

// Get returns the first n records of the named workload's trace for seed,
// generating it at most once per process for any concurrent and future
// callers. The returned slice aliases the cache and must not be modified.
func (s *Store) Get(name string, seed int64, n int) ([]trace.Rec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tracestore: trace length must be positive, have %d", n)
	}
	if _, ok := workload.Get(name); !ok {
		return nil, fmt.Errorf("tracestore: unknown workload %q", name)
	}
	k := key{workload: name, seed: seed}
	for {
		s.mu.Lock()
		if e, ok := s.entries[k]; ok && len(e.recs) >= n {
			s.lru.MoveToFront(e.elem)
			s.stats.Hits++
			s.obs.hits.Inc()
			if len(e.recs) > n {
				s.stats.PrefixHits++
				s.obs.prefixHits.Inc()
			}
			recs := e.recs[:n:n]
			s.mu.Unlock()
			return recs, nil
		}
		if f, ok := s.inflight[k]; ok {
			if f.n >= n {
				// Join the in-flight generation and sub-slice its result.
				s.stats.Dedups++
				s.obs.dedups.Inc()
				s.mu.Unlock()
				<-f.done
				if f.err != nil {
					return nil, f.err
				}
				return f.recs[:n:n], nil
			}
			// A shorter generation is in flight; wait for it to settle and
			// re-evaluate (we will then miss and generate the longer trace).
			s.mu.Unlock()
			<-f.done
			continue
		}
		f := &flight{done: make(chan struct{}), n: n}
		s.inflight[k] = f
		s.stats.Misses++
		s.obs.misses.Inc()
		ev := s.events
		s.mu.Unlock()

		// Get's ctx-free API predates spans; generation events carry no
		// span id (nil ctx renders span as "").
		genDone := ev.Start(nil, "tracestore", "generate",
			obs.F("workload", name), obs.F("seed", seed), obs.F("n", n))
		recs, err := s.gen(name, seed, n)
		genDone(err == nil)
		f.recs, f.err = recs, err

		s.mu.Lock()
		delete(s.inflight, k)
		if err == nil {
			s.insert(k, recs)
		}
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, err
		}
		return recs[:n:n], nil
	}
}

// Cached reports whether every named workload's trace for (seed, n) is
// already resident. The probe is deliberately inert: it does not touch
// LRU order and counts neither hits nor misses, so callers can use it to
// pick a cheaper all-hit path (see experiment's trace loading) without
// perturbing the cache's behaviour counters or eviction decisions.
func (s *Store) Cached(names []string, seed int64, n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		e, ok := s.entries[key{workload: name, seed: seed}]
		if !ok || len(e.recs) < n {
			return false
		}
	}
	return true
}

// insert stores recs under k (replacing any shorter entry) and evicts
// least-recently-used entries until the record bound holds. Called with
// s.mu held. A trace larger than the whole bound is returned to the caller
// but not cached.
func (s *Store) insert(k key, recs []trace.Rec) {
	defer func() {
		s.obs.records.Set(int64(s.total))
		s.obs.entries.Set(int64(len(s.entries)))
	}()
	if old, ok := s.entries[k]; ok {
		if len(old.recs) >= len(recs) {
			return // a concurrent caller already cached an equal/longer trace
		}
		s.total -= len(old.recs)
		s.lru.Remove(old.elem)
		delete(s.entries, k)
	}
	if s.limit > 0 && len(recs) > s.limit {
		return
	}
	for s.limit > 0 && s.total+len(recs) > s.limit {
		back := s.lru.Back()
		if back == nil {
			break
		}
		bk := back.Value.(key)
		s.total -= len(s.entries[bk].recs)
		delete(s.entries, bk)
		s.lru.Remove(back)
		s.stats.Evictions++
		s.obs.evictions.Inc()
	}
	s.entries[k] = &entry{recs: recs, elem: s.lru.PushFront(k)}
	s.total += len(recs)
}

// Preload warms the store with the traces of every named workload at the
// given seed and length, generating them concurrently (one emulator per
// goroutine, deduplicated with any other caller). It returns the first
// generation error, if any.
func (s *Store) Preload(names []string, seed int64, n int) error {
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			_, errs[i] = s.Get(name, seed, n)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = s.total
	st.Entries = len(s.entries)
	return st
}

// Reset drops every cached entry and zeroes the counters. In-flight
// generations complete and are cached as usual.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[key]*entry)
	s.lru.Init()
	s.total = 0
	s.stats = Stats{}
	s.obs.records.Set(0)
	s.obs.entries.Set(0)
}
