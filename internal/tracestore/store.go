// Package tracestore provides a process-wide, concurrency-safe cache of
// workload traces. The paper's evaluation sweeps many machine
// configurations over the same eight benchmark traces; without a cache
// every experiment.Run call rebuilds all of them from scratch, and
// multi-seed averaging multiplies that again. The store makes trace
// generation happen at most once per (workload, seed, length) per process:
//
//   - entries are keyed by (workload, seed) and hold the longest trace
//     generated so far for that pair; because the emulator is deterministic,
//     a request for any shorter length is served by sub-slicing the cached
//     prefix (a logical (workload, seed, traceLen) key with prefix
//     subsumption);
//   - total size is bounded by record count with least-recently-used
//     eviction;
//   - concurrent requests for the same key are deduplicated ("singleflight"):
//     exactly one goroutine runs the emulator, the rest wait and share the
//     result;
//   - hit/miss/evict/dedup counters are exposed through Stats.
//
// The store caches traces in two representations sharing one LRU and one
// memory bound. Get serves the materialized form (a flat []trace.Rec,
// sub-sliced per request); GetStream serves the streaming form (an
// immutable chunk.Seq of compressed chunks, DESIGN.md §13) whose memory
// charge is its compressed size, so paper-scale traces that would blow the
// flat bound stay cacheable. Prefix subsumption applies to both: a Seq
// covering n records serves every request for fewer via a bounded Cursor,
// at chunk granularity and with zero copying.
//
// Traces returned by the store are shared between callers and MUST be
// treated as read-only; the simulation engines only ever read them, and
// chunk.Seq is immutable by construction.
package tracestore

import (
	"container/list"
	"fmt"
	"sync"

	"valuepred/internal/chunk"
	"valuepred/internal/obs"
	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

// DefaultLimit is the record-count bound of the Shared store: roughly 40
// full-length (200k-instruction) traces, comfortably holding several seeds
// of the eight benchmarks (~0.5 GB at 64 bytes per record).
const DefaultLimit = 8 << 20

// Stats is a snapshot of the store's behaviour counters.
type Stats struct {
	// Hits counts Get calls served from a cached trace. PrefixHits is the
	// subset served by sub-slicing an entry longer than the request.
	Hits       uint64
	PrefixHits uint64
	// Misses counts Get calls that ran the emulator.
	Misses uint64
	// Dedups counts Get calls that piggybacked on another goroutine's
	// in-flight generation instead of starting their own.
	Dedups uint64
	// Evictions counts entries discarded to respect the record bound.
	Evictions uint64
	// Records and Entries describe current occupancy. Records is the
	// charged total in record units: flat entries charge their length,
	// stream entries charge their compressed bytes divided by the nominal
	// record size (see recBytes). Entries counts flat entries only.
	Records int
	Entries int
	// StreamEntries counts cached chunk sequences; StreamRecords is the
	// number of logical trace records they cover; CompressedBytes is their
	// total compressed size (what they actually charge, in bytes).
	StreamEntries   int
	StreamRecords   int
	CompressedBytes int
}

// recBytes is the nominal in-memory size of one decoded trace.Rec, used to
// express a stream entry's compressed size in the record units of the
// store's bound (DefaultLimit's "~0.5 GB at 64 bytes per record").
const recBytes = 64

// seqCost is the charged size of a chunk sequence, in record units,
// rounded up so no entry is free.
func seqCost(q *chunk.Seq) int { return (q.Bytes() + recBytes - 1) / recBytes }

// key identifies a cached trace. Length is not part of the key: the entry
// for (workload, seed) always holds the longest trace generated so far, and
// shorter requests reuse its prefix.
type key struct {
	workload string
	seed     int64
}

// lruKey is the LRU list's element value: the entry key plus which of the
// two entry maps (flat or stream) it lives in, so one recency order and
// one memory bound govern both representations.
type lruKey struct {
	k      key
	stream bool
}

type entry struct {
	recs []trace.Rec
	elem *list.Element // position in the LRU list; value is an lruKey
}

// sentry is a cached streaming trace: an immutable compressed chunk
// sequence shared by every caller that needs any prefix of it.
type sentry struct {
	seq  *chunk.Seq
	elem *list.Element // position in the LRU list; value is an lruKey
}

// flight is one in-progress generation that concurrent callers can join.
type flight struct {
	done chan struct{}
	n    int // length being generated
	recs []trace.Rec
	err  error
}

// sflight is flight's streaming counterpart.
type sflight struct {
	done chan struct{}
	n    int
	seq  *chunk.Seq
	err  error
}

// storeMetrics are optional obs handles mirroring the Stats counters.
// Every obs method is a no-op through a nil handle, so an uninstrumented
// store pays only the nil-receiver checks.
type storeMetrics struct {
	hits          *obs.Counter
	prefixHits    *obs.Counter
	misses        *obs.Counter
	dedups        *obs.Counter
	evictions     *obs.Counter
	records       *obs.Gauge
	entries       *obs.Gauge
	streamEntries *obs.Gauge
	streamBytes   *obs.Gauge
}

// Store is a size-bounded, concurrency-safe trace cache.
type Store struct {
	mu        sync.Mutex
	limit     int // max total charged records; <= 0 means unbounded
	entries   map[key]*entry
	sentries  map[key]*sentry
	lru       *list.List // front = most recently used; both entry kinds
	total     int
	inflight  map[key]*flight
	sinflight map[key]*sflight
	stats     Stats
	obs       storeMetrics
	events    *obs.EventLog
	gen       func(name string, seed int64, n int) ([]trace.Rec, error)
	genSeq    func(name string, seed int64, n, chunkSize int) (*chunk.Seq, error)
}

// New returns a store bounded to at most limit cached records across all
// entries (limit <= 0 means unbounded).
func New(limit int) *Store {
	return &Store{
		limit:     limit,
		entries:   make(map[key]*entry),
		sentries:  make(map[key]*sentry),
		lru:       list.New(),
		inflight:  make(map[key]*flight),
		sinflight: make(map[key]*sflight),
		gen:       workload.Trace,
		genSeq:    streamTrace,
	}
}

// streamTrace is the default streaming generator: it runs the emulator
// record-at-a-time through chunk.Build, so the flat trace never exists —
// peak memory during generation is one chunk plus one compressed block.
func streamTrace(name string, seed int64, n, chunkSize int) (*chunk.Seq, error) {
	src, err := workload.Open(name, seed, n)
	if err != nil {
		return nil, err
	}
	q, err := chunk.Build(src, n, chunkSize)
	if err != nil {
		return nil, err
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return q, nil
}

var shared = New(DefaultLimit)

// Shared returns the process-wide store used by the experiment runners and
// the valuepred facade.
func Shared() *Store { return shared }

// Instrument mirrors the store's Stats counters into reg under the
// "tracestore." prefix. Mirroring starts at the call; counters already
// accumulated in Stats are not replayed. A nil registry detaches.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.obs = storeMetrics{}
		return
	}
	s.obs = storeMetrics{
		hits:          reg.Counter("tracestore.hits"),
		prefixHits:    reg.Counter("tracestore.prefix_hits"),
		misses:        reg.Counter("tracestore.misses"),
		dedups:        reg.Counter("tracestore.dedups"),
		evictions:     reg.Counter("tracestore.evictions"),
		records:       reg.Gauge("tracestore.records"),
		entries:       reg.Gauge("tracestore.entries"),
		streamEntries: reg.Gauge("tracestore.stream_entries"),
		streamBytes:   reg.Gauge("tracestore.stream_bytes"),
	}
	s.obs.records.Set(int64(s.total))
	s.obs.entries.Set(int64(len(s.entries)))
	s.obs.streamEntries.Set(int64(len(s.sentries)))
	s.obs.streamBytes.Set(int64(s.streamBytes()))
}

// streamBytes sums the compressed size of the cached sequences. Called
// with s.mu held; sentries is small (one per workload/seed pair).
func (s *Store) streamBytes() int {
	n := 0
	for _, e := range s.sentries {
		n += e.seq.Bytes()
	}
	return n
}

// InstrumentEvents attaches a structured event log: every cache miss that
// runs an emulator emits generate.start/generate.done events with the
// workload, seed, requested length and (on done) the wall milliseconds —
// the store's slowest operation, narrated. The wall-clock read stays
// inside obs (EventLog.Start), keeping this package clean under detlint.
// A nil log detaches.
func (s *Store) InstrumentEvents(l *obs.EventLog) {
	s.mu.Lock()
	s.events = l
	s.mu.Unlock()
}

// Get returns the first n records of the named workload's trace for seed,
// generating it at most once per process for any concurrent and future
// callers. The returned slice aliases the cache and must not be modified.
func (s *Store) Get(name string, seed int64, n int) ([]trace.Rec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tracestore: trace length must be positive, have %d", n)
	}
	if _, ok := workload.Get(name); !ok {
		return nil, fmt.Errorf("tracestore: unknown workload %q", name)
	}
	k := key{workload: name, seed: seed}
	for {
		s.mu.Lock()
		if e, ok := s.entries[k]; ok && len(e.recs) >= n {
			s.lru.MoveToFront(e.elem)
			s.stats.Hits++
			s.obs.hits.Inc()
			if len(e.recs) > n {
				s.stats.PrefixHits++
				s.obs.prefixHits.Inc()
			}
			recs := e.recs[:n:n]
			s.mu.Unlock()
			return recs, nil
		}
		if f, ok := s.inflight[k]; ok {
			if f.n >= n {
				// Join the in-flight generation and sub-slice its result.
				s.stats.Dedups++
				s.obs.dedups.Inc()
				s.mu.Unlock()
				<-f.done
				if f.err != nil {
					return nil, f.err
				}
				return f.recs[:n:n], nil
			}
			// A shorter generation is in flight; wait for it to settle and
			// re-evaluate (we will then miss and generate the longer trace).
			s.mu.Unlock()
			<-f.done
			continue
		}
		f := &flight{done: make(chan struct{}), n: n}
		s.inflight[k] = f
		s.stats.Misses++
		s.obs.misses.Inc()
		ev := s.events
		s.mu.Unlock()

		// Get's ctx-free API predates spans; generation events carry no
		// span id (nil ctx renders span as "").
		genDone := ev.Start(nil, "tracestore", "generate",
			obs.F("workload", name), obs.F("seed", seed), obs.F("n", n))
		recs, err := s.gen(name, seed, n)
		genDone(err == nil)
		f.recs, f.err = recs, err

		s.mu.Lock()
		delete(s.inflight, k)
		if err == nil {
			s.insert(k, recs)
		}
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, err
		}
		return recs[:n:n], nil
	}
}

// GetStream returns an immutable compressed chunk sequence covering at
// least the first n records of the named workload's trace for seed,
// generating it at most once per process (singleflight, shared with
// concurrent and future callers). Serve a specific prefix by wrapping the
// result in chunk.NewCursor(seq, n): the sequence may cover more records
// than requested (prefix subsumption at chunk granularity). chunkSize is
// the records-per-chunk for a fresh generation (<= 0 means
// chunk.DefaultSize); an already-cached sequence is served whatever size
// it was built with.
func (s *Store) GetStream(name string, seed int64, n, chunkSize int) (*chunk.Seq, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tracestore: trace length must be positive, have %d", n)
	}
	if _, ok := workload.Get(name); !ok {
		return nil, fmt.Errorf("tracestore: unknown workload %q", name)
	}
	k := key{workload: name, seed: seed}
	for {
		s.mu.Lock()
		if e, ok := s.sentries[k]; ok && e.seq.Len() >= n {
			s.lru.MoveToFront(e.elem)
			s.stats.Hits++
			s.obs.hits.Inc()
			if e.seq.Len() > n {
				s.stats.PrefixHits++
				s.obs.prefixHits.Inc()
			}
			q := e.seq
			s.mu.Unlock()
			return q, nil
		}
		if f, ok := s.sinflight[k]; ok {
			if f.n >= n {
				s.stats.Dedups++
				s.obs.dedups.Inc()
				s.mu.Unlock()
				<-f.done
				if f.err != nil {
					return nil, f.err
				}
				return f.seq, nil
			}
			// A shorter generation is in flight; wait and re-evaluate.
			s.mu.Unlock()
			<-f.done
			continue
		}
		f := &sflight{done: make(chan struct{}), n: n}
		s.sinflight[k] = f
		s.stats.Misses++
		s.obs.misses.Inc()
		ev := s.events
		s.mu.Unlock()

		genDone := ev.Start(nil, "tracestore", "generate_stream",
			obs.F("workload", name), obs.F("seed", seed), obs.F("n", n))
		q, err := s.genSeq(name, seed, n, chunkSize)
		genDone(err == nil)
		f.seq, f.err = q, err

		s.mu.Lock()
		delete(s.sinflight, k)
		if err == nil {
			s.insertSeq(k, q)
		}
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, err
		}
		return q, nil
	}
}

// Cached reports whether every named workload's trace for (seed, n) is
// already resident. The probe is deliberately inert: it does not touch
// LRU order and counts neither hits nor misses, so callers can use it to
// pick a cheaper all-hit path (see experiment's trace loading) without
// perturbing the cache's behaviour counters or eviction decisions.
func (s *Store) Cached(names []string, seed int64, n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		e, ok := s.entries[key{workload: name, seed: seed}]
		if !ok || len(e.recs) < n {
			return false
		}
	}
	return true
}

// CachedStream is Cached for the streaming representation: it reports
// whether every named workload has a resident chunk sequence covering n
// records. Equally inert.
func (s *Store) CachedStream(names []string, seed int64, n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		e, ok := s.sentries[key{workload: name, seed: seed}]
		if !ok || e.seq.Len() < n {
			return false
		}
	}
	return true
}

// insert stores recs under k (replacing any shorter entry) and evicts
// least-recently-used entries until the record bound holds. Called with
// s.mu held. A trace larger than the whole bound is returned to the caller
// but not cached.
func (s *Store) insert(k key, recs []trace.Rec) {
	defer s.syncGauges()
	if old, ok := s.entries[k]; ok {
		if len(old.recs) >= len(recs) {
			return // a concurrent caller already cached an equal/longer trace
		}
		s.total -= len(old.recs)
		s.lru.Remove(old.elem)
		delete(s.entries, k)
	}
	if s.limit > 0 && len(recs) > s.limit {
		return
	}
	s.evictFor(len(recs))
	s.entries[k] = &entry{recs: recs, elem: s.lru.PushFront(lruKey{k: k})}
	s.total += len(recs)
}

// insertSeq is insert for the streaming representation: q replaces any
// shorter cached sequence for k and charges its compressed size (in record
// units) against the same bound the flat entries share. Called with s.mu
// held.
func (s *Store) insertSeq(k key, q *chunk.Seq) {
	defer s.syncGauges()
	cost := seqCost(q)
	if old, ok := s.sentries[k]; ok {
		if old.seq.Len() >= q.Len() {
			return
		}
		s.total -= seqCost(old.seq)
		s.lru.Remove(old.elem)
		delete(s.sentries, k)
	}
	if s.limit > 0 && cost > s.limit {
		return
	}
	s.evictFor(cost)
	s.sentries[k] = &sentry{seq: q, elem: s.lru.PushFront(lruKey{k: k, stream: true})}
	s.total += cost
}

// evictFor drops least-recently-used entries of either kind until an
// insertion of the given charged size fits the bound. Called with s.mu
// held.
func (s *Store) evictFor(need int) {
	for s.limit > 0 && s.total+need > s.limit {
		back := s.lru.Back()
		if back == nil {
			break
		}
		lk := back.Value.(lruKey)
		if lk.stream {
			s.total -= seqCost(s.sentries[lk.k].seq)
			delete(s.sentries, lk.k)
		} else {
			s.total -= len(s.entries[lk.k].recs)
			delete(s.entries, lk.k)
		}
		s.lru.Remove(back)
		s.stats.Evictions++
		s.obs.evictions.Inc()
	}
}

// syncGauges mirrors occupancy into obs. Called with s.mu held.
func (s *Store) syncGauges() {
	s.obs.records.Set(int64(s.total))
	s.obs.entries.Set(int64(len(s.entries)))
	s.obs.streamEntries.Set(int64(len(s.sentries)))
	s.obs.streamBytes.Set(int64(s.streamBytes()))
}

// Preload warms the store with the traces of every named workload at the
// given seed and length, generating them concurrently (one emulator per
// goroutine, deduplicated with any other caller). It returns the first
// generation error, if any.
func (s *Store) Preload(names []string, seed int64, n int) error {
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			_, errs[i] = s.Get(name, seed, n)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PreloadStream is Preload for the streaming representation: it warms the
// store with a chunk sequence per named workload, generating concurrently.
func (s *Store) PreloadStream(names []string, seed int64, n, chunkSize int) error {
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			_, errs[i] = s.GetStream(name, seed, n, chunkSize)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = s.total
	st.Entries = len(s.entries)
	st.StreamEntries = len(s.sentries)
	for _, e := range s.sentries {
		st.StreamRecords += e.seq.Len()
		st.CompressedBytes += e.seq.Bytes()
	}
	return st
}

// Reset drops every cached entry and zeroes the counters. In-flight
// generations complete and are cached as usual.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[key]*entry)
	s.sentries = make(map[key]*sentry)
	s.lru.Init()
	s.total = 0
	s.stats = Stats{}
	s.syncGauges()
}
