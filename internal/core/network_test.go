package core

import (
	"testing"
	"testing/quick"

	"valuepred/internal/predictor"
)

// warm returns a classified stride predictor warmed so that pc predicts
// last+stride confidently.
func warm(pc uint64, last uint64, stride int64) predictor.Predictor {
	p := predictor.NewClassifiedStride()
	v := last - uint64(3*stride)
	for i := 0; i < 4; i++ {
		p.Update(pc, v)
		v += uint64(stride)
	}
	return p
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{Banks: 3, PortsPerBank: 1, Predictor: predictor.NewStride()}); err == nil {
		t.Error("non-power-of-two banks accepted")
	}
	if _, err := NewNetwork(Config{Banks: 4, PortsPerBank: 0, Predictor: predictor.NewStride()}); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := NewNetwork(Config{Banks: 4, PortsPerBank: 1}); err == nil {
		t.Error("missing predictor accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{})
}

func TestDuplicatePCMergeAndExpansion(t *testing.T) {
	// pc warmed to last=100, stride=10: copy 0 gets 110, copy 1 gets 120,
	// copy 2 gets 130 — the paper's X+Δ, X+2Δ, X+3Δ sequence.
	pc := uint64(0x1000)
	n := MustNew(Config{Banks: 16, PortsPerBank: 1, Predictor: warm(pc, 100, 10)})
	slots := n.ProcessGroup([]uint64{pc, pc, pc})
	want := []uint64{110, 120, 130}
	for i, s := range slots {
		if !s.Valid {
			t.Fatalf("copy %d denied", i)
		}
		if s.Pred.Value != want[i] {
			t.Errorf("copy %d value = %d, want %d", i, s.Pred.Value, want[i])
		}
		if (i > 0) != s.Merged {
			t.Errorf("copy %d merged flag = %v", i, s.Merged)
		}
	}
	st := n.Stats()
	if st.Granted != 1 || st.MergedServed != 2 || st.Denied != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLastValueMergeReplicates(t *testing.T) {
	pc := uint64(0x2000)
	lv := predictor.NewLastValue()
	lv.Update(pc, 77)
	n := MustNew(Config{Banks: 4, PortsPerBank: 1, Predictor: lv})
	slots := n.ProcessGroup([]uint64{pc, pc})
	for i, s := range slots {
		if !s.Valid || s.Pred.Value != 77 {
			t.Errorf("copy %d = %+v, want value 77", i, s)
		}
	}
}

func TestBankConflictDenial(t *testing.T) {
	// Two different PCs mapping to the same bank of a 1-bank table: only
	// the first (program-order priority) is granted.
	p := predictor.NewClassifiedStride()
	for _, pc := range []uint64{0x1000, 0x2000} {
		for v := uint64(1); v <= 4; v++ {
			p.Update(pc, v)
		}
	}
	n := MustNew(Config{Banks: 1, PortsPerBank: 1, Predictor: p})
	slots := n.ProcessGroup([]uint64{0x1000, 0x2000})
	if !slots[0].Valid {
		t.Error("first requester denied")
	}
	if slots[1].Valid {
		t.Error("conflicting requester granted")
	}
	st := n.Stats()
	if st.Granted != 1 || st.Denied != 1 || st.BankConflicts != 1 {
		t.Errorf("stats = %+v", st)
	}
	// A duplicate of a denied PC is merged-denied.
	slots = n.ProcessGroup([]uint64{0x1000, 0x2000, 0x2000})
	if slots[2].Valid {
		t.Error("merged copy of denied primary got a value")
	}
	if n.Stats().MergedDenied != 1 {
		t.Errorf("MergedDenied = %d", n.Stats().MergedDenied)
	}
}

func TestMultiPortBank(t *testing.T) {
	p := predictor.NewClassifiedStride()
	for _, pc := range []uint64{0x1000, 0x2000} {
		for v := uint64(1); v <= 4; v++ {
			p.Update(pc, v)
		}
	}
	n := MustNew(Config{Banks: 1, PortsPerBank: 2, Predictor: p})
	slots := n.ProcessGroup([]uint64{0x1000, 0x2000})
	if !slots[0].Valid || !slots[1].Valid {
		t.Error("dual-ported bank denied a request")
	}
}

func TestDifferentBanksNoConflict(t *testing.T) {
	p := predictor.NewClassifiedStride()
	// 0x1000>>2 = 0x400 (bank 0 of 4); 0x1004>>2 = 0x401 (bank 1).
	for _, pc := range []uint64{0x1000, 0x1004} {
		for v := uint64(1); v <= 4; v++ {
			p.Update(pc, v)
		}
	}
	n := MustNew(Config{Banks: 4, PortsPerBank: 1, Predictor: p})
	slots := n.ProcessGroup([]uint64{0x1000, 0x1004})
	if !slots[0].Valid || !slots[1].Valid {
		t.Error("non-conflicting requests denied")
	}
	if n.Stats().Denied != 0 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestHintDrop(t *testing.T) {
	hints := predictor.Profile(nil, 0.5) // empty profile: all default stride
	_ = hints
	drop := dropAll{}
	p := predictor.NewClassifiedStride()
	for v := uint64(1); v <= 4; v++ {
		p.Update(0x1000, v)
	}
	n := MustNew(Config{Banks: 1, PortsPerBank: 1, Predictor: p, Hints: drop})
	slots := n.ProcessGroup([]uint64{0x1000, 0x2000})
	if slots[0].Valid || slots[1].Valid {
		t.Error("hint-dropped request produced a value")
	}
	st := n.Stats()
	if st.HintDropped != 2 || st.Granted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

type dropAll struct{}

func (dropAll) HintFor(uint64) predictor.Hint { return predictor.HintNone }

func TestColdTable(t *testing.T) {
	n := MustNew(Config{Banks: 4, PortsPerBank: 1, Predictor: predictor.NewClassifiedStride()})
	slots := n.ProcessGroup([]uint64{0x1000, 0x1000})
	if slots[0].Valid || slots[1].Valid {
		t.Error("cold table produced values")
	}
	if n.Stats().Cold != 1 {
		t.Errorf("cold = %d", n.Stats().Cold)
	}
}

func TestUpdateTrains(t *testing.T) {
	n := MustNew(Config{Banks: 4, PortsPerBank: 1, Predictor: predictor.NewClassifiedStride()})
	for v := uint64(10); v <= 40; v += 10 {
		n.Update(0x1000, v)
	}
	slots := n.ProcessGroup([]uint64{0x1000})
	if !slots[0].Valid || slots[0].Pred.Value != 50 {
		t.Errorf("network update did not train the table: %+v", slots[0])
	}
}

// TestExpansionMatchesSequentialLookup: for a PC on a perfect stride, the
// distributor's expanded values must equal what per-copy sequential
// lookup+update would produce.
func TestExpansionMatchesSequentialLookup(t *testing.T) {
	f := func(start uint64, stride int16, copies uint8) bool {
		nCopies := int(copies%6) + 2
		pc := uint64(0x8000)
		d := int64(stride)
		// Reference: plain stride predictor with immediate updates.
		ref := predictor.NewStride()
		v := start
		ref.Update(pc, v)
		v += uint64(d)
		ref.Update(pc, v)
		var want []uint64
		for i := 0; i < nCopies; i++ {
			v += uint64(d)
			pr := ref.Lookup(pc)
			want = append(want, pr.Value)
			ref.Update(pc, v)
		}
		// Network: one merged group access.
		tbl := predictor.NewStride()
		tbl.Update(pc, start)
		tbl.Update(pc, start+uint64(d))
		n := MustNew(Config{Banks: 16, PortsPerBank: 1, Predictor: tbl})
		pcs := make([]uint64, nCopies)
		for i := range pcs {
			pcs[i] = pc
		}
		slots := n.ProcessGroup(pcs)
		for i, s := range slots {
			if !s.Valid || s.Pred.Value != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDenyRateAndBank(t *testing.T) {
	n := MustNew(Config{Banks: 8, PortsPerBank: 1, Predictor: predictor.NewStride()})
	if n.Bank(0x1000) != n.Bank(0x1000+8*4) {
		t.Error("bank mapping not modulo banks")
	}
	if n.Bank(0x1000) == n.Bank(0x1004) {
		t.Error("adjacent instructions must hit different banks")
	}
	if n.Stats().DenyRate() != 0 {
		t.Error("fresh network has nonzero deny rate")
	}
}

func TestDeniedFlagSemantics(t *testing.T) {
	// A cold table yields !Valid but not Denied; a bank conflict yields
	// Denied.
	p := predictor.NewClassifiedStride()
	for v := uint64(1); v <= 4; v++ {
		p.Update(0x1000, v)
		p.Update(0x2000, v)
	}
	n := MustNew(Config{Banks: 1, PortsPerBank: 1, Predictor: p})
	slots := n.ProcessGroup([]uint64{0x1000, 0x2000, 0x3000})
	if slots[0].Denied {
		t.Error("granted slot marked denied")
	}
	if !slots[1].Denied {
		t.Error("bank-conflicted slot not marked denied")
	}
	// 0x3000 also conflicts on the single bank this cycle.
	if !slots[2].Denied {
		t.Error("second conflicting slot not marked denied")
	}
	// Next cycle, alone: 0x3000 is granted but cold — not denied.
	slots = n.ProcessGroup([]uint64{0x3000})
	if slots[0].Valid || slots[0].Denied {
		t.Errorf("cold slot = %+v, want !Valid && !Denied", slots[0])
	}
}
