// Package core implements the paper's Section 4 hardware contribution: the
// value-prediction delivery network for high-bandwidth instruction-fetch
// processors. A trace-cache line can contain several copies of the same
// static instruction (e.g. three iterations of a loop fetched in one
// cycle), which a conventional interleaved prediction table cannot serve:
// the copies collide on one bank port, and a stride predictor can natively
// produce only one value per instruction per cycle.
//
// The network models the paper's solution end to end:
//
//   - a trace addresses buffer capturing the PCs of the fetched trace;
//   - an address router distributing those addresses to a highly
//     interleaved prediction table (bank = low-order PC bits), resolving
//     conflicts by program-order priority and merging the accesses of
//     duplicate PCs into a single access;
//   - a value distributor re-mapping bank replies to trace slots and
//     expanding a merged stride reply (last value + stride) into the value
//     sequence X+Δ, X+2Δ, … for the instruction's copies, with a valid bit
//     cleared on every slot whose request was denied.
//
// With a hybrid predictor (Section 4.2) the router additionally drops
// no-predict instructions before arbitration using opcode hints, and the
// distributor skips sequence computation for last-value-steered replies.
package core

import (
	"fmt"

	"valuepred/internal/predictor"
)

// Config parameterises the network.
type Config struct {
	// Banks is the number of prediction-table banks (power of two).
	Banks int
	// PortsPerBank is the number of same-cycle accesses one bank can
	// serve (paper: 1).
	PortsPerBank int
	// Predictor is the underlying prediction table (stride, last-value,
	// classified or hybrid). It must implement predictor.StrideSource for
	// merged requests to be expanded; otherwise only the first copy of a
	// duplicated instruction receives a value.
	Predictor predictor.Predictor
	// Hints optionally supplies opcode hints: HintNone instructions are
	// dropped by the router before bank arbitration, reducing conflicts
	// (Section 4.2). Nil means every request arbitrates.
	Hints predictor.Hints
}

// DefaultConfig returns a 16-bank, single-ported network over the paper's
// classified stride predictor.
func DefaultConfig() Config {
	return Config{Banks: 16, PortsPerBank: 1, Predictor: predictor.NewClassifiedStride()}
}

// Slot is the value distributor's reply for one instruction slot of the
// fetched trace.
type Slot struct {
	// Valid is the paper's valid bit: set when the slot received a
	// predicted value (its request was granted or merged); cleared when
	// the request was denied by a bank conflict, dropped by an opcode
	// hint, or the table had no warm entry.
	Valid bool
	// Merged reports the value came from a merged (duplicate-PC) access.
	Merged bool
	// Denied reports the slot's request was refused by the router (bank
	// conflict, hint drop, or a merged copy of a denied primary) — the
	// hardware cases Section 4 exists to minimise. A slot can be !Valid
	// without being Denied (cold table, unconfident classifier).
	Denied bool
	// Pred is the prediction delivered to the slot.
	Pred predictor.Prediction
}

// Stats accumulates router/distributor behaviour for Section 4 analysis.
type Stats struct {
	Cycles        uint64 // ProcessGroup calls
	Requests      uint64 // slots requesting a prediction
	HintDropped   uint64 // dropped by opcode hints before arbitration
	Granted       uint64 // unique accesses granted a bank port
	Denied        uint64 // unique accesses denied by bank conflicts
	MergedServed  uint64 // duplicate-PC slots served by a merged access
	MergedDenied  uint64 // duplicate-PC slots whose primary was denied
	Cold          uint64 // granted accesses with no warm table entry
	BankConflicts uint64 // port shortfalls observed during arbitration
}

// DenyRate returns the fraction of unique accesses denied by conflicts.
// With no accesses at all the rate is 0: DenyRate counts a failure event,
// and zero accesses suffered zero denials (the dual of the zero-sample
// convention in fetch.Stats.BranchAccuracy, where no samples means no
// failures and the success rate is 1).
func (s Stats) DenyRate() float64 {
	total := s.Granted + s.Denied
	if total == 0 {
		return 0
	}
	return float64(s.Denied) / float64(total)
}

// primary is the router's bookkeeping for the first (merged) access of a
// PC within one fetch group.
type primary struct {
	slot    int
	granted bool
	copies  int
	last    uint64
	strideV int64
	warm    bool
	conf    bool
}

// Network is the value-prediction delivery network.
type Network struct {
	cfg    Config
	mask   uint64
	stride predictor.StrideSource // nil if the predictor cannot expand
	ports  []int                  // per-bank ports used this cycle
	stats  Stats

	// Per-cycle working set, reused across ProcessGroup calls so the
	// pipeline hot path allocates nothing per fetch group (DESIGN.md §12):
	// the reply buffer, the primary-access records, and the PC-to-primary
	// index (values are indices into prims, not pointers — prims grows by
	// append and pointers into it would go stale).
	// Both buffers are delivered to callers as re-sliced views
	// (ProcessGroup returns slots truncated to the group); only Network's
	// own methods may grow or rewrite them.
	//lint:view
	slots []Slot
	//lint:view
	prims []primary
	byPC  map[uint64]int
}

// NewNetwork validates cfg and builds the network.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		return nil, fmt.Errorf("core: bank count %d is not a positive power of two", cfg.Banks)
	}
	if cfg.PortsPerBank <= 0 {
		return nil, fmt.Errorf("core: ports per bank must be positive, have %d", cfg.PortsPerBank)
	}
	if cfg.Predictor == nil {
		return nil, fmt.Errorf("core: config requires a predictor")
	}
	n := &Network{
		cfg:   cfg,
		mask:  uint64(cfg.Banks - 1),
		ports: make([]int, cfg.Banks),
		byPC:  make(map[uint64]int),
	}
	if ss, ok := cfg.Predictor.(predictor.StrideSource); ok {
		n.stride = ss
	}
	return n, nil
}

// MustNew is NewNetwork that panics on error, for validated configurations.
func MustNew(cfg Config) *Network {
	n, err := NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Stats returns the cumulative router/distributor statistics.
func (n *Network) Stats() Stats { return n.stats }

// Bank returns the bank an address routes to.
func (n *Network) Bank(pc uint64) int { return int((pc >> 2) & n.mask) }

// ProcessGroup runs one fetch cycle through the network. pcs are the
// addresses of the value-producing instructions in the fetched trace, in
// program order (the trace addresses buffer). The returned slice has one
// Slot per input address; it is owned by the network and valid only until
// the next ProcessGroup call (the pipeline consumes it within the cycle).
func (n *Network) ProcessGroup(pcs []uint64) []Slot {
	n.stats.Cycles++
	if cap(n.slots) < len(pcs) {
		n.slots = make([]Slot, len(pcs))
	}
	slots := n.slots[:len(pcs)]
	for i := range slots {
		slots[i] = Slot{}
	}
	for i := range n.ports {
		n.ports[i] = 0
	}
	n.prims = n.prims[:0]
	clear(n.byPC)

	for i, pc := range pcs {
		n.stats.Requests++
		if n.cfg.Hints != nil && n.cfg.Hints.HintFor(pc) == predictor.HintNone {
			n.stats.HintDropped++
			slots[i].Denied = true
			continue
		}
		if pi, dup := n.byPC[pc]; dup {
			p := &n.prims[pi]
			// Duplicate copy: the router merges it onto the primary
			// access; the distributor expands the stride sequence.
			p.copies++
			if !p.granted {
				n.stats.MergedDenied++
				slots[i] = Slot{Merged: true, Denied: true}
				continue
			}
			if !p.warm {
				continue
			}
			n.stats.MergedServed++
			var value uint64
			if n.stride != nil {
				// Copy 0 (the primary) received last+Δ from the table
				// lookup; copy k receives last+(k+1)Δ.
				value = p.last + uint64(int64(p.copies+1)*p.strideV)
			} else {
				// No expansion capability: only the primary copy is
				// served.
				continue
			}
			slots[i] = Slot{
				Valid:  p.conf,
				Merged: true,
				Pred:   predictor.Prediction{Value: value, HasValue: true, Confident: p.conf},
			}
			continue
		}
		// New primary: append to prims and index it by PC. The pointer is
		// only held within this iteration (later appends may move the
		// slice; the dup branch re-derives it from the index).
		n.byPC[pc] = len(n.prims)
		n.prims = append(n.prims, primary{slot: i})
		p := &n.prims[len(n.prims)-1]
		bank := n.Bank(pc)
		if n.ports[bank] >= n.cfg.PortsPerBank {
			// Bank conflict with an earlier, higher-priority instruction:
			// the request is denied and the slot's valid bit stays clear.
			n.stats.Denied++
			n.stats.BankConflicts++
			slots[i].Denied = true
			continue
		}
		n.ports[bank]++
		p.granted = true
		n.stats.Granted++
		pr := n.cfg.Predictor.Lookup(pc)
		if !pr.HasValue {
			n.stats.Cold++
			continue
		}
		p.warm = true
		p.conf = pr.Confident
		if n.stride != nil {
			p.last, p.strideV, _ = n.stride.LastAndStride(pc)
		}
		slots[i] = Slot{Valid: pr.Confident, Pred: pr}
	}
	return slots
}

// Update trains the underlying table with a committed value; the pipeline
// calls it once per value-producing instruction, after the group's lookups
// (mirroring the paper's speculative-update-then-correct protocol).
func (n *Network) Update(pc uint64, actual uint64) {
	n.cfg.Predictor.Update(pc, actual)
}
