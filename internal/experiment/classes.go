package experiment

import (
	"valuepred/internal/predictor"
)

func init() {
	register("diag.classes",
		"Diagnostic — stride predictability by instruction class (loads / ALU / jumps)",
		DiagClasses)
}

// DiagClasses reports the composition of each workload's value stream and
// the stride predictor's hit rate per instruction class. It backs the
// ablation.lipasti comparison: loads are a minority of value producers, so
// predicting only them forfeits most of the opportunity.
func DiagClasses(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Diagnostic — stride predictability by instruction class",
		RowHeader: "benchmark",
		Columns: []string{
			"load share %", "alu share %", "jump share %",
			"load hit %", "alu hit %", "jump hit %",
		},
	}
	g := p.newGrid("diag.classes")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "eval", func() (any, error) {
			return predictor.EvaluateByClassSource(predictor.NewStride(), f.source()), nil
		})
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		ca := res.get(name, "", "eval").(predictor.ClassAccuracy)
		total := ca.ALU.Eligible + ca.Load.Eligible + ca.Jump.Eligible
		share := func(n uint64) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(n) / float64(total)
		}
		t.AddRow(name,
			share(ca.Load.Eligible), share(ca.ALU.Eligible), share(ca.Jump.Eligible),
			100*ca.Load.HitRate(), 100*ca.ALU.HitRate(), 100*ca.Jump.HitRate(),
		)
	}
	t.AppendAverage()
	return t, nil
}
