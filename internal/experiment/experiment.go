// Package experiment contains one runner per table and figure of the
// paper's evaluation, plus the Section 4 router statistics and the design
// ablations called out in DESIGN.md. Each runner produces a stats.Table
// whose rows are the eight SPEC95-analogue benchmarks (in the paper's
// order) and whose columns are the swept machine configurations.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"valuepred/internal/obs"
	"valuepred/internal/predictor"
	"valuepred/internal/stats"
	"valuepred/internal/trace"
	"valuepred/internal/tracestore"
	"valuepred/internal/workload"
)

// Params configures a run of any experiment.
type Params struct {
	// Seed drives workload input generation.
	Seed int64
	// TraceLen is the dynamic instruction count per benchmark. The paper
	// traced 100M instructions; the workloads here are periodic enough
	// that a few hundred thousand give stable statistics.
	TraceLen int
	// Workloads restricts the benchmark set (nil = all eight).
	Workloads []string
	// Store overrides the trace cache consulted by the run (nil = the
	// process-wide tracestore.Shared()). Mainly for tests that need an
	// isolated cache with fresh counters.
	Store *tracestore.Store
	// Obs, when non-nil, receives metrics and cycle-level trace events from
	// every simulated run. Each (figure, benchmark, configuration) run gets
	// its own tracer track named like "fig5.1/gcc/n=4/vp". Observability is
	// write-only: tables are bit-identical with Obs set or nil.
	Obs *obs.Sink
	// Stream selects the chunked streaming trace path (DESIGN.md §13):
	// traces are cached as compressed chunk sequences and every simulated
	// machine consumes a bounded window instead of a materialized flat
	// slice, so a run's peak memory is governed by the chunk pool, not
	// TraceLen. Tables are byte-identical to the materialized path (pinned
	// by the root stream tests for every registered experiment at workers
	// {1, 8}); the trade is CPU (each machine re-decodes its chunks) for
	// memory, which is what paper-scale TraceLen values need.
	Stream bool
	// ChunkSize is the records-per-chunk of the streaming path; 0 means
	// chunk.DefaultSize. Ignored unless Stream is set.
	ChunkSize int

	// ctx carries the run's cancellation signal. It is unexported so that a
	// context can only enter through RunCtx/RunSeedsCtx, never get baked
	// into a stored Params value by accident; nil means "never canceled".
	ctx context.Context

	// aggs, when non-nil, receives the raw collectors behind the run-wide
	// aggregate notes (see notes.go) so a shard run can export them for the
	// merge. It is unexported and set only by RunShardFileCtx: ordinary
	// runs render their notes and keep nothing.
	aggs *[]NoteAgg
}

// DefaultParams returns the parameters used by the benchmark harness.
func DefaultParams() Params {
	return Params{Seed: 1, TraceLen: 200_000}
}

func (p Params) workloads() []string {
	if len(p.Workloads) > 0 {
		return p.Workloads
	}
	return workload.Names()
}

// ctxErr reports whether the run's context has been canceled or timed out,
// wrapping the context error so callers can tell an aborted run apart from
// a validation failure with errors.Is(err, context.Canceled) or
// errors.Is(err, context.DeadlineExceeded). A Params without a context
// never aborts.
func (p Params) ctxErr() error {
	if p.ctx == nil {
		return nil
	}
	if err := p.ctx.Err(); err != nil {
		return fmt.Errorf("experiment: run aborted: %w", err)
	}
	return nil
}

func (p Params) validate() error {
	if p.TraceLen <= 0 {
		return fmt.Errorf("experiment: TraceLen must be positive, have %d", p.TraceLen)
	}
	for _, name := range p.workloads() {
		if _, ok := workload.Get(name); !ok {
			return fmt.Errorf("experiment: unknown workload %q", name)
		}
	}
	return nil
}

// store returns the trace cache this run goes through.
func (p Params) store() *tracestore.Store {
	if p.Store != nil {
		return p.Store
	}
	return tracestore.Shared()
}

// track derives the observability sink for one simulated run, naming its
// tracer track by joining parts with "/" (e.g. "fig5.1/gcc/n=4/vp").
// Returns nil — the fully disabled sink — when observability is off.
func (p Params) track(parts ...string) *obs.Sink {
	if p.Obs == nil {
		return nil
	}
	return p.Obs.Track(strings.Join(parts, "/"))
}

// instrument wraps pred with the registry's predictor counters when
// observability is enabled; otherwise pred is returned untouched.
func (p Params) instrument(pred predictor.Predictor) predictor.Predictor {
	return predictor.Instrument(pred, p.Obs.Registry())
}

// traces fetches the dynamic trace of every selected workload through the
// trace store as one plan grid (one cell per workload on the shared pool):
// cached traces return immediately, missing ones run one emulator each,
// and requests racing with another experiment's are deduplicated by the
// store. The returned slices alias the cache and must be treated as
// read-only (every engine only reads its trace). A cancellation that
// arrives while the emulators run wins over any per-workload error: the
// caller asked the whole run to stop.
func (p Params) traces() (map[string][]trace.Rec, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	names := p.workloads()
	st := p.store()
	if st.Cached(names, p.Seed, p.TraceLen) {
		// Cell-granularity coarsening: when every trace is already
		// resident, a grid of per-workload cells is pure dispatch overhead
		// (each cell would grab a worker token just to sub-slice a cached
		// entry). Serve the request with plain serial Gets instead — the
		// store counts the same Hits either way, and the inert Cached probe
		// itself touches neither counters nor LRU order.
		out := make(map[string][]trace.Rec, len(names))
		for _, name := range names {
			recs, err := st.Get(name, p.Seed, p.TraceLen)
			if err != nil {
				return nil, err
			}
			out[name] = recs
		}
		return out, nil
	}
	g := p.newGrid("traces")
	for _, name := range names {
		g.cell(name, "", "", func() (any, error) {
			return st.Get(name, p.Seed, p.TraceLen)
		})
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]trace.Rec, len(names))
	for _, name := range names {
		out[name] = res.recs(name)
	}
	return out, nil
}

// Runner produces one experiment table.
type Runner func(Params) (*stableTable, error)

// stableTable aliases stats.Table via the re-export in tables.go; the
// indirection keeps the registry definition local.
type stableTable = Table

var registry = map[string]struct {
	runner Runner
	desc   string
}{}

// registered mirrors the registry's keys as a slice so that no caller ever
// iterates the map itself: map iteration order is randomized per process,
// and an ordering that leaks into a table or an -all run breaks the
// determinism contract enforced by vplint's detlint.
var registered []string

func register(id, desc string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiment: duplicate id " + id)
	}
	registry[id] = struct {
		runner Runner
		desc   string
	}{runner: r, desc: desc}
	registered = append(registered, id)
}

// IDs returns the registered experiment identifiers, sorted.
func IDs() []string {
	ids := append([]string(nil), registered...)
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) (string, bool) {
	e, ok := registry[id]
	return e.desc, ok
}

// Run executes the experiment with the given id. The run's lifecycle is
// narrated into the event log (run.start/run.done with the id, seed and
// trace length) when the sink carries one; like all obs plumbing this is
// write-only and changes nothing about the table.
func Run(id string, p Params) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	done := p.Obs.EventStart(p.ctx, "experiment", "run",
		obs.F("experiment", id), obs.F("seed", p.Seed), obs.F("tracelen", p.TraceLen))
	t, err := e.runner(p)
	done(err == nil)
	return t, err
}

// RunCtx executes the experiment with the given id under ctx. Cancellation
// is cooperative: the runners check the context at their checkpoints — when
// traces are requested, around each per-workload simulation, and between
// seeds — so an abort is observed at the next checkpoint rather than
// mid-simulation. An aborted run returns an error satisfying
// errors.Is(err, ctx.Err()), distinguishable from validation errors, which
// never wrap a context error. A nil ctx behaves like Run.
func RunCtx(ctx context.Context, id string, p Params) (*Table, error) {
	p.ctx = ctx
	return Run(id, p)
}

// RunSeedsCtx is RunSeeds under a cancellation context; see RunCtx for the
// checkpoint semantics.
func RunSeedsCtx(ctx context.Context, id string, p Params, seeds []int64) (*Table, error) {
	p.ctx = ctx
	return RunSeeds(id, p, seeds)
}

// preloadAsync warms the trace store for one seed in the background; any
// generation error is re-reported by the foreground Get that needs the
// trace, so it is safe to drop here. The preload runs as a plan grid on
// the shared worker pool — one launcher goroutine per seed, one cell per
// workload — so background warming competes for the same bounded tokens
// as foreground simulation instead of stampeding tracestore with a free
// goroutine per (seed, workload). A canceled run launches nothing: the
// context is checked both before spawning and again inside the goroutine
// (a cancel can land between the two), and the grid itself skips cells
// once the cancel lands, so an aborted RunSeeds does not burn emulators
// on traces nobody will read. The check is best-effort — a cancel
// arriving after a cell's generation starts cannot stop it, because the
// emulators themselves are context-free by design (DESIGN.md §9).
func (p Params) preloadAsync(seed int64) {
	if p.ctxErr() != nil {
		return
	}
	st := p.store()
	names := p.workloads()
	ps := p
	ps.Seed = seed
	go func() {
		if ps.ctxErr() != nil {
			return
		}
		g := ps.newGrid("preload")
		for _, name := range names {
			name := name
			g.cell(name, "", "", func() (any, error) {
				if ps.Stream {
					return st.GetStream(name, seed, ps.TraceLen, ps.ChunkSize)
				}
				return st.Get(name, seed, ps.TraceLen)
			})
		}
		g.run() //lint:ignore errlint any generation error is re-reported by the foreground Get
	}()
}

// RunSeeds executes the experiment once per seed and returns the
// element-wise average table. While one seed's machines simulate, the next
// seed's traces are generated in the background through the trace store, so
// multi-seed runs overlap emulation with simulation; repeated calls (e.g. a
// second experiment id over the same seeds) reuse every cached trace.
func RunSeeds(id string, p Params, seeds []int64) (*Table, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	tables := make([]*Table, 0, len(seeds))
	for i, s := range seeds {
		if err := p.ctxErr(); err != nil {
			return nil, err
		}
		if i+1 < len(seeds) {
			p.preloadAsync(seeds[i+1])
		}
		ps := p
		ps.Seed = s
		t, err := Run(id, ps)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return stats.AverageTables(tables)
}

// workloadGet returns the Table 3.1 description of a benchmark.
func workloadGet(name string) (string, bool) {
	s, ok := workload.Get(name)
	return s.Description, ok
}
