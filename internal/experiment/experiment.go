// Package experiment contains one runner per table and figure of the
// paper's evaluation, plus the Section 4 router statistics and the design
// ablations called out in DESIGN.md. Each runner produces a stats.Table
// whose rows are the eight SPEC95-analogue benchmarks (in the paper's
// order) and whose columns are the swept machine configurations.
package experiment

import (
	"fmt"
	"sort"
	"sync"

	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

// Params configures a run of any experiment.
type Params struct {
	// Seed drives workload input generation.
	Seed int64
	// TraceLen is the dynamic instruction count per benchmark. The paper
	// traced 100M instructions; the workloads here are periodic enough
	// that a few hundred thousand give stable statistics.
	TraceLen int
	// Workloads restricts the benchmark set (nil = all eight).
	Workloads []string
}

// DefaultParams returns the parameters used by the benchmark harness.
func DefaultParams() Params {
	return Params{Seed: 1, TraceLen: 200_000}
}

func (p Params) workloads() []string {
	if len(p.Workloads) > 0 {
		return p.Workloads
	}
	return workload.Names()
}

func (p Params) validate() error {
	if p.TraceLen <= 0 {
		return fmt.Errorf("experiment: TraceLen must be positive, have %d", p.TraceLen)
	}
	for _, name := range p.workloads() {
		if _, ok := workload.Get(name); !ok {
			return fmt.Errorf("experiment: unknown workload %q", name)
		}
	}
	return nil
}

// traces builds the dynamic trace of every selected workload, one
// emulator per goroutine.
func (p Params) traces() (map[string][]trace.Rec, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	names := p.workloads()
	recs := make([][]trace.Rec, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			recs[i], errs[i] = workload.Trace(name, p.Seed, p.TraceLen)
		}(i, name)
	}
	wg.Wait()
	out := make(map[string][]trace.Rec, len(names))
	for i, name := range names {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[name] = recs[i]
	}
	return out, nil
}

// Runner produces one experiment table.
type Runner func(Params) (*stableTable, error)

// stableTable aliases stats.Table via the re-export in tables.go; the
// indirection keeps the registry definition local.
type stableTable = Table

var registry = map[string]struct {
	runner Runner
	desc   string
}{}

func register(id, desc string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiment: duplicate id " + id)
	}
	registry[id] = struct {
		runner Runner
		desc   string
	}{r, desc}
}

// IDs returns the registered experiment identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) (string, bool) {
	e, ok := registry[id]
	return e.desc, ok
}

// Run executes the experiment with the given id.
func Run(id string, p Params) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return e.runner(p)
}

// workloadGet returns the Table 3.1 description of a benchmark.
func workloadGet(name string) (string, bool) {
	s, ok := workload.Get(name)
	return s.Description, ok
}

// forEachWorkload runs fn for every selected workload concurrently (one
// goroutine per benchmark — each run builds its own predictors and engines,
// so there is no shared mutable state) and appends the returned rows to t
// in the paper's presentation order.
func forEachWorkload(p Params, t *Table, fn func(name string, recs []trace.Rec) ([]float64, error)) error {
	traces, err := p.traces()
	if err != nil {
		return err
	}
	names := p.workloads()
	rows := make([][]float64, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			rows[i], errs[i] = fn(name, traces[name])
		}(i, name)
	}
	wg.Wait()
	for i, name := range names {
		if errs[i] != nil {
			return errs[i]
		}
		t.AddRow(name, rows[i]...)
	}
	return nil
}
