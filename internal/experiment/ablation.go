package experiment

import (
	"fmt"

	"valuepred/internal/core"
	"valuepred/internal/fetch"
	"valuepred/internal/pipeline"
	"valuepred/internal/predictor"
)

func init() {
	register("ablation.banks", "Ablation — prediction-table bank count (Section 4 network)", AblationBanks)
	register("ablation.hybrid", "Ablation — stride vs hybrid+hints predictor in the network (Section 4.2)", AblationHybrid)
	register("ablation.window", "Ablation — scheduling-window vs ROB window semantics", AblationWindow)
	register("ablation.vpenalty", "Ablation — value-misprediction reschedule penalty", AblationVPenalty)
}

// AblationBankCounts is the bank sweep of ablation.banks.
var AblationBankCounts = []int{1, 2, 4, 8, 16}

// AblationBanks sweeps the number of banks in the prediction network on the
// trace-cache machine: fewer banks mean more router denials and a smaller
// value-prediction speedup. One base cell plus one vp cell per bank count
// per workload; speedups are computed at the keyed merge against the
// workload's shared base run.
func AblationBanks(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — speedup vs prediction-table bank count (trace cache, ideal BTB)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, b := range AblationBankCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%d banks", b))
	}
	g := p.newGrid("ablation.banks")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			return pipeline.Run(fetch.NewTraceCacheSource(f.source(), perfectBTB(), fetch.DefaultTCConfig()), pipeline.DefaultConfig())
		})
		for _, banks := range AblationBankCounts {
			col := fmt.Sprintf("%d banks", banks)
			g.cell(name, col, "vp", func() (any, error) {
				netCfg := core.DefaultConfig()
				netCfg.Banks = banks
				cfg := pipeline.DefaultConfig()
				cfg.Network = core.MustNew(netCfg)
				return pipeline.Run(fetch.NewTraceCacheSource(f.source(), perfectBTB(), fetch.DefaultTCConfig()), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(pipeline.Result)
		var cells []float64
		for _, banks := range AblationBankCounts {
			vp := res.get(name, fmt.Sprintf("%d banks", banks), "vp").(pipeline.Result)
			cells = append(cells, pipeline.Speedup(base, vp))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	return t, nil
}

// AblationHybrid compares three predictor organisations inside the network
// on the trace-cache machine: the classified stride table, a hybrid
// (last-value + small stride table) without hints, and the hybrid steered
// by profiling-derived opcode hints, which also unloads the router
// (Section 4.2). Each variant cell owns its network and profiles its own
// hints (profiling is deterministic, so recomputing inside the cell keeps
// cells self-contained without perturbing results).
func AblationHybrid(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — predictor organisation in the network (trace cache, ideal BTB, 4 banks)",
		RowHeader: "benchmark",
		Columns:   []string{"stride", "hybrid", "hybrid+hints", "denied% stride", "denied% hints"},
	}
	type vpOut struct {
		res   pipeline.Result
		stats core.Stats
	}
	variants := []string{"stride", "hybrid", "hybrid+hints"}
	g := p.newGrid("ablation.hybrid")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			return pipeline.Run(fetch.NewTraceCacheSource(f.source(), perfectBTB(), fetch.DefaultTCConfig()), pipeline.DefaultConfig())
		})
		for _, v := range variants {
			g.cell(name, "", v, func() (any, error) {
				var pred predictor.Predictor
				var hints predictor.Hints
				switch v {
				case "stride":
					pred = predictor.NewClassifiedStride()
				case "hybrid":
					pred = predictor.NewHybrid(1024, nil)
				case "hybrid+hints":
					// Profile the first quarter of the trace for hints.
					hints = predictor.ProfileSource(f.prefix(f.Len()/4), 0.6)
					pred = predictor.NewHybrid(1024, hints)
				}
				netCfg := core.Config{Banks: 4, PortsPerBank: 1, Predictor: pred, Hints: hints}
				net, err := core.NewNetwork(netCfg)
				if err != nil {
					return nil, err
				}
				cfg := pipeline.DefaultConfig()
				cfg.Network = net
				res, err := pipeline.Run(fetch.NewTraceCacheSource(f.source(), perfectBTB(), fetch.DefaultTCConfig()), cfg)
				if err != nil {
					return nil, err
				}
				return vpOut{res: res, stats: net.Stats()}, nil
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(pipeline.Result)
		var cells []float64
		var denied []float64
		for _, v := range variants {
			out := res.get(name, "", v).(vpOut)
			cells = append(cells, pipeline.Speedup(base, out.res))
			s := out.stats
			denied = append(denied, 100*float64(s.Denied+s.MergedDenied)/float64(max64(s.Requests, 1)))
		}
		t.AddRow(name, cells[0], cells[1], cells[2], denied[0], denied[2])
	}
	t.AppendAverage()
	return t, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// AblationWindow compares scheduling-window semantics (slots free at
// execute; the paper's model) against ROB semantics (slots held until
// in-order commit) on the unlimited-fetch machine.
func AblationWindow(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — window semantics (sequential fetch, unlimited taken branches, ideal BTB)",
		RowHeader: "benchmark",
		Columns:   []string{"sched-window speedup", "ROB speedup", "sched base IPC", "ROB base IPC"},
	}
	cols := []string{"sched", "rob"}
	g := p.newGrid("ablation.window")
	for _, name := range p.workloads() {
		f := feeds[name]
		for hi, hold := range []bool{false, true} {
			col := cols[hi]
			g.cell(name, col, "base", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.HoldUntilCommit = hold
				return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), -1), cfg)
			})
			g.cell(name, col, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.HoldUntilCommit = hold
				cfg.Predictor = predictor.NewClassifiedStride()
				return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), -1), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		var speedups, ipcs []float64
		for _, col := range cols {
			base := res.get(name, col, "base").(pipeline.Result)
			vp := res.get(name, col, "vp").(pipeline.Result)
			speedups = append(speedups, pipeline.Speedup(base, vp))
			ipcs = append(ipcs, base.IPC())
		}
		t.AddRow(name, speedups[0], speedups[1], ipcs[0], ipcs[1])
	}
	t.AppendAverage()
	return t, nil
}

// AblationVPenalty sweeps the extra reschedule penalty charged to consumers
// of mispredicted values, quantifying how sensitive the paper's results are
// to the recovery model.
func AblationVPenalty(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	penalties := []int{0, 1, 2, 4}
	t := &Table{
		Title:     "Ablation — value-misprediction reschedule penalty (sequential fetch, n=4, ideal BTB)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, pen := range penalties {
		t.Columns = append(t.Columns, fmt.Sprintf("+%d cycles", pen))
	}
	g := p.newGrid("ablation.vpenalty")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), 4), pipeline.DefaultConfig())
		})
		for _, pen := range penalties {
			col := fmt.Sprintf("+%d cycles", pen)
			g.cell(name, col, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.ValuePenalty = pen
				cfg.Predictor = predictor.NewClassifiedStride()
				return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), 4), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(pipeline.Result)
		var cells []float64
		for _, pen := range penalties {
			vp := res.get(name, fmt.Sprintf("+%d cycles", pen), "vp").(pipeline.Result)
			cells = append(cells, pipeline.Speedup(base, vp))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	return t, nil
}
