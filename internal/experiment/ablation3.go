package experiment

import (
	"valuepred/internal/ideal"
	"valuepred/internal/predictor"
)

func init() {
	register("ablation.lipasti",
		"Ablation — load-value-only prediction [13] vs all-instruction prediction [7]",
		AblationLipasti)
	register("ablation.twodelta",
		"Ablation — plain stride vs two-delta stride update policy",
		AblationTwoDelta)
}

// vpEval couples one ideal-machine vp run with the scheme's raw trace
// accuracy, so a grid cell can carry both to the merge.
type vpEval struct {
	res ideal.Result
	acc predictor.Accuracy
}

// vpEvalCell builds the cell body shared by the ablation.lipasti and
// ablation.twodelta schemes: run the ideal machine at width 16 under a
// fresh predictor, then evaluate a second fresh predictor over the raw
// trace. Both passes take their own fresh source from the feed.
func vpEvalCell(f feed, mk func() predictor.Predictor) func() (any, error) {
	return func() (any, error) {
		cfg := ideal.DefaultConfig(16)
		cfg.Predictor = mk()
		res, err := ideal.Run(f.source(), cfg)
		if err != nil {
			return nil, err
		}
		return vpEval{res: res, acc: predictor.EvaluateSource(mk(), f.source())}, nil
	}
}

// AblationLipasti contrasts the original load-value prediction of Lipasti,
// Wilkerson & Shen (reference [13]: predict loads only) with the paper's
// all-instruction value prediction, on the ideal machine at width 16. The
// last two columns give each scheme's prediction coverage (correct
// confident predictions per value-producing instruction).
func AblationLipasti(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — loads-only [13] vs all-instruction [7] value prediction (ideal machine, width 16)",
		RowHeader: "benchmark",
		Columns:   []string{"loads-only speedup", "all-inst speedup", "loads-only coverage %", "all-inst coverage %"},
	}
	schemes := []string{"loads-only", "all-inst"}
	g := p.newGrid("ablation.lipasti")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			return ideal.Run(f.source(), ideal.DefaultConfig(16))
		})
		mks := []func() predictor.Predictor{
			func() predictor.Predictor {
				return predictor.NewLoadsOnlyFromSource(predictor.NewClassifiedStride(), f.source())
			},
			func() predictor.Predictor { return predictor.NewClassifiedStride() },
		}
		for si, scheme := range schemes {
			g.cell(name, "", scheme, vpEvalCell(f, mks[si]))
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(ideal.Result)
		var speedups, coverages []float64
		for _, scheme := range schemes {
			out := res.get(name, "", scheme).(vpEval)
			speedups = append(speedups, ideal.Speedup(base, out.res))
			coverages = append(coverages, 100*out.acc.ConfidentCoverage())
		}
		t.AddRow(name, speedups[0], speedups[1], coverages[0], coverages[1])
	}
	t.AppendAverage()
	t.AddNote("loads-only reproduces the [13]-style result: less coverage, much less speedup")
	return t, nil
}

// AblationTwoDelta compares the plain stride update rule against the
// two-delta rule of the paper's technical reports on raw accuracy and on
// ideal-machine speedup at width 16.
func AblationTwoDelta(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — stride vs two-delta stride (ideal machine, width 16)",
		RowHeader: "benchmark",
		Columns:   []string{"stride speedup", "2-delta speedup", "stride hit %", "2-delta hit %"},
	}
	schemes := []string{"stride", "2-delta"}
	mks := []func() predictor.Predictor{
		func() predictor.Predictor { return predictor.NewClassifiedStride() },
		func() predictor.Predictor { return predictor.NewClassifiedTwoDelta() },
	}
	g := p.newGrid("ablation.twodelta")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			return ideal.Run(f.source(), ideal.DefaultConfig(16))
		})
		for si, scheme := range schemes {
			g.cell(name, "", scheme, vpEvalCell(f, mks[si]))
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(ideal.Result)
		var speedups, hits []float64
		for _, scheme := range schemes {
			out := res.get(name, "", scheme).(vpEval)
			speedups = append(speedups, ideal.Speedup(base, out.res))
			hits = append(hits, 100*out.acc.HitRate())
		}
		t.AddRow(name, speedups[0], speedups[1], hits[0], hits[1])
	}
	t.AppendAverage()
	return t, nil
}
