package experiment

import (
	"valuepred/internal/ideal"
	"valuepred/internal/predictor"
	"valuepred/internal/trace"
)

func init() {
	register("ablation.lipasti",
		"Ablation — load-value-only prediction [13] vs all-instruction prediction [7]",
		AblationLipasti)
	register("ablation.twodelta",
		"Ablation — plain stride vs two-delta stride update policy",
		AblationTwoDelta)
}

// AblationLipasti contrasts the original load-value prediction of Lipasti,
// Wilkerson & Shen (reference [13]: predict loads only) with the paper's
// all-instruction value prediction, on the ideal machine at width 16. The
// last two columns give each scheme's prediction coverage (correct
// confident predictions per value-producing instruction).
func AblationLipasti(p Params) (*Table, error) {
	traces, err := p.traces()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — loads-only [13] vs all-instruction [7] value prediction (ideal machine, width 16)",
		RowHeader: "benchmark",
		Columns:   []string{"loads-only speedup", "all-inst speedup", "loads-only coverage %", "all-inst coverage %"},
	}
	for _, name := range p.workloads() {
		recs := traces[name]
		base, err := ideal.Run(trace.NewSliceSource(recs), ideal.DefaultConfig(16))
		if err != nil {
			return nil, err
		}
		mk := []func() predictor.Predictor{
			func() predictor.Predictor {
				return predictor.NewLoadsOnlyFromTrace(predictor.NewClassifiedStride(), recs)
			},
			func() predictor.Predictor { return predictor.NewClassifiedStride() },
		}
		var speedups, coverages []float64
		for _, m := range mk {
			cfg := ideal.DefaultConfig(16)
			cfg.Predictor = m()
			vp, err := ideal.Run(trace.NewSliceSource(recs), cfg)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, ideal.Speedup(base, vp))
			acc := predictor.Evaluate(m(), recs)
			coverages = append(coverages, 100*acc.ConfidentCoverage())
		}
		t.AddRow(name, speedups[0], speedups[1], coverages[0], coverages[1])
	}
	t.AppendAverage()
	t.AddNote("loads-only reproduces the [13]-style result: less coverage, much less speedup")
	return t, nil
}

// AblationTwoDelta compares the plain stride update rule against the
// two-delta rule of the paper's technical reports on raw accuracy and on
// ideal-machine speedup at width 16.
func AblationTwoDelta(p Params) (*Table, error) {
	traces, err := p.traces()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — stride vs two-delta stride (ideal machine, width 16)",
		RowHeader: "benchmark",
		Columns:   []string{"stride speedup", "2-delta speedup", "stride hit %", "2-delta hit %"},
	}
	for _, name := range p.workloads() {
		recs := traces[name]
		base, err := ideal.Run(trace.NewSliceSource(recs), ideal.DefaultConfig(16))
		if err != nil {
			return nil, err
		}
		var speedups, hits []float64
		for _, m := range []func() predictor.Predictor{
			func() predictor.Predictor { return predictor.NewClassifiedStride() },
			func() predictor.Predictor { return predictor.NewClassifiedTwoDelta() },
		} {
			cfg := ideal.DefaultConfig(16)
			cfg.Predictor = m()
			vp, err := ideal.Run(trace.NewSliceSource(recs), cfg)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, ideal.Speedup(base, vp))
			hits = append(hits, 100*predictor.Evaluate(m(), recs).HitRate())
		}
		t.AddRow(name, speedups[0], speedups[1], hits[0], hits[1])
	}
	t.AppendAverage()
	return t, nil
}
