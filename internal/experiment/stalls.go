package experiment

import (
	"valuepred/internal/fetch"
	"valuepred/internal/pipeline"
	"valuepred/internal/predictor"
)

func init() {
	register("diag.stalls",
		"Diagnostic — front-end stall breakdown on the Section 5 machine (2-level BTB, n=4)",
		DiagStalls)
}

// DiagStalls decomposes where the Section 5 machine's cycles go: branch
// redirect bubbles, window-full back-pressure, and the average window
// occupancy, with and without value prediction. It quantifies the paper's
// narrative that value prediction drains the window faster, converting
// dependence stalls into fetch demand.
func DiagStalls(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Diagnostic — stall breakdown (sequential fetch, n=4, 2-level BTB)",
		RowHeader: "benchmark",
		Columns: []string{
			"base IPC", "vp IPC",
			"branch-stall % base", "branch-stall % vp",
			"winfull % base", "winfull % vp",
			"occupancy base", "occupancy vp",
		},
	}
	g := p.newGrid("diag.stalls")
	for _, name := range p.workloads() {
		f := feeds[name]
		for _, variant := range []string{"base", "vp"} {
			g.cell(name, "", variant, func() (any, error) {
				cfg := pipeline.DefaultConfig()
				if variant == "vp" {
					cfg.Predictor = p.instrument(predictor.NewClassifiedStride())
				}
				cfg.Obs = p.track("diag.stalls", name, variant)
				return pipeline.Run(fetch.NewSequentialSource(f.source(), twoLevelBTB(), 4), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(pipeline.Result)
		vp := res.get(name, "", "vp").(pipeline.Result)
		pct := func(n, d uint64) float64 { return 100 * float64(n) / float64(d) }
		t.AddRow(name,
			base.IPC(), vp.IPC(),
			pct(base.BranchStallCycles, base.Cycles), pct(vp.BranchStallCycles, vp.Cycles),
			pct(base.WindowFullCycles, base.Cycles), pct(vp.WindowFullCycles, vp.Cycles),
			base.AvgOccupancy(), vp.AvgOccupancy(),
		)
	}
	t.AppendAverage()
	return t, nil
}
