package experiment

import (
	"fmt"

	"valuepred/internal/trace"

	"valuepred/internal/fetch"
	"valuepred/internal/pipeline"
	"valuepred/internal/predictor"
)

func init() {
	register("ablation.vptable",
		"Ablation — finite prediction-table sizes vs the infinite-table idealisation",
		AblationVPTable)
	register("diag.memdeps",
		"Diagnostic — effect of store-to-load dependencies on the baseline and on VP",
		DiagMemDeps)
}

// AblationVPTableSizes is the size sweep (0 = infinite).
var AblationVPTableSizes = []int{16, 64, 256, 0}

// AblationVPTable replaces Section 3's infinite stride table with
// direct-mapped tagged tables of realistic sizes on the Section 5 machine
// (n=4, ideal BTB): the knee shows how much state the paper's assumption
// hides.
func AblationVPTable(p Params) (*Table, error) {
	traces, err := p.traces()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — value-prediction table size (sequential fetch, n=4, ideal BTB)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, size := range AblationVPTableSizes {
		if size == 0 {
			t.Columns = append(t.Columns, "infinite")
		} else {
			t.Columns = append(t.Columns, fmt.Sprintf("%d entries", size))
		}
	}
	for _, name := range p.workloads() {
		recs := traces[name]
		base, err := pipeline.Run(fetch.NewSequential(recs, perfectBTB(), 4), pipeline.DefaultConfig())
		if err != nil {
			return nil, err
		}
		var cells []float64
		for _, size := range AblationVPTableSizes {
			var inner predictor.Predictor
			if size == 0 {
				inner = predictor.NewStride()
			} else {
				inner = predictor.NewStrideTable(size)
			}
			cfg := pipeline.DefaultConfig()
			cfg.Predictor = &predictor.Classified{Inner: inner, Class: predictor.NewClassifier(2, 2)}
			vp, err := pipeline.Run(fetch.NewSequential(recs, perfectBTB(), 4), cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, pipeline.Speedup(base, vp))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	return t, nil
}

// DiagMemDeps quantifies how much of each workload's serialisation flows
// through memory: baseline IPC and VP speedup with and without
// store-to-load dependencies (n=4, ideal BTB). Without memory dependencies
// the machine is optimistic (perfect memory renaming).
func DiagMemDeps(p Params) (*Table, error) {
	traces, err := p.traces()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Diagnostic — store-to-load dependencies (sequential fetch, n=4, ideal BTB)",
		RowHeader: "benchmark",
		Columns:   []string{"base IPC mem", "base IPC nomem", "speedup mem", "speedup nomem"},
	}
	for _, name := range p.workloads() {
		recs := traces[name]
		run := func(mem, vp bool) (pipeline.Result, error) {
			cfg := pipeline.DefaultConfig()
			cfg.IncludeMemoryDeps = mem
			if vp {
				cfg.Predictor = predictor.NewClassifiedStride()
			}
			return pipeline.Run(fetch.NewSequential(recs, perfectBTB(), 4), cfg)
		}
		baseMem, err := run(true, false)
		if err != nil {
			return nil, err
		}
		baseNo, err := run(false, false)
		if err != nil {
			return nil, err
		}
		vpMem, err := run(true, true)
		if err != nil {
			return nil, err
		}
		vpNo, err := run(false, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			baseMem.IPC(), baseNo.IPC(),
			pipeline.Speedup(baseMem, vpMem), pipeline.Speedup(baseNo, vpNo))
	}
	t.AppendAverage()
	return t, nil
}

func init() {
	register("ablation.partial",
		"Ablation — trace-cache partial matching (reference [6])",
		AblationPartial)
}

// AblationPartial measures the partial-matching improvement of the paper's
// reference [6] on the trace-cache machine with the 2-level BTB: the hit
// rate rises because predictor/line disagreements deliver the matching
// prefix instead of missing.
func AblationPartial(p Params) (*Table, error) {
	t := &Table{
		Title:     "Ablation — trace-cache partial matching (2-level BTB)",
		RowHeader: "benchmark",
		Columns:   []string{"hit% off", "hit% on", "partial share %", "speedup off", "speedup on"},
	}
	err := forEachWorkload(p, t, func(name string, recs []trace.Rec) ([]float64, error) {
		type outcome struct {
			hit, partialShare, speedup float64
		}
		measure := func(partial bool) (outcome, error) {
			tcCfg := fetch.DefaultTCConfig()
			tcCfg.PartialMatching = partial
			mk := func() fetch.Engine {
				return fetch.NewTraceCache(recs, twoLevelBTB(), tcCfg)
			}
			base, err := pipeline.Run(mk(), pipeline.DefaultConfig())
			if err != nil {
				return outcome{}, err
			}
			cfg := pipeline.DefaultConfig()
			cfg.Predictor = predictor.NewClassifiedStride()
			vp, err := pipeline.Run(mk(), cfg)
			if err != nil {
				return outcome{}, err
			}
			st := vp.Fetch
			var share float64
			if st.TCHits > 0 {
				share = 100 * float64(st.TCPartialHits) / float64(st.TCHits)
			}
			return outcome{
				hit:          100 * st.TCHitRate(),
				partialShare: share,
				speedup:      pipeline.Speedup(base, vp),
			}, nil
		}
		off, err := measure(false)
		if err != nil {
			return nil, err
		}
		on, err := measure(true)
		if err != nil {
			return nil, err
		}
		return []float64{off.hit, on.hit, on.partialShare, off.speedup, on.speedup}, nil
	})
	if err != nil {
		return nil, err
	}
	t.AppendAverage()
	return t, nil
}

func init() {
	register("ablation.latency",
		"Ablation — load latency vs value-prediction speedup (VP hides load latency)",
		AblationLatency)
}

// AblationLatencyLoads is the load-latency sweep of ablation.latency.
var AblationLatencyLoads = []int{1, 2, 4}

// AblationLatency extends the paper's unit-latency model with multi-cycle
// loads. Correctly predicted load values decouple consumers from the
// memory pipeline, so the *absolute* cycle savings grow with latency; the
// *relative* speedup is workload-dependent (it shrinks where the
// unpredictable dependence chains lengthen faster than prediction can
// compensate), which is why the table reports both speedup and base IPC.
func AblationLatency(p Params) (*Table, error) {
	t := &Table{
		Title:     "Ablation — load latency (sequential fetch, n=4, ideal BTB)",
		RowHeader: "benchmark",
	}
	for _, lat := range AblationLatencyLoads {
		t.Columns = append(t.Columns, fmt.Sprintf("lat=%d speedup", lat))
	}
	for _, lat := range AblationLatencyLoads {
		t.Columns = append(t.Columns, fmt.Sprintf("lat=%d base IPC", lat))
	}
	err := forEachWorkload(p, t, func(name string, recs []trace.Rec) ([]float64, error) {
		var speedups, ipcs []float64
		for _, lat := range AblationLatencyLoads {
			cfg := pipeline.DefaultConfig()
			cfg.LoadLatency = lat
			base, err := pipeline.Run(fetch.NewSequential(recs, perfectBTB(), 4), cfg)
			if err != nil {
				return nil, err
			}
			cfgVP := cfg
			cfgVP.Predictor = predictor.NewClassifiedStride()
			vp, err := pipeline.Run(fetch.NewSequential(recs, perfectBTB(), 4), cfgVP)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, pipeline.Speedup(base, vp))
			ipcs = append(ipcs, base.IPC())
		}
		return append(speedups, ipcs...), nil
	})
	if err != nil {
		return nil, err
	}
	t.AppendAverage()
	return t, nil
}
