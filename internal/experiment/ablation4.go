package experiment

import (
	"fmt"

	"valuepred/internal/fetch"
	"valuepred/internal/pipeline"
	"valuepred/internal/predictor"
)

func init() {
	register("ablation.vptable",
		"Ablation — finite prediction-table sizes vs the infinite-table idealisation",
		AblationVPTable)
	register("diag.memdeps",
		"Diagnostic — effect of store-to-load dependencies on the baseline and on VP",
		DiagMemDeps)
}

// AblationVPTableSizes is the size sweep (0 = infinite).
var AblationVPTableSizes = []int{16, 64, 256, 0}

func vpTableLabel(size int) string {
	if size == 0 {
		return "infinite"
	}
	return fmt.Sprintf("%d entries", size)
}

// AblationVPTable replaces Section 3's infinite stride table with
// direct-mapped tagged tables of realistic sizes on the Section 5 machine
// (n=4, ideal BTB): the knee shows how much state the paper's assumption
// hides.
func AblationVPTable(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — value-prediction table size (sequential fetch, n=4, ideal BTB)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, size := range AblationVPTableSizes {
		t.Columns = append(t.Columns, vpTableLabel(size))
	}
	g := p.newGrid("ablation.vptable")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), 4), pipeline.DefaultConfig())
		})
		for _, size := range AblationVPTableSizes {
			g.cell(name, vpTableLabel(size), "vp", func() (any, error) {
				var inner predictor.Predictor
				if size == 0 {
					inner = predictor.NewStride()
				} else {
					inner = predictor.NewStrideTable(size)
				}
				cfg := pipeline.DefaultConfig()
				cfg.Predictor = &predictor.Classified{Inner: inner, Class: predictor.NewClassifier(2, 2)}
				return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), 4), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(pipeline.Result)
		var cells []float64
		for _, size := range AblationVPTableSizes {
			vp := res.get(name, vpTableLabel(size), "vp").(pipeline.Result)
			cells = append(cells, pipeline.Speedup(base, vp))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	return t, nil
}

// DiagMemDeps quantifies how much of each workload's serialisation flows
// through memory: baseline IPC and VP speedup with and without
// store-to-load dependencies (n=4, ideal BTB). Without memory dependencies
// the machine is optimistic (perfect memory renaming).
func DiagMemDeps(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Diagnostic — store-to-load dependencies (sequential fetch, n=4, ideal BTB)",
		RowHeader: "benchmark",
		Columns:   []string{"base IPC mem", "base IPC nomem", "speedup mem", "speedup nomem"},
	}
	cols := []string{"mem", "nomem"}
	g := p.newGrid("diag.memdeps")
	for _, name := range p.workloads() {
		f := feeds[name]
		for mi, mem := range []bool{true, false} {
			col := cols[mi]
			for vi, variant := range []string{"base", "vp"} {
				vp := vi == 1
				g.cell(name, col, variant, func() (any, error) {
					cfg := pipeline.DefaultConfig()
					cfg.IncludeMemoryDeps = mem
					if vp {
						cfg.Predictor = predictor.NewClassifiedStride()
					}
					return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), 4), cfg)
				})
			}
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		baseMem := res.get(name, "mem", "base").(pipeline.Result)
		baseNo := res.get(name, "nomem", "base").(pipeline.Result)
		vpMem := res.get(name, "mem", "vp").(pipeline.Result)
		vpNo := res.get(name, "nomem", "vp").(pipeline.Result)
		t.AddRow(name,
			baseMem.IPC(), baseNo.IPC(),
			pipeline.Speedup(baseMem, vpMem), pipeline.Speedup(baseNo, vpNo))
	}
	t.AppendAverage()
	return t, nil
}

func init() {
	register("ablation.partial",
		"Ablation — trace-cache partial matching (reference [6])",
		AblationPartial)
}

// AblationPartial measures the partial-matching improvement of the paper's
// reference [6] on the trace-cache machine with the 2-level BTB: the hit
// rate rises because predictor/line disagreements deliver the matching
// prefix instead of missing.
func AblationPartial(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — trace-cache partial matching (2-level BTB)",
		RowHeader: "benchmark",
		Columns:   []string{"hit% off", "hit% on", "partial share %", "speedup off", "speedup on"},
	}
	cols := []string{"off", "on"}
	g := p.newGrid("ablation.partial")
	for _, name := range p.workloads() {
		f := feeds[name]
		for ci, partial := range []bool{false, true} {
			col := cols[ci]
			tcCfg := fetch.DefaultTCConfig()
			tcCfg.PartialMatching = partial
			mk := func() fetch.Engine {
				return fetch.NewTraceCacheSource(f.source(), twoLevelBTB(), tcCfg)
			}
			g.cell(name, col, "base", func() (any, error) {
				return pipeline.Run(mk(), pipeline.DefaultConfig())
			})
			g.cell(name, col, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.Predictor = predictor.NewClassifiedStride()
				return pipeline.Run(mk(), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		type outcome struct {
			hit, partialShare, speedup float64
		}
		var outcomes []outcome
		for _, col := range cols {
			base := res.get(name, col, "base").(pipeline.Result)
			vp := res.get(name, col, "vp").(pipeline.Result)
			st := vp.Fetch
			var share float64
			if st.TCHits > 0 {
				share = 100 * float64(st.TCPartialHits) / float64(st.TCHits)
			}
			outcomes = append(outcomes, outcome{
				hit:          100 * st.TCHitRate(),
				partialShare: share,
				speedup:      pipeline.Speedup(base, vp),
			})
		}
		off, on := outcomes[0], outcomes[1]
		t.AddRow(name, off.hit, on.hit, on.partialShare, off.speedup, on.speedup)
	}
	t.AppendAverage()
	return t, nil
}

func init() {
	register("ablation.latency",
		"Ablation — load latency vs value-prediction speedup (VP hides load latency)",
		AblationLatency)
}

// AblationLatencyLoads is the load-latency sweep of ablation.latency.
var AblationLatencyLoads = []int{1, 2, 4}

// AblationLatency extends the paper's unit-latency model with multi-cycle
// loads. Correctly predicted load values decouple consumers from the
// memory pipeline, so the *absolute* cycle savings grow with latency; the
// *relative* speedup is workload-dependent (it shrinks where the
// unpredictable dependence chains lengthen faster than prediction can
// compensate), which is why the table reports both speedup and base IPC.
func AblationLatency(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Ablation — load latency (sequential fetch, n=4, ideal BTB)",
		RowHeader: "benchmark",
	}
	for _, lat := range AblationLatencyLoads {
		t.Columns = append(t.Columns, fmt.Sprintf("lat=%d speedup", lat))
	}
	for _, lat := range AblationLatencyLoads {
		t.Columns = append(t.Columns, fmt.Sprintf("lat=%d base IPC", lat))
	}
	g := p.newGrid("ablation.latency")
	for _, name := range p.workloads() {
		f := feeds[name]
		for _, lat := range AblationLatencyLoads {
			col := fmt.Sprintf("lat=%d", lat)
			g.cell(name, col, "base", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.LoadLatency = lat
				return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), 4), cfg)
			})
			g.cell(name, col, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.LoadLatency = lat
				cfg.Predictor = predictor.NewClassifiedStride()
				return pipeline.Run(fetch.NewSequentialSource(f.source(), perfectBTB(), 4), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		var speedups, ipcs []float64
		for _, lat := range AblationLatencyLoads {
			col := fmt.Sprintf("lat=%d", lat)
			base := res.get(name, col, "base").(pipeline.Result)
			vp := res.get(name, col, "vp").(pipeline.Result)
			speedups = append(speedups, pipeline.Speedup(base, vp))
			ipcs = append(ipcs, base.IPC())
		}
		t.AddRow(name, append(speedups, ipcs...)...)
	}
	t.AppendAverage()
	return t, nil
}
