package experiment

import (
	"fmt"
	"strings"

	"valuepred/internal/asm"
	"valuepred/internal/dfg"
	"valuepred/internal/emu"
	"valuepred/internal/ideal"
	"valuepred/internal/isa"
	"valuepred/internal/predictor"
	"valuepred/internal/trace"
)

func init() {
	register("table3.1", "Table 3.1 — the SPEC95-integer benchmark analogues", Table31)
	register("table3.2", "Table 3.2 — pipeline walk-through of the Figure 3.2 example", Table32)
	register("fig3.1", "Figure 3.1 — VP speedup vs fetch width on the ideal machine", Fig31)
	register("fig3.3", "Figure 3.3 — average dynamic instruction distance", Fig33)
	register("fig3.4", "Figure 3.4 — distribution of dependencies by DID", Fig34)
	register("fig3.5", "Figure 3.5 — dependencies by value predictability and DID", Fig35)
}

// Fig31Widths are the fetch/issue widths swept by Figure 3.1.
var Fig31Widths = []int{4, 8, 16, 32, 40}

// Fig31 reproduces Figure 3.1: speedup of the stride+classifier value
// predictor on the ideal machine, relative to the same machine without
// value prediction, at each fetch width. The full workload × width ×
// {base, vp} product — 80 independent simulations over the paper's eight
// benchmarks — is declared as one plan grid; speedups are computed at the
// keyed merge.
func Fig31(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Figure 3.1 — value-prediction speedup vs instruction-fetch rate (ideal machine)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, w := range Fig31Widths {
		t.Columns = append(t.Columns, fmt.Sprintf("BW=%d", w))
	}
	g := p.newGrid("fig3.1")
	for _, name := range p.workloads() {
		f := feeds[name]
		for _, w := range Fig31Widths {
			wl := fmt.Sprintf("BW=%d", w)
			g.cell(name, wl, "base", func() (any, error) {
				cfg := ideal.DefaultConfig(w)
				cfg.Obs = p.track("fig3.1", name, wl, "base")
				return ideal.Run(f.source(), cfg)
			})
			g.cell(name, wl, "vp", func() (any, error) {
				cfg := ideal.DefaultConfig(w)
				cfg.Predictor = p.instrument(predictor.NewClassifiedStride())
				cfg.Obs = p.track("fig3.1", name, wl, "vp")
				return ideal.Run(f.source(), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		var cells []float64
		for _, w := range Fig31Widths {
			wl := fmt.Sprintf("BW=%d", w)
			base := res.get(name, wl, "base").(ideal.Result)
			vp := res.get(name, wl, "vp").(ideal.Result)
			cells = append(cells, ideal.Speedup(base, vp))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	return t, nil
}

// dfgGrid runs one dfg.Analyze cell per selected workload on the shared
// pool and returns the analyses keyed by workload (the common skeleton of
// Figures 3.3–3.5).
func dfgGrid(p Params, id string) (*gridResults, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	g := p.newGrid(id)
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "dfg", func() (any, error) {
			return dfg.AnalyzeSource(f.source(), dfg.Config{}), nil
		})
	}
	return g.run()
}

// Fig33 reproduces Figure 3.3: the average DID per benchmark, over the
// register dataflow graph of the full trace.
func Fig33(p Params) (*Table, error) {
	res, err := dfgGrid(p, "fig3.3")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Figure 3.3 — average dynamic instruction distance",
		RowHeader: "benchmark",
		Columns:   []string{"avg DID", "median bucket floor"},
	}
	for _, name := range p.workloads() {
		a := res.get(name, "", "dfg").(*dfg.Analysis)
		t.AddRow(name, a.AvgDID(), medianBucketFloor(a))
	}
	t.AppendAverage()
	t.AddNote("long-lived base registers give a heavy tail; the median bucket floor column shows the typical distance")
	return t, nil
}

// medianBucketFloor returns the lower bound of the histogram bucket
// containing the median arc.
func medianBucketFloor(a *dfg.Analysis) float64 {
	floors := []float64{1, 2, 3, 4, 8, 16, 32}
	var cum uint64
	for b := dfg.BucketDID1; b < dfg.NumBuckets; b++ {
		cum += a.Hist[b]
		if cum*2 >= a.Arcs {
			return floors[b]
		}
	}
	return 32
}

// Fig34 reproduces Figure 3.4: the distribution of dependencies by DID.
func Fig34(p Params) (*Table, error) {
	res, err := dfgGrid(p, "fig3.4")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Figure 3.4 — distribution of dependencies by DID (percent of arcs)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for b := dfg.BucketDID1; b < dfg.NumBuckets; b++ {
		t.Columns = append(t.Columns, b.String())
	}
	t.Columns = append(t.Columns, ">=4 total")
	for _, name := range p.workloads() {
		a := res.get(name, "", "dfg").(*dfg.Analysis)
		var cells []float64
		for b := dfg.BucketDID1; b < dfg.NumBuckets; b++ {
			cells = append(cells, 100*float64(a.Hist[b])/float64(a.Arcs))
		}
		cells = append(cells, 100*a.FracDIDAtLeast4())
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	return t, nil
}

// Fig35 reproduces Figure 3.5: dependencies classified by the stride
// predictability of their producer instance and by DID.
func Fig35(p Params) (*Table, error) {
	res, err := dfgGrid(p, "fig3.5")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Figure 3.5 — dependencies by value predictability and DID (percent of arcs)",
		RowHeader: "benchmark",
		Columns:   []string{"unpredictable", "pred DID<4", "pred DID>=4"},
		Unit:      "%",
	}
	for _, name := range p.workloads() {
		a := res.get(name, "", "dfg").(*dfg.Analysis)
		t.AddRow(name,
			100*float64(a.Unpredictable)/float64(a.Arcs),
			100*a.FracPredictableShort(),
			100*a.FracPredictableLong())
	}
	t.AppendAverage()
	return t, nil
}

// Table31 renders the benchmark descriptions (Table 3.1).
func Table31(p Params) (*Table, error) {
	t := &Table{
		Title:     "Table 3.1 — SPEC95 integer benchmark analogues",
		RowHeader: "benchmark",
		Columns:   []string{"trace insts"},
	}
	for _, name := range p.workloads() {
		s, _ := workloadGet(name)
		t.AddRow(name, float64(p.TraceLen))
		t.AddNote("%s: %s", name, s)
	}
	return t, nil
}

// Table32 reproduces the paper's pipeline walk-through: the 8-instruction
// dataflow graph of Figure 3.2 executed on a 4-wide machine with a perfect
// value predictor. The note lines render the paper's cycle table; the cells
// give each instruction's execute cycle.
func Table32(Params) (*Table, error) {
	recs, err := fig32Trace()
	if err != nil {
		return nil, err
	}
	execAt := make(map[uint64]uint64)
	fetchAt := make(map[uint64]uint64)
	cfg := ideal.DefaultConfig(4)
	cfg.OracleVP = true
	cfg.Observer = func(seq, fetch, exec uint64) {
		fetchAt[seq] = fetch
		execAt[seq] = exec
	}
	if _, err := ideal.Run(trace.NewSliceSource(recs), cfg); err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Table 3.2 — instructions progressing through the pipeline (Figure 3.2 DFG, width 4, perfect VP)",
		RowHeader: "instruction",
		Columns:   []string{"fetch", "decode/issue", "execute", "commit"},
	}
	var maxCycle uint64
	for i := range recs {
		seq := recs[i].Seq
		t.AddRow(fmt.Sprintf("#%d", seq+1),
			float64(fetchAt[seq]), float64(fetchAt[seq]+1), float64(execAt[seq]), float64(execAt[seq]+1))
		if execAt[seq]+1 > maxCycle {
			maxCycle = execAt[seq] + 1
		}
	}
	// Render the paper's per-cycle view as notes.
	stages := []string{"fetch", "decode/issue", "execute", "commit"}
	for c := uint64(1); c <= maxCycle; c++ {
		var parts []string
		for si, stage := range stages {
			var in []string
			for i := range recs {
				seq := recs[i].Seq
				var at uint64
				switch si {
				case 0:
					at = fetchAt[seq]
				case 1:
					at = fetchAt[seq] + 1
				case 2:
					at = execAt[seq]
				case 3:
					at = execAt[seq] + 1
				}
				if at == c {
					in = append(in, fmt.Sprintf("%d", seq+1))
				}
			}
			if len(in) > 0 {
				parts = append(parts, fmt.Sprintf("%s: %s", stage, strings.Join(in, ",")))
			}
		}
		t.AddNote("cycle %d  %s", c, strings.Join(parts, "  |  "))
	}
	return t, nil
}

// fig32Trace builds the paper's Figure 3.2 example: eight instructions
// with arcs 1→2 (DID 1), 2→4 (DID 2), 1→5 (DID 4), 3→7 (DID 4),
// 5→6 (DID 1) and 7→8 (DID 1).
func fig32Trace() ([]trace.Rec, error) {
	b := asm.NewBuilder()
	b.Addi(isa.T0, isa.Zero, 1) // 1
	b.Addi(isa.T1, isa.T0, 1)   // 2: depends on 1
	b.Addi(isa.T2, isa.Zero, 3) // 3
	b.Addi(isa.T3, isa.T1, 1)   // 4: depends on 2
	b.Addi(isa.T4, isa.T0, 2)   // 5: depends on 1
	b.Addi(isa.T5, isa.T4, 1)   // 6: depends on 5
	b.Addi(isa.T6, isa.T2, 2)   // 7: depends on 3
	b.Addi(isa.S0, isa.T6, 1)   // 8: depends on 7
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return emu.New(prog).Run(0), nil
}
