package experiment

// This file carries the mergeable form of the run-wide aggregate notes
// (the "mean ... across runs" lines under Figures 5.1–5.3). The rendered
// string is a dead end for sharding — %.1f has already destroyed the raw
// sum — so the runners route those notes through a noteAgg collector: each
// workload contributes its raw value in presentation order, the collector
// renders the note with exactly the arithmetic the inline code used to do
// (sum in presentation order, then factor*sum/(weight*contributions)), and
// when the run is a shard (Params.aggs non-nil) the raw contributions are
// exported alongside the partial table so MergeShardFiles can re-render
// the note over the full workload set byte-identically.

// NoteAgg is the serialized form of one aggregate note: the Sprintf format
// with a single float verb, the scale factor, the per-workload weight
// (runs per workload contributing to the mean), and the raw per-workload
// contributions in presentation order.
type NoteAgg struct {
	Key      string        `json:"key"`
	Format   string        `json:"format"`
	Factor   float64       `json:"factor"`
	Weight   int           `json:"weight"`
	Contribs []NoteContrib `json:"contribs"`
}

// NoteContrib is one workload's raw contribution to an aggregate note.
type NoteContrib struct {
	Workload string  `json:"workload"`
	Value    float64 `json:"value"`
}

// value computes the note's argument: factor * sum(contribs) / (weight *
// len(contribs)), summing in slice order. Callers must keep that order
// canonical (presentation order of the contributing workloads) so the
// float64 addition order — addition is not associative — matches the
// unsharded inline computation.
func (a NoteAgg) value() float64 {
	var sum float64
	for _, c := range a.Contribs {
		sum += c.Value
	}
	return a.Factor * sum / float64(a.Weight*len(a.Contribs))
}

// render appends the aggregate note to t.
func (a NoteAgg) render(t *Table) {
	t.AddNote(a.Format, a.value())
}

// noteAgg starts a collector for one aggregate note. The runner calls
// contrib once per workload in presentation order, then render after
// AppendAverage; render also exports the raw collector into the shard
// sink when this run is a shard.
func (p Params) noteAgg(key, format string, factor float64, weight int) *noteAggBuilder {
	return &noteAggBuilder{
		p:   p,
		agg: NoteAgg{Key: key, Format: format, Factor: factor, Weight: weight},
	}
}

type noteAggBuilder struct {
	p   Params
	agg NoteAgg
}

// contrib records one workload's raw value. Call in presentation order.
func (b *noteAggBuilder) contrib(workload string, v float64) {
	b.agg.Contribs = append(b.agg.Contribs, NoteContrib{Workload: workload, Value: v})
}

// render appends the note to t and, when the run is a shard, exports the
// raw collector for the merge.
func (b *noteAggBuilder) render(t *Table) {
	b.agg.render(t)
	if b.p.aggs != nil {
		*b.p.aggs = append(*b.p.aggs, b.agg)
	}
}
