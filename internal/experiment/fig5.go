package experiment

import (
	"fmt"

	"valuepred/internal/btb"
	"valuepred/internal/core"
	"valuepred/internal/fetch"
	"valuepred/internal/pipeline"
	"valuepred/internal/predictor"
)

func init() {
	register("fig5.1", "Figure 5.1 — VP speedup vs taken branches/cycle, ideal BTB", Fig51)
	register("fig5.2", "Figure 5.2 — VP speedup vs taken branches/cycle, 2-level BTB", Fig52)
	register("fig5.3", "Figure 5.3 — VP speedup with a trace cache", Fig53)
	register("sec4", "Section 4 — prediction-network router/distributor statistics", Sec4)
}

// Fig5Taken are the taken-branch-per-cycle limits swept by Figures 5.1 and
// 5.2 (-1 is the paper's "unlimited").
var Fig5Taken = []int{1, 2, 3, 4, -1}

func takenLabel(n int) string {
	if n < 0 {
		return "unlimited"
	}
	return fmt.Sprintf("n=%d", n)
}

// branchMaker builds a fresh branch predictor per run.
type branchMaker func() btb.Predictor

func perfectBTB() btb.Predictor  { return btb.NewPerfect() }
func twoLevelBTB() btb.Predictor { return btb.NewTwoLevel(btb.DefaultTwoLevelConfig()) }

// sequentialSpeedups runs the Section 5 machine over every workload and
// taken-branch limit, with and without value prediction, as one plan grid
// (workload × limit × {base, vp} cells). id labels the figure's
// observability tracks and the grid's canonical keys. The accuracy note
// is summed at the merge in presentation order — per workload over the
// Fig5Taken sweep, then across workloads — so the float64 addition order
// (addition is not associative) never depends on cell scheduling.
func sequentialSpeedups(p Params, id, title string, mkBTB branchMaker) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title, RowHeader: "benchmark", Unit: "%"}
	for _, n := range Fig5Taken {
		t.Columns = append(t.Columns, takenLabel(n))
	}
	g := p.newGrid(id)
	for _, name := range p.workloads() {
		f := feeds[name]
		for _, n := range Fig5Taken {
			wl := takenLabel(n)
			g.cell(name, wl, "base", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.Obs = p.track(id, name, wl, "base")
				return pipeline.Run(fetch.NewSequentialSource(f.source(), mkBTB(), n), cfg)
			})
			g.cell(name, wl, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.Predictor = p.instrument(predictor.NewClassifiedStride())
				cfg.Obs = p.track(id, name, wl, "vp")
				return pipeline.Run(fetch.NewSequentialSource(f.source(), mkBTB(), n), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	agg := p.noteAgg("branch_accuracy",
		"mean branch prediction accuracy across runs: %.1f%%", 100, len(Fig5Taken))
	for _, name := range p.workloads() {
		var cells []float64
		var acc float64
		for _, n := range Fig5Taken {
			wl := takenLabel(n)
			base := res.get(name, wl, "base").(pipeline.Result)
			vp := res.get(name, wl, "vp").(pipeline.Result)
			cells = append(cells, pipeline.Speedup(base, vp))
			acc += vp.Fetch.BranchAccuracy()
		}
		t.AddRow(name, cells...)
		agg.contrib(name, acc)
	}
	t.AppendAverage()
	agg.render(t)
	return t, nil
}

// Fig51 reproduces Figure 5.1: the realistic machine with a perfect branch
// predictor.
func Fig51(p Params) (*Table, error) {
	return sequentialSpeedups(p, "fig5.1",
		"Figure 5.1 — value-prediction speedup vs max taken branches/cycle (ideal BTB)",
		perfectBTB)
}

// Fig52 reproduces Figure 5.2: the same sweep with the 2-level PAp BTB.
func Fig52(p Params) (*Table, error) {
	return sequentialSpeedups(p, "fig5.2",
		"Figure 5.2 — value-prediction speedup vs max taken branches/cycle (2-level BTB)",
		twoLevelBTB)
}

// Fig53 reproduces Figure 5.3: the trace-cache machine, with the banked
// prediction network delivering values, under both branch predictors.
func Fig53(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Figure 5.3 — value-prediction speedup with a trace cache",
		RowHeader: "benchmark",
		Columns:   []string{"TC+2levelBTB", "TC+idealBTB"},
		Unit:      "%",
	}
	// As in sequentialSpeedups: the hit-rate note is summed at the keyed
	// merge in presentation order, so it never depends on cell scheduling.
	btbLabels := []string{"2levelBTB", "idealBTB"}
	makers := []branchMaker{twoLevelBTB, perfectBTB}
	g := p.newGrid("fig5.3")
	for _, name := range p.workloads() {
		f := feeds[name]
		for bi, mk := range makers {
			btbLabel := btbLabels[bi]
			g.cell(name, btbLabel, "base", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.Obs = p.track("fig5.3", name, btbLabel, "base")
				return pipeline.Run(fetch.NewTraceCacheSource(f.source(), mk(), fetch.DefaultTCConfig()), cfg)
			})
			g.cell(name, btbLabel, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.Network = core.MustNew(core.DefaultConfig())
				cfg.Obs = p.track("fig5.3", name, btbLabel, "vp")
				return pipeline.Run(fetch.NewTraceCacheSource(f.source(), mk(), fetch.DefaultTCConfig()), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	agg := p.noteAgg("tc_hit_rate",
		"mean trace-cache hit rate across runs: %.1f%%", 100, len(btbLabels))
	for _, name := range p.workloads() {
		var cells []float64
		var hits float64
		for _, btbLabel := range btbLabels {
			base := res.get(name, btbLabel, "base").(pipeline.Result)
			vp := res.get(name, btbLabel, "vp").(pipeline.Result)
			cells = append(cells, pipeline.Speedup(base, vp))
			hits += vp.Fetch.TCHitRate()
		}
		t.AddRow(name, cells...)
		agg.contrib(name, hits)
	}
	t.AppendAverage()
	agg.render(t)
	return t, nil
}

// Sec4 reports the prediction-network behaviour the paper's Section 4
// motivates: how often trace-cache fetch groups contain duplicate PCs, how
// many requests the router merges or denies, and the cost of denials.
func Sec4(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Section 4 — banked prediction network behaviour (trace-cache machine, 16 banks)",
		RowHeader: "benchmark",
		Columns:   []string{"requests/kinst", "merged %", "denied %", "hint-dropped %", "speedup %"},
	}
	// The vp cell owns its network, so the router statistics travel with
	// the cell result instead of leaking through shared state.
	type vpOut struct {
		res   pipeline.Result
		stats core.Stats
	}
	g := p.newGrid("sec4")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			cfg := pipeline.DefaultConfig()
			cfg.Obs = p.track("sec4", name, "base")
			return pipeline.Run(fetch.NewTraceCacheSource(f.source(), perfectBTB(), fetch.DefaultTCConfig()), cfg)
		})
		g.cell(name, "", "vp", func() (any, error) {
			net := core.MustNew(core.DefaultConfig())
			cfg := pipeline.DefaultConfig()
			cfg.Network = net
			cfg.Obs = p.track("sec4", name, "vp")
			res, err := pipeline.Run(fetch.NewTraceCacheSource(f.source(), perfectBTB(), fetch.DefaultTCConfig()), cfg)
			if err != nil {
				return nil, err
			}
			return vpOut{res: res, stats: net.Stats()}, nil
		})
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		f := feeds[name]
		base := res.get(name, "", "base").(pipeline.Result)
		vp := res.get(name, "", "vp").(vpOut)
		s := vp.stats
		req := float64(s.Requests)
		t.AddRow(name,
			1000*req/float64(f.Len()),
			100*float64(s.MergedServed+s.MergedDenied)/req,
			100*float64(s.Denied+s.MergedDenied)/req,
			100*float64(s.HintDropped)/req,
			pipeline.Speedup(base, vp.res))
	}
	t.AppendAverage()
	return t, nil
}
