package experiment

import (
	"fmt"
	"sync"

	"valuepred/internal/trace"

	"valuepred/internal/btb"
	"valuepred/internal/core"
	"valuepred/internal/fetch"
	"valuepred/internal/pipeline"
	"valuepred/internal/predictor"
)

func init() {
	register("fig5.1", "Figure 5.1 — VP speedup vs taken branches/cycle, ideal BTB", Fig51)
	register("fig5.2", "Figure 5.2 — VP speedup vs taken branches/cycle, 2-level BTB", Fig52)
	register("fig5.3", "Figure 5.3 — VP speedup with a trace cache", Fig53)
	register("sec4", "Section 4 — prediction-network router/distributor statistics", Sec4)
}

// Fig5Taken are the taken-branch-per-cycle limits swept by Figures 5.1 and
// 5.2 (-1 is the paper's "unlimited").
var Fig5Taken = []int{1, 2, 3, 4, -1}

func takenLabel(n int) string {
	if n < 0 {
		return "unlimited"
	}
	return fmt.Sprintf("n=%d", n)
}

// branchMaker builds a fresh branch predictor per run.
type branchMaker func() btb.Predictor

func perfectBTB() btb.Predictor  { return btb.NewPerfect() }
func twoLevelBTB() btb.Predictor { return btb.NewTwoLevel(btb.DefaultTwoLevelConfig()) }

// sequentialSpeedups runs the Section 5 machine over every workload and
// taken-branch limit, with and without value prediction. id labels the
// figure's observability tracks.
func sequentialSpeedups(p Params, id, title string, mkBTB branchMaker) (*Table, error) {
	t := &Table{Title: title, RowHeader: "benchmark", Unit: "%"}
	for _, n := range Fig5Taken {
		t.Columns = append(t.Columns, takenLabel(n))
	}
	// Per-benchmark accuracy sums are recorded under the mutex but summed
	// afterwards in presentation order: the workloads run concurrently, and
	// float64 addition is not associative, so accumulating into one shared
	// sum would make the rendered note vary with goroutine scheduling.
	var mu sync.Mutex
	accByName := make(map[string]float64, len(p.workloads()))
	err := forEachWorkload(p, t, func(name string, recs []trace.Rec) ([]float64, error) {
		var cells []float64
		var acc float64
		for _, n := range Fig5Taken {
			baseCfg := pipeline.DefaultConfig()
			baseCfg.Obs = p.track(id, name, takenLabel(n), "base")
			base, err := pipeline.Run(fetch.NewSequential(recs, mkBTB(), n), baseCfg)
			if err != nil {
				return nil, err
			}
			cfg := pipeline.DefaultConfig()
			cfg.Predictor = p.instrument(predictor.NewClassifiedStride())
			cfg.Obs = p.track(id, name, takenLabel(n), "vp")
			vp, err := pipeline.Run(fetch.NewSequential(recs, mkBTB(), n), cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, pipeline.Speedup(base, vp))
			acc += vp.Fetch.BranchAccuracy()
		}
		mu.Lock()
		accByName[name] = acc
		mu.Unlock()
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	t.AppendAverage()
	var accSum float64
	for _, name := range p.workloads() {
		accSum += accByName[name]
	}
	accN := float64(len(p.workloads()) * len(Fig5Taken))
	t.AddNote("mean branch prediction accuracy across runs: %.1f%%", 100*accSum/accN)
	return t, nil
}

// Fig51 reproduces Figure 5.1: the realistic machine with a perfect branch
// predictor.
func Fig51(p Params) (*Table, error) {
	return sequentialSpeedups(p, "fig5.1",
		"Figure 5.1 — value-prediction speedup vs max taken branches/cycle (ideal BTB)",
		perfectBTB)
}

// Fig52 reproduces Figure 5.2: the same sweep with the 2-level PAp BTB.
func Fig52(p Params) (*Table, error) {
	return sequentialSpeedups(p, "fig5.2",
		"Figure 5.2 — value-prediction speedup vs max taken branches/cycle (2-level BTB)",
		twoLevelBTB)
}

// Fig53 reproduces Figure 5.3: the trace-cache machine, with the banked
// prediction network delivering values, under both branch predictors.
func Fig53(p Params) (*Table, error) {
	t := &Table{
		Title:     "Figure 5.3 — value-prediction speedup with a trace cache",
		RowHeader: "benchmark",
		Columns:   []string{"TC+2levelBTB", "TC+idealBTB"},
		Unit:      "%",
	}
	// As in sequentialSpeedups: per-benchmark sums, combined in
	// presentation order after the concurrent phase, keep the rendered note
	// independent of goroutine scheduling.
	var mu sync.Mutex
	hitByName := make(map[string]float64, len(p.workloads()))
	err := forEachWorkload(p, t, func(name string, recs []trace.Rec) ([]float64, error) {
		var cells []float64
		var hits float64
		for bi, mk := range []branchMaker{twoLevelBTB, perfectBTB} {
			btbLabel := []string{"2levelBTB", "idealBTB"}[bi]
			baseCfg := pipeline.DefaultConfig()
			baseCfg.Obs = p.track("fig5.3", name, btbLabel, "base")
			base, err := pipeline.Run(fetch.NewTraceCache(recs, mk(), fetch.DefaultTCConfig()), baseCfg)
			if err != nil {
				return nil, err
			}
			cfg := pipeline.DefaultConfig()
			cfg.Network = core.MustNew(core.DefaultConfig())
			cfg.Obs = p.track("fig5.3", name, btbLabel, "vp")
			vp, err := pipeline.Run(fetch.NewTraceCache(recs, mk(), fetch.DefaultTCConfig()), cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, pipeline.Speedup(base, vp))
			hits += vp.Fetch.TCHitRate()
		}
		mu.Lock()
		hitByName[name] = hits
		mu.Unlock()
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	t.AppendAverage()
	var hitSum float64
	for _, name := range p.workloads() {
		hitSum += hitByName[name]
	}
	hitN := float64(2 * len(p.workloads()))
	t.AddNote("mean trace-cache hit rate across runs: %.1f%%", 100*hitSum/hitN)
	return t, nil
}

// Sec4 reports the prediction-network behaviour the paper's Section 4
// motivates: how often trace-cache fetch groups contain duplicate PCs, how
// many requests the router merges or denies, and the cost of denials.
func Sec4(p Params) (*Table, error) {
	traces, err := p.traces()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Section 4 — banked prediction network behaviour (trace-cache machine, 16 banks)",
		RowHeader: "benchmark",
		Columns:   []string{"requests/kinst", "merged %", "denied %", "hint-dropped %", "speedup %"},
	}
	for _, name := range p.workloads() {
		recs := traces[name]
		baseCfg := pipeline.DefaultConfig()
		baseCfg.Obs = p.track("sec4", name, "base")
		base, err := pipeline.Run(fetch.NewTraceCache(recs, perfectBTB(), fetch.DefaultTCConfig()), baseCfg)
		if err != nil {
			return nil, err
		}
		net := core.MustNew(core.DefaultConfig())
		cfg := pipeline.DefaultConfig()
		cfg.Network = net
		cfg.Obs = p.track("sec4", name, "vp")
		vp, err := pipeline.Run(fetch.NewTraceCache(recs, perfectBTB(), fetch.DefaultTCConfig()), cfg)
		if err != nil {
			return nil, err
		}
		s := net.Stats()
		req := float64(s.Requests)
		t.AddRow(name,
			1000*req/float64(len(recs)),
			100*float64(s.MergedServed+s.MergedDenied)/req,
			100*float64(s.Denied+s.MergedDenied)/req,
			100*float64(s.HintDropped)/req,
			pipeline.Speedup(base, vp))
	}
	t.AppendAverage()
	return t, nil
}
