package experiment

import (
	"valuepred/internal/chunk"
	"valuepred/internal/trace"
)

// feed is one workload's dynamic trace in whichever representation the run
// selected: materialized (recs, the flat path) or streaming (seq, a shared
// immutable compressed chunk sequence). Runners only ever ask a feed for
// fresh Sources — each simulated machine consumes its own — so the two
// representations are interchangeable and byte-identical (pinned by the
// root stream tests at workers {1, 8}).
type feed struct {
	recs []trace.Rec // materialized mode; aliases the tracestore cache, read-only
	seq  *chunk.Seq  // streaming mode; immutable, shared between cells
	n    int         // records this feed serves (p.TraceLen)
}

// Len returns the number of records every source of this feed yields.
func (f feed) Len() int { return f.n }

// source returns a fresh Source over the whole feed. Each call is an
// independent replay: cells running concurrently must each take their own.
func (f feed) source() trace.Source {
	return f.prefix(f.n)
}

// prefix returns a fresh Source over the first n records (clamped to the
// feed's length). In streaming mode this is a pooled-chunk cursor; in
// materialized mode a zero-copy SliceSource, which the fetch engines
// unwrap back to the flat path.
func (f feed) prefix(n int) trace.Source {
	if n > f.n {
		n = f.n
	}
	if n < 0 {
		n = 0
	}
	if f.seq != nil {
		return chunk.NewCursor(f.seq, n)
	}
	return trace.NewSliceSource(f.recs[:n])
}

// feeds fetches the dynamic trace of every selected workload in the mode
// Params.Stream selects, with the same grid/cached-fast-path behaviour as
// the flat traces() loader: resident traces are served serially (the grid
// would be pure dispatch overhead), missing ones generate concurrently as
// plan cells, and racing requests are deduplicated by the store.
func (p Params) feeds() (map[string]feed, error) {
	if !p.Stream {
		traces, err := p.traces()
		if err != nil {
			return nil, err
		}
		out := make(map[string]feed, len(traces))
		for name, recs := range traces {
			out[name] = feed{recs: recs, n: len(recs)}
		}
		return out, nil
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := p.ctxErr(); err != nil {
		return nil, err
	}
	names := p.workloads()
	st := p.store()
	if st.CachedStream(names, p.Seed, p.TraceLen) {
		out := make(map[string]feed, len(names))
		for _, name := range names {
			q, err := st.GetStream(name, p.Seed, p.TraceLen, p.ChunkSize)
			if err != nil {
				return nil, err
			}
			out[name] = feed{seq: q, n: p.TraceLen}
		}
		return out, nil
	}
	g := p.newGrid("traces")
	for _, name := range names {
		name := name
		g.cell(name, "", "", func() (any, error) {
			return st.GetStream(name, p.Seed, p.TraceLen, p.ChunkSize)
		})
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	out := make(map[string]feed, len(names))
	for _, name := range names {
		out[name] = feed{seq: res.seq(name), n: p.TraceLen}
	}
	return out, nil
}
