package experiment

// This file is the sharding side of the experiment layer: one replica runs
// its partition of the canonical cell space (plan.Shard over the
// presentation-ordered workload list — the table-row axis) and exports a
// ShardFile; MergeShardFiles recombines a complete set of shard files into
// tables byte-identical to an unsharded run.
//
// Byte-identity holds because the merge replays exactly the unsharded
// arithmetic in exactly the unsharded order:
//
//   - rows are reassembled in the full workload presentation order (each
//     shard's partial table carries its assigned rows in that same order,
//     so the merge is a deterministic interleave);
//   - the "average" row is recomputed by stats.AppendAverage over the
//     reassembled rows — the same presentation-order float64 summation the
//     unsharded runner performs;
//   - multi-seed runs ship per-seed partial tables and the merge applies
//     stats.AverageTables to the reassembled per-seed tables, so the
//     mean-of-rows operation order matches RunSeeds exactly;
//   - run-wide aggregate notes travel as raw NoteAgg contributions (the
//     rendered %.1f string cannot be merged) and are re-rendered over the
//     full workload set in presentation order.
//
// The file format has no wall-clock or host-identity fields: a shard file
// is a pure function of (experiments, params, shard), which the root
// byte-identity tests rely on.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"

	"valuepred/internal/plan"
	"valuepred/internal/stats"
)

// ShardFileVersion is the shard artifact schema version; MergeShardFiles
// rejects files written by an incompatible producer.
const ShardFileVersion = 1

// ShardFile is the artifact one shard run exports: the partition identity,
// the full run parameters (so a merge can validate that every shard ran
// the same request), and per-experiment partial results.
type ShardFile struct {
	Version     int               `json:"version"`
	Shard       plan.Shard        `json:"shard"`
	Params      ShardParams       `json:"params"`
	Experiments []ExperimentShard `json:"experiments"`
}

// ShardParams is the canonicalized run request a shard executed. Workloads
// is the FULL selected list in presentation order (the shard's assigned
// subset is recorded per experiment); every shard of one run must carry
// identical ShardParams.
type ShardParams struct {
	Seed      int64    `json:"seed"`
	TraceLen  int      `json:"trace_len"`
	Seeds     int      `json:"seeds"`
	Workloads []string `json:"workloads"`
	Stream    bool     `json:"stream,omitempty"`
	ChunkSize int      `json:"chunk_size,omitempty"`
}

// ExperimentShard is one experiment's partial result on one shard.
type ExperimentShard struct {
	Experiment string `json:"experiment"`
	// WorkloadIndependent marks experiments whose table ignores the
	// workload axis entirely (table3.2's fixed walkthrough): every shard
	// runs them whole and the merge verifies the copies agree.
	WorkloadIndependent bool `json:"workload_independent,omitempty"`
	// Assigned is the shard's workload subset in presentation order.
	Assigned []string `json:"assigned"`
	// Runs holds one partial result per seed, in seed order.
	Runs []ShardRun `json:"runs"`
}

// ShardRun is one (experiment, seed) partial result: the partial table
// over the assigned workloads (nil when the shard owns no workload and the
// experiment is workload-dependent) plus the raw aggregate-note
// collectors the merge re-renders over the full workload set.
type ShardRun struct {
	Seed  int64        `json:"seed"`
	Table *stats.Table `json:"table"`
	Aggs  []NoteAgg    `json:"aggs,omitempty"`
}

// MergedTable is one experiment's recombined table.
type MergedTable struct {
	Experiment string
	Table      *stats.Table
}

// workloadIndependent registers the experiments whose tables do not have
// one row per workload. The shard/merge path must know them: their tables
// cannot be row-partitioned, so every shard runs them whole.
var workloadIndependent = map[string]bool{
	"table3.2": true,
}

// perRowNotes registers the experiments that append exactly one note per
// workload row (in row order), so the merge interleaves the shards' notes
// by the same round-robin that reassembles the rows. Experiments outside
// this map and without NoteAgg collectors must render notes that are
// identical on every shard (static annotations); the merge verifies that
// and fails loudly if a new experiment starts emitting unregistered
// per-workload notes.
var perRowNotes = map[string]bool{
	"table3.1": true,
}

// RunShardFileCtx executes the shard's partition of each experiment id —
// one partial run per seed — and returns the artifact to merge. The
// partition is plan.Shard round-robin over the full selected workload list
// in presentation order; a shard that owns no workloads still runs the
// workload-independent experiments and records empty runs for the rest.
func RunShardFileCtx(ctx context.Context, ids []string, p Params, seeds []int64, sh plan.Shard) (*ShardFile, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		seeds = []int64{p.Seed}
	}
	full := append([]string(nil), p.workloads()...)
	assigned := sh.Partition(full)
	f := &ShardFile{
		Version: ShardFileVersion,
		Shard:   sh,
		Params: ShardParams{
			Seed:      p.Seed,
			TraceLen:  p.TraceLen,
			Seeds:     len(seeds),
			Workloads: full,
			Stream:    p.Stream,
			ChunkSize: p.ChunkSize,
		},
	}
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
		}
		es := ExperimentShard{
			Experiment:          id,
			WorkloadIndependent: workloadIndependent[id],
			Assigned:            assigned,
		}
		for _, seed := range seeds {
			run := ShardRun{Seed: seed}
			if len(assigned) > 0 || es.WorkloadIndependent {
				ps := p
				ps.ctx = ctx
				ps.Seed = seed
				if !es.WorkloadIndependent {
					ps.Workloads = assigned
				}
				var aggs []NoteAgg
				ps.aggs = &aggs
				t, err := Run(id, ps)
				if err != nil {
					return nil, err
				}
				run.Table = t
				run.Aggs = aggs
			}
			es.Runs = append(es.Runs, run)
		}
		f.Experiments = append(f.Experiments, es)
	}
	return f, nil
}

// WriteJSON writes the shard file as indented JSON. The field order is
// fixed by the struct definitions and the structure contains no maps, so
// equal shard files marshal byte-identically (and float64 cells round-trip
// exactly through encoding/json).
func (f *ShardFile) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeShardFile reads one shard artifact, rejecting unknown versions.
func DecodeShardFile(r io.Reader) (*ShardFile, error) {
	var f ShardFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("experiment: decoding shard file: %w", err)
	}
	if f.Version != ShardFileVersion {
		return nil, fmt.Errorf("experiment: shard file version %d, want %d", f.Version, ShardFileVersion)
	}
	return &f, nil
}

// MergeShardFiles recombines a complete shard set (indices 1..m of an
// m-way run, in any order) into one table per experiment, byte-identical
// to the unsharded rendering. Incomplete, overlapping or mismatched sets
// are rejected with an error naming the first problem.
func MergeShardFiles(files []*ShardFile) ([]MergedTable, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("experiment: no shard files to merge")
	}
	fs := append([]*ShardFile(nil), files...)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Shard.Index < fs[j].Shard.Index })
	first := fs[0]
	of := first.Shard.Of
	if len(fs) != of {
		return nil, fmt.Errorf("experiment: have %d shard files, need all %d shards of a %d-way run", len(fs), of, of)
	}
	for i, f := range fs {
		if f.Version != ShardFileVersion {
			return nil, fmt.Errorf("experiment: shard file version %d, want %d", f.Version, ShardFileVersion)
		}
		if f.Shard.Of != of || f.Shard.Index != i+1 {
			return nil, fmt.Errorf("experiment: shard files must cover 1/%d..%d/%d exactly once; have %s where %d/%d was expected",
				of, of, of, f.Shard, i+1, of)
		}
		if !reflect.DeepEqual(f.Params, first.Params) {
			return nil, fmt.Errorf("experiment: shard %s ran different parameters than shard %s", f.Shard, first.Shard)
		}
		if len(f.Experiments) != len(first.Experiments) {
			return nil, fmt.Errorf("experiment: shard %s ran %d experiments, shard %s ran %d",
				f.Shard, len(f.Experiments), first.Shard, len(first.Experiments))
		}
		for ei := range f.Experiments {
			a, b := f.Experiments[ei], first.Experiments[ei]
			if a.Experiment != b.Experiment || a.WorkloadIndependent != b.WorkloadIndependent {
				return nil, fmt.Errorf("experiment: shard %s experiment %d is %q, shard %s has %q",
					f.Shard, ei, a.Experiment, first.Shard, b.Experiment)
			}
			if len(a.Runs) != len(b.Runs) {
				return nil, fmt.Errorf("experiment: %s: shard %s has %d seed runs, shard %s has %d",
					a.Experiment, f.Shard, len(a.Runs), first.Shard, len(b.Runs))
			}
			for ri := range a.Runs {
				if a.Runs[ri].Seed != b.Runs[ri].Seed {
					return nil, fmt.Errorf("experiment: %s run %d: shard %s ran seed %d, shard %s seed %d",
						a.Experiment, ri, f.Shard, a.Runs[ri].Seed, first.Shard, b.Runs[ri].Seed)
				}
			}
		}
	}
	var out []MergedTable
	for ei, es := range first.Experiments {
		perSeed := make([]*stats.Table, 0, len(es.Runs))
		for ri := range es.Runs {
			t, err := mergeRun(fs, ei, ri)
			if err != nil {
				return nil, fmt.Errorf("experiment: merging %s seed %d: %w", es.Experiment, es.Runs[ri].Seed, err)
			}
			perSeed = append(perSeed, t)
		}
		tab := perSeed[0]
		if len(perSeed) > 1 {
			var err error
			tab, err = stats.AverageTables(perSeed)
			if err != nil {
				return nil, fmt.Errorf("experiment: averaging merged %s: %w", es.Experiment, err)
			}
		}
		out = append(out, MergedTable{Experiment: es.Experiment, Table: tab})
	}
	return out, nil
}

// mergeRun reassembles one (experiment, seed) full table from the shard
// set: rows interleaved back into full presentation order, the average row
// recomputed, aggregate notes re-rendered from the pooled raw
// contributions, and the remaining notes either interleaved (registered
// per-row experiments) or verified identical across shards.
func mergeRun(fs []*ShardFile, ei, ri int) (*stats.Table, error) {
	es0 := fs[0].Experiments[ei]
	if es0.WorkloadIndependent {
		var ref *stats.Table
		for _, f := range fs {
			t := f.Experiments[ei].Runs[ri].Table
			if t == nil {
				continue
			}
			if ref == nil {
				ref = t
				continue
			}
			if !reflect.DeepEqual(ref, t) {
				return nil, fmt.Errorf("workload-independent tables disagree between shards")
			}
		}
		if ref == nil {
			return nil, fmt.Errorf("no shard produced the workload-independent table")
		}
		return ref, nil
	}
	full := fs[0].Params.Workloads
	of := len(fs)
	// shardTable returns the owner shard's partial table for workload
	// position i; the owner is fixed by the round-robin partition.
	shardTable := func(i int) (*stats.Table, error) {
		t := fs[i%of].Experiments[ei].Runs[ri].Table
		if t == nil {
			return nil, fmt.Errorf("shard %s owns workload %q but produced no table", fs[i%of].Shard, full[i])
		}
		return t, nil
	}
	skel, err := shardTable(0)
	if err != nil {
		return nil, err
	}
	out := &stats.Table{
		Title:     skel.Title,
		RowHeader: skel.RowHeader,
		Columns:   append([]string(nil), skel.Columns...),
		Unit:      skel.Unit,
	}
	// Reassemble the data rows in full presentation order. Each shard's
	// partial table lists its assigned rows first, in that same order, so a
	// per-shard cursor walks them without any lookup by label — though the
	// labels are still verified, so a runner that stops labelling rows by
	// workload fails here instead of merging garbage.
	cursors := make([]int, of)
	hasAverage := false
	for i, w := range full {
		t, err := shardTable(i)
		if err != nil {
			return nil, err
		}
		if !sameSkeleton(skel, t) {
			return nil, fmt.Errorf("shard %s table skeleton disagrees with shard %s", fs[i%of].Shard, fs[0].Shard)
		}
		if len(t.Rows) > 0 && t.Rows[len(t.Rows)-1].Label == "average" {
			hasAverage = true
		}
		cur := cursors[i%of]
		cursors[i%of]++
		if cur >= len(t.Rows) {
			return nil, fmt.Errorf("shard %s has %d rows, fewer than its assigned workloads", fs[i%of].Shard, len(t.Rows))
		}
		row := t.Rows[cur]
		if row.Label != w {
			return nil, fmt.Errorf("shard %s row %d is %q, expected workload %q", fs[i%of].Shard, cur, row.Label, w)
		}
		out.AddRow(row.Label, append([]float64(nil), row.Cells...)...)
	}
	if hasAverage {
		out.AppendAverage()
	}
	if err := mergeNotes(out, fs, ei, ri, full); err != nil {
		return nil, err
	}
	return out, nil
}

// mergeNotes reconstructs the merged table's notes: non-aggregate notes
// first (interleaved for registered per-row experiments, otherwise
// verified identical across shards), then the aggregate notes re-rendered
// from the pooled contributions in full presentation order.
func mergeNotes(out *stats.Table, fs []*ShardFile, ei, ri int, full []string) error {
	id := fs[0].Experiments[ei].Experiment
	of := len(fs)
	// One aggregate collector list per contributing shard; shards with no
	// assigned workloads recorded none.
	nAggs := -1
	for _, f := range fs {
		r := f.Experiments[ei].Runs[ri]
		if r.Table == nil {
			continue
		}
		if nAggs == -1 {
			nAggs = len(r.Aggs)
		} else if len(r.Aggs) != nAggs {
			return fmt.Errorf("shard %s recorded %d aggregate notes, shard %s %d",
				f.Shard, len(r.Aggs), fs[0].Shard, nAggs)
		}
	}
	if nAggs < 0 {
		nAggs = 0
	}
	// Non-aggregate notes: every contributing shard's notes minus the
	// trailing nAggs aggregate renderings.
	plain := func(i int) ([]string, error) {
		r := fs[i].Experiments[ei].Runs[ri]
		if r.Table == nil {
			return nil, nil
		}
		if len(r.Table.Notes) < nAggs {
			return nil, fmt.Errorf("shard %s has %d notes but %d aggregate collectors", fs[i].Shard, len(r.Table.Notes), nAggs)
		}
		return r.Table.Notes[:len(r.Table.Notes)-nAggs], nil
	}
	if perRowNotes[id] {
		// One note per workload row, interleaved by the same round-robin
		// that reassembled the rows.
		cursors := make([]int, of)
		for i := range full {
			notes, err := plain(i % of)
			if err != nil {
				return err
			}
			cur := cursors[i%of]
			cursors[i%of]++
			if cur >= len(notes) {
				return fmt.Errorf("shard %s has %d per-row notes, fewer than its assigned workloads", fs[i%of].Shard, len(notes))
			}
			out.Notes = append(out.Notes, notes[cur])
		}
	} else {
		// Static annotations: identical on every contributing shard.
		var ref []string
		refShard := -1
		for i := range fs {
			notes, err := plain(i)
			if err != nil {
				return err
			}
			if fs[i].Experiments[ei].Runs[ri].Table == nil {
				continue
			}
			if refShard == -1 {
				ref, refShard = notes, i
				continue
			}
			if !reflect.DeepEqual(ref, notes) {
				return fmt.Errorf("notes disagree between shard %s and shard %s; if %s emits per-workload notes, register it in perRowNotes",
					fs[refShard].Shard, fs[i].Shard, id)
			}
		}
		out.Notes = append(out.Notes, ref...)
	}
	// Aggregate notes: pool the raw contributions back into full
	// presentation order and re-render. The per-shard contribution lists
	// are keyed maps only for lookup — iteration is over the ordered full
	// workload list, so no map order can reach the output.
	for k := 0; k < nAggs; k++ {
		var merged NoteAgg
		byShard := make([]map[string]float64, of)
		for i, f := range fs {
			r := f.Experiments[ei].Runs[ri]
			if r.Table == nil {
				continue
			}
			a := r.Aggs[k]
			if merged.Key == "" {
				merged = NoteAgg{Key: a.Key, Format: a.Format, Factor: a.Factor, Weight: a.Weight}
			} else if a.Key != merged.Key || a.Format != merged.Format || a.Factor != merged.Factor || a.Weight != merged.Weight {
				return fmt.Errorf("aggregate note %d disagrees between shards (%q vs %q)", k, a.Key, merged.Key)
			}
			m := make(map[string]float64, len(a.Contribs))
			for _, c := range a.Contribs {
				m[c.Workload] = c.Value
			}
			byShard[i] = m
		}
		for i, w := range full {
			m := byShard[i%of]
			v, ok := m[w]
			if !ok {
				return fmt.Errorf("shard %s recorded no %q contribution for workload %q", fs[i%of].Shard, merged.Key, w)
			}
			merged.Contribs = append(merged.Contribs, NoteContrib{Workload: w, Value: v})
		}
		merged.render(out)
	}
	return nil
}

// sameSkeleton reports whether two partial tables agree on everything but
// rows and notes.
func sameSkeleton(a, b *stats.Table) bool {
	return a.Title == b.Title && a.RowHeader == b.RowHeader &&
		a.Unit == b.Unit && reflect.DeepEqual(a.Columns, b.Columns)
}
