package experiment

import "valuepred/internal/stats"

// Table re-exports stats.Table as the result type of every runner.
type Table = stats.Table
