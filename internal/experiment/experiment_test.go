package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"valuepred/internal/tracestore"
	"valuepred/internal/workload"
)

// tiny returns fast parameters for structural tests.
func tiny() Params {
	return Params{Seed: 1, TraceLen: 15_000, Workloads: []string{"compress95", "go"}}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table3.1", "table3.2", "fig3.1", "fig3.3", "fig3.4", "fig3.5",
		"fig5.1", "fig5.2", "fig5.3", "sec4",
		"ablation.banks", "ablation.hybrid", "ablation.window", "ablation.vpenalty",
		"ablation.predictor", "ablation.btb", "ablation.fetchmech",
		"ablation.lipasti", "ablation.twodelta", "diag.stalls", "diag.classes",
		"ablation.vptable", "diag.memdeps", "diag.useless", "ablation.partial", "ablation.latency",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
		if desc, ok := Describe(id); !ok || desc == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestUnknownAndInvalid(t *testing.T) {
	if _, err := Run("nonesuch", tiny()); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := Run("fig3.1", Params{TraceLen: 0}); err == nil {
		t.Error("zero trace length accepted")
	}
	if _, err := Run("fig3.1", Params{TraceLen: 100, Workloads: []string{"bogus"}}); err == nil {
		t.Error("bogus workload accepted")
	}
	if _, ok := Describe("nonesuch"); ok {
		t.Error("Describe(nonesuch) succeeded")
	}
}

// TestAllExperimentsWellFormed runs every registered experiment with tiny
// parameters and checks structural invariants of the resulting tables.
func TestAllExperimentsWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is not short")
	}
	p := tiny()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, p)
			if err != nil {
				t.Fatal(err)
			}
			if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("malformed table: %+v", tab)
			}
			for _, r := range tab.Rows {
				if len(r.Cells) > len(tab.Columns) {
					t.Errorf("row %q has %d cells for %d columns", r.Label, len(r.Cells), len(tab.Columns))
				}
			}
			var sb strings.Builder
			if err := tab.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if err := tab.RenderCSV(&sb); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFig31RowsMatchWorkloads checks row labels and the average row.
func TestFig31RowsMatchWorkloads(t *testing.T) {
	tab, err := Fig31(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // two workloads + average
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].Label != "compress95" || tab.Rows[1].Label != "go" || tab.Rows[2].Label != "average" {
		t.Errorf("row labels = %v", []string{tab.Rows[0].Label, tab.Rows[1].Label, tab.Rows[2].Label})
	}
	if len(tab.Columns) != len(Fig31Widths) {
		t.Errorf("columns = %v", tab.Columns)
	}
}

// TestTable32Exact pins the paper's walk-through cycles.
func TestTable32Exact(t *testing.T) {
	tab, err := Table32(Params{})
	if err != nil {
		t.Fatal(err)
	}
	// 8 instruction rows (plus the HALT row, which also executes).
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Instruction #1 fetch cycle 1, execute 3; instruction #6 execute 4.
	if v, _ := tab.Cell("#1", "fetch"); v != 1 {
		t.Errorf("#1 fetch = %v", v)
	}
	if v, _ := tab.Cell("#1", "execute"); v != 3 {
		t.Errorf("#1 execute = %v", v)
	}
	if v, _ := tab.Cell("#6", "execute"); v != 4 {
		t.Errorf("#6 execute = %v", v)
	}
	if len(tab.Notes) == 0 {
		t.Error("no per-cycle notes rendered")
	}
}

// TestTable31ListsAllBenchmarks verifies the descriptions table.
func TestTable31ListsAllBenchmarks(t *testing.T) {
	tab, err := Table31(Params{Seed: 1, TraceLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workload.Names()) {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	joined := strings.Join(tab.Notes, "\n")
	for _, want := range []string{"Lempel-Ziv", "88100", "Lisp", "Anagram", "JPEG", "database", "compiler", "Game"} {
		if !strings.Contains(joined, want) {
			t.Errorf("descriptions missing %q", want)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.TraceLen <= 0 || len(p.workloads()) != 8 {
		t.Errorf("DefaultParams = %+v", p)
	}
}

// TestRunCtxCancellation is the regression test for the cancellation path:
// a canceled or expired context aborts a run with an error that callers can
// tell apart from a validation failure via errors.Is, and cancellation
// arriving mid-run (between workload checkpoints) is honoured.
func TestRunCtxCancellation(t *testing.T) {
	p := tiny()
	p.Store = tracestore.New(0)

	// Already-canceled context: aborted before any simulation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, "fig5.1", p); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want errors.Is(err, context.Canceled)", err)
	}

	// Expired deadline: distinguishable as DeadlineExceeded.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if _, err := RunCtx(dctx, "fig5.1", p); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}

	// Validation errors never carry a context error, even under a live ctx.
	bad := p
	bad.TraceLen = -1
	if _, err := RunCtx(context.Background(), "fig5.1", bad); err == nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("validation err = %v, want a plain validation error", err)
	}

	// A nil context behaves like Run.
	if _, err := RunCtx(nil, "table3.1", p); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("nil ctx: %v", err)
	}

	// Mid-run cancellation: cancel while the first seed simulates; the
	// multi-seed loop's checkpoint must abort before the second seed.
	mctx, mcancel := context.WithCancel(context.Background())
	mcancel()
	if _, err := RunSeedsCtx(mctx, "fig3.3", p, []int64{1, 2, 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSeedsCtx canceled: err = %v", err)
	}
}

// TestPreloadAsyncSkipsCanceled is the regression test for background
// preloads outliving an aborted run: once the run's context is canceled,
// preloadAsync must not hand the trace store a generation that nothing
// will ever read.
func TestPreloadAsyncSkipsCanceled(t *testing.T) {
	p := tiny()
	p.Store = tracestore.New(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.ctx = ctx

	p.preloadAsync(99)
	// The skip is synchronous (no goroutine is spawned for a canceled run),
	// so the store must stay untouched immediately and stay that way.
	time.Sleep(10 * time.Millisecond)
	if st := p.Store.Stats(); st.Misses != 0 || st.Entries != 0 {
		t.Errorf("canceled preload touched the store: %+v", st)
	}

	// Sanity check: with a live context the same preload does warm the store.
	p.ctx = context.Background()
	p.preloadAsync(99)
	deadline := time.Now().Add(10 * time.Second)
	for p.Store.Stats().Entries < len(p.workloads()) {
		if time.Now().After(deadline) {
			t.Fatalf("live preload never warmed the store: %+v", p.Store.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
