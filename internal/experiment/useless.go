package experiment

import (
	"fmt"

	"valuepred/internal/ideal"
	"valuepred/internal/predictor"
	"valuepred/internal/trace"
)

func init() {
	register("diag.useless",
		"Diagnostic — fraction of correct value predictions that are useless, by fetch width",
		DiagUseless)
}

// DiagUselessWidths is the fetch-width sweep of diag.useless.
var DiagUselessWidths = []int{4, 8, 16, 40}

// DiagUseless measures the paper's central phenomenon directly: the share
// of *correct* value predictions that decouple no consumer because the
// producer had already executed when the consumer issued — i.e. the
// prediction was correct but useless. At fetch width 4 most correct
// predictions are wasted; widening the front end converts them into used
// predictions (Section 3's argument, quantified).
func DiagUseless(p Params) (*Table, error) {
	t := &Table{
		Title:     "Diagnostic — useless fraction of correct predictions vs fetch width (ideal machine)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, w := range DiagUselessWidths {
		t.Columns = append(t.Columns, fmt.Sprintf("BW=%d", w))
	}
	err := forEachWorkload(p, t, func(name string, recs []trace.Rec) ([]float64, error) {
		var cells []float64
		for _, w := range DiagUselessWidths {
			cfg := ideal.DefaultConfig(w)
			cfg.Predictor = predictor.NewClassifiedStride()
			res, err := ideal.Run(trace.NewSliceSource(recs), cfg)
			if err != nil {
				return nil, err
			}
			if res.Correct == 0 {
				cells = append(cells, 0)
				continue
			}
			cells = append(cells, 100*float64(res.Useless())/float64(res.Correct))
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	t.AppendAverage()
	t.AddNote("a useless prediction is correct but its consumers' operands were ready anyway")
	return t, nil
}
