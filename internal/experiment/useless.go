package experiment

import (
	"fmt"

	"valuepred/internal/ideal"
	"valuepred/internal/predictor"
)

func init() {
	register("diag.useless",
		"Diagnostic — fraction of correct value predictions that are useless, by fetch width",
		DiagUseless)
}

// DiagUselessWidths is the fetch-width sweep of diag.useless.
var DiagUselessWidths = []int{4, 8, 16, 40}

// DiagUseless measures the paper's central phenomenon directly: the share
// of *correct* value predictions that decouple no consumer because the
// producer had already executed when the consumer issued — i.e. the
// prediction was correct but useless. At fetch width 4 most correct
// predictions are wasted; widening the front end converts them into used
// predictions (Section 3's argument, quantified).
func DiagUseless(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     "Diagnostic — useless fraction of correct predictions vs fetch width (ideal machine)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, w := range DiagUselessWidths {
		t.Columns = append(t.Columns, fmt.Sprintf("BW=%d", w))
	}
	g := p.newGrid("diag.useless")
	for _, name := range p.workloads() {
		f := feeds[name]
		for _, w := range DiagUselessWidths {
			g.cell(name, fmt.Sprintf("BW=%d", w), "vp", func() (any, error) {
				cfg := ideal.DefaultConfig(w)
				cfg.Predictor = predictor.NewClassifiedStride()
				return ideal.Run(f.source(), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		var cells []float64
		for _, w := range DiagUselessWidths {
			r := res.get(name, fmt.Sprintf("BW=%d", w), "vp").(ideal.Result)
			if r.Correct == 0 {
				cells = append(cells, 0)
				continue
			}
			cells = append(cells, 100*float64(r.Useless())/float64(r.Correct))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	t.AddNote("a useless prediction is correct but its consumers' operands were ready anyway")
	return t, nil
}
