package experiment

import (
	"valuepred/internal/btb"
	"valuepred/internal/fetch"
	"valuepred/internal/ideal"
	"valuepred/internal/pipeline"
	"valuepred/internal/predictor"
)

func init() {
	register("ablation.predictor", "Ablation — value-predictor organisations on the ideal machine (width 16)", AblationPredictor)
	register("ablation.btb", "Ablation — BTB quality vs value-prediction speedup (Section 5 claim)", AblationBTB)
	register("ablation.fetchmech", "Ablation — high-bandwidth fetch mechanisms (Section 2.2 survey)", AblationFetchMech)
}

// AblationPredictor compares value-predictor organisations on the ideal
// machine at fetch width 16: last-value, stride, classified stride
// (the paper's choice), classified FCM and the hybrid.
func AblationPredictor(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	type variant struct {
		name string
		mk   func(f feed) predictor.Predictor
	}
	variants := []variant{
		{"last-value", func(feed) predictor.Predictor { return predictor.NewLastValue() }},
		{"stride", func(feed) predictor.Predictor { return predictor.NewStride() }},
		{"stride+2bc", func(feed) predictor.Predictor { return predictor.NewClassifiedStride() }},
		{"fcm2+2bc", func(feed) predictor.Predictor { return predictor.NewClassifiedFCM(2) }},
		{"hybrid+hints", func(f feed) predictor.Predictor {
			return predictor.NewHybrid(1024, predictor.ProfileSource(f.prefix(f.Len()/4), 0.6))
		}},
	}
	t := &Table{
		Title:     "Ablation — predictor organisations (ideal machine, fetch width 16)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, v := range variants {
		t.Columns = append(t.Columns, v.name)
	}
	g := p.newGrid("ablation.predictor")
	for _, name := range p.workloads() {
		f := feeds[name]
		g.cell(name, "", "base", func() (any, error) {
			return ideal.Run(f.source(), ideal.DefaultConfig(16))
		})
		for _, v := range variants {
			g.cell(name, v.name, "vp", func() (any, error) {
				cfg := ideal.DefaultConfig(16)
				cfg.Predictor = v.mk(f)
				return ideal.Run(f.source(), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		base := res.get(name, "", "base").(ideal.Result)
		var cells []float64
		for _, v := range variants {
			vp := res.get(name, v.name, "vp").(ideal.Result)
			cells = append(cells, ideal.Speedup(base, vp))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	return t, nil
}

// AblationBTB quantifies the paper's Section 5 observation that "any small
// improvement in the BTB accuracy can considerably affect the performance
// gain of value prediction": it sweeps BTB configurations at 4 taken
// branches per cycle and reports branch accuracy alongside VP speedup.
func AblationBTB(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	type variant struct {
		name string
		mk   branchMaker
	}
	variants := []variant{
		{"btb-512", func() btb.Predictor {
			return btb.NewTwoLevel(btb.TwoLevelConfig{Entries: 512, Ways: 2, HistoryBits: 4})
		}},
		{"btb-2k", twoLevelBTB},
		{"btb-8k/h6", func() btb.Predictor {
			return btb.NewTwoLevel(btb.TwoLevelConfig{Entries: 8192, Ways: 4, HistoryBits: 6})
		}},
		{"gshare", func() btb.Predictor { return btb.NewGShare(btb.DefaultGShareConfig()) }},
		{"ideal", perfectBTB},
	}
	t := &Table{
		Title:     "Ablation — BTB quality vs value-prediction speedup (sequential fetch, n=4)",
		RowHeader: "benchmark",
	}
	for _, v := range variants {
		t.Columns = append(t.Columns, v.name+" speedup")
	}
	t.Columns = append(t.Columns, "acc 512", "acc 2k", "acc 8k", "acc gshare")
	g := p.newGrid("ablation.btb")
	for _, name := range p.workloads() {
		f := feeds[name]
		for _, v := range variants {
			g.cell(name, v.name, "base", func() (any, error) {
				return pipeline.Run(fetch.NewSequentialSource(f.source(), v.mk(), 4), pipeline.DefaultConfig())
			})
			g.cell(name, v.name, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.Predictor = predictor.NewClassifiedStride()
				return pipeline.Run(fetch.NewSequentialSource(f.source(), v.mk(), 4), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		var speedups, accs []float64
		for _, v := range variants {
			base := res.get(name, v.name, "base").(pipeline.Result)
			vp := res.get(name, v.name, "vp").(pipeline.Result)
			speedups = append(speedups, pipeline.Speedup(base, vp))
			if v.name != "ideal" {
				accs = append(accs, 100*vp.Fetch.BranchAccuracy())
			}
		}
		t.AddRow(name, append(speedups, accs...)...)
	}
	t.AppendAverage()
	return t, nil
}

// AblationFetchMech compares the high-bandwidth fetch mechanisms the paper
// surveys in Section 2.2 as hosts for value prediction: single-branch
// sequential fetch, the collapsing buffer (two noncontiguous cache lines),
// multiple-branch sequential fetch, and the trace cache. All use the ideal
// BTB so the comparison isolates the fetch mechanism.
func AblationFetchMech(p Params) (*Table, error) {
	feeds, err := p.feeds()
	if err != nil {
		return nil, err
	}
	type variant struct {
		name string
		mk   func(f feed) fetch.Engine
	}
	variants := []variant{
		{"seq n=1", func(f feed) fetch.Engine { return fetch.NewSequentialSource(f.source(), perfectBTB(), 1) }},
		{"collapsing", func(f feed) fetch.Engine {
			return fetch.NewCollapsingBufferSource(f.source(), perfectBTB(), fetch.DefaultCBConfig())
		}},
		{"seq n=4", func(f feed) fetch.Engine { return fetch.NewSequentialSource(f.source(), perfectBTB(), 4) }},
		{"trace cache", func(f feed) fetch.Engine {
			return fetch.NewTraceCacheSource(f.source(), perfectBTB(), fetch.DefaultTCConfig())
		}},
	}
	t := &Table{
		Title:     "Ablation — fetch mechanism vs value-prediction speedup (ideal BTB)",
		RowHeader: "benchmark",
		Unit:      "%",
	}
	for _, v := range variants {
		t.Columns = append(t.Columns, v.name)
	}
	g := p.newGrid("ablation.fetchmech")
	for _, name := range p.workloads() {
		f := feeds[name]
		for _, v := range variants {
			g.cell(name, v.name, "base", func() (any, error) {
				return pipeline.Run(v.mk(f), pipeline.DefaultConfig())
			})
			g.cell(name, v.name, "vp", func() (any, error) {
				cfg := pipeline.DefaultConfig()
				cfg.Predictor = predictor.NewClassifiedStride()
				return pipeline.Run(v.mk(f), cfg)
			})
		}
	}
	res, err := g.run()
	if err != nil {
		return nil, err
	}
	for _, name := range p.workloads() {
		var cells []float64
		for _, v := range variants {
			base := res.get(name, v.name, "base").(pipeline.Result)
			vp := res.get(name, v.name, "vp").(pipeline.Result)
			cells = append(cells, pipeline.Speedup(base, vp))
		}
		t.AddRow(name, cells...)
	}
	t.AppendAverage()
	t.AddNote("speedups are relative to the same fetch mechanism without value prediction")
	return t, nil
}
