package experiment

import (
	"context"

	"valuepred/internal/chunk"
	"valuepred/internal/plan"
	"valuepred/internal/trace"
)

// grid is the experiment layer's builder over plan.Grid: a runner declares
// one cell per independent simulation, keyed by its position in the table
// (workload row, column label, variant within the cell), runs the grid on
// the shared plan pool, and reads the results back by key while emitting
// rows in the paper's presentation order. Declaration order is the
// canonical order plan uses for error reporting; the merge itself is
// keyed, so the declaring loop's shape never leaks into the table.
type grid struct {
	p  Params
	id string
	pg plan.Grid
}

// newGrid starts the cell declaration of one experiment run. id labels
// the cells' canonical keys ("fig3.1", or a synthetic id like "traces"
// for non-table grids).
func (p Params) newGrid(id string) *grid {
	return &grid{p: p, id: id}
}

// cell declares one cell. fn must be self-contained (build its own
// predictors and machines, read shared traces only): cells execute
// concurrently in arbitrary order on the shared pool.
func (g *grid) cell(workload, column, variant string, fn func() (any, error)) {
	g.pg.Add(plan.Key{Experiment: g.id, Workload: workload, Column: column, Variant: variant, Seed: g.p.Seed},
		func(context.Context) (any, error) { return fn() })
}

// run executes the declared cells on the shared pool and returns the
// keyed results. A cancellation of the run's context wins over per-cell
// errors and keeps the experiment layer's "run aborted" wrapping, so
// callers still distinguish aborts with errors.Is(err, ctx.Err()).
func (g *grid) run() (*gridResults, error) {
	res, err := plan.Run(g.p.ctx, &g.pg, g.p.Obs)
	if err != nil {
		if cerr := g.p.ctxErr(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	byKey := make(map[plan.Key]any, len(res))
	for i, c := range g.pg.Cells() {
		byKey[c.Key] = res[i]
	}
	return &gridResults{p: g.p, id: g.id, byKey: byKey}, nil
}

// gridResults holds one grid run's results for keyed lookup. The map is
// only ever read by key — never iterated — so no map ordering can reach
// a table (the detlint contract).
type gridResults struct {
	p     Params
	id    string
	byKey map[plan.Key]any
}

// get returns the result of the cell declared under (workload, column,
// variant). Asking for an undeclared key panics via the type assertion at
// the caller, which is the right failure mode for a programming error in
// a table merge.
func (r *gridResults) get(workload, column, variant string) any {
	return r.byKey[plan.Key{Experiment: r.id, Workload: workload, Column: column, Variant: variant, Seed: r.p.Seed}]
}

// recs is the common []trace.Rec lookup for trace grids.
func (r *gridResults) recs(workload string) []trace.Rec {
	return r.get(workload, "", "").([]trace.Rec)
}

// seq is the chunk-sequence lookup for streaming trace grids.
func (r *gridResults) seq(workload string) *chunk.Seq {
	return r.get(workload, "", "").(*chunk.Seq)
}
