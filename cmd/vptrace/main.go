// Command vptrace generates, stores, inspects and replays workload traces
// in the binary VPT1 format (the repository's stand-in for Shade trace
// files).
//
// Usage:
//
//	vptrace -workload compress95 -len 1000000 -o compress.vpt   # record
//	vptrace -decode compress.vpt -dump 20                       # inspect
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vptrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "", "benchmark to trace")
		seed     = fs.Int64("seed", 1, "workload input seed")
		traceLen = fs.Int("len", 200_000, "dynamic instructions to trace")
		outPath  = fs.String("o", "", "output file for the binary trace")
		decode   = fs.String("decode", "", "decode a binary trace file instead of recording")
		dump     = fs.Int("dump", 0, "print the first N records")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *decode != "":
		f, err := os.Open(*decode)
		if err != nil {
			return err
		}
		defer f.Close()
		r := trace.NewReader(f)
		recs := trace.Collect(r, 0)
		if err := r.Err(); err != nil {
			return err
		}
		report(stdout, recs, *dump)
		return nil
	case *name != "":
		recs, err := workload.Trace(*name, *seed, *traceLen)
		if err != nil {
			return err
		}
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w := trace.NewWriter(f)
			for _, rec := range recs {
				if err := w.Write(rec); err != nil {
					return err
				}
			}
			if err := w.Flush(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d records to %s\n", w.Count(), *outPath)
		}
		report(stdout, recs, *dump)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("need -workload <name> or -decode <file>")
	}
}

func report(w io.Writer, recs []trace.Rec, dump int) {
	fmt.Fprintln(w, trace.Summarize(recs))
	for i := 0; i < dump && i < len(recs); i++ {
		fmt.Fprintln(w, recs[i])
	}
}
