// Command vptrace generates, stores, inspects and replays workload traces
// in the binary VPT1 format (the repository's stand-in for Shade trace
// files).
//
// Both directions stream record by record: recording steps the emulator
// straight into the encoder, and decoding folds each record into a running
// summary as it leaves the reader, so a 100M-instruction trace file is
// inspected (or written) in constant memory — no mode materializes the
// trace as a slice.
//
// Usage:
//
//	vptrace -workload compress95 -len 1000000 -o compress.vpt   # record
//	vptrace -decode compress.vpt -dump 20                       # inspect
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"valuepred/internal/trace"
	"valuepred/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vptrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "", "benchmark to trace")
		seed     = fs.Int64("seed", 1, "workload input seed")
		traceLen = fs.Int("len", 200_000, "dynamic instructions to trace")
		outPath  = fs.String("o", "", "output file for the binary trace")
		decode   = fs.String("decode", "", "decode a binary trace file instead of recording")
		dump     = fs.Int("dump", 0, "print the first N records")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *decode != "":
		f, err := os.Open(*decode)
		if err != nil {
			return err
		}
		defer f.Close()
		r := trace.NewReader(f)
		if err := report(stdout, r, *dump); err != nil {
			return err
		}
		return r.Err()
	case *name != "":
		src, err := workload.Open(*name, *seed, *traceLen)
		if err != nil {
			return err
		}
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w := trace.NewWriter(f)
			var sum trace.Summarizer
			var head []trace.Rec
			for {
				rec, ok := src.Next()
				if !ok {
					break
				}
				if err := w.Write(rec); err != nil {
					return err
				}
				sum.Add(rec)
				if len(head) < *dump {
					head = append(head, rec)
				}
			}
			if err := src.Err(); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d records to %s\n", w.Count(), *outPath)
			printReport(stdout, sum.Summary(), head)
			return nil
		}
		return report(stdout, src, *dump)
	default:
		fs.Usage()
		return fmt.Errorf("need -workload <name> or -decode <file>")
	}
}

// report drains src record by record, keeping only the running summary and
// the first dump records, then prints summary-then-dump in the command's
// established order. Peak memory is one record plus the dump prefix,
// independent of the trace length.
func report(w io.Writer, src trace.Source, dump int) error {
	var sum trace.Summarizer
	var head []trace.Rec
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		sum.Add(rec)
		if len(head) < dump {
			head = append(head, rec)
		}
	}
	if s, ok := src.(interface{ Err() error }); ok {
		if err := s.Err(); err != nil {
			return err
		}
	}
	printReport(w, sum.Summary(), head)
	return nil
}

func printReport(w io.Writer, s trace.Summary, head []trace.Rec) {
	fmt.Fprintln(w, s)
	for _, rec := range head {
		fmt.Fprintln(w, rec)
	}
}
