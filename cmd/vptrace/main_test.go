package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordAndDecodeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.vpt")
	var out, errb strings.Builder
	err := run([]string{"-workload", "perl", "-len", "5000", "-o", path, "-dump", "3"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 5000 records") {
		t.Errorf("record output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "insts=5000") {
		t.Errorf("missing summary:\n%s", out.String())
	}

	var out2 strings.Builder
	if err := run([]string{"-decode", path, "-dump", "2"}, &out2, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "insts=5000") {
		t.Errorf("decode output:\n%s", out2.String())
	}
	// The dumped records carry disassembly.
	if !strings.Contains(out2.String(), "#0") {
		t.Errorf("dump missing records:\n%s", out2.String())
	}
}

func TestErrors(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-workload", "nonesuch"}, &out, &errb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-decode", "/nonexistent/file.vpt"}, &out, &errb); err == nil {
		t.Error("missing file accepted")
	}
}
