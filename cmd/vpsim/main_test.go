package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"valuepred"
)

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3.1", "fig5.3", "table3.2", "ablation.banks"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunExperimentText(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.4", "-len", "8000", "-workloads", "perl"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3.4") || !strings.Contains(out.String(), "perl") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunExperimentCSVToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.3", "-len", "8000", "-workloads", "go", "-csv", "-o", path}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "benchmark,") {
		t.Errorf("csv output:\n%s", data)
	}
}

func TestErrors(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"-experiment", "nonesuch", "-len", "100"}, &out, &errb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &out, &errb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunExperimentMarkdown(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.5", "-len", "8000", "-workloads", "li", "-md"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| li |") {
		t.Errorf("markdown output:\n%s", out.String())
	}
}

func TestMultiSeedAveraging(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.3", "-len", "8000", "-workloads", "go", "-seeds", "2"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "averaged over 2 seeds") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestPreloadAndCacheStats(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.3", "-len", "7000", "-workloads", "go,li",
		"-preload", "-cachestats"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3.3") {
		t.Errorf("output:\n%s", out.String())
	}
	stats := errb.String()
	if !strings.Contains(stats, "trace cache:") ||
		!strings.Contains(stats, "hits") || !strings.Contains(stats, "misses") {
		t.Errorf("cache stats missing from stderr:\n%s", stats)
	}
}

// TestObservabilityFlags exercises -metrics, -trace-out and -manifest on a
// small run: the metrics snapshot reaches stderr, the trace file is valid
// schema-checked Chrome trace_event JSON, and the manifest round-trips
// through encoding/json byte-identically.
func TestObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	maniPath := filepath.Join(dir, "manifest.json")
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig5.1", "-len", "4000", "-workloads", "go",
		"-metrics", "-trace-out", tracePath, "-trace-sample", "16", "-manifest", maniPath},
		&out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter sim.cycles ", "counter vp.useful ", "counter vp.shadowed ",
		"histogram pipeline.window.occupancy "} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("-metrics output missing %q:\n%s", want, errb.String())
		}
	}

	// Chrome trace_event schema: every event needs a name, a known phase,
	// pid/tid, and (except metadata) a timestamp.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var sawTrack bool
	for i, ev := range ct.TraceEvents {
		if ev.Name == "" || ev.Pid == 0 || ev.Tid == 0 || ev.Args == nil {
			t.Errorf("event %d incomplete: %+v", i, ev)
		}
		switch ev.Ph {
		case "C", "I":
			if ev.TS == nil {
				t.Errorf("event %d (%s) has no timestamp", i, ev.Name)
			}
		case "M":
			if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "fig5.1/go/") {
				sawTrack = true
			}
		default:
			t.Errorf("event %d has unexpected phase %q", i, ev.Ph)
		}
	}
	if !sawTrack {
		t.Error("no fig5.1/go/... track in the trace")
	}

	// Manifest: parses, carries the run's configuration, and round-trips.
	first, err := os.ReadFile(maniPath)
	if err != nil {
		t.Fatal(err)
	}
	var m valuepred.Manifest
	if err := json.Unmarshal(first, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Tool != "vpsim" || len(m.Experiments) != 1 || m.Experiments[0] != "fig5.1" ||
		m.TraceLen != 4000 {
		t.Errorf("manifest fields: %+v", m)
	}
	if v, ok := m.Metrics.Counter("sim.cycles"); !ok || v == 0 {
		t.Errorf("manifest metrics missing sim.cycles: %d, %v", v, ok)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf.Bytes()) {
		t.Errorf("manifest does not round-trip byte-identically:\n%s\n----\n%s", first, buf.Bytes())
	}
}

// TestObservabilityDoesNotSteer renders the same experiment with and
// without the observability flags and expects byte-identical tables:
// metrics observe, they never steer.
func TestObservabilityDoesNotSteer(t *testing.T) {
	dir := t.TempDir()
	render := func(extra ...string) string {
		var out, errb strings.Builder
		args := append([]string{"-experiment", "fig5.3", "-len", "4000", "-workloads", "li"}, extra...)
		if err := run(args, &out, &errb); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	plain := render()
	observed := render("-metrics", "-trace-out", filepath.Join(dir, "t.json"),
		"-manifest", filepath.Join(dir, "m.json"), "-cachestats")
	if plain != observed {
		t.Errorf("observability changed the table:\n%s\n----\n%s", plain, observed)
	}
}

// TestShardMergeByteIdentical is the CLI half of the DESIGN.md §14
// contract: -shard 1/2 and -shard 2/2 artifacts merged by -merge render
// byte-identically to the unsharded run.
func TestShardMergeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-experiment", "table3.1", "-len", "4000", "-workloads", "go,li,perl"}
	var full, errb strings.Builder
	if err := run(base, &full, &errb); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(dir, "p1.json")
	p2 := filepath.Join(dir, "p2.json")
	var out strings.Builder
	if err := run(append(base, "-shard", "1/2", "-o", p1), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-shard", "2/2", "-o", p2), &out, &errb); err != nil {
		t.Fatal(err)
	}

	// The artifact is JSON carrying its partition identity.
	raw, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Shard struct{ Index, Of int } `json:"shard"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("shard artifact is not valid JSON: %v", err)
	}
	if art.Shard.Index != 1 || art.Shard.Of != 2 {
		t.Errorf("artifact shard = %+v, want 1/2", art.Shard)
	}

	var merged strings.Builder
	if err := run([]string{"-merge", p2, p1}, &merged, &errb); err != nil {
		t.Fatal(err)
	}
	if merged.String() != full.String() {
		t.Errorf("merged render differs from the unsharded run:\nmerged:\n%s\nunsharded:\n%s",
			merged.String(), full.String())
	}
}

// TestShardAndMergeFlagErrors pins the new flags' usage errors (exit 2)
// and distinguishes them from runtime failures (exit 1).
func TestShardAndMergeFlagErrors(t *testing.T) {
	usage := [][]string{
		{"-shard", "banana", "-experiment", "table3.1"},
		{"-shard", "0/2", "-experiment", "table3.1"},
		{"-merge"},
		{"-merge", "-shard", "1/2", "x.json"},
		{"-merge", "-experiment", "table3.1", "x.json"},
		{"-experiment", "table3.1", "stray-argument"},
		{"-shard", "1/2", "-experiment", "table3.1", "-csv"},
	}
	for _, args := range usage {
		var out, errb strings.Builder
		err := run(args, &out, &errb)
		if err == nil {
			t.Errorf("run(%v) accepted", args)
			continue
		}
		if !errors.Is(err, errUsage) {
			t.Errorf("run(%v) = %v, want a usage error (exit 2)", args, err)
		}
	}
	// A missing shard file is a runtime failure, not a usage error.
	var out, errb strings.Builder
	err := run([]string{"-merge", filepath.Join(t.TempDir(), "nope.json")}, &out, &errb)
	if err == nil || errors.Is(err, errUsage) {
		t.Errorf("missing shard file: err = %v, want a non-usage error (exit 1)", err)
	}
}

func TestRunExperimentChart(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.4", "-len", "8000", "-workloads", "go", "-chart"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") || !strings.Contains(out.String(), "go") {
		t.Errorf("chart output:\n%s", out.String())
	}
}
