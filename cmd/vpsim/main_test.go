package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3.1", "fig5.3", "table3.2", "ablation.banks"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunExperimentText(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.4", "-len", "8000", "-workloads", "perl"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3.4") || !strings.Contains(out.String(), "perl") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunExperimentCSVToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.3", "-len", "8000", "-workloads", "go", "-csv", "-o", path}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "benchmark,") {
		t.Errorf("csv output:\n%s", data)
	}
}

func TestErrors(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"-experiment", "nonesuch", "-len", "100"}, &out, &errb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &out, &errb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunExperimentMarkdown(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.5", "-len", "8000", "-workloads", "li", "-md"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| li |") {
		t.Errorf("markdown output:\n%s", out.String())
	}
}

func TestMultiSeedAveraging(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.3", "-len", "8000", "-workloads", "go", "-seeds", "2"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "averaged over 2 seeds") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestPreloadAndCacheStats(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.3", "-len", "7000", "-workloads", "go,li",
		"-preload", "-cachestats"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3.3") {
		t.Errorf("output:\n%s", out.String())
	}
	stats := errb.String()
	if !strings.Contains(stats, "trace cache:") ||
		!strings.Contains(stats, "hits") || !strings.Contains(stats, "misses") {
		t.Errorf("cache stats missing from stderr:\n%s", stats)
	}
}

func TestRunExperimentChart(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-experiment", "fig3.4", "-len", "8000", "-workloads", "go", "-chart"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") || !strings.Contains(out.String(), "go") {
		t.Errorf("chart output:\n%s", out.String())
	}
}
