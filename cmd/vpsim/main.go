// Command vpsim regenerates any table or figure of the paper's evaluation.
//
// Usage:
//
//	vpsim -list
//	vpsim -experiment fig3.1 [-seed 1] [-len 200000] [-workloads go,gcc] [-csv] [-o out.txt]
//	vpsim -all [-preload] [-cachestats]
//
// Traces are served from a process-wide cache, so -all and -seeds N emulate
// each (workload, seed) pair only once. -preload warms the cache for every
// selected workload and seed up front (one emulator per goroutine) before
// the first experiment runs; -cachestats reports the cache's hit/miss/
// evict/dedup counters on stderr at exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"valuepred"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list the available experiments and exit")
		id        = fs.String("experiment", "", "experiment id to run (see -list)")
		all       = fs.Bool("all", false, "run every experiment")
		seed      = fs.Int64("seed", 1, "workload input seed")
		seeds     = fs.Int("seeds", 1, "average the experiment over this many consecutive seeds")
		traceLen  = fs.Int("len", 200_000, "dynamic instructions per benchmark")
		workloads = fs.String("workloads", "", "comma-separated benchmark subset (default all)")
		csv       = fs.Bool("csv", false, "emit CSV instead of a text table")
		md        = fs.Bool("md", false, "emit a Markdown table")
		chart     = fs.Bool("chart", false, "emit an ASCII bar chart")
		outPath   = fs.String("o", "", "write output to a file instead of stdout")
		preload   = fs.Bool("preload", false, "warm the trace cache for all selected workloads and seeds before running")
		cacheStat = fs.Bool("cachestats", false, "report trace-cache counters on stderr at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range valuepred.Experiments() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Description)
		}
		return nil
	}
	if !*all && *id == "" {
		fs.Usage()
		return fmt.Errorf("need -experiment <id>, -all or -list")
	}

	p := valuepred.DefaultParams()
	p.Seed = *seed
	p.TraceLen = *traceLen
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	if *cacheStat {
		defer func() {
			s := valuepred.TraceStoreMetrics()
			fmt.Fprintf(stderr, "trace cache: %d hits (%d by prefix), %d misses, %d dedups, %d evictions, %d records in %d entries\n",
				s.Hits, s.PrefixHits, s.Misses, s.Dedups, s.Evictions, s.Records, s.Entries)
		}()
	}
	if *preload {
		for j := 0; j < *seeds; j++ {
			if err := valuepred.PreloadTraces(p.Workloads, *seed+int64(j), *traceLen); err != nil {
				return err
			}
		}
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	ids := []string{*id}
	if *all {
		ids = nil
		for _, e := range valuepred.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for i, one := range ids {
		var t *valuepred.Table
		var err error
		if *seeds > 1 {
			list := make([]int64, *seeds)
			for j := range list {
				list[j] = *seed + int64(j)
			}
			t, err = valuepred.RunExperimentSeeds(one, p, list)
		} else {
			t, err = valuepred.RunExperiment(one, p)
		}
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		switch {
		case *csv:
			err = t.RenderCSV(out)
		case *md:
			err = t.RenderMarkdown(out)
		case *chart:
			err = t.RenderChart(out)
		default:
			err = t.Render(out)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
