// Command vpsim regenerates any table or figure of the paper's evaluation.
//
// Usage:
//
//	vpsim -list
//	vpsim -experiment fig3.1 [-seed 1] [-seeds 5] [-len 200000] [-workloads go,gcc]
//	      [-workers 8] [-csv|-md|-chart] [-o out.txt]
//	vpsim -all [-preload] [-cachestats]
//	vpsim -experiment fig5.1 -metrics -trace-out run.json -manifest run-manifest.json
//	vpsim -experiment fig5.1 -shard 1/2 -o part1.json
//	vpsim -merge part1.json part2.json [-csv|-md|-chart]
//
// Experiments execute as grids of independent simulation cells on a
// process-global bounded worker pool; -workers sets the pool's width
// (default GOMAXPROCS). The width changes wall-clock time only — every
// table renders byte-identically at any -workers value.
//
// Traces are served from a process-wide cache, so -all and -seeds N emulate
// each (workload, seed) pair only once. -preload warms the cache for every
// selected workload and seed up front (one emulator per goroutine) before
// the first experiment runs; -cachestats reports the cache's hit/miss/
// evict/dedup counters on stderr at exit.
//
// -stream selects the chunked streaming trace pipeline (DESIGN.md §13):
// traces are cached as compressed chunk sequences and every simulated
// machine consumes a bounded pooled window, so paper-scale runs
// (-len 10000000 and beyond) keep peak memory governed by the chunk pool
// instead of the trace length. Tables are byte-identical to the default
// materialized path; -chunk overrides the records-per-chunk granularity.
//
// Observability: -metrics dumps the full metrics snapshot on stderr at
// exit; -trace-out writes a Chrome trace_event JSON file (open it in
// chrome://tracing or https://ui.perfetto.dev) with one track per simulated
// run, sampled every -trace-sample cycles; -manifest writes a JSON run
// manifest (configuration, wall time, metric snapshot); -pprof serves
// net/http/pprof on the given address for live profiling; -progress
// renders a live cells-done/total line with an EWMA-derived ETA on stderr
// while the grids run; -events writes the structured JSON event log
// (run/cell lifecycle, trace generation) to a file. None of these affect
// the simulation: the rendered tables are bit-identical with
// observability on or off.
//
// -shard n/m runs only the n-th of m deterministic partitions of the
// workload axis and writes a JSON shard artifact instead of a table;
// -merge recombines a complete artifact set (all m files, any order) and
// renders the tables byte-identically to the unsharded run, in any of the
// usual output formats (DESIGN.md §14).
//
// Invalid flag values (e.g. -trace-sample 0, -workers -1, a malformed
// -shard, -merge without files) exit 2 with the usage text; simulation
// failures exit 1.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"valuepred"
)

// errUsage marks a command-line validation failure. main reports it like
// any other error but exits 2 (the conventional usage-error status), so
// scripts can tell a bad invocation from a failed simulation.
var errUsage = errors.New("invalid usage")

// usagef prints the flag set's usage text and returns a friendly
// validation error carrying errUsage.
func usagef(fs *flag.FlagSet, format string, args ...any) error {
	fs.Usage()
	return fmt.Errorf("%w: %s", errUsage, fmt.Sprintf(format, args...))
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vpsim:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list        = fs.Bool("list", false, "list the available experiments and exit")
		id          = fs.String("experiment", "", "experiment id to run (see -list)")
		all         = fs.Bool("all", false, "run every experiment")
		seed        = fs.Int64("seed", 1, "workload input seed")
		seeds       = fs.Int("seeds", 1, "average the experiment over this many consecutive seeds")
		traceLen    = fs.Int("len", 200_000, "dynamic instructions per benchmark")
		workloads   = fs.String("workloads", "", "comma-separated benchmark subset (default all)")
		csv         = fs.Bool("csv", false, "emit CSV instead of a text table")
		md          = fs.Bool("md", false, "emit a Markdown table")
		chart       = fs.Bool("chart", false, "emit an ASCII bar chart")
		outPath     = fs.String("o", "", "write output to a file instead of stdout")
		preload     = fs.Bool("preload", false, "warm the trace cache for all selected workloads and seeds before running")
		cacheStat   = fs.Bool("cachestats", false, "report trace-cache counters on stderr at exit")
		metrics     = fs.Bool("metrics", false, "dump the metrics snapshot on stderr at exit")
		traceOut    = fs.String("trace-out", "", "write a Chrome trace_event JSON file of the run")
		traceSample = fs.Int("trace-sample", 64, "cycles between tracer counter samples (with -trace-out)")
		manifestOut = fs.String("manifest", "", "write a JSON run manifest to this file")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		workers     = fs.Int("workers", 0, "simulation worker-pool width (0 = GOMAXPROCS); tables are byte-identical at any width")
		progress    = fs.Bool("progress", false, "render a live cells-done/total progress line on stderr while experiments run")
		eventsOut   = fs.String("events", "", "write a structured JSON event log (one event per line) to this file")
		stream      = fs.Bool("stream", false, "stream traces through the chunked pipeline (bounded memory; tables byte-identical)")
		chunkSize   = fs.Int("chunk", 0, "records per streaming chunk (0 = default; only with -stream)")
		shardSpec   = fs.String("shard", "", "run shard n/m of the workload axis and write a mergeable JSON artifact")
		merge       = fs.Bool("merge", false, "merge the shard artifacts named as arguments and render the full tables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: the usage text has been printed; exit 0
		}
		return fmt.Errorf("%w: %s", errUsage, err)
	}
	if *traceSample <= 0 {
		return usagef(fs, "-trace-sample must be a positive cycle count, have %d", *traceSample)
	}
	if *workers < 0 {
		return usagef(fs, "-workers must be >= 0 (0 = GOMAXPROCS), have %d", *workers)
	}
	if *seeds < 1 {
		return usagef(fs, "-seeds must be >= 1, have %d", *seeds)
	}
	if *chunkSize < 0 {
		return usagef(fs, "-chunk must be >= 0 (0 = default size), have %d", *chunkSize)
	}
	if *chunkSize > 0 && !*stream {
		return usagef(fs, "-chunk only applies with -stream")
	}
	var shard valuepred.Shard
	if *shardSpec != "" {
		var err error
		shard, err = valuepred.ParseShard(*shardSpec)
		if err != nil {
			return usagef(fs, "-shard: %v", err)
		}
	}
	if *merge && shard.Enabled() {
		return usagef(fs, "-merge and -shard are mutually exclusive (merge consumes what sharded runs produce)")
	}
	if *merge && (*id != "" || *all) {
		return usagef(fs, "-merge reads shard files, not experiments; drop -experiment/-all")
	}
	if *merge && fs.NArg() == 0 {
		return usagef(fs, "-merge needs the shard files as arguments (all m files of an m-way run)")
	}
	if !*merge && fs.NArg() > 0 {
		return usagef(fs, "unexpected arguments %v", fs.Args())
	}
	if shard.Enabled() && (*csv || *md || *chart) {
		return usagef(fs, "-shard writes a JSON artifact; render formats apply to -merge instead")
	}
	prevWorkers := valuepred.SetWorkers(*workers)
	defer valuepred.SetWorkers(prevWorkers)

	if *list {
		for _, e := range valuepred.Experiments() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Description)
		}
		return nil
	}
	if *merge {
		return runMerge(fs.Args(), stdout, *outPath, *csv, *md, *chart)
	}
	if !*all && *id == "" {
		return usagef(fs, "need -experiment <id>, -all or -list")
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(stderr, "vpsim: pprof:", err)
			}
		}()
	}

	manifest := valuepred.BeginManifest("vpsim")

	p := valuepred.DefaultParams()
	p.Seed = *seed
	p.TraceLen = *traceLen
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}
	p.Stream = *stream
	p.ChunkSize = *chunkSize

	// Any observability flag builds a registry; -cachestats is a formatter
	// over the same registry snapshot (the store mirrors its counters there).
	var reg *valuepred.MetricsRegistry
	if *metrics || *cacheStat || *manifestOut != "" || *traceOut != "" {
		reg = valuepred.NewMetricsRegistry()
		valuepred.InstrumentTraceStore(reg)
	}
	var tracer *valuepred.Tracer
	if *traceOut != "" {
		tracer = valuepred.NewEventTracer(*traceSample)
	}
	p.Obs = valuepred.NewObsSink(reg, tracer)

	// Live telemetry rides on the same write-only sink: -progress attaches
	// the cell-grid aggregator plus a stderr renderer, -events the
	// structured event log. Both work with or without -metrics/-trace-out
	// (a nil sink materializes a minimal one), and neither changes a byte
	// of table output.
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		lg := valuepred.NewEventLog(f)
		p.Obs = p.Obs.WithEventLog(lg)
		// Trace generation is the run's slowest phase; narrate it too.
		valuepred.InstrumentTraceStoreEvents(lg)
		defer valuepred.InstrumentTraceStoreEvents(nil)
	}
	if *progress {
		prog := valuepred.NewProgress()
		p.Obs = p.Obs.WithProgress(prog)
		stop := startProgress(stderr, prog)
		defer stop()
	}

	if *cacheStat {
		defer func() {
			snap := reg.Snapshot()
			c := func(name string) uint64 { v, _ := snap.Counter(name); return v }
			g := func(name string) int64 { v, _ := snap.Gauge(name); return v }
			fmt.Fprintf(stderr, "trace cache: %d hits (%d by prefix), %d misses, %d dedups, %d evictions, %d records in %d entries\n",
				c("tracestore.hits"), c("tracestore.prefix_hits"), c("tracestore.misses"),
				c("tracestore.dedups"), c("tracestore.evictions"),
				g("tracestore.records"), g("tracestore.entries"))
		}()
	}
	if *preload {
		for j := 0; j < *seeds; j++ {
			var err error
			if *stream {
				err = valuepred.PreloadStreamTraces(p.Workloads, *seed+int64(j), *traceLen, *chunkSize)
			} else {
				err = valuepred.PreloadTraces(p.Workloads, *seed+int64(j), *traceLen)
			}
			if err != nil {
				return err
			}
		}
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	ids := []string{*id}
	if *all {
		ids = nil
		for _, e := range valuepred.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	switch {
	case shard.Enabled():
		// A sharded run writes the artifact, not tables: one file carries
		// this shard's partition of every selected experiment and seed.
		var list []int64
		if *seeds > 1 {
			list = make([]int64, *seeds)
			for j := range list {
				list[j] = *seed + int64(j)
			}
		}
		sf, err := valuepred.RunExperimentShards(nil, ids, p, list, shard)
		if err != nil {
			return err
		}
		if err := sf.WriteJSON(out); err != nil {
			return err
		}
	default:
		for i, one := range ids {
			var t *valuepred.Table
			var err error
			if *seeds > 1 {
				list := make([]int64, *seeds)
				for j := range list {
					list[j] = *seed + int64(j)
				}
				t, err = valuepred.RunExperimentSeeds(one, p, list)
			} else {
				t, err = valuepred.RunExperiment(one, p)
			}
			if err != nil {
				return err
			}
			if i > 0 {
				fmt.Fprintln(out)
			}
			if err := renderTable(out, t, *csv, *md, *chart); err != nil {
				return err
			}
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *manifestOut != "" {
		manifest.Experiments = ids
		manifest.Workloads = p.Workloads
		manifest.Seed = *seed
		manifest.Seeds = *seeds
		manifest.TraceLen = *traceLen
		manifest.Workers = valuepred.Workers()
		manifest.Finish(reg)
		f, err := os.Create(*manifestOut)
		if err != nil {
			return err
		}
		if err := manifest.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *metrics {
		if err := reg.Snapshot().WriteText(stderr); err != nil {
			return err
		}
	}
	return nil
}

// renderTable writes one table in the selected output format (the same
// flag set the unsharded and merged paths share).
func renderTable(out io.Writer, t *valuepred.Table, csv, md, chart bool) error {
	switch {
	case csv:
		return t.RenderCSV(out)
	case md:
		return t.RenderMarkdown(out)
	case chart:
		return t.RenderChart(out)
	}
	return t.Render(out)
}

// runMerge decodes the named shard artifacts, recombines them and renders
// one table per experiment — byte-identical to the unsharded run, with the
// same blank-line separator -all uses between tables.
func runMerge(names []string, stdout io.Writer, outPath string, csv, md, chart bool) error {
	files := make([]*valuepred.ShardFile, 0, len(names))
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		sf, err := valuepred.DecodeShardFile(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		files = append(files, sf)
	}
	merged, err := valuepred.MergeShardFiles(files)
	if err != nil {
		return err
	}
	out := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	for i, m := range merged {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := renderTable(out, m.Table, csv, md, chart); err != nil {
			return err
		}
	}
	return nil
}

// startProgress launches the live progress renderer: a goroutine redraws
// one carriage-return-anchored stderr line a few times a second from the
// aggregator's snapshots. The returned stop function draws a final frame,
// terminates the line with a newline and waits the goroutine out, so
// nothing else the command prints can interleave with a half-drawn frame.
func startProgress(w io.Writer, prog *valuepred.Progress) func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				renderProgress(w, prog.Snapshot())
				fmt.Fprintln(w)
				return
			case <-tick.C:
				renderProgress(w, prog.Snapshot())
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// renderProgress draws one frame: overall cells done/total, errors if any,
// live occupancy, and the largest per-experiment ETA (experiments run
// sequentially, so the current one's estimate dominates). The line is
// left-padded to a fixed width so a shorter frame fully overwrites a
// longer one.
func renderProgress(w io.Writer, s valuepred.ProgressSnapshot) {
	line := fmt.Sprintf("cells %d/%d", s.Done, s.Total)
	if s.Errors > 0 {
		line += fmt.Sprintf(" (%d errors)", s.Errors)
	}
	line += fmt.Sprintf("  running %d  queued %d", s.Running, s.Queued)
	var eta float64
	for _, e := range s.Experiments {
		if e.ETAMS > eta {
			eta = e.ETAMS
		}
	}
	if eta > 0 {
		d := time.Duration(eta * float64(time.Millisecond))
		line += fmt.Sprintf("  eta ~%s", d.Round(100*time.Millisecond))
	}
	fmt.Fprintf(w, "\r%-78s", line)
}
