package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUsageErrors pins the flag-validation contract: invalid values are
// rejected with a friendly message carrying errUsage (exit 2 in main),
// and the usage text is printed.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"trace-sample zero", []string{"-experiment", "fig3.3", "-trace-sample", "0"}, "-trace-sample"},
		{"trace-sample negative", []string{"-experiment", "fig3.3", "-trace-sample", "-5"}, "-trace-sample"},
		{"workers negative", []string{"-experiment", "fig3.3", "-workers", "-1"}, "-workers"},
		{"seeds zero", []string{"-experiment", "fig3.3", "-seeds", "0"}, "-seeds"},
		{"no experiment", nil, "-experiment"},
		{"unknown flag", []string{"-nonesuch"}, "-nonesuch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			err := run(tc.args, &out, &errb)
			if err == nil {
				t.Fatalf("run(%v) accepted", tc.args)
			}
			if !errors.Is(err, errUsage) {
				t.Errorf("run(%v) error %v is not errUsage (would exit 1, want 2)", tc.args, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending flag %q", err, tc.want)
			}
			if !strings.Contains(errb.String(), "Usage") && !strings.Contains(errb.String(), "-experiment string") {
				t.Errorf("usage text not printed; stderr: %q", errb.String())
			}
		})
	}

	// A failed simulation is NOT a usage error: it must exit 1, not 2.
	var out, errb strings.Builder
	err := run([]string{"-experiment", "nonesuch", "-len", "100"}, &out, &errb)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if errors.Is(err, errUsage) {
		t.Errorf("runtime failure %v wrongly marked as usage error", err)
	}
}

// TestProgressFlag runs a tiny experiment with -progress and checks the
// live line lands on stderr (terminated by a newline so subsequent output
// starts clean) while the table on stdout stays byte-identical to a run
// without it.
func TestProgressFlag(t *testing.T) {
	args := []string{"-experiment", "fig3.3", "-len", "3000", "-workloads", "gcc"}

	var plainOut, plainErr strings.Builder
	if err := run(args, &plainOut, &plainErr); err != nil {
		t.Fatal(err)
	}
	var progOut, progErr strings.Builder
	if err := run(append([]string{"-progress"}, args...), &progOut, &progErr); err != nil {
		t.Fatal(err)
	}

	if progOut.String() != plainOut.String() {
		t.Errorf("-progress changed stdout:\nwith:\n%s\nwithout:\n%s", progOut.String(), plainOut.String())
	}
	se := progErr.String()
	if !strings.Contains(se, "cells ") {
		t.Errorf("-progress stderr has no progress line: %q", se)
	}
	if !strings.HasSuffix(se, "\n") {
		t.Errorf("final progress frame not newline-terminated: %q", se)
	}
	// The final frame shows the grid fully converged: "cells N/N".
	last := se[strings.LastIndex(se, "\r")+1:]
	fields := strings.Fields(last)
	if len(fields) < 2 || fields[0] != "cells" || !strings.Contains(fields[1], "/") {
		t.Fatalf("final frame %q does not start with cells done/total", last)
	}
	frac := strings.SplitN(fields[1], "/", 2)
	if frac[0] != frac[1] {
		t.Errorf("final frame shows unconverged cells %s", fields[1])
	}
}

// TestEventsFlag checks -events writes a parseable JSON event log carrying
// the run and cell lifecycle.
func TestEventsFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	var out, errb strings.Builder
	// A seed no other test uses, so the trace is a guaranteed store miss
	// and the generate.* events fire.
	err := run([]string{"-experiment", "fig3.3", "-len", "3000", "-workloads", "gcc",
		"-seed", "977", "-events", path}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.TrimSpace(string(data))
	if text == "" {
		t.Fatal("-events wrote an empty log")
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		var e struct {
			Component string `json:"component"`
			Event     string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line is not JSON: %v\n%s", err, line)
		}
		seen[e.Component+"/"+e.Event] = true
	}
	for _, want := range []string{
		"experiment/run.start", "experiment/run.done",
		"plan/cell.start", "plan/cell.done",
		"tracestore/generate.start", "tracestore/generate.done",
	} {
		if !seen[want] {
			t.Errorf("event log missing %s; saw %v", want, seen)
		}
	}
}
