// Command vplint is the repository's multichecker: it runs the custom
// determinism, documentation, stats-safety, aliasing, pooling and context
// analyzers (see DESIGN.md, "Determinism contract & lint suite") over the
// packages matched by the given patterns and exits non-zero if any
// diagnostic fires.
//
// Usage:
//
//	vplint [-C dir] [-only detlint,errlint] [-json] [packages...]   # default ./...
//	vplint -list
//	vplint -h        # one-line doc per analyzer
//
// With -json the diagnostics are written to stdout as a single JSON
// object instead of text lines:
//
//	{
//	  "version": 1,
//	  "count": 2,
//	  "diagnostics": [
//	    {"analyzer": "detlint", "file": "internal/stats/stats.go",
//	     "line": 15, "column": 2, "message": "..."},
//	    ...
//	  ]
//	}
//
// File paths are slash-separated and relative to the -C directory, and the
// list is sorted by file, line, column, analyzer, so byte-identical inputs
// produce byte-identical output. The exit status is the same as in text
// mode.
//
// A false positive is suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the diagnostic's line or the line above it. The reason is required;
// a directive without one suppresses nothing and is itself a diagnostic.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"valuepred/internal/lint"
	"valuepred/internal/lint/analysis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vplint:", err)
		os.Exit(1)
	}
}

// jsonDiagnostic is one finding in the -json output (schema version 1).
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json object.
type jsonReport struct {
	Version     int              `json:"version"`
	Count       int              `json:"count"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "directory of the module to analyze")
		only     = fs.String("only", "", "comma-separated subset of analyzers to run (default all)")
		list     = fs.Bool("list", false, "list the analyzers and exit")
		jsonFlag = fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vplint [-C dir] [-only names] [-json] [-list] [packages...]")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nanalyzers:")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return nil
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (run vplint -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		return err
	}
	if *jsonFlag {
		report := jsonReport{Version: 1, Count: len(diags), Diagnostics: []jsonDiagnostic{}}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     relativeTo(*dir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("%d issue(s) found", n)
	}
	return nil
}

// firstLine trims an analyzer doc to its summary line.
func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// relativeTo rewrites file relative to dir with forward slashes, so the
// JSON output is stable across checkouts; paths outside dir pass through.
func relativeTo(dir, file string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(abs, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
