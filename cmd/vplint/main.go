// Command vplint is the repository's multichecker: it runs the custom
// determinism, documentation and stats-safety analyzers (detlint, doclint,
// errlint, keyedlint, mutexlint — see DESIGN.md, "Determinism contract &
// lint suite") over the packages matched by the given patterns and exits
// non-zero if any diagnostic fires.
//
// Usage:
//
//	vplint [-C dir] [-only detlint,errlint] [packages...]   # default ./...
//	vplint -list
//
// A false positive is suppressed in source with
//
//	//vplint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the diagnostic's line or the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"valuepred/internal/lint"
	"valuepred/internal/lint/analysis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "vplint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir   = fs.String("C", ".", "directory of the module to analyze")
		only  = fs.String("only", "", "comma-separated subset of analyzers to run (default all)")
		list  = fs.Bool("list", false, "list the analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (run vplint -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("%d issue(s) found", n)
	}
	return nil
}
