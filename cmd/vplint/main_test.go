package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestKnownBadFixture runs the full multichecker over the known-bad module
// under testdata and asserts that every analyzer fires, that the run exits
// with an error, and that the suppression directive silences the
// deliberately ignored violation.
func TestKnownBadFixture(t *testing.T) {
	var out, errBuf strings.Builder
	err := run([]string{"-C", "testdata/src", "./..."}, &out, &errBuf)
	if err == nil {
		t.Fatalf("expected an error for the known-bad fixture, got none\noutput:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []struct{ analyzer, fragment string }{
		{"aliaslint", "append writes into g.Recs, a read-only view"},
		{"ctxlint", "context.Background mints a root context"},
		{"detlint", "map iteration order is randomized"},
		{"doclint", "package main has no package doc comment"},
		{"errlint", "error returned by stats.Load is discarded"},
		{"keyedlint", "unkeyed fields in composite literal of Config"},
		{"mutexlint", "receiver passes bad/use.Guarded by value"},
		{"poollint", "field cursor of pooled scratch is not reset"},
		{"lint", "suppression directive has no reason"},
	} {
		if !strings.Contains(got, want.analyzer+": ") || !strings.Contains(got, want.fragment) {
			t.Errorf("missing %s diagnostic (%q) in output:\n%s", want.analyzer, want.fragment, got)
		}
	}
	if strings.Contains(got, "Suppressed") {
		t.Errorf("the ignore directive did not suppress the marked loop:\n%s", got)
	}
	if !strings.Contains(err.Error(), "10 issue(s) found") {
		t.Errorf("expected exactly 10 issues, got: %v", err)
	}
}

// TestNoReasonDirectiveDoesNotSuppress checks the two halves of the
// reason requirement: the directive itself is a diagnostic, and the
// violation underneath it still fires.
func TestNoReasonDirectiveDoesNotSuppress(t *testing.T) {
	var out, errBuf strings.Builder
	err := run([]string{"-C", "testdata/src", "-only", "detlint", "./internal/stats"}, &out, &errBuf)
	if err == nil {
		t.Fatal("expected an error, got none")
	}
	got := out.String()
	if !strings.Contains(got, "lint: suppression directive has no reason") {
		t.Errorf("missing the directive diagnostic:\n%s", got)
	}
	if !strings.Contains(got, "stats.go:40") {
		t.Errorf("the reason-less directive wrongly suppressed the detlint violation below it:\n%s", got)
	}
}

// TestOnlySubset checks -only restricts the analyzer suite. Directive
// validation is unconditional, so the reason-less directive still counts.
func TestOnlySubset(t *testing.T) {
	var out, errBuf strings.Builder
	err := run([]string{"-C", "testdata/src", "-only", "keyedlint", "./..."}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "2 issue(s) found") {
		t.Fatalf("expected the keyedlint issue plus the malformed directive, got err=%v\noutput:\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "detlint:") {
		t.Errorf("-only keyedlint still ran detlint:\n%s", out.String())
	}
}

// TestListAnalyzers checks -list names the full eight-analyzer suite.
func TestListAnalyzers(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"aliaslint", "ctxlint", "detlint", "doclint",
		"errlint", "keyedlint", "mutexlint", "poollint",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestJSONOutput checks the -json schema: version 1, count matching the
// diagnostics list, relative slash-separated paths, and deterministic
// byte-for-byte output across runs.
func TestJSONOutput(t *testing.T) {
	var runs [2]string
	for i := range runs {
		var out, errBuf strings.Builder
		err := run([]string{"-C", "testdata/src", "-json", "./..."}, &out, &errBuf)
		if err == nil || !strings.Contains(err.Error(), "10 issue(s) found") {
			t.Fatalf("run %d: expected 10 issues, got err=%v", i, err)
		}
		runs[i] = out.String()
	}
	if runs[0] != runs[1] {
		t.Errorf("-json output is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", runs[0], runs[1])
	}
	var report struct {
		Version     int `json:"version"`
		Count       int `json:"count"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(runs[0]), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, runs[0])
	}
	if report.Version != 1 {
		t.Errorf("schema version = %d, want 1", report.Version)
	}
	if report.Count != len(report.Diagnostics) || report.Count != 10 {
		t.Errorf("count = %d, len(diagnostics) = %d, want 10", report.Count, len(report.Diagnostics))
	}
	for _, d := range report.Diagnostics {
		if strings.HasPrefix(d.File, "/") || strings.Contains(d.File, "\\") {
			t.Errorf("file %q is not a relative slash path", d.File)
		}
		if d.Analyzer == "" || d.Line <= 0 || d.Column <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestHelpExitsClean checks -h prints the analyzer roster and is not an
// error (the process must exit 0).
func TestHelpExitsClean(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run([]string{"-h"}, &out, &errBuf); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	usage := errBuf.String()
	for _, name := range []string{
		"aliaslint", "ctxlint", "detlint", "doclint",
		"errlint", "keyedlint", "mutexlint", "poollint",
	} {
		if !strings.Contains(usage, name) {
			t.Errorf("-h usage missing analyzer %s:\n%s", name, usage)
		}
	}
}
