package main

import (
	"strings"
	"testing"
)

// TestKnownBadFixture runs the full multichecker over the known-bad module
// under testdata and asserts that every analyzer fires, that the run exits
// with an error, and that the suppression directive silences the
// deliberately ignored violation.
func TestKnownBadFixture(t *testing.T) {
	var out, errBuf strings.Builder
	err := run([]string{"-C", "testdata/src", "./..."}, &out, &errBuf)
	if err == nil {
		t.Fatalf("expected an error for the known-bad fixture, got none\noutput:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []struct{ analyzer, fragment string }{
		{"detlint", "map iteration order is randomized"},
		{"doclint", "package main has no package doc comment"},
		{"errlint", "error returned by stats.Load is discarded"},
		{"keyedlint", "unkeyed fields in composite literal of Config"},
		{"mutexlint", "receiver passes bad/use.Guarded by value"},
	} {
		if !strings.Contains(got, want.analyzer+": ") || !strings.Contains(got, want.fragment) {
			t.Errorf("missing %s diagnostic (%q) in output:\n%s", want.analyzer, want.fragment, got)
		}
	}
	if strings.Contains(got, "Suppressed") || strings.Contains(err.Error(), "6 issue") {
		t.Errorf("the //vplint:ignore directive did not suppress the marked loop:\n%s", got)
	}
	if !strings.Contains(err.Error(), "5 issue(s) found") {
		t.Errorf("expected exactly 5 issues, got: %v", err)
	}
}

// TestOnlySubset checks -only restricts the suite.
func TestOnlySubset(t *testing.T) {
	var out, errBuf strings.Builder
	err := run([]string{"-C", "testdata/src", "-only", "keyedlint", "./..."}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "1 issue(s) found") {
		t.Fatalf("expected exactly the keyedlint issue, got err=%v\noutput:\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "detlint") {
		t.Errorf("-only keyedlint still ran detlint:\n%s", out.String())
	}
}

// TestListAnalyzers checks -list names all five analyzers.
func TestListAnalyzers(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"detlint", "doclint", "errlint", "keyedlint", "mutexlint"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
