// Package use trips errlint, keyedlint and mutexlint.
package use

import (
	"sync"

	"bad/internal/stats"
)

// Guarded carries a mutex.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Drop violates errlint: the stats error is discarded.
func Drop() {
	stats.Load("table") // errlint fires here
}

// Unkeyed violates keyedlint: positional configuration fields.
func Unkeyed() stats.Config {
	return stats.Config{16, 40} // keyedlint fires here
}

// Copy violates mutexlint: the receiver copies the mutex.
func (g Guarded) Copy() int { return g.n } // mutexlint fires here
