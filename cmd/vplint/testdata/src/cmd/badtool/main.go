package main

func main() {}
