// Package stats is the known-bad fixture's target package: it is both
// inside the determinism contract (detlint) and an error-integrity API
// surface (errlint).
package stats

// Config is a configuration struct for keyedlint to guard.
type Config struct {
	Width  int
	Window int
}

// Collect violates detlint: map iteration order leaks into a slice.
func Collect(m map[string]float64) []string {
	var keys []string
	for k := range m { // detlint fires here
		keys = append(keys, k)
	}
	return keys
}

// Load returns an error callers must consume.
func Load(path string) error { return nil }

// Suppressed is an order-free accumulation deliberately written as an
// append so the fixture also proves the ignore directive works.
func Suppressed(m map[string]int) []int {
	var out []int
	//vplint:ignore detlint fixture: directive on the line above must silence this
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// NoReason carries a directive without a reason: it suppresses nothing
// and is itself reported as a lint diagnostic.
func NoReason(m map[string]int) []string {
	var out []string
	//lint:ignore detlint
	for k := range m { // detlint still fires here
		out = append(out, k)
	}
	return out
}
