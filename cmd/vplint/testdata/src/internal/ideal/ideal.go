// Package ideal is the known-bad fixture's poollint target: a pooled
// scratch struct whose reset misses a field.
package ideal

import "sync"

type scratch struct {
	window []int
	cursor int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// Run recycles a scratch but only clears window; cursor carries a stale
// value from the previous run.
func Run(n int) int {
	s := pool.Get().(*scratch) // poollint fires here: cursor not reset
	defer pool.Put(s)
	s.window = s.window[:0]
	for i := 0; i < n; i++ {
		s.window = append(s.window, i)
	}
	return len(s.window)
}
