// Package serve is the known-bad fixture's ctxlint target: a request
// handler that mints its own root context.
package serve

import "context"

// Handle detaches the run from the caller's cancellation.
func Handle(id string) error {
	return runCtx(context.Background(), id) // ctxlint fires here
}

func runCtx(ctx context.Context, id string) error { return ctx.Err() }
