// Package fetch is the known-bad fixture's aliaslint target: a marked
// delivery view that a non-owner function grows in place.
package fetch

// Rec is one delivered record.
type Rec struct {
	PC uint64
}

// Group is a delivery window over shared storage.
type Group struct {
	//lint:view
	Recs []Rec
}

// Pad grows the delivered view in place, clobbering the producer's
// backing array.
func Pad(g *Group) {
	g.Recs = append(g.Recs, Rec{}) // aliaslint fires here
}
