package main

import (
	"strings"
	"testing"
)

func TestSingleWorkload(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "compress95", "-len", "20000"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"compress95", "average DID", "DID >= 4", ">=32"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAllWorkloadsWithMem(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-len", "5000", "-mem"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"go", "m88ksim", "vortex"} {
		if !strings.Contains(out.String(), name+"  (") {
			t.Errorf("missing section for %s", name)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "nonesuch", "-len", "100"}, &out, &errb); err == nil {
		t.Error("unknown workload accepted")
	}
}
