// Command didstat prints the dataflow (dynamic instruction distance)
// analysis of a workload trace: average DID, the DID histogram, and the
// predictability×DID joint distribution of Section 3.3.
//
// Usage:
//
//	didstat [-workload all] [-seed 1] [-len 200000] [-mem]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"valuepred"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "didstat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("didstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "all", "benchmark name, or \"all\"")
		seed     = fs.Int64("seed", 1, "workload input seed")
		traceLen = fs.Int("len", 200_000, "dynamic instructions to trace")
		mem      = fs.Bool("mem", false, "include store-to-load dependencies")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var names []string
	if *name == "all" {
		for _, b := range valuepred.Benchmarks() {
			names = append(names, b.Name)
		}
	} else {
		names = []string{*name}
	}
	// Warm the trace store up front: all emulators run concurrently, and the
	// per-benchmark loop below then hits the cache (or shares traces with a
	// prior run in the same process).
	if err := valuepred.PreloadTraces(names, *seed, *traceLen); err != nil {
		return err
	}
	buckets := []string{"1", "2", "3", "4-7", "8-15", "16-31", ">=32"}
	for _, n := range names {
		recs, err := valuepred.Trace(n, *seed, *traceLen)
		if err != nil {
			return err
		}
		a := valuepred.AnalyzeDID(recs, *mem)
		fmt.Fprintf(stdout, "%s  (%d insts, %d arcs)\n", n, a.Insts, a.Arcs)
		fmt.Fprintf(stdout, "  average DID           %10.1f\n", a.AvgDID())
		fmt.Fprintf(stdout, "  arcs with DID >= 4    %9.1f%%\n", 100*a.FracDIDAtLeast4())
		fmt.Fprintf(stdout, "  predictable, DID < 4  %9.1f%%\n", 100*a.FracPredictableShort())
		fmt.Fprintf(stdout, "  predictable, DID >= 4 %9.1f%%\n", 100*a.FracPredictableLong())
		fmt.Fprintf(stdout, "  %-8s %12s %12s\n", "DID", "all arcs", "predictable")
		for b := 0; b < len(buckets); b++ {
			fmt.Fprintf(stdout, "  %-8s %11.1f%% %11.1f%%\n", buckets[b],
				100*float64(a.Hist[b])/float64(a.Arcs),
				100*float64(a.PredHist[b])/float64(a.Arcs))
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
